/root/repo/target/debug/examples/satellite_passes-bda24a0a22492709.d: examples/satellite_passes.rs

/root/repo/target/debug/examples/satellite_passes-bda24a0a22492709: examples/satellite_passes.rs

examples/satellite_passes.rs:
