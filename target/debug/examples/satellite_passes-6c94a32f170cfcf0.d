/root/repo/target/debug/examples/satellite_passes-6c94a32f170cfcf0.d: examples/satellite_passes.rs Cargo.toml

/root/repo/target/debug/examples/libsatellite_passes-6c94a32f170cfcf0.rmeta: examples/satellite_passes.rs Cargo.toml

examples/satellite_passes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
