/root/repo/target/debug/examples/repeater_chain-b67a85b07305ebab.d: examples/repeater_chain.rs Cargo.toml

/root/repo/target/debug/examples/librepeater_chain-b67a85b07305ebab.rmeta: examples/repeater_chain.rs Cargo.toml

examples/repeater_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
