/root/repo/target/debug/examples/quickstart-e331de052019dcf6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e331de052019dcf6: examples/quickstart.rs

examples/quickstart.rs:
