/root/repo/target/debug/examples/night_operations-601df9078d5942b7.d: examples/night_operations.rs

/root/repo/target/debug/examples/night_operations-601df9078d5942b7: examples/night_operations.rs

examples/night_operations.rs:
