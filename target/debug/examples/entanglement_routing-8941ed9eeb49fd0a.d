/root/repo/target/debug/examples/entanglement_routing-8941ed9eeb49fd0a.d: examples/entanglement_routing.rs Cargo.toml

/root/repo/target/debug/examples/libentanglement_routing-8941ed9eeb49fd0a.rmeta: examples/entanglement_routing.rs Cargo.toml

examples/entanglement_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
