/root/repo/target/debug/examples/link_layer-7ce155413917dd9e.d: examples/link_layer.rs

/root/repo/target/debug/examples/link_layer-7ce155413917dd9e: examples/link_layer.rs

examples/link_layer.rs:
