/root/repo/target/debug/examples/other_regions-3f30b2dd10088b3e.d: examples/other_regions.rs

/root/repo/target/debug/examples/other_regions-3f30b2dd10088b3e: examples/other_regions.rs

examples/other_regions.rs:
