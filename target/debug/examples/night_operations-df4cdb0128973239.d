/root/repo/target/debug/examples/night_operations-df4cdb0128973239.d: examples/night_operations.rs Cargo.toml

/root/repo/target/debug/examples/libnight_operations-df4cdb0128973239.rmeta: examples/night_operations.rs Cargo.toml

examples/night_operations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
