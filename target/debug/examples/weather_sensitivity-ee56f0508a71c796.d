/root/repo/target/debug/examples/weather_sensitivity-ee56f0508a71c796.d: examples/weather_sensitivity.rs Cargo.toml

/root/repo/target/debug/examples/libweather_sensitivity-ee56f0508a71c796.rmeta: examples/weather_sensitivity.rs Cargo.toml

examples/weather_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
