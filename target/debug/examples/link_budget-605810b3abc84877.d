/root/repo/target/debug/examples/link_budget-605810b3abc84877.d: examples/link_budget.rs Cargo.toml

/root/repo/target/debug/examples/liblink_budget-605810b3abc84877.rmeta: examples/link_budget.rs Cargo.toml

examples/link_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
