/root/repo/target/debug/examples/link_layer-f34da129c7dd0981.d: examples/link_layer.rs Cargo.toml

/root/repo/target/debug/examples/liblink_layer-f34da129c7dd0981.rmeta: examples/link_layer.rs Cargo.toml

examples/link_layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
