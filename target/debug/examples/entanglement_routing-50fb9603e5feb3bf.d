/root/repo/target/debug/examples/entanglement_routing-50fb9603e5feb3bf.d: examples/entanglement_routing.rs

/root/repo/target/debug/examples/entanglement_routing-50fb9603e5feb3bf: examples/entanglement_routing.rs

examples/entanglement_routing.rs:
