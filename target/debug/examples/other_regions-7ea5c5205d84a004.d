/root/repo/target/debug/examples/other_regions-7ea5c5205d84a004.d: examples/other_regions.rs Cargo.toml

/root/repo/target/debug/examples/libother_regions-7ea5c5205d84a004.rmeta: examples/other_regions.rs Cargo.toml

examples/other_regions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
