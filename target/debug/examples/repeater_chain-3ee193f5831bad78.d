/root/repo/target/debug/examples/repeater_chain-3ee193f5831bad78.d: examples/repeater_chain.rs

/root/repo/target/debug/examples/repeater_chain-3ee193f5831bad78: examples/repeater_chain.rs

examples/repeater_chain.rs:
