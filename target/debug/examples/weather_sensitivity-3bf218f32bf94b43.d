/root/repo/target/debug/examples/weather_sensitivity-3bf218f32bf94b43.d: examples/weather_sensitivity.rs

/root/repo/target/debug/examples/weather_sensitivity-3bf218f32bf94b43: examples/weather_sensitivity.rs

examples/weather_sensitivity.rs:
