/root/repo/target/debug/examples/link_budget-478c2476f12cab5e.d: examples/link_budget.rs

/root/repo/target/debug/examples/link_budget-478c2476f12cab5e: examples/link_budget.rs

examples/link_budget.rs:
