/root/repo/target/debug/deps/reproduce-8c6b06852defb5e1.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-8c6b06852defb5e1.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
