/root/repo/target/debug/deps/qntn_bench-2785d64a9edc257e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqntn_bench-2785d64a9edc257e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
