/root/repo/target/debug/deps/rand-8ba150605d0bad0a.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8ba150605d0bad0a.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8ba150605d0bad0a.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
