/root/repo/target/debug/deps/determinism-5983911f1a1fd670.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-5983911f1a1fd670: tests/determinism.rs

tests/determinism.rs:
