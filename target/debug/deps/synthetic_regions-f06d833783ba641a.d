/root/repo/target/debug/deps/synthetic_regions-f06d833783ba641a.d: tests/synthetic_regions.rs Cargo.toml

/root/repo/target/debug/deps/libsynthetic_regions-f06d833783ba641a.rmeta: tests/synthetic_regions.rs Cargo.toml

tests/synthetic_regions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
