/root/repo/target/debug/deps/qntn_orbit-e8542f444b5cf598.d: crates/orbit/src/lib.rs crates/orbit/src/contact.rs crates/orbit/src/elements.rs crates/orbit/src/ephemeris.rs crates/orbit/src/kepler.rs crates/orbit/src/numerical.rs crates/orbit/src/propagator.rs crates/orbit/src/sun.rs crates/orbit/src/visibility.rs crates/orbit/src/walker.rs

/root/repo/target/debug/deps/libqntn_orbit-e8542f444b5cf598.rlib: crates/orbit/src/lib.rs crates/orbit/src/contact.rs crates/orbit/src/elements.rs crates/orbit/src/ephemeris.rs crates/orbit/src/kepler.rs crates/orbit/src/numerical.rs crates/orbit/src/propagator.rs crates/orbit/src/sun.rs crates/orbit/src/visibility.rs crates/orbit/src/walker.rs

/root/repo/target/debug/deps/libqntn_orbit-e8542f444b5cf598.rmeta: crates/orbit/src/lib.rs crates/orbit/src/contact.rs crates/orbit/src/elements.rs crates/orbit/src/ephemeris.rs crates/orbit/src/kepler.rs crates/orbit/src/numerical.rs crates/orbit/src/propagator.rs crates/orbit/src/sun.rs crates/orbit/src/visibility.rs crates/orbit/src/walker.rs

crates/orbit/src/lib.rs:
crates/orbit/src/contact.rs:
crates/orbit/src/elements.rs:
crates/orbit/src/ephemeris.rs:
crates/orbit/src/kepler.rs:
crates/orbit/src/numerical.rs:
crates/orbit/src/propagator.rs:
crates/orbit/src/sun.rs:
crates/orbit/src/visibility.rs:
crates/orbit/src/walker.rs:
