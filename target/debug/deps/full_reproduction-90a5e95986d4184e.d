/root/repo/target/debug/deps/full_reproduction-90a5e95986d4184e.d: tests/full_reproduction.rs Cargo.toml

/root/repo/target/debug/deps/libfull_reproduction-90a5e95986d4184e.rmeta: tests/full_reproduction.rs Cargo.toml

tests/full_reproduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
