/root/repo/target/debug/deps/qntn_orbit-5deb5d1fb274b748.d: crates/orbit/src/lib.rs crates/orbit/src/contact.rs crates/orbit/src/elements.rs crates/orbit/src/ephemeris.rs crates/orbit/src/kepler.rs crates/orbit/src/numerical.rs crates/orbit/src/propagator.rs crates/orbit/src/sun.rs crates/orbit/src/visibility.rs crates/orbit/src/walker.rs Cargo.toml

/root/repo/target/debug/deps/libqntn_orbit-5deb5d1fb274b748.rmeta: crates/orbit/src/lib.rs crates/orbit/src/contact.rs crates/orbit/src/elements.rs crates/orbit/src/ephemeris.rs crates/orbit/src/kepler.rs crates/orbit/src/numerical.rs crates/orbit/src/propagator.rs crates/orbit/src/sun.rs crates/orbit/src/visibility.rs crates/orbit/src/walker.rs Cargo.toml

crates/orbit/src/lib.rs:
crates/orbit/src/contact.rs:
crates/orbit/src/elements.rs:
crates/orbit/src/ephemeris.rs:
crates/orbit/src/kepler.rs:
crates/orbit/src/numerical.rs:
crates/orbit/src/propagator.rs:
crates/orbit/src/sun.rs:
crates/orbit/src/visibility.rs:
crates/orbit/src/walker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
