/root/repo/target/debug/deps/qntn_geo-1a91c189c003651c.d: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs Cargo.toml

/root/repo/target/debug/deps/libqntn_geo-1a91c189c003651c.rmeta: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/distance.rs:
crates/geo/src/ellipsoid.rs:
crates/geo/src/frames.rs:
crates/geo/src/geodetic.rs:
crates/geo/src/look.rs:
crates/geo/src/time.rs:
crates/geo/src/vec3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
