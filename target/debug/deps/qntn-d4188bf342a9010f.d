/root/repo/target/debug/deps/qntn-d4188bf342a9010f.d: src/lib.rs

/root/repo/target/debug/deps/qntn-d4188bf342a9010f: src/lib.rs

src/lib.rs:
