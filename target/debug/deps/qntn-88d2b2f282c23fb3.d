/root/repo/target/debug/deps/qntn-88d2b2f282c23fb3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqntn-88d2b2f282c23fb3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
