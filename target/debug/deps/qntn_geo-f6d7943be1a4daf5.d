/root/repo/target/debug/deps/qntn_geo-f6d7943be1a4daf5.d: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

/root/repo/target/debug/deps/libqntn_geo-f6d7943be1a4daf5.rlib: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

/root/repo/target/debug/deps/libqntn_geo-f6d7943be1a4daf5.rmeta: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

crates/geo/src/lib.rs:
crates/geo/src/distance.rs:
crates/geo/src/ellipsoid.rs:
crates/geo/src/frames.rs:
crates/geo/src/geodetic.rs:
crates/geo/src/look.rs:
crates/geo/src/time.rs:
crates/geo/src/vec3.rs:
