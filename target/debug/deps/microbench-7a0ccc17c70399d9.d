/root/repo/target/debug/deps/microbench-7a0ccc17c70399d9.d: crates/bench/benches/microbench.rs

/root/repo/target/debug/deps/microbench-7a0ccc17c70399d9: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
