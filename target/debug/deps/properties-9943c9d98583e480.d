/root/repo/target/debug/deps/properties-9943c9d98583e480.d: crates/net/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9943c9d98583e480.rmeta: crates/net/tests/properties.rs Cargo.toml

crates/net/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
