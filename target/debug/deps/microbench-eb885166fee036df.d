/root/repo/target/debug/deps/microbench-eb885166fee036df.d: crates/bench/benches/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-eb885166fee036df.rmeta: crates/bench/benches/microbench.rs Cargo.toml

crates/bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
