/root/repo/target/debug/deps/qntn_routing-46add490cf56216d.d: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libqntn_routing-46add490cf56216d.rmeta: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs Cargo.toml

crates/routing/src/lib.rs:
crates/routing/src/bellman_ford.rs:
crates/routing/src/dijkstra.rs:
crates/routing/src/disjoint.rs:
crates/routing/src/graph.rs:
crates/routing/src/metrics.rs:
crates/routing/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
