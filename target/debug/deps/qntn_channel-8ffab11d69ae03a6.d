/root/repo/target/debug/deps/qntn_channel-8ffab11d69ae03a6.d: crates/channel/src/lib.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fiber.rs crates/channel/src/fso.rs crates/channel/src/params.rs crates/channel/src/turbulence.rs crates/channel/src/units.rs crates/channel/src/weather.rs

/root/repo/target/debug/deps/qntn_channel-8ffab11d69ae03a6: crates/channel/src/lib.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fiber.rs crates/channel/src/fso.rs crates/channel/src/params.rs crates/channel/src/turbulence.rs crates/channel/src/units.rs crates/channel/src/weather.rs

crates/channel/src/lib.rs:
crates/channel/src/atmosphere.rs:
crates/channel/src/budget.rs:
crates/channel/src/fiber.rs:
crates/channel/src/fso.rs:
crates/channel/src/params.rs:
crates/channel/src/turbulence.rs:
crates/channel/src/units.rs:
crates/channel/src/weather.rs:
