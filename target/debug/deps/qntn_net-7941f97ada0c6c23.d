/root/repo/target/debug/deps/qntn_net-7941f97ada0c6c23.d: crates/net/src/lib.rs crates/net/src/capacity.rs crates/net/src/coverage.rs crates/net/src/entanglement.rs crates/net/src/events.rs crates/net/src/heralded.rs crates/net/src/host.rs crates/net/src/linkeval.rs crates/net/src/requests.rs crates/net/src/simulator.rs crates/net/src/snapshot.rs crates/net/src/sweep_engine.rs Cargo.toml

/root/repo/target/debug/deps/libqntn_net-7941f97ada0c6c23.rmeta: crates/net/src/lib.rs crates/net/src/capacity.rs crates/net/src/coverage.rs crates/net/src/entanglement.rs crates/net/src/events.rs crates/net/src/heralded.rs crates/net/src/host.rs crates/net/src/linkeval.rs crates/net/src/requests.rs crates/net/src/simulator.rs crates/net/src/snapshot.rs crates/net/src/sweep_engine.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/capacity.rs:
crates/net/src/coverage.rs:
crates/net/src/entanglement.rs:
crates/net/src/events.rs:
crates/net/src/heralded.rs:
crates/net/src/host.rs:
crates/net/src/linkeval.rs:
crates/net/src/requests.rs:
crates/net/src/simulator.rs:
crates/net/src/snapshot.rs:
crates/net/src/sweep_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
