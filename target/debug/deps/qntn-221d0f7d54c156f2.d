/root/repo/target/debug/deps/qntn-221d0f7d54c156f2.d: src/lib.rs

/root/repo/target/debug/deps/libqntn-221d0f7d54c156f2.rlib: src/lib.rs

/root/repo/target/debug/deps/libqntn-221d0f7d54c156f2.rmeta: src/lib.rs

src/lib.rs:
