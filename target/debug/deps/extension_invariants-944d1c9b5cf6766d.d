/root/repo/target/debug/deps/extension_invariants-944d1c9b5cf6766d.d: tests/extension_invariants.rs

/root/repo/target/debug/deps/extension_invariants-944d1c9b5cf6766d: tests/extension_invariants.rs

tests/extension_invariants.rs:
