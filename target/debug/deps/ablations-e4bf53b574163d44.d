/root/repo/target/debug/deps/ablations-e4bf53b574163d44.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-e4bf53b574163d44: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
