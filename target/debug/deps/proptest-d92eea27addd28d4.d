/root/repo/target/debug/deps/proptest-d92eea27addd28d4.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-d92eea27addd28d4.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
