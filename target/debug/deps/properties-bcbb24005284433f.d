/root/repo/target/debug/deps/properties-bcbb24005284433f.d: crates/orbit/tests/properties.rs

/root/repo/target/debug/deps/properties-bcbb24005284433f: crates/orbit/tests/properties.rs

crates/orbit/tests/properties.rs:
