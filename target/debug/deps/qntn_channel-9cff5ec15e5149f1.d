/root/repo/target/debug/deps/qntn_channel-9cff5ec15e5149f1.d: crates/channel/src/lib.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fiber.rs crates/channel/src/fso.rs crates/channel/src/params.rs crates/channel/src/turbulence.rs crates/channel/src/units.rs crates/channel/src/weather.rs

/root/repo/target/debug/deps/libqntn_channel-9cff5ec15e5149f1.rlib: crates/channel/src/lib.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fiber.rs crates/channel/src/fso.rs crates/channel/src/params.rs crates/channel/src/turbulence.rs crates/channel/src/units.rs crates/channel/src/weather.rs

/root/repo/target/debug/deps/libqntn_channel-9cff5ec15e5149f1.rmeta: crates/channel/src/lib.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fiber.rs crates/channel/src/fso.rs crates/channel/src/params.rs crates/channel/src/turbulence.rs crates/channel/src/units.rs crates/channel/src/weather.rs

crates/channel/src/lib.rs:
crates/channel/src/atmosphere.rs:
crates/channel/src/budget.rs:
crates/channel/src/fiber.rs:
crates/channel/src/fso.rs:
crates/channel/src/params.rs:
crates/channel/src/turbulence.rs:
crates/channel/src/units.rs:
crates/channel/src/weather.rs:
