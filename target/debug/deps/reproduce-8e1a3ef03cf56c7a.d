/root/repo/target/debug/deps/reproduce-8e1a3ef03cf56c7a.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-8e1a3ef03cf56c7a: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
