/root/repo/target/debug/deps/properties-6987b5a25cb2c3c9.d: crates/routing/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6987b5a25cb2c3c9.rmeta: crates/routing/tests/properties.rs Cargo.toml

crates/routing/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
