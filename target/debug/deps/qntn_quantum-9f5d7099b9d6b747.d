/root/repo/target/debug/deps/qntn_quantum-9f5d7099b9d6b747.d: crates/quantum/src/lib.rs crates/quantum/src/channels.rs crates/quantum/src/choi.rs crates/quantum/src/complex.rs crates/quantum/src/eigen.rs crates/quantum/src/fidelity.rs crates/quantum/src/gates.rs crates/quantum/src/matrix.rs crates/quantum/src/nonlocality.rs crates/quantum/src/protocols.rs crates/quantum/src/qkd.rs crates/quantum/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libqntn_quantum-9f5d7099b9d6b747.rmeta: crates/quantum/src/lib.rs crates/quantum/src/channels.rs crates/quantum/src/choi.rs crates/quantum/src/complex.rs crates/quantum/src/eigen.rs crates/quantum/src/fidelity.rs crates/quantum/src/gates.rs crates/quantum/src/matrix.rs crates/quantum/src/nonlocality.rs crates/quantum/src/protocols.rs crates/quantum/src/qkd.rs crates/quantum/src/state.rs Cargo.toml

crates/quantum/src/lib.rs:
crates/quantum/src/channels.rs:
crates/quantum/src/choi.rs:
crates/quantum/src/complex.rs:
crates/quantum/src/eigen.rs:
crates/quantum/src/fidelity.rs:
crates/quantum/src/gates.rs:
crates/quantum/src/matrix.rs:
crates/quantum/src/nonlocality.rs:
crates/quantum/src/protocols.rs:
crates/quantum/src/qkd.rs:
crates/quantum/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
