/root/repo/target/debug/deps/qntn_bench-d5d6763c6d7a30c5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqntn_bench-d5d6763c6d7a30c5.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqntn_bench-d5d6763c6d7a30c5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
