/root/repo/target/debug/deps/properties-f330d2be771cf968.d: crates/net/tests/properties.rs

/root/repo/target/debug/deps/properties-f330d2be771cf968: crates/net/tests/properties.rs

crates/net/tests/properties.rs:
