/root/repo/target/debug/deps/properties-4a4e2ccc13e65929.d: crates/channel/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4a4e2ccc13e65929.rmeta: crates/channel/tests/properties.rs Cargo.toml

crates/channel/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
