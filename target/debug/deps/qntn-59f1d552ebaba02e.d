/root/repo/target/debug/deps/qntn-59f1d552ebaba02e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqntn-59f1d552ebaba02e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
