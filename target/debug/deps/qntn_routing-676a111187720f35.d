/root/repo/target/debug/deps/qntn_routing-676a111187720f35.d: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

/root/repo/target/debug/deps/libqntn_routing-676a111187720f35.rlib: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

/root/repo/target/debug/deps/libqntn_routing-676a111187720f35.rmeta: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

crates/routing/src/lib.rs:
crates/routing/src/bellman_ford.rs:
crates/routing/src/dijkstra.rs:
crates/routing/src/disjoint.rs:
crates/routing/src/graph.rs:
crates/routing/src/metrics.rs:
crates/routing/src/table.rs:
