/root/repo/target/debug/deps/tables-9f78b2494d0b3c07.d: crates/bench/benches/tables.rs

/root/repo/target/debug/deps/tables-9f78b2494d0b3c07: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
