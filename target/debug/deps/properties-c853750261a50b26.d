/root/repo/target/debug/deps/properties-c853750261a50b26.d: crates/geo/tests/properties.rs

/root/repo/target/debug/deps/properties-c853750261a50b26: crates/geo/tests/properties.rs

crates/geo/tests/properties.rs:
