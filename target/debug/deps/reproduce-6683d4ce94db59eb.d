/root/repo/target/debug/deps/reproduce-6683d4ce94db59eb.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-6683d4ce94db59eb: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
