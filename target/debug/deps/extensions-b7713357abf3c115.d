/root/repo/target/debug/deps/extensions-b7713357abf3c115.d: crates/bench/benches/extensions.rs

/root/repo/target/debug/deps/extensions-b7713357abf3c115: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
