/root/repo/target/debug/deps/rayon-dbf3b60807497a77.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-dbf3b60807497a77.rlib: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-dbf3b60807497a77.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
