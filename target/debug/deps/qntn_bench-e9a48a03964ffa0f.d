/root/repo/target/debug/deps/qntn_bench-e9a48a03964ffa0f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/qntn_bench-e9a48a03964ffa0f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
