/root/repo/target/debug/deps/qntn_channel-0b585bf52adf7168.d: crates/channel/src/lib.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fiber.rs crates/channel/src/fso.rs crates/channel/src/params.rs crates/channel/src/turbulence.rs crates/channel/src/units.rs crates/channel/src/weather.rs Cargo.toml

/root/repo/target/debug/deps/libqntn_channel-0b585bf52adf7168.rmeta: crates/channel/src/lib.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fiber.rs crates/channel/src/fso.rs crates/channel/src/params.rs crates/channel/src/turbulence.rs crates/channel/src/units.rs crates/channel/src/weather.rs Cargo.toml

crates/channel/src/lib.rs:
crates/channel/src/atmosphere.rs:
crates/channel/src/budget.rs:
crates/channel/src/fiber.rs:
crates/channel/src/fso.rs:
crates/channel/src/params.rs:
crates/channel/src/turbulence.rs:
crates/channel/src/units.rs:
crates/channel/src/weather.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
