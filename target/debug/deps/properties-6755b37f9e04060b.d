/root/repo/target/debug/deps/properties-6755b37f9e04060b.d: crates/orbit/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6755b37f9e04060b.rmeta: crates/orbit/tests/properties.rs Cargo.toml

crates/orbit/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
