/root/repo/target/debug/deps/properties-443cacb05edb1a12.d: crates/quantum/tests/properties.rs

/root/repo/target/debug/deps/properties-443cacb05edb1a12: crates/quantum/tests/properties.rs

crates/quantum/tests/properties.rs:
