/root/repo/target/debug/deps/proptest-37784e4d60a0b2cb.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-37784e4d60a0b2cb.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-37784e4d60a0b2cb.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
