/root/repo/target/debug/deps/figures-7921615410ca9fba.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-7921615410ca9fba: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
