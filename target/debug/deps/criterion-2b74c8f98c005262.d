/root/repo/target/debug/deps/criterion-2b74c8f98c005262.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-2b74c8f98c005262: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
