/root/repo/target/debug/deps/properties-14fc7411981138d7.d: crates/routing/tests/properties.rs

/root/repo/target/debug/deps/properties-14fc7411981138d7: crates/routing/tests/properties.rs

crates/routing/tests/properties.rs:
