/root/repo/target/debug/deps/qntn_routing-d899464509ddd9d7.d: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

/root/repo/target/debug/deps/qntn_routing-d899464509ddd9d7: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

crates/routing/src/lib.rs:
crates/routing/src/bellman_ford.rs:
crates/routing/src/dijkstra.rs:
crates/routing/src/disjoint.rs:
crates/routing/src/graph.rs:
crates/routing/src/metrics.rs:
crates/routing/src/table.rs:
