/root/repo/target/debug/deps/synthetic_regions-3f2c757540c8fad4.d: tests/synthetic_regions.rs

/root/repo/target/debug/deps/synthetic_regions-3f2c757540c8fad4: tests/synthetic_regions.rs

tests/synthetic_regions.rs:
