/root/repo/target/debug/deps/full_reproduction-d3e805ae17ba8209.d: tests/full_reproduction.rs

/root/repo/target/debug/deps/full_reproduction-d3e805ae17ba8209: tests/full_reproduction.rs

tests/full_reproduction.rs:
