/root/repo/target/debug/deps/qntn_quantum-40ef306f5af61be7.d: crates/quantum/src/lib.rs crates/quantum/src/channels.rs crates/quantum/src/choi.rs crates/quantum/src/complex.rs crates/quantum/src/eigen.rs crates/quantum/src/fidelity.rs crates/quantum/src/gates.rs crates/quantum/src/matrix.rs crates/quantum/src/nonlocality.rs crates/quantum/src/protocols.rs crates/quantum/src/qkd.rs crates/quantum/src/state.rs

/root/repo/target/debug/deps/libqntn_quantum-40ef306f5af61be7.rlib: crates/quantum/src/lib.rs crates/quantum/src/channels.rs crates/quantum/src/choi.rs crates/quantum/src/complex.rs crates/quantum/src/eigen.rs crates/quantum/src/fidelity.rs crates/quantum/src/gates.rs crates/quantum/src/matrix.rs crates/quantum/src/nonlocality.rs crates/quantum/src/protocols.rs crates/quantum/src/qkd.rs crates/quantum/src/state.rs

/root/repo/target/debug/deps/libqntn_quantum-40ef306f5af61be7.rmeta: crates/quantum/src/lib.rs crates/quantum/src/channels.rs crates/quantum/src/choi.rs crates/quantum/src/complex.rs crates/quantum/src/eigen.rs crates/quantum/src/fidelity.rs crates/quantum/src/gates.rs crates/quantum/src/matrix.rs crates/quantum/src/nonlocality.rs crates/quantum/src/protocols.rs crates/quantum/src/qkd.rs crates/quantum/src/state.rs

crates/quantum/src/lib.rs:
crates/quantum/src/channels.rs:
crates/quantum/src/choi.rs:
crates/quantum/src/complex.rs:
crates/quantum/src/eigen.rs:
crates/quantum/src/fidelity.rs:
crates/quantum/src/gates.rs:
crates/quantum/src/matrix.rs:
crates/quantum/src/nonlocality.rs:
crates/quantum/src/protocols.rs:
crates/quantum/src/qkd.rs:
crates/quantum/src/state.rs:
