/root/repo/target/debug/deps/proptest-7bf7614e5fa943a5.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/debug/deps/proptest-7bf7614e5fa943a5: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
