/root/repo/target/debug/deps/paper_invariants-68fc75c92f78179b.d: tests/paper_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_invariants-68fc75c92f78179b.rmeta: tests/paper_invariants.rs Cargo.toml

tests/paper_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
