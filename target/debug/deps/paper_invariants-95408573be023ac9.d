/root/repo/target/debug/deps/paper_invariants-95408573be023ac9.d: tests/paper_invariants.rs

/root/repo/target/debug/deps/paper_invariants-95408573be023ac9: tests/paper_invariants.rs

tests/paper_invariants.rs:
