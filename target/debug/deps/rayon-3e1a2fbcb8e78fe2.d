/root/repo/target/debug/deps/rayon-3e1a2fbcb8e78fe2.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-3e1a2fbcb8e78fe2: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
