/root/repo/target/debug/deps/extension_invariants-b357a8650a707f53.d: tests/extension_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libextension_invariants-b357a8650a707f53.rmeta: tests/extension_invariants.rs Cargo.toml

tests/extension_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
