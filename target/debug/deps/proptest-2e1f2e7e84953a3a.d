/root/repo/target/debug/deps/proptest-2e1f2e7e84953a3a.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2e1f2e7e84953a3a.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
