/root/repo/target/debug/deps/properties-41b17e99b2960d83.d: crates/channel/tests/properties.rs

/root/repo/target/debug/deps/properties-41b17e99b2960d83: crates/channel/tests/properties.rs

crates/channel/tests/properties.rs:
