/root/repo/target/debug/deps/properties-0dfb097a65890a11.d: crates/quantum/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0dfb097a65890a11.rmeta: crates/quantum/tests/properties.rs Cargo.toml

crates/quantum/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
