/root/repo/target/debug/deps/qntn_bench-4bc39a6114adf4ad.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqntn_bench-4bc39a6114adf4ad.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
