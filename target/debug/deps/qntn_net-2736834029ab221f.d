/root/repo/target/debug/deps/qntn_net-2736834029ab221f.d: crates/net/src/lib.rs crates/net/src/capacity.rs crates/net/src/coverage.rs crates/net/src/entanglement.rs crates/net/src/events.rs crates/net/src/heralded.rs crates/net/src/host.rs crates/net/src/linkeval.rs crates/net/src/requests.rs crates/net/src/simulator.rs crates/net/src/snapshot.rs crates/net/src/sweep_engine.rs

/root/repo/target/debug/deps/libqntn_net-2736834029ab221f.rlib: crates/net/src/lib.rs crates/net/src/capacity.rs crates/net/src/coverage.rs crates/net/src/entanglement.rs crates/net/src/events.rs crates/net/src/heralded.rs crates/net/src/host.rs crates/net/src/linkeval.rs crates/net/src/requests.rs crates/net/src/simulator.rs crates/net/src/snapshot.rs crates/net/src/sweep_engine.rs

/root/repo/target/debug/deps/libqntn_net-2736834029ab221f.rmeta: crates/net/src/lib.rs crates/net/src/capacity.rs crates/net/src/coverage.rs crates/net/src/entanglement.rs crates/net/src/events.rs crates/net/src/heralded.rs crates/net/src/host.rs crates/net/src/linkeval.rs crates/net/src/requests.rs crates/net/src/simulator.rs crates/net/src/snapshot.rs crates/net/src/sweep_engine.rs

crates/net/src/lib.rs:
crates/net/src/capacity.rs:
crates/net/src/coverage.rs:
crates/net/src/entanglement.rs:
crates/net/src/events.rs:
crates/net/src/heralded.rs:
crates/net/src/host.rs:
crates/net/src/linkeval.rs:
crates/net/src/requests.rs:
crates/net/src/simulator.rs:
crates/net/src/snapshot.rs:
crates/net/src/sweep_engine.rs:
