/root/repo/target/release/deps/qntn_core-bae728569c222ce7.d: crates/core/src/lib.rs crates/core/src/architecture.rs crates/core/src/compare.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/congestion.rs crates/core/src/experiments/demand.rs crates/core/src/experiments/fidelity.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fleet.rs crates/core/src/experiments/hybrid.rs crates/core/src/experiments/night.rs crates/core/src/experiments/purified_qkd.rs crates/core/src/experiments/qkd.rs crates/core/src/experiments/sensitivity.rs crates/core/src/experiments/stability.rs crates/core/src/experiments/survivability.rs crates/core/src/experiments/sweep.rs crates/core/src/experiments/visibility.rs crates/core/src/report.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libqntn_core-bae728569c222ce7.rlib: crates/core/src/lib.rs crates/core/src/architecture.rs crates/core/src/compare.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/congestion.rs crates/core/src/experiments/demand.rs crates/core/src/experiments/fidelity.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fleet.rs crates/core/src/experiments/hybrid.rs crates/core/src/experiments/night.rs crates/core/src/experiments/purified_qkd.rs crates/core/src/experiments/qkd.rs crates/core/src/experiments/sensitivity.rs crates/core/src/experiments/stability.rs crates/core/src/experiments/survivability.rs crates/core/src/experiments/sweep.rs crates/core/src/experiments/visibility.rs crates/core/src/report.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libqntn_core-bae728569c222ce7.rmeta: crates/core/src/lib.rs crates/core/src/architecture.rs crates/core/src/compare.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/congestion.rs crates/core/src/experiments/demand.rs crates/core/src/experiments/fidelity.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fleet.rs crates/core/src/experiments/hybrid.rs crates/core/src/experiments/night.rs crates/core/src/experiments/purified_qkd.rs crates/core/src/experiments/qkd.rs crates/core/src/experiments/sensitivity.rs crates/core/src/experiments/stability.rs crates/core/src/experiments/survivability.rs crates/core/src/experiments/sweep.rs crates/core/src/experiments/visibility.rs crates/core/src/report.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/architecture.rs:
crates/core/src/compare.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/congestion.rs:
crates/core/src/experiments/demand.rs:
crates/core/src/experiments/fidelity.rs:
crates/core/src/experiments/fig5.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7.rs:
crates/core/src/experiments/fig8.rs:
crates/core/src/experiments/fleet.rs:
crates/core/src/experiments/hybrid.rs:
crates/core/src/experiments/night.rs:
crates/core/src/experiments/purified_qkd.rs:
crates/core/src/experiments/qkd.rs:
crates/core/src/experiments/sensitivity.rs:
crates/core/src/experiments/stability.rs:
crates/core/src/experiments/survivability.rs:
crates/core/src/experiments/sweep.rs:
crates/core/src/experiments/visibility.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
