/root/repo/target/release/deps/rayon-17bc2e32d4a8db49.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/rayon-17bc2e32d4a8db49: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
