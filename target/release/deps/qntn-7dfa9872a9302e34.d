/root/repo/target/release/deps/qntn-7dfa9872a9302e34.d: src/lib.rs

/root/repo/target/release/deps/libqntn-7dfa9872a9302e34.rlib: src/lib.rs

/root/repo/target/release/deps/libqntn-7dfa9872a9302e34.rmeta: src/lib.rs

src/lib.rs:
