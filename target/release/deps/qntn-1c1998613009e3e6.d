/root/repo/target/release/deps/qntn-1c1998613009e3e6.d: src/lib.rs

/root/repo/target/release/deps/qntn-1c1998613009e3e6: src/lib.rs

src/lib.rs:
