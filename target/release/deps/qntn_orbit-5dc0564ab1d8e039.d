/root/repo/target/release/deps/qntn_orbit-5dc0564ab1d8e039.d: crates/orbit/src/lib.rs crates/orbit/src/contact.rs crates/orbit/src/elements.rs crates/orbit/src/ephemeris.rs crates/orbit/src/kepler.rs crates/orbit/src/numerical.rs crates/orbit/src/propagator.rs crates/orbit/src/sun.rs crates/orbit/src/visibility.rs crates/orbit/src/walker.rs

/root/repo/target/release/deps/qntn_orbit-5dc0564ab1d8e039: crates/orbit/src/lib.rs crates/orbit/src/contact.rs crates/orbit/src/elements.rs crates/orbit/src/ephemeris.rs crates/orbit/src/kepler.rs crates/orbit/src/numerical.rs crates/orbit/src/propagator.rs crates/orbit/src/sun.rs crates/orbit/src/visibility.rs crates/orbit/src/walker.rs

crates/orbit/src/lib.rs:
crates/orbit/src/contact.rs:
crates/orbit/src/elements.rs:
crates/orbit/src/ephemeris.rs:
crates/orbit/src/kepler.rs:
crates/orbit/src/numerical.rs:
crates/orbit/src/propagator.rs:
crates/orbit/src/sun.rs:
crates/orbit/src/visibility.rs:
crates/orbit/src/walker.rs:
