/root/repo/target/release/deps/proptest-be1a636f3329bd30.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/release/deps/libproptest-be1a636f3329bd30.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/release/deps/libproptest-be1a636f3329bd30.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
