/root/repo/target/release/deps/qntn_quantum-e0af58a0bc09c4e9.d: crates/quantum/src/lib.rs crates/quantum/src/channels.rs crates/quantum/src/choi.rs crates/quantum/src/complex.rs crates/quantum/src/eigen.rs crates/quantum/src/fidelity.rs crates/quantum/src/gates.rs crates/quantum/src/matrix.rs crates/quantum/src/nonlocality.rs crates/quantum/src/protocols.rs crates/quantum/src/qkd.rs crates/quantum/src/state.rs

/root/repo/target/release/deps/libqntn_quantum-e0af58a0bc09c4e9.rlib: crates/quantum/src/lib.rs crates/quantum/src/channels.rs crates/quantum/src/choi.rs crates/quantum/src/complex.rs crates/quantum/src/eigen.rs crates/quantum/src/fidelity.rs crates/quantum/src/gates.rs crates/quantum/src/matrix.rs crates/quantum/src/nonlocality.rs crates/quantum/src/protocols.rs crates/quantum/src/qkd.rs crates/quantum/src/state.rs

/root/repo/target/release/deps/libqntn_quantum-e0af58a0bc09c4e9.rmeta: crates/quantum/src/lib.rs crates/quantum/src/channels.rs crates/quantum/src/choi.rs crates/quantum/src/complex.rs crates/quantum/src/eigen.rs crates/quantum/src/fidelity.rs crates/quantum/src/gates.rs crates/quantum/src/matrix.rs crates/quantum/src/nonlocality.rs crates/quantum/src/protocols.rs crates/quantum/src/qkd.rs crates/quantum/src/state.rs

crates/quantum/src/lib.rs:
crates/quantum/src/channels.rs:
crates/quantum/src/choi.rs:
crates/quantum/src/complex.rs:
crates/quantum/src/eigen.rs:
crates/quantum/src/fidelity.rs:
crates/quantum/src/gates.rs:
crates/quantum/src/matrix.rs:
crates/quantum/src/nonlocality.rs:
crates/quantum/src/protocols.rs:
crates/quantum/src/qkd.rs:
crates/quantum/src/state.rs:
