/root/repo/target/release/deps/properties-d4032f581ad3e20f.d: crates/routing/tests/properties.rs

/root/repo/target/release/deps/properties-d4032f581ad3e20f: crates/routing/tests/properties.rs

crates/routing/tests/properties.rs:
