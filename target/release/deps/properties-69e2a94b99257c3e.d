/root/repo/target/release/deps/properties-69e2a94b99257c3e.d: crates/channel/tests/properties.rs

/root/repo/target/release/deps/properties-69e2a94b99257c3e: crates/channel/tests/properties.rs

crates/channel/tests/properties.rs:
