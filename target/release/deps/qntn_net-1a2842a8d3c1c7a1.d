/root/repo/target/release/deps/qntn_net-1a2842a8d3c1c7a1.d: crates/net/src/lib.rs crates/net/src/capacity.rs crates/net/src/coverage.rs crates/net/src/entanglement.rs crates/net/src/events.rs crates/net/src/heralded.rs crates/net/src/host.rs crates/net/src/linkeval.rs crates/net/src/requests.rs crates/net/src/simulator.rs crates/net/src/snapshot.rs crates/net/src/sweep_engine.rs

/root/repo/target/release/deps/libqntn_net-1a2842a8d3c1c7a1.rlib: crates/net/src/lib.rs crates/net/src/capacity.rs crates/net/src/coverage.rs crates/net/src/entanglement.rs crates/net/src/events.rs crates/net/src/heralded.rs crates/net/src/host.rs crates/net/src/linkeval.rs crates/net/src/requests.rs crates/net/src/simulator.rs crates/net/src/snapshot.rs crates/net/src/sweep_engine.rs

/root/repo/target/release/deps/libqntn_net-1a2842a8d3c1c7a1.rmeta: crates/net/src/lib.rs crates/net/src/capacity.rs crates/net/src/coverage.rs crates/net/src/entanglement.rs crates/net/src/events.rs crates/net/src/heralded.rs crates/net/src/host.rs crates/net/src/linkeval.rs crates/net/src/requests.rs crates/net/src/simulator.rs crates/net/src/snapshot.rs crates/net/src/sweep_engine.rs

crates/net/src/lib.rs:
crates/net/src/capacity.rs:
crates/net/src/coverage.rs:
crates/net/src/entanglement.rs:
crates/net/src/events.rs:
crates/net/src/heralded.rs:
crates/net/src/host.rs:
crates/net/src/linkeval.rs:
crates/net/src/requests.rs:
crates/net/src/simulator.rs:
crates/net/src/snapshot.rs:
crates/net/src/sweep_engine.rs:
