/root/repo/target/release/deps/criterion-bed34167727561b7.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-bed34167727561b7: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
