/root/repo/target/release/deps/properties-4253d0df66af780e.d: crates/geo/tests/properties.rs

/root/repo/target/release/deps/properties-4253d0df66af780e: crates/geo/tests/properties.rs

crates/geo/tests/properties.rs:
