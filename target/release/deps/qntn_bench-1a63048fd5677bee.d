/root/repo/target/release/deps/qntn_bench-1a63048fd5677bee.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqntn_bench-1a63048fd5677bee.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqntn_bench-1a63048fd5677bee.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
