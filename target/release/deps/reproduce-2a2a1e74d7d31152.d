/root/repo/target/release/deps/reproduce-2a2a1e74d7d31152.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-2a2a1e74d7d31152: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
