/root/repo/target/release/deps/microbench-01a94a85f6a455ad.d: crates/bench/benches/microbench.rs

/root/repo/target/release/deps/microbench-01a94a85f6a455ad: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
