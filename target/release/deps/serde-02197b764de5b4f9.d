/root/repo/target/release/deps/serde-02197b764de5b4f9.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-02197b764de5b4f9: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
