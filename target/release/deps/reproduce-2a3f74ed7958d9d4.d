/root/repo/target/release/deps/reproduce-2a3f74ed7958d9d4.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-2a3f74ed7958d9d4: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
