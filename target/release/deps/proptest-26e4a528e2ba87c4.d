/root/repo/target/release/deps/proptest-26e4a528e2ba87c4.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

/root/repo/target/release/deps/proptest-26e4a528e2ba87c4: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
