/root/repo/target/release/deps/qntn_geo-3bff7cc0e14bb6ad.d: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

/root/repo/target/release/deps/libqntn_geo-3bff7cc0e14bb6ad.rlib: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

/root/repo/target/release/deps/libqntn_geo-3bff7cc0e14bb6ad.rmeta: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

crates/geo/src/lib.rs:
crates/geo/src/distance.rs:
crates/geo/src/ellipsoid.rs:
crates/geo/src/frames.rs:
crates/geo/src/geodetic.rs:
crates/geo/src/look.rs:
crates/geo/src/time.rs:
crates/geo/src/vec3.rs:
