/root/repo/target/release/deps/determinism-5a20db370a63aa6b.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-5a20db370a63aa6b: tests/determinism.rs

tests/determinism.rs:
