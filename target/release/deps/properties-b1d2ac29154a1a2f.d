/root/repo/target/release/deps/properties-b1d2ac29154a1a2f.d: crates/orbit/tests/properties.rs

/root/repo/target/release/deps/properties-b1d2ac29154a1a2f: crates/orbit/tests/properties.rs

crates/orbit/tests/properties.rs:
