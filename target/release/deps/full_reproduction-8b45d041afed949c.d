/root/repo/target/release/deps/full_reproduction-8b45d041afed949c.d: tests/full_reproduction.rs

/root/repo/target/release/deps/full_reproduction-8b45d041afed949c: tests/full_reproduction.rs

tests/full_reproduction.rs:
