/root/repo/target/release/deps/rand-6cd91df9aa28a601.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-6cd91df9aa28a601.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-6cd91df9aa28a601.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
