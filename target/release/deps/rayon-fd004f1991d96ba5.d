/root/repo/target/release/deps/rayon-fd004f1991d96ba5.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-fd004f1991d96ba5.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-fd004f1991d96ba5.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
