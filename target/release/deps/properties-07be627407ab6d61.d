/root/repo/target/release/deps/properties-07be627407ab6d61.d: crates/quantum/tests/properties.rs

/root/repo/target/release/deps/properties-07be627407ab6d61: crates/quantum/tests/properties.rs

crates/quantum/tests/properties.rs:
