/root/repo/target/release/deps/qntn_bench-7d4ddc4767016d27.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/qntn_bench-7d4ddc4767016d27: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
