/root/repo/target/release/deps/criterion-790654c4eed5014c.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-790654c4eed5014c.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-790654c4eed5014c.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
