/root/repo/target/release/deps/serde_derive-a082cbcd81e0e9f5.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-a082cbcd81e0e9f5.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
