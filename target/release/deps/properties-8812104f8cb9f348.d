/root/repo/target/release/deps/properties-8812104f8cb9f348.d: crates/net/tests/properties.rs

/root/repo/target/release/deps/properties-8812104f8cb9f348: crates/net/tests/properties.rs

crates/net/tests/properties.rs:
