/root/repo/target/release/deps/paper_invariants-ffa54c9ba8373f53.d: tests/paper_invariants.rs

/root/repo/target/release/deps/paper_invariants-ffa54c9ba8373f53: tests/paper_invariants.rs

tests/paper_invariants.rs:
