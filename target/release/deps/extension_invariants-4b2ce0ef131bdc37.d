/root/repo/target/release/deps/extension_invariants-4b2ce0ef131bdc37.d: tests/extension_invariants.rs

/root/repo/target/release/deps/extension_invariants-4b2ce0ef131bdc37: tests/extension_invariants.rs

tests/extension_invariants.rs:
