/root/repo/target/release/deps/qntn_geo-dba2c7b8a4b7f3c7.d: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

/root/repo/target/release/deps/qntn_geo-dba2c7b8a4b7f3c7: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

crates/geo/src/lib.rs:
crates/geo/src/distance.rs:
crates/geo/src/ellipsoid.rs:
crates/geo/src/frames.rs:
crates/geo/src/geodetic.rs:
crates/geo/src/look.rs:
crates/geo/src/time.rs:
crates/geo/src/vec3.rs:
