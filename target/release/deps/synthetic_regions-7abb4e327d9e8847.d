/root/repo/target/release/deps/synthetic_regions-7abb4e327d9e8847.d: tests/synthetic_regions.rs

/root/repo/target/release/deps/synthetic_regions-7abb4e327d9e8847: tests/synthetic_regions.rs

tests/synthetic_regions.rs:
