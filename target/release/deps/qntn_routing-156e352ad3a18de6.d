/root/repo/target/release/deps/qntn_routing-156e352ad3a18de6.d: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

/root/repo/target/release/deps/libqntn_routing-156e352ad3a18de6.rlib: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

/root/repo/target/release/deps/libqntn_routing-156e352ad3a18de6.rmeta: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

crates/routing/src/lib.rs:
crates/routing/src/bellman_ford.rs:
crates/routing/src/dijkstra.rs:
crates/routing/src/disjoint.rs:
crates/routing/src/graph.rs:
crates/routing/src/metrics.rs:
crates/routing/src/table.rs:
