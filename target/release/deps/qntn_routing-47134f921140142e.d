/root/repo/target/release/deps/qntn_routing-47134f921140142e.d: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

/root/repo/target/release/deps/libqntn_routing-47134f921140142e.rlib: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

/root/repo/target/release/deps/libqntn_routing-47134f921140142e.rmeta: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

crates/routing/src/lib.rs:
crates/routing/src/bellman_ford.rs:
crates/routing/src/dijkstra.rs:
crates/routing/src/disjoint.rs:
crates/routing/src/graph.rs:
crates/routing/src/metrics.rs:
crates/routing/src/table.rs:
