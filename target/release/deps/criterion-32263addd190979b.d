/root/repo/target/release/deps/criterion-32263addd190979b.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-32263addd190979b.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-32263addd190979b.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
