/root/repo/target/release/deps/qntn_bench-c0b2f8edbbcc48f6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqntn_bench-c0b2f8edbbcc48f6.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqntn_bench-c0b2f8edbbcc48f6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
