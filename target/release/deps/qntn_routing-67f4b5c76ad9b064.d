/root/repo/target/release/deps/qntn_routing-67f4b5c76ad9b064.d: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

/root/repo/target/release/deps/qntn_routing-67f4b5c76ad9b064: crates/routing/src/lib.rs crates/routing/src/bellman_ford.rs crates/routing/src/dijkstra.rs crates/routing/src/disjoint.rs crates/routing/src/graph.rs crates/routing/src/metrics.rs crates/routing/src/table.rs

crates/routing/src/lib.rs:
crates/routing/src/bellman_ford.rs:
crates/routing/src/dijkstra.rs:
crates/routing/src/disjoint.rs:
crates/routing/src/graph.rs:
crates/routing/src/metrics.rs:
crates/routing/src/table.rs:
