/root/repo/target/release/deps/qntn_net-9c23b22a300484f8.d: crates/net/src/lib.rs crates/net/src/capacity.rs crates/net/src/coverage.rs crates/net/src/entanglement.rs crates/net/src/events.rs crates/net/src/heralded.rs crates/net/src/host.rs crates/net/src/linkeval.rs crates/net/src/requests.rs crates/net/src/simulator.rs crates/net/src/snapshot.rs

/root/repo/target/release/deps/qntn_net-9c23b22a300484f8: crates/net/src/lib.rs crates/net/src/capacity.rs crates/net/src/coverage.rs crates/net/src/entanglement.rs crates/net/src/events.rs crates/net/src/heralded.rs crates/net/src/host.rs crates/net/src/linkeval.rs crates/net/src/requests.rs crates/net/src/simulator.rs crates/net/src/snapshot.rs

crates/net/src/lib.rs:
crates/net/src/capacity.rs:
crates/net/src/coverage.rs:
crates/net/src/entanglement.rs:
crates/net/src/events.rs:
crates/net/src/heralded.rs:
crates/net/src/host.rs:
crates/net/src/linkeval.rs:
crates/net/src/requests.rs:
crates/net/src/simulator.rs:
crates/net/src/snapshot.rs:
