/root/repo/target/release/deps/qntn_geo-97f3c3b8d906e49c.d: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

/root/repo/target/release/deps/libqntn_geo-97f3c3b8d906e49c.rlib: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

/root/repo/target/release/deps/libqntn_geo-97f3c3b8d906e49c.rmeta: crates/geo/src/lib.rs crates/geo/src/distance.rs crates/geo/src/ellipsoid.rs crates/geo/src/frames.rs crates/geo/src/geodetic.rs crates/geo/src/look.rs crates/geo/src/time.rs crates/geo/src/vec3.rs

crates/geo/src/lib.rs:
crates/geo/src/distance.rs:
crates/geo/src/ellipsoid.rs:
crates/geo/src/frames.rs:
crates/geo/src/geodetic.rs:
crates/geo/src/look.rs:
crates/geo/src/time.rs:
crates/geo/src/vec3.rs:
