/root/repo/target/release/deps/rayon-1191e18356109fd5.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-1191e18356109fd5.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-1191e18356109fd5.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
