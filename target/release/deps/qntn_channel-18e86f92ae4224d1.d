/root/repo/target/release/deps/qntn_channel-18e86f92ae4224d1.d: crates/channel/src/lib.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fiber.rs crates/channel/src/fso.rs crates/channel/src/params.rs crates/channel/src/turbulence.rs crates/channel/src/units.rs crates/channel/src/weather.rs

/root/repo/target/release/deps/libqntn_channel-18e86f92ae4224d1.rlib: crates/channel/src/lib.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fiber.rs crates/channel/src/fso.rs crates/channel/src/params.rs crates/channel/src/turbulence.rs crates/channel/src/units.rs crates/channel/src/weather.rs

/root/repo/target/release/deps/libqntn_channel-18e86f92ae4224d1.rmeta: crates/channel/src/lib.rs crates/channel/src/atmosphere.rs crates/channel/src/budget.rs crates/channel/src/fiber.rs crates/channel/src/fso.rs crates/channel/src/params.rs crates/channel/src/turbulence.rs crates/channel/src/units.rs crates/channel/src/weather.rs

crates/channel/src/lib.rs:
crates/channel/src/atmosphere.rs:
crates/channel/src/budget.rs:
crates/channel/src/fiber.rs:
crates/channel/src/fso.rs:
crates/channel/src/params.rs:
crates/channel/src/turbulence.rs:
crates/channel/src/units.rs:
crates/channel/src/weather.rs:
