/root/repo/target/release/deps/reproduce-c80dd2d54fd54f14.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-c80dd2d54fd54f14: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
