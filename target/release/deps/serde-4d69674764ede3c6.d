/root/repo/target/release/deps/serde-4d69674764ede3c6.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-4d69674764ede3c6.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-4d69674764ede3c6.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
