/root/repo/target/release/deps/rand-70ffd356fb8b8790.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-70ffd356fb8b8790.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-70ffd356fb8b8790.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
