/root/repo/target/release/deps/rand-5fc5a28d8a9b36d5.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-5fc5a28d8a9b36d5: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
