/root/repo/target/release/examples/repeater_chain-60d64f176446eb83.d: examples/repeater_chain.rs

/root/repo/target/release/examples/repeater_chain-60d64f176446eb83: examples/repeater_chain.rs

examples/repeater_chain.rs:
