/root/repo/target/release/examples/link_budget-a427444b250855e4.d: examples/link_budget.rs

/root/repo/target/release/examples/link_budget-a427444b250855e4: examples/link_budget.rs

examples/link_budget.rs:
