/root/repo/target/release/examples/quickstart-cd45d05d9fb918a2.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-cd45d05d9fb918a2: examples/quickstart.rs

examples/quickstart.rs:
