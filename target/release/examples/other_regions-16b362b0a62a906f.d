/root/repo/target/release/examples/other_regions-16b362b0a62a906f.d: examples/other_regions.rs

/root/repo/target/release/examples/other_regions-16b362b0a62a906f: examples/other_regions.rs

examples/other_regions.rs:
