/root/repo/target/release/examples/night_operations-a6ddc377f9cda1bd.d: examples/night_operations.rs

/root/repo/target/release/examples/night_operations-a6ddc377f9cda1bd: examples/night_operations.rs

examples/night_operations.rs:
