/root/repo/target/release/examples/entanglement_routing-602b0bd788e16080.d: examples/entanglement_routing.rs

/root/repo/target/release/examples/entanglement_routing-602b0bd788e16080: examples/entanglement_routing.rs

examples/entanglement_routing.rs:
