/root/repo/target/release/examples/satellite_passes-96c44c28c2a684a9.d: examples/satellite_passes.rs

/root/repo/target/release/examples/satellite_passes-96c44c28c2a684a9: examples/satellite_passes.rs

examples/satellite_passes.rs:
