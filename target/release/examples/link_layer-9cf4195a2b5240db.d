/root/repo/target/release/examples/link_layer-9cf4195a2b5240db.d: examples/link_layer.rs

/root/repo/target/release/examples/link_layer-9cf4195a2b5240db: examples/link_layer.rs

examples/link_layer.rs:
