/root/repo/target/release/examples/weather_sensitivity-493a18538a32e585.d: examples/weather_sensitivity.rs

/root/repo/target/release/examples/weather_sensitivity-493a18538a32e585: examples/weather_sensitivity.rs

examples/weather_sensitivity.rs:
