//! The QNTN scenario: every ground node of the paper's Table I, the HAP,
//! and the paper's global parameters.

use qntn_geo::Geodetic;
use serde::{Deserialize, Serialize};

/// Ground elevation assigned to each city's nodes (Table I gives no
/// altitudes; these are the approximate terrain elevations).
pub const TTU_GROUND_ALT_M: f64 = 300.0;
pub const ORNL_GROUND_ALT_M: f64 = 250.0;
pub const EPB_GROUND_ALT_M: f64 = 200.0;

/// The HAP's position (paper Section II-C): (35.6692, −85.0662) at 30 km.
pub const HAP_LAT_DEG: f64 = 35.6692;
pub const HAP_LON_DEG: f64 = -85.0662;
pub const HAP_ALT_M: f64 = 30_000.0;

/// Table I — Tennessee Tech University (5 nodes, engineering quad).
pub const TTU_NODES_DEG: [(f64, f64); 5] = [
    (36.1757, -85.5066),
    (36.1751, -85.5067),
    (36.1754, -85.5074),
    (36.1755, -85.5058),
    (36.1756, -85.5080),
];

/// Table I — Oak Ridge National Laboratory (11 nodes).
pub const ORNL_NODES_DEG: [(f64, f64); 11] = [
    (35.91, -84.3),
    (35.91, -84.303),
    (35.918, -84.304),
    (35.92, -84.321),
    (35.927, -84.313),
    (35.9238, -84.316),
    (35.9285, -84.31283),
    (35.9294, -84.3101),
    (35.9293, -84.3106),
    (35.9298, -84.3106),
    (35.9309, -84.308),
];

/// Table I — EPB commercial quantum network, Chattanooga (15 nodes).
pub const EPB_NODES_DEG: [(f64, f64); 15] = [
    (35.04159, -85.2799),
    (35.04169, -85.2801),
    (35.04179, -85.2803),
    (35.04189, -85.2805),
    (35.04199, -85.2807),
    (35.04051, -85.2806),
    (35.04061, -85.2807),
    (35.04071, -85.2808),
    (35.04081, -85.2809),
    (35.04091, -85.2810),
    (35.03971, -85.2810),
    (35.03981, -85.2811),
    (35.03991, -85.2812),
    (35.04001, -85.2813),
    (35.04011, -85.2814),
];

/// One local-area network of the scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lan {
    /// Short name ("TTU", "ORNL", "EPB").
    pub name: String,
    /// Node positions.
    pub nodes: Vec<Geodetic>,
}

/// The full QNTN scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Qntn {
    /// The three LANs, in the paper's order: TTU (0), ORNL (1), EPB (2).
    pub lans: Vec<Lan>,
    /// The HAP position for the air-ground architecture.
    pub hap: Geodetic,
}

impl Qntn {
    /// The paper's scenario, verbatim from Table I and Section II-C.
    pub fn standard() -> Qntn {
        let lan = |name: &str, coords: &[(f64, f64)], alt: f64| Lan {
            name: name.to_string(),
            nodes: coords
                .iter()
                .map(|&(lat, lon)| Geodetic::from_deg(lat, lon, alt))
                .collect(),
        };
        Qntn {
            lans: vec![
                lan("TTU", &TTU_NODES_DEG, TTU_GROUND_ALT_M),
                lan("ORNL", &ORNL_NODES_DEG, ORNL_GROUND_ALT_M),
                lan("EPB", &EPB_NODES_DEG, EPB_GROUND_ALT_M),
            ],
            hap: Geodetic::from_deg(HAP_LAT_DEG, HAP_LON_DEG, HAP_ALT_M),
        }
    }

    /// Total ground node count (paper: 5 + 11 + 15 = 31).
    pub fn node_count(&self) -> usize {
        self.lans.iter().map(|l| l.nodes.len()).sum()
    }

    /// Geodetic centroid of one LAN (zero altitude).
    pub fn lan_centroid(&self, lan: usize) -> Geodetic {
        let nodes = &self.lans[lan].nodes;
        let (mut lat, mut lon) = (0.0, 0.0);
        for n in nodes {
            lat += n.lat;
            lon += n.lon;
        }
        Geodetic::new(lat / nodes.len() as f64, lon / nodes.len() as f64, 0.0)
    }
}

/// Parameters for a synthetic multi-city scenario (the paper's stated goal
/// is to "pave the way for other networks to be built based on our
/// analysis"; this generator builds those other networks).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SyntheticRegion {
    /// Centre of the region.
    pub center_lat_deg: f64,
    pub center_lon_deg: f64,
    /// Radius within which city centres are placed, metres.
    pub region_radius_m: f64,
    /// Number of cities (LANs).
    pub cities: usize,
    /// Ground nodes per city.
    pub nodes_per_city: usize,
    /// Campus radius per city, metres (nodes scatter within it).
    pub campus_radius_m: f64,
    /// Ground altitude assigned to every node, metres.
    pub ground_alt_m: f64,
}

impl SyntheticRegion {
    /// A Tennessee-like default: 3 cities in a 100 km-radius region.
    pub fn tennessee_like() -> SyntheticRegion {
        SyntheticRegion {
            center_lat_deg: 35.7,
            center_lon_deg: -85.1,
            region_radius_m: 100_000.0,
            cities: 3,
            nodes_per_city: 8,
            campus_radius_m: 800.0,
            ground_alt_m: 300.0,
        }
    }

    /// Generate a scenario deterministically from `seed`. City centres are
    /// spread on a ring plus jitter (guaranteeing regional separation);
    /// nodes scatter uniformly inside each campus. The HAP is placed at the
    /// cities' centroid at 30 km.
    pub fn generate(&self, seed: u64) -> Qntn {
        assert!(
            self.cities >= 2,
            "a regional network needs at least two cities"
        );
        assert!(self.nodes_per_city >= 1);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let center = Geodetic::from_deg(self.center_lat_deg, self.center_lon_deg, 0.0);

        let mut lans = Vec::with_capacity(self.cities);
        let mut centres = Vec::with_capacity(self.cities);
        for c in 0..self.cities {
            // Ring placement with radial jitter keeps cities apart.
            let az = std::f64::consts::TAU * c as f64 / self.cities as f64 + 0.3 * (next() - 0.5);
            let radius = self.region_radius_m * (0.6 + 0.4 * next());
            let city = qntn_geo::destination(center, az, radius, &qntn_geo::WGS84);
            centres.push(city);
            let nodes = (0..self.nodes_per_city)
                .map(|_| {
                    let naz = std::f64::consts::TAU * next();
                    let nr = self.campus_radius_m * next().sqrt();
                    qntn_geo::destination(city, naz, nr, &qntn_geo::WGS84)
                        .with_alt(self.ground_alt_m)
                })
                .collect();
            lans.push(Lan {
                name: format!("CITY-{c}"),
                nodes,
            });
        }

        // HAP over the centroid of the city centres.
        let (mut lat, mut lon) = (0.0, 0.0);
        for c in &centres {
            lat += c.lat;
            lon += c.lon;
        }
        let n = centres.len() as f64;
        Qntn {
            lans,
            hap: Geodetic::new(lat / n, lon / n, HAP_ALT_M),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qntn_geo::{vincenty_m, WGS84};

    #[test]
    fn node_counts_match_table_i() {
        let q = Qntn::standard();
        assert_eq!(q.lans.len(), 3);
        assert_eq!(q.lans[0].nodes.len(), 5, "TTU");
        assert_eq!(q.lans[1].nodes.len(), 11, "ORNL");
        assert_eq!(q.lans[2].nodes.len(), 15, "EPB");
        assert_eq!(q.node_count(), 31);
    }

    #[test]
    fn lan_names() {
        let q = Qntn::standard();
        assert_eq!(q.lans[0].name, "TTU");
        assert_eq!(q.lans[1].name, "ORNL");
        assert_eq!(q.lans[2].name, "EPB");
    }

    #[test]
    fn lans_are_geographically_compact() {
        // Every LAN spans under 3 km — campus/lab scale (ORNL's Table I
        // nodes stretch ~2.2 km across the reservation).
        let q = Qntn::standard();
        for lan in &q.lans {
            for a in &lan.nodes {
                for b in &lan.nodes {
                    let d = vincenty_m(*a, *b, &WGS84).unwrap();
                    assert!(d < 3_000.0, "{}: {d}", lan.name);
                }
            }
        }
    }

    #[test]
    fn cities_are_regionally_separated() {
        let q = Qntn::standard();
        for i in 0..3 {
            for j in (i + 1)..3 {
                let d = vincenty_m(q.lan_centroid(i), q.lan_centroid(j), &WGS84).unwrap();
                assert!(
                    (90_000.0..160_000.0).contains(&d),
                    "{}-{}: {d}",
                    q.lans[i].name,
                    q.lans[j].name
                );
            }
        }
    }

    #[test]
    fn hap_position_matches_paper() {
        let q = Qntn::standard();
        assert!((q.hap.lat_deg() - 35.6692).abs() < 1e-9);
        assert!((q.hap.lon_deg() + 85.0662).abs() < 1e-9);
        assert_eq!(q.hap.alt_m, 30_000.0);
    }

    #[test]
    fn hap_is_roughly_central() {
        // The HAP sits within ~100 km of every city — that's what lets one
        // platform serve all three.
        let q = Qntn::standard();
        for lan in 0..3 {
            let d = vincenty_m(q.hap.with_alt(0.0), q.lan_centroid(lan), &WGS84).unwrap();
            assert!(d < 100_000.0, "LAN {lan}: {d}");
        }
    }

    #[test]
    fn synthetic_scenario_shape() {
        let q = SyntheticRegion::tennessee_like().generate(7);
        assert_eq!(q.lans.len(), 3);
        assert_eq!(q.node_count(), 24);
        // Cities regionally separated (tens of km), campuses compact.
        for i in 0..3 {
            for j in (i + 1)..3 {
                let d =
                    qntn_geo::haversine_m(q.lan_centroid(i), q.lan_centroid(j), &qntn_geo::WGS84);
                assert!(d > 30_000.0, "{i}-{j}: {d}");
            }
            for a in &q.lans[i].nodes {
                let d = qntn_geo::haversine_m(*a, q.lan_centroid(i), &qntn_geo::WGS84);
                assert!(d < 1_000.0, "campus spread {d}");
            }
        }
        // HAP altitude matches the paper's platform.
        assert_eq!(q.hap.alt_m, 30_000.0);
        // Deterministic.
        let q2 = SyntheticRegion::tennessee_like().generate(7);
        assert_eq!(q.node_count(), q2.node_count());
        assert!((q.hap.lat - q2.hap.lat).abs() < 1e-15);
        // Different seeds differ.
        let q3 = SyntheticRegion::tennessee_like().generate(8);
        assert!((q.hap.lat - q3.hap.lat).abs() > 1e-9);
    }

    #[test]
    fn synthetic_five_city_region_works_end_to_end() {
        // The generalization the paper gestures at: a 5-city region served
        // by the same architectures.
        let region = SyntheticRegion {
            cities: 5,
            nodes_per_city: 4,
            region_radius_m: 120_000.0,
            ..SyntheticRegion::tennessee_like()
        };
        let q = region.generate(11);
        assert_eq!(q.lans.len(), 5);
        let air = crate::architecture::AirGround::standard(&q);
        let r = crate::experiments::fidelity::FidelityExperiment::quick().run_air_ground(&air);
        // One central HAP may or may not reach all five cities above
        // threshold; the run must at least be structurally sound.
        assert!(r.served_percent >= 0.0 && r.served_percent <= 100.0);
        assert_eq!(air.sim().lan_count(), 5);
    }

    #[test]
    fn first_table_entry_values() {
        let q = Qntn::standard();
        assert!((q.lans[0].nodes[0].lat_deg() - 36.1757).abs() < 1e-9);
        assert!((q.lans[2].nodes[14].lon_deg() + 85.2814).abs() < 1e-9);
    }
}
