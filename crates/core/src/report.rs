//! Text and CSV rendering for the `reproduce` binary and the examples.

use crate::compare::ComparisonReport;
use crate::experiments::faults::FaultSweep;
use crate::experiments::fig5::FidelityCurve;
use crate::experiments::fig6::CoverageSweep;
use crate::experiments::overload::{OverloadPoint, OverloadSurface};
use crate::experiments::sweep::ConstellationSweep;
use crate::experiments::timeexp::{TimeexpPoint, TimeexpSweep};
use qntn_net::QuantumNetworkSim;
use qntn_routing::Graph;

/// Render the Fig. 5 curve as CSV (`eta,fidelity,fidelity_jozsa`).
pub fn fig5_csv(curve: &FidelityCurve) -> String {
    let mut out = String::from("eta,fidelity_sqrt,fidelity_jozsa\n");
    for p in &curve.points {
        out.push_str(&format!(
            "{:.2},{:.6},{:.6}\n",
            p.eta, p.fidelity, p.fidelity_jozsa
        ));
    }
    out
}

/// Render the Fig. 6 sweep as an aligned text table.
pub fn fig6_table(sweep: &CoverageSweep) -> String {
    let mut out = String::from("satellites  coverage_%  coverage_min  intervals\n");
    for p in &sweep.points {
        out.push_str(&format!(
            "{:>10}  {:>10.2}  {:>12.1}  {:>9}\n",
            p.satellites, p.coverage_percent, p.coverage_minutes, p.intervals
        ));
    }
    out
}

/// Render the Fig. 7/8 sweep as an aligned text table.
pub fn sweep_table(sweep: &ConstellationSweep) -> String {
    let mut out =
        String::from("satellites  served_%  F_end2end  F_per_link  mean_eta  mean_hops\n");
    for p in &sweep.points {
        out.push_str(&format!(
            "{:>10}  {:>8.2}  {:>9.4}  {:>10.4}  {:>8.4}  {:>9.2}\n",
            p.satellites,
            p.stats.served_percent(),
            p.stats.mean_fidelity,
            p.stats.mean_link_fidelity,
            p.stats.mean_eta,
            p.stats.mean_hops
        ));
    }
    out
}

/// Render Table III.
pub fn table3(report: &ComparisonReport) -> String {
    let mut out = String::new();
    out.push_str("Architecture              P_%     Serving_%  F_end2end  F_per_link\n");
    for m in [&report.space_ground, &report.air_ground] {
        out.push_str(&format!(
            "{:<24}  {:>6.2}  {:>9.2}  {:>9.4}  {:>10.4}\n",
            m.name, m.coverage_percent, m.served_percent, m.mean_fidelity, m.mean_link_fidelity
        ));
    }
    out.push_str(&format!(
        "gains (air - space): coverage {:+.2} pts, served {:+.2} pts, fidelity {:+.4}\n",
        report.coverage_gain_points(),
        report.served_gain_points(),
        report.fidelity_gain()
    ));
    out
}

/// Render the Fig. 6 sweep as CSV.
pub fn fig6_csv(sweep: &CoverageSweep) -> String {
    let mut out = String::from("satellites,coverage_percent,coverage_minutes,intervals\n");
    for p in &sweep.points {
        out.push_str(&format!(
            "{},{:.4},{:.2},{}\n",
            p.satellites, p.coverage_percent, p.coverage_minutes, p.intervals
        ));
    }
    out
}

/// Render the Fig. 7/8 sweep as CSV.
pub fn sweep_csv(sweep: &ConstellationSweep) -> String {
    let mut out = String::from(
        "satellites,served_percent,fidelity_end2end,fidelity_per_link,mean_eta,mean_hops\n",
    );
    for p in &sweep.points {
        out.push_str(&format!(
            "{},{:.4},{:.6},{:.6},{:.6},{:.4}\n",
            p.satellites,
            p.stats.served_percent(),
            p.stats.mean_fidelity,
            p.stats.mean_link_fidelity,
            p.stats.mean_eta,
            p.stats.mean_hops
        ));
    }
    out
}

/// Render the fault-degradation sweep as an aligned text table. The
/// intensity-0 rows are the paper's ideal-conditions assumption.
pub fn faults_table(sweep: &FaultSweep) -> String {
    let mut out = String::from(
        "intensity  architecture             P_%  served_%  first_try_%  rescued_%  expired_%  F_end2end\n",
    );
    for p in &sweep.points {
        for (name, a) in [
            (format!("Space-Ground ({} sats)", sweep.satellites), p.space),
            ("Air-Ground (1 HAP)".to_string(), p.air),
        ] {
            out.push_str(&format!(
                "{:>9.2}  {:<22} {:>6.2}  {:>8.2}  {:>11.2}  {:>9.2}  {:>9.2}  {:>9.4}\n",
                p.intensity,
                name,
                a.coverage_percent,
                a.served_percent,
                a.first_try_percent,
                a.rescued_percent,
                a.expired_percent,
                a.mean_fidelity
            ));
        }
    }
    out
}

/// Render the fault-degradation sweep as CSV.
pub fn faults_csv(sweep: &FaultSweep) -> String {
    let mut out = String::from(
        "intensity,architecture,coverage_percent,served_percent,first_try_percent,\
         rescued_percent,expired_percent,mean_fidelity,mean_link_fidelity,mean_wait_steps\n",
    );
    for p in &sweep.points {
        for (name, a) in [("space_ground", p.space), ("air_ground", p.air)] {
            out.push_str(&format!(
                "{:.4},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.6},{:.6},{:.4}\n",
                p.intensity,
                name,
                a.coverage_percent,
                a.served_percent,
                a.first_try_percent,
                a.rescued_percent,
                a.expired_percent,
                a.mean_fidelity,
                a.mean_link_fidelity,
                a.stats.mean_wait_steps
            ));
        }
    }
    out
}

fn wait_cell(v: Option<u64>) -> String {
    v.map_or_else(|| "n/a".to_string(), |w| w.to_string())
}

fn wait_json(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |w| w.to_string())
}

fn timeexp_row(label: &str, p: &TimeexpPoint) -> String {
    format!(
        "{:>8}  {:>8.2}  {:>11.2}  {:>9.2}  {:>9.2}  {:>9.4}  {:>8}  {:>8}\n",
        label,
        p.served_percent,
        p.first_try_percent,
        p.rescued_percent,
        p.expired_percent,
        p.mean_fidelity,
        wait_cell(p.p50_wait_steps),
        wait_cell(p.p95_wait_steps)
    )
}

/// Render the store-and-forward comparison as an aligned text table. The
/// `per-step` row is the memoryless baseline; `rescued_%` counts requests
/// saved by a retry *or* a memory hold.
pub fn timeexp_table(sweep: &TimeexpSweep) -> String {
    let mut out = String::from(
        " horizon  served_%  first_try_%  rescued_%  expired_%  F_end2end  p50_wait  p95_wait\n",
    );
    out.push_str(&timeexp_row("per-step", &sweep.baseline));
    for p in &sweep.points {
        out.push_str(&timeexp_row(
            &p.horizon_steps.map_or_else(String::new, |h| h.to_string()),
            p,
        ));
    }
    out
}

fn timeexp_point_json(p: &TimeexpPoint) -> String {
    format!(
        "{{\"horizon_steps\": {}, \"served_percent\": {:.4}, \
         \"first_try_percent\": {:.4}, \"rescued_percent\": {:.4}, \
         \"expired_percent\": {:.4}, \"mean_fidelity\": {:.6}, \
         \"mean_attempts\": {:.4}, \"p50_wait_steps\": {}, \
         \"p95_wait_steps\": {}}}",
        p.horizon_steps
            .map_or_else(|| "null".to_string(), |h| h.to_string()),
        p.served_percent,
        p.first_try_percent,
        p.rescued_percent,
        p.expired_percent,
        p.mean_fidelity,
        p.mean_attempts,
        wait_json(p.p50_wait_steps),
        wait_json(p.p95_wait_steps)
    )
}

/// Render the store-and-forward comparison as JSON (the `reproduce
/// timeexp` artifact body).
pub fn timeexp_json(sweep: &TimeexpSweep) -> String {
    let rows: Vec<String> = sweep
        .points
        .iter()
        .map(|p| format!("    {}", timeexp_point_json(p)))
        .collect();
    format!(
        "{{\n  \"experiment\": \"timeexp\",\n  \"satellites\": {},\n  \
         \"fidelity_floor\": {:.4},\n  \"baseline\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        sweep.satellites,
        sweep.fidelity_floor,
        timeexp_point_json(&sweep.baseline),
        rows.join(",\n")
    )
}

fn overload_row(p: &OverloadPoint) -> String {
    format!(
        "{:>8}  {:>9.1}  {:>8.2}  {:>11.2}  {:>6.2}  {:>9.2}  {:>9.4}  {:>10}  {:>10}  {:>9}\n",
        p.requests,
        p.intensity,
        p.served_percent,
        p.first_try_percent,
        p.shed_percent,
        p.expired_percent,
        p.mean_fidelity,
        p.congestion_deferrals,
        p.budget_deferrals,
        p.degraded_steps()
    )
}

/// Render the overload-control surface as an aligned text table, one row
/// per `(offered load, fault intensity)` cell.
pub fn overload_table(surface: &OverloadSurface) -> String {
    let mut out = String::from(
        "requests  intensity  served_%  first_try_%  shed_%  expired_%  F_end2end  \
         cong_defer  budg_defer  deg_steps\n",
    );
    for p in &surface.points {
        out.push_str(&overload_row(p));
    }
    out
}

fn overload_point_json(p: &OverloadPoint) -> String {
    let modes: Vec<String> = p.degrade_mode_steps.iter().map(|m| m.to_string()).collect();
    format!(
        "{{\"requests\": {}, \"intensity\": {:.2}, \"served_percent\": {:.4}, \
         \"first_try_percent\": {:.4}, \"shed_percent\": {:.4}, \
         \"expired_percent\": {:.4}, \"mean_fidelity\": {:.6}, \
         \"congestion_deferrals\": {}, \"budget_deferrals\": {}, \
         \"degrade_mode_steps\": [{}]}}",
        p.requests,
        p.intensity,
        p.served_percent,
        p.first_try_percent,
        p.shed_percent,
        p.expired_percent,
        p.mean_fidelity,
        p.congestion_deferrals,
        p.budget_deferrals,
        modes.join(", ")
    )
}

/// Render the overload-control surface as JSON (the `reproduce overload`
/// artifact body).
pub fn overload_json(surface: &OverloadSurface) -> String {
    let rows: Vec<String> = surface
        .points
        .iter()
        .map(|p| format!("    {}", overload_point_json(p)))
        .collect();
    format!(
        "{{\n  \"experiment\": \"overload\",\n  \"satellites\": {},\n  \
         \"attempt_rate_hz\": {:.4},\n  \"points\": [\n{}\n  ]\n}}\n",
        surface.satellites,
        surface.attempt_rate_hz,
        rows.join(",\n")
    )
}

/// Render one time step's active network as Graphviz DOT (the data behind
/// the paper's Figs. 1, 3 and 4). Ground nodes are grouped by LAN;
/// airborne platforms are boxes; edge labels carry transmissivities.
pub fn topology_dot(sim: &QuantumNetworkSim, graph: &Graph, title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "graph qntn {{\n  label=\"{title}\";\n  layout=neato;\n"
    ));
    for (i, h) in sim.hosts().iter().enumerate() {
        let shape = if h.is_ground() { "circle" } else { "box" };
        let g = h.geodetic_at(0);
        out.push_str(&format!(
            "  n{i} [label=\"{}\", shape={shape}, pos=\"{:.3},{:.3}!\"];\n",
            h.name,
            (g.lon_deg() + 86.0) * 20.0,
            (g.lat_deg() - 35.0) * 20.0,
        ));
    }
    for (u, v, eta) in graph.edges() {
        let style = if sim.hosts()[u].is_ground() && sim.hosts()[v].is_ground() {
            "solid" // fiber (the paper draws these red solid)
        } else {
            "dashed" // FSO (green dashed in the paper)
        };
        out.push_str(&format!(
            "  n{u} -- n{v} [label=\"{eta:.2}\", style={style}];\n"
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::ArchitectureMetrics;
    use crate::experiments::fig6::CoveragePoint;

    #[test]
    fn fig5_csv_shape() {
        let csv = fig5_csv(&FidelityCurve::with_resolution(4));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("eta,"));
        assert!(lines[1].starts_with("0.00,0.5"));
        assert!(lines[5].starts_with("1.00,1.0"));
    }

    #[test]
    fn fig6_table_contains_rows() {
        let sweep = CoverageSweep {
            points: vec![CoveragePoint {
                satellites: 108,
                coverage_percent: 55.17,
                coverage_minutes: 794.5,
                intervals: 42,
            }],
        };
        let t = fig6_table(&sweep);
        assert!(t.contains("108"));
        assert!(t.contains("55.17"));
    }

    #[test]
    fn csv_renders_have_headers_and_rows() {
        let sweep = CoverageSweep {
            points: vec![CoveragePoint {
                satellites: 6,
                coverage_percent: 3.02,
                coverage_minutes: 43.5,
                intervals: 12,
            }],
        };
        let csv = fig6_csv(&sweep);
        assert!(csv.starts_with("satellites,"));
        assert!(csv.contains("6,3.0200"));
    }

    #[test]
    fn topology_dot_structure() {
        use crate::architecture::AirGround;
        use crate::scenario::Qntn;
        let arch = AirGround::standard(&Qntn::standard());
        let g = arch.sim().active_graph_at(0);
        let dot = topology_dot(arch.sim(), &g, "air-ground");
        assert!(dot.starts_with("graph qntn {"));
        assert!(dot.contains("HAP-1"));
        assert!(dot.contains("style=dashed"), "FSO links are dashed");
        assert!(dot.contains("style=solid"), "fiber links are solid");
        assert!(dot.trim_end().ends_with('}'));
        // One node line per host.
        assert_eq!(dot.matches("shape=").count(), arch.sim().hosts().len());
    }

    #[test]
    fn faults_renders_ladder_rows() {
        use crate::experiments::faults::{FaultArchPoint, FaultPoint, FaultSweep};
        use qntn_net::requests::RetryStats;
        let stats = RetryStats {
            attempted: 100,
            served_first_try: 50,
            served_after_retry: 10,
            expired: 40,
            mean_fidelity: 0.95,
            mean_link_fidelity: 0.97,
            mean_eta: 0.8,
            mean_hops: 2.5,
            mean_attempts: 1.9,
            mean_wait_steps: 1.2,
        };
        let a = FaultArchPoint {
            coverage_percent: 42.0,
            served_percent: 60.0,
            first_try_percent: 50.0,
            rescued_percent: 10.0,
            expired_percent: 40.0,
            mean_fidelity: 0.95,
            mean_link_fidelity: 0.97,
            stats,
        };
        let sweep = FaultSweep {
            satellites: 108,
            points: vec![FaultPoint {
                intensity: 1.0,
                space: a,
                air: a,
            }],
        };
        let t = faults_table(&sweep);
        assert!(t.contains("Space-Ground (108 sats)"));
        assert!(t.contains("Air-Ground"));
        assert!(t.contains("0.9500"));
        let csv = faults_csv(&sweep);
        assert!(csv.starts_with("intensity,"));
        assert!(csv.contains("1.0000,space_ground,42.0000,60.0000"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn table3_renders_both_rows_and_gains() {
        let r = ComparisonReport {
            space_ground: ArchitectureMetrics {
                name: "Space-Ground (108 sats)".into(),
                coverage_percent: 55.17,
                served_percent: 57.75,
                mean_fidelity: 0.96,
                mean_link_fidelity: 0.96,
            },
            air_ground: ArchitectureMetrics {
                name: "Air-Ground (1 HAP)".into(),
                coverage_percent: 100.0,
                served_percent: 100.0,
                mean_fidelity: 0.98,
                mean_link_fidelity: 0.98,
            },
        };
        let t = table3(&r);
        assert!(t.contains("Space-Ground"));
        assert!(t.contains("Air-Ground"));
        assert!(t.contains("+44.83"));
        assert!(t.contains("+42.25"));
        assert!(t.contains("+0.0200"));
    }
    #[test]
    fn timeexp_renders_baseline_row_and_null_waits() {
        let p = |h: Option<usize>, served: f64| TimeexpPoint {
            horizon_steps: h,
            served_percent: served,
            first_try_percent: served,
            rescued_percent: 0.0,
            expired_percent: 100.0 - served,
            mean_fidelity: 0.95,
            mean_attempts: 1.5,
            p50_wait_steps: if served > 0.0 { Some(2) } else { None },
            p95_wait_steps: if served > 0.0 { Some(9) } else { None },
        };
        let sweep = TimeexpSweep {
            satellites: 108,
            fidelity_floor: 0.9,
            baseline: p(None, 0.0),
            points: vec![p(Some(0), 40.0), p(Some(8), 55.0)],
        };
        let t = timeexp_table(&sweep);
        assert!(t.starts_with(" horizon"));
        assert!(t.contains("per-step"));
        assert!(t.contains("n/a"), "empty served set renders n/a, not 0");
        assert_eq!(t.lines().count(), 4);
        let j = timeexp_json(&sweep);
        assert!(j.contains("\"experiment\": \"timeexp\""));
        assert!(j.contains("\"horizon_steps\": null"));
        assert!(j.contains("\"p50_wait_steps\": null"));
        assert!(j.contains("\"horizon_steps\": 8"));
        assert!(j.ends_with("}\n"));
    }
}
