//! The two interconnection architectures as first-class values.

use crate::scenario::Qntn;
use qntn_channel::params::ApertureSet;
use qntn_geo::Epoch;
use qntn_net::{Host, QuantumNetworkSim, SimConfig};
use qntn_orbit::ephemeris::{PAPER_DURATION_S, PAPER_STEP_S};
use qntn_orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};

/// Default simulation epoch (arbitrary but fixed; the statistics are
/// epoch-insensitive because the constellation precesses through all local
/// times over its planes).
pub fn default_epoch() -> Epoch {
    Epoch::from_calendar(2024, 7, 1, 0, 0, 0.0)
}

/// Build the ground-station hosts common to both architectures.
fn ground_hosts(scenario: &Qntn, apertures: &ApertureSet) -> Vec<Host> {
    let mut hosts = Vec::with_capacity(scenario.node_count());
    for (lan_id, lan) in scenario.lans.iter().enumerate() {
        for (k, &pos) in lan.nodes.iter().enumerate() {
            hosts.push(Host::ground(
                format!("{}-{k}", lan.name),
                lan_id,
                pos,
                apertures.ground_m,
            ));
        }
    }
    hosts
}

/// The space–ground architecture: N satellites of the paper's Table II
/// constellation over the three LANs.
#[derive(Debug, Clone)]
pub struct SpaceGround {
    sim: QuantumNetworkSim,
    satellites: usize,
}

impl SpaceGround {
    /// Build with `n` satellites (the paper's first-n prefix of Table II),
    /// a full day at 30 s cadence, and the given config.
    pub fn new(
        scenario: &Qntn,
        n: usize,
        config: SimConfig,
        model: PerturbationModel,
    ) -> SpaceGround {
        let ephemerides = Self::ephemerides(n, model);
        Self::from_ephemerides(scenario, ephemerides, config)
    }

    /// The paper's headline configuration: 108 satellites, ideal config.
    pub fn standard(scenario: &Qntn) -> SpaceGround {
        Self::new(
            scenario,
            108,
            SimConfig::default(),
            PerturbationModel::TwoBody,
        )
    }

    /// Generate the movement sheets for the first `n` Table II satellites.
    pub fn ephemerides(n: usize, model: PerturbationModel) -> Vec<Ephemeris> {
        let epoch = default_epoch();
        let props: Vec<Propagator> = paper_constellation(n)
            .into_iter()
            .map(|k| Propagator::new(k, epoch, model))
            .collect();
        Ephemeris::generate_many(&props, epoch, PAPER_STEP_S, PAPER_DURATION_S)
    }

    /// Build from pre-generated movement sheets (lets the constellation
    /// sweep share one 108-satellite generation across all N).
    pub fn from_ephemerides(
        scenario: &Qntn,
        ephemerides: Vec<Ephemeris>,
        config: SimConfig,
    ) -> SpaceGround {
        let apertures = ApertureSet::paper();
        let mut hosts = ground_hosts(scenario, &apertures);
        let n = ephemerides.len();
        for (i, eph) in ephemerides.into_iter().enumerate() {
            hosts.push(Host::satellite(
                format!("SAT-{i:03}"),
                eph,
                apertures.satellite_m,
            ));
        }
        let steps = (PAPER_DURATION_S / PAPER_STEP_S) as usize;
        SpaceGround {
            sim: QuantumNetworkSim::new(hosts, config, steps, PAPER_STEP_S),
            satellites: n,
        }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &QuantumNetworkSim {
        &self.sim
    }

    /// Number of satellites.
    pub fn satellites(&self) -> usize {
        self.satellites
    }
}

/// The air–ground architecture: one HAP at 30 km over (35.6692, −85.0662).
#[derive(Debug, Clone)]
pub struct AirGround {
    sim: QuantumNetworkSim,
}

impl AirGround {
    /// Build with the given config over the paper's one-day window.
    pub fn new(scenario: &Qntn, config: SimConfig) -> AirGround {
        let apertures = ApertureSet::paper();
        let mut hosts = ground_hosts(scenario, &apertures);
        hosts.push(Host::hap("HAP-1", scenario.hap, apertures.hap_m));
        let steps = (PAPER_DURATION_S / PAPER_STEP_S) as usize;
        AirGround {
            sim: QuantumNetworkSim::new(hosts, config, steps, PAPER_STEP_S),
        }
    }

    /// The paper's configuration.
    pub fn standard(scenario: &Qntn) -> AirGround {
        Self::new(scenario, SimConfig::default())
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &QuantumNetworkSim {
        &self.sim
    }

    /// Node id of the HAP (always the last host).
    pub fn hap_node(&self) -> usize {
        self.sim.hosts().len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn air_ground_topology() {
        let q = Qntn::standard();
        let a = AirGround::standard(&q);
        assert_eq!(a.sim().hosts().len(), 32, "31 ground + 1 HAP");
        assert_eq!(a.sim().lan_count(), 3);
        assert!(a.sim().hosts()[a.hap_node()].is_hap());
        assert_eq!(a.sim().steps(), 2880);
    }

    #[test]
    fn air_ground_interconnects_continuously() {
        let q = Qntn::standard();
        let a = AirGround::standard(&q);
        for step in [0, 720, 1440, 2879] {
            let g = a.sim().active_graph_at(step);
            assert!(a.sim().lans_interconnected(&g), "step {step}");
        }
    }

    #[test]
    fn space_ground_small_constellation() {
        let q = Qntn::standard();
        let s = SpaceGround::new(&q, 6, SimConfig::default(), PerturbationModel::TwoBody);
        assert_eq!(s.satellites(), 6);
        assert_eq!(s.sim().hosts().len(), 37);
        // Satellites are the last 6 hosts.
        for h in &s.sim().hosts()[31..] {
            assert!(h.is_satellite());
            assert_eq!(h.aperture_m, 1.2);
        }
    }

    #[test]
    fn shared_ephemerides_match_direct_construction() {
        let q = Qntn::standard();
        let eph = SpaceGround::ephemerides(6, PerturbationModel::TwoBody);
        let a = SpaceGround::from_ephemerides(&q, eph, SimConfig::default());
        let b = SpaceGround::new(&q, 6, SimConfig::default(), PerturbationModel::TwoBody);
        // Same link structure at a probe step.
        let ga = a.sim().active_graph_at(1000);
        let gb = b.sim().active_graph_at(1000);
        assert_eq!(ga.edge_count(), gb.edge_count());
    }

    #[test]
    fn hap_aperture_is_30cm() {
        let q = Qntn::standard();
        let a = AirGround::standard(&q);
        assert_eq!(a.sim().hosts()[a.hap_node()].aperture_m, 0.3);
    }
}
