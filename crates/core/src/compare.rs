//! Table III — the space–ground vs air–ground comparison.

use crate::architecture::{AirGround, SpaceGround};
use crate::experiments::fidelity::FidelityExperiment;
use crate::experiments::fig6::CoverageSweep;
use crate::scenario::Qntn;
use qntn_net::SimConfig;
use qntn_orbit::PerturbationModel;
use serde::{Deserialize, Serialize};

/// One row of Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchitectureMetrics {
    pub name: String,
    /// Coverage percentage P over the full day (paper Eq. 7).
    pub coverage_percent: f64,
    /// Served entanglement-distribution requests, percent.
    pub served_percent: f64,
    /// Average end-to-end entanglement fidelity of resolved requests.
    pub mean_fidelity: f64,
    /// Average per-link entanglement fidelity of resolved requests (the
    /// accounting under which the paper's Table III is reachable).
    pub mean_link_fidelity: f64,
}

/// The whole comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonReport {
    pub space_ground: ArchitectureMetrics,
    pub air_ground: ArchitectureMetrics,
}

impl ComparisonReport {
    /// Run the paper's comparison: space–ground at `n` satellites vs the
    /// single-HAP air–ground network. `experiment` controls the workload
    /// (use [`FidelityExperiment::paper`] to match the paper).
    ///
    /// Coverage for the space segment comes from the full-day Fig. 6
    /// analysis at size `n`; requests/fidelity come from the request sweep.
    pub fn run(
        scenario: &Qntn,
        config: SimConfig,
        n: usize,
        experiment: FidelityExperiment,
    ) -> ComparisonReport {
        // Space-ground.
        let coverage = CoverageSweep::run(scenario, config, &[n], PerturbationModel::TwoBody);
        let space_arch = SpaceGround::new(scenario, n, config, PerturbationModel::TwoBody);
        let space_run = experiment.run_space_ground(&space_arch);
        let space_ground = ArchitectureMetrics {
            name: format!("Space-Ground ({n} sats)"),
            coverage_percent: coverage.final_point().coverage_percent,
            served_percent: space_run.served_percent,
            mean_fidelity: space_run.mean_fidelity,
            mean_link_fidelity: space_run.mean_link_fidelity,
        };

        // Air-ground.
        let air_arch = AirGround::new(scenario, config);
        let air_run = experiment.run_air_ground(&air_arch);
        let air_ground = ArchitectureMetrics {
            name: "Air-Ground (1 HAP)".to_string(),
            coverage_percent: air_run.coverage_percent,
            served_percent: air_run.served_percent,
            mean_fidelity: air_run.mean_fidelity,
            mean_link_fidelity: air_run.mean_link_fidelity,
        };

        ComparisonReport {
            space_ground,
            air_ground,
        }
    }

    /// Coverage improvement of air over space, percentage points (the paper
    /// quotes 44.83).
    pub fn coverage_gain_points(&self) -> f64 {
        self.air_ground.coverage_percent - self.space_ground.coverage_percent
    }

    /// Served-request improvement, percentage points (paper: 42.25).
    pub fn served_gain_points(&self) -> f64 {
        self.air_ground.served_percent - self.space_ground.served_percent
    }

    /// Fidelity improvement (paper: 0.02).
    pub fn fidelity_gain(&self) -> f64 {
        self.air_ground.mean_fidelity - self.space_ground.mean_fidelity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_preserves_paper_ordering() {
        // A reduced comparison (24 satellites, light workload) must already
        // show the paper's qualitative result: air-ground dominates on all
        // three metrics.
        let q = Qntn::standard();
        let r = ComparisonReport::run(&q, SimConfig::default(), 24, FidelityExperiment::quick());
        assert!((r.air_ground.coverage_percent - 100.0).abs() < 1e-9);
        assert!((r.air_ground.served_percent - 100.0).abs() < 1e-9);
        assert!(r.coverage_gain_points() > 0.0, "{:?}", r);
        assert!(r.served_gain_points() > 0.0);
        assert!(
            r.fidelity_gain() > -0.02,
            "space should not beat air: {:?}",
            r
        );
        assert!(r.air_ground.mean_fidelity > 0.95);
    }
}
