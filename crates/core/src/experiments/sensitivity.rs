//! Calibration-sensitivity analysis.
//!
//! DESIGN.md documents four calibrated clear-sky constants plus the paper's
//! own threshold/aperture parameters. This experiment perturbs each by a
//! relative step and measures the coverage response — showing which knobs
//! the headline 55.17 % actually leans on (threshold and waist ratio) and
//! which are almost free (turbulence scale under ideal conditions).

use crate::experiments::visibility::LanVisibility;
use crate::scenario::Qntn;
use qntn_channel::atmosphere::Atmosphere;
use qntn_channel::params::FsoParams;
use qntn_channel::turbulence::TurbulenceProfile;
use qntn_net::{CoverageAnalyzer, SimConfig};
use qntn_orbit::ephemeris::PAPER_STEP_S;
use qntn_orbit::{Ephemeris, PerturbationModel};
use serde::{Deserialize, Serialize};

/// The tunable parameters of the calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Knob {
    /// Transmit beam waist ratio.
    WaistRatio,
    /// Receiver efficiency η_eff.
    ReceiverEfficiency,
    /// Sea-level extinction coefficient.
    Extinction,
    /// Turbulence profile scale.
    TurbulenceScale,
    /// The paper's transmissivity threshold (0.7).
    Threshold,
}

impl Knob {
    /// All knobs, in report order.
    pub fn all() -> [Knob; 5] {
        [
            Knob::WaistRatio,
            Knob::ReceiverEfficiency,
            Knob::Extinction,
            Knob::TurbulenceScale,
            Knob::Threshold,
        ]
    }

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            Knob::WaistRatio => "tx waist ratio",
            Knob::ReceiverEfficiency => "receiver efficiency",
            Knob::Extinction => "sea-level extinction",
            Knob::TurbulenceScale => "turbulence scale",
            Knob::Threshold => "link threshold",
        }
    }

    /// A config with this knob scaled by `factor` from the baseline.
    pub fn scaled(&self, factor: f64) -> SimConfig {
        let base = FsoParams::ideal();
        let mut config = SimConfig::default();
        match self {
            Knob::WaistRatio => {
                config.fso = FsoParams {
                    tx_waist_ratio: base.tx_waist_ratio * factor,
                    ..base
                };
            }
            Knob::ReceiverEfficiency => {
                config.fso = FsoParams {
                    receiver_efficiency: (base.receiver_efficiency * factor).min(1.0),
                    ..base
                };
            }
            Knob::Extinction => {
                config.fso = FsoParams {
                    atmosphere: Atmosphere::new(
                        base.atmosphere.sea_level_extinction_per_m * factor,
                        base.atmosphere.scale_height_m,
                    ),
                    ..base
                };
            }
            Knob::TurbulenceScale => {
                config.fso = FsoParams {
                    turbulence: TurbulenceProfile {
                        scale: base.turbulence.scale * factor,
                        ..base.turbulence
                    },
                    ..base
                };
            }
            Knob::Threshold => {
                config.threshold *= factor;
            }
        }
        config
    }
}

/// Coverage response of one knob.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnobResponse {
    pub knob: Knob,
    /// Coverage with the knob at `1 − step`, percent.
    pub minus_percent: f64,
    /// Baseline coverage, percent.
    pub base_percent: f64,
    /// Coverage with the knob at `1 + step`, percent.
    pub plus_percent: f64,
}

impl KnobResponse {
    /// Central-difference sensitivity: percentage points of coverage per
    /// +10 % of the knob.
    pub fn points_per_10pct(&self, step: f64) -> f64 {
        (self.plus_percent - self.minus_percent) / (2.0 * step) * 0.1
    }
}

/// The full sensitivity table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityTable {
    /// Relative perturbation used (e.g. 0.1 = ±10 %).
    pub step: f64,
    pub satellites: usize,
    pub responses: Vec<KnobResponse>,
}

impl SensitivityTable {
    /// Compute with the given constellation size and perturbation step.
    pub fn compute(scenario: &Qntn, satellites: usize, step: f64) -> SensitivityTable {
        let ephemerides =
            crate::architecture::SpaceGround::ephemerides(satellites, PerturbationModel::TwoBody);
        let coverage = |config: SimConfig, eph: &[Ephemeris]| {
            let cube = LanVisibility::compute(scenario, config, eph);
            CoverageAnalyzer::from_flags(cube.coverage_flags(satellites), PAPER_STEP_S).percent()
        };
        let base = coverage(SimConfig::default(), &ephemerides);
        let responses = Knob::all()
            .into_iter()
            .map(|knob| KnobResponse {
                knob,
                minus_percent: coverage(knob.scaled(1.0 - step), &ephemerides),
                base_percent: base,
                plus_percent: coverage(knob.scaled(1.0 + step), &ephemerides),
            })
            .collect();
        SensitivityTable {
            step,
            satellites,
            responses,
        }
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "sensitivity @ {} satellites, ±{:.0}% perturbation\n{:<22} {:>8} {:>8} {:>8} {:>12}\n",
            self.satellites,
            self.step * 100.0,
            "knob",
            "-step",
            "base",
            "+step",
            "pts/+10%"
        );
        for r in &self.responses {
            out.push_str(&format!(
                "{:<22} {:>8.2} {:>8.2} {:>8.2} {:>+12.2}\n",
                r.knob.label(),
                r.minus_percent,
                r.base_percent,
                r.plus_percent,
                r.points_per_10pct(self.step)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_scaling_produces_distinct_configs() {
        for knob in Knob::all() {
            let lo = knob.scaled(0.9);
            let hi = knob.scaled(1.1);
            assert_ne!(lo, hi, "{}", knob.label());
        }
        // Receiver efficiency clamps at 1.
        let cfg = Knob::ReceiverEfficiency.scaled(1.5);
        assert!(cfg.fso.receiver_efficiency <= 1.0);
    }

    #[test]
    fn sensitivity_signs_are_physical() {
        // Small constellation keeps this fast; the signs are what matter:
        // higher threshold -> less coverage; more extinction -> less
        // coverage; better receiver -> more coverage.
        let q = Qntn::standard();
        let table = SensitivityTable::compute(&q, 18, 0.1);
        for r in &table.responses {
            match r.knob {
                Knob::Threshold | Knob::Extinction => {
                    assert!(
                        r.plus_percent <= r.minus_percent + 1e-9,
                        "{}: +{} vs -{}",
                        r.knob.label(),
                        r.plus_percent,
                        r.minus_percent
                    );
                }
                Knob::ReceiverEfficiency => {
                    assert!(r.plus_percent >= r.minus_percent - 1e-9);
                }
                _ => {} // waist ratio and turbulence are non-monotone/flat
            }
        }
    }

    #[test]
    fn render_contains_all_knobs() {
        let q = Qntn::standard();
        let table = SensitivityTable::compute(&q, 6, 0.1);
        let text = table.render();
        for knob in Knob::all() {
            assert!(text.contains(knob.label()), "{text}");
        }
    }
}
