//! The per-architecture request/fidelity experiment — the source of the
//! Table III "serving requests" and "entanglement fidelity" columns, and
//! of the air-ground numbers quoted in Section IV-C.

use crate::architecture::{AirGround, SpaceGround};
use qntn_net::requests::{sample_steps, SweepStats};
use qntn_net::{QuantumNetworkSim, SweepEngine};
use qntn_routing::RouteMetric;
use serde::{Deserialize, Serialize};

/// Workload settings for one architecture evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityExperiment {
    /// How many time steps to sample across the day.
    pub sampled_steps: usize,
    /// Requests per sampled step.
    pub requests_per_step: usize,
    /// RNG seed (workloads are deterministic given the seed).
    pub seed: u64,
    /// Routing metric.
    pub metric: RouteMetric,
}

/// What one architecture achieved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchReport {
    /// Percentage of sampled steps with all LANs interconnected.
    pub coverage_percent: f64,
    /// Percentage of requests served.
    pub served_percent: f64,
    /// Mean end-to-end square-root fidelity over served requests.
    pub mean_fidelity: f64,
    /// Mean per-link square-root fidelity over served requests.
    pub mean_link_fidelity: f64,
    /// Mean end-to-end transmissivity over served requests.
    pub mean_eta: f64,
    /// Mean path length (links) over served requests.
    pub mean_hops: f64,
    /// The raw sweep statistics.
    pub stats: SweepStats,
}

impl FidelityExperiment {
    /// The paper's workload: 100 requests × 100 time steps.
    pub fn paper() -> FidelityExperiment {
        FidelityExperiment {
            sampled_steps: 100,
            requests_per_step: 100,
            seed: 2024,
            metric: RouteMetric::PaperInverseEta,
        }
    }

    /// A small workload for tests, demos and doctests.
    pub fn quick() -> FidelityExperiment {
        FidelityExperiment {
            sampled_steps: 4,
            requests_per_step: 20,
            seed: 7,
            metric: RouteMetric::PaperInverseEta,
        }
    }

    /// Evaluate any simulator (parallel over time steps).
    pub fn run(&self, sim: &QuantumNetworkSim) -> ArchReport {
        self.run_with_options(sim, true)
    }

    /// [`FidelityExperiment::run`] with explicit parallelism control
    /// (`parallel: false` is the reproduce binary's `--no-parallel` path;
    /// results are bit-identical either way). One contact-window-pruned
    /// engine serves both the request sweep and the connectivity census.
    pub fn run_with_options(&self, sim: &QuantumNetworkSim, parallel: bool) -> ArchReport {
        let steps = sample_steps(sim.steps(), self.sampled_steps);
        let engine = SweepEngine::for_steps(sim, &steps).with_parallel(parallel);
        let stats = engine.sweep(&steps, self.requests_per_step, self.seed, self.metric);
        let connected = engine
            .map_steps(&steps, |scratch, step| {
                engine.active_graph_into(step, scratch);
                sim.lans_interconnected(&scratch.active)
            })
            .into_iter()
            .filter(|&c| c)
            .count();
        ArchReport {
            coverage_percent: 100.0 * connected as f64 / steps.len() as f64,
            served_percent: stats.served_percent(),
            mean_fidelity: stats.mean_fidelity,
            mean_link_fidelity: stats.mean_link_fidelity,
            mean_eta: stats.mean_eta,
            mean_hops: stats.mean_hops,
            stats,
        }
    }

    /// Evaluate the air–ground architecture.
    pub fn run_air_ground(&self, arch: &AirGround) -> ArchReport {
        self.run(arch.sim())
    }

    /// Evaluate the space–ground architecture.
    pub fn run_space_ground(&self, arch: &SpaceGround) -> ArchReport {
        self.run(arch.sim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Qntn;
    use qntn_net::SimConfig;
    use qntn_orbit::PerturbationModel;

    #[test]
    fn air_ground_quick_run_matches_paper_shape() {
        let q = Qntn::standard();
        let arch = AirGround::standard(&q);
        let r = FidelityExperiment::quick().run_air_ground(&arch);
        assert!((r.coverage_percent - 100.0).abs() < 1e-12);
        assert!((r.served_percent - 100.0).abs() < 1e-12);
        assert!(
            r.mean_fidelity > 0.95,
            "air-ground fidelity: {}",
            r.mean_fidelity
        );
        assert!(r.mean_hops >= 2.0, "requests cross via the HAP");
    }

    #[test]
    fn space_ground_quick_run_is_partial() {
        let q = Qntn::standard();
        let arch = SpaceGround::new(&q, 12, SimConfig::default(), PerturbationModel::TwoBody);
        let r = FidelityExperiment::quick().run_space_ground(&arch);
        // 12 satellites cannot serve everything across a day.
        assert!(r.served_percent < 100.0);
        assert!(r.coverage_percent < 100.0);
        // Any served request used above-threshold links.
        if r.stats.served > 0 {
            assert!(r.mean_fidelity > 0.85);
        }
    }

    #[test]
    fn deterministic() {
        let q = Qntn::standard();
        let arch = AirGround::standard(&q);
        let e = FidelityExperiment::quick();
        assert_eq!(e.run_air_ground(&arch).stats, e.run_air_ground(&arch).stats);
    }
}
