//! Overload-controlled serving under fault storms — the `reproduce
//! overload` artifact.
//!
//! The serve layer fails *open*: a flash crowd or a fault storm just
//! inflates retry rounds and deadline expiries. The overload layer
//! ([`qntn_serve::overload`]) bounds that with retry budgets,
//! utilization-threshold load shedding and a health-driven degradation
//! ladder. This experiment maps the control surface: a flash-crowd
//! workload at a ladder of offered loads, served under capacity
//! admission and a standard [`OverloadPolicy`] against fault masks at a
//! ladder of intensities — reporting how served percentage, shed
//! percentage and delivered fidelity trade off as both axes grow. With
//! [`OverloadPolicy::disabled`] every cell reproduces the plain
//! admission serve bit for bit (pinned by the unit test below and the
//! serve-crate differential suite).

use crate::architecture::SpaceGround;
use crate::scenario::Qntn;
use qntn_net::capacity::CapacityModel;
use qntn_net::faults::FaultModel;
use qntn_net::requests::RetryPolicy;
use qntn_net::{QuantumNetworkSim, SimConfig, SweepEngine};
use qntn_orbit::PerturbationModel;
use qntn_routing::RouteMetric;
use qntn_serve::{
    flash_crowd, ingest, overload_report, serve_overload, FlashCrowdConfig, HoldPolicy,
    OverloadPolicy, ServeReport, DEGRADE_MODES,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Settings for one overload-control surface sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadExperiment {
    /// Space–ground constellation size.
    pub satellites: usize,
    /// The offered-load ladder (flash-crowd requests over the day).
    pub loads: Vec<usize>,
    /// The fault-intensity ladder (0 = the paper's ideal conditions).
    pub intensities: Vec<f64>,
    /// Fault-schedule seed (shared across intensities so the schedules
    /// nest — see [`FaultModel::with_intensity`]).
    pub fault_seed: u64,
    /// Burst shape of the flash-crowd workload.
    pub crowd: FlashCrowdConfig,
    /// Workload seed; also seeds the shed tie-break.
    pub seed: u64,
    /// Per-link pair-generation model (the admission budgets).
    pub capacity: CapacityModel,
    /// Routing metric.
    pub metric: RouteMetric,
    /// Retry policy.
    pub retry: RetryPolicy,
}

/// One cell of the surface: a (load, intensity) pair served under the
/// standard overload policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadPoint {
    /// Offered load (requests generated).
    pub requests: usize,
    /// Fault intensity of this cell's mask.
    pub intensity: f64,
    /// Requests served by any attempt, percent of attempted.
    pub served_percent: f64,
    /// Served on the arrival step with no wait, percent.
    pub first_try_percent: f64,
    /// Requests shed by any overload mechanism, percent of attempted.
    pub shed_percent: f64,
    /// Expired unserved (sheds included), percent.
    pub expired_percent: f64,
    /// Mean end-to-end square-root fidelity over served requests.
    pub mean_fidelity: f64,
    /// Attempts deferred by exhausted link budgets.
    pub congestion_deferrals: u64,
    /// Retries deferred by the retry budget.
    pub budget_deferrals: u64,
    /// Steps spent on each degradation rung (Normal first).
    pub degrade_mode_steps: [u64; DEGRADE_MODES],
}

impl OverloadPoint {
    fn from_report(
        requests: usize,
        intensity: f64,
        r: &ServeReport,
        congestion_deferrals: u64,
    ) -> OverloadPoint {
        let attempted = (r.attempted as f64).max(1.0);
        OverloadPoint {
            requests,
            intensity,
            served_percent: r.served_percent(),
            first_try_percent: r.first_try_percent(),
            shed_percent: 100.0 * r.shed as f64 / attempted,
            expired_percent: r.expired_percent(),
            mean_fidelity: r.mean_fidelity,
            congestion_deferrals,
            budget_deferrals: r.deferred_by_budget,
            degrade_mode_steps: r.degrade_mode_steps,
        }
    }

    /// Steps spent on any rung other than full service.
    pub fn degraded_steps(&self) -> u64 {
        self.degrade_mode_steps.iter().skip(1).sum()
    }
}

/// The full surface, row-major over `loads × intensities`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadSurface {
    pub satellites: usize,
    pub attempt_rate_hz: f64,
    pub points: Vec<OverloadPoint>,
}

impl OverloadExperiment {
    /// The full artifact: the paper's 108-satellite constellation, three
    /// offered loads against three fault intensities.
    pub fn standard() -> OverloadExperiment {
        OverloadExperiment {
            satellites: 108,
            loads: vec![50_000, 150_000, 400_000],
            intensities: vec![0.0, 2.0, 5.0],
            fault_seed: 42,
            crowd: FlashCrowdConfig::default(),
            seed: 2024,
            capacity: CapacityModel {
                attempt_rate_hz: 5.0,
                window_s: 30.0,
            },
            metric: RouteMetric::PaperInverseEta,
            retry: RetryPolicy::standard(),
        }
    }

    /// A small configuration for tests and `--quick` runs.
    pub fn quick() -> OverloadExperiment {
        OverloadExperiment {
            satellites: 8,
            loads: vec![1_000, 4_000],
            intensities: vec![0.0, 2.0],
            fault_seed: 42,
            crowd: FlashCrowdConfig::default(),
            seed: 2024,
            capacity: CapacityModel {
                attempt_rate_hz: 5.0,
                window_s: 30.0,
            },
            metric: RouteMetric::PaperInverseEta,
            retry: RetryPolicy::standard(),
        }
    }

    /// Run the surface sweep. The architecture is built once; each
    /// intensity compiles one fault mask, each load generates one
    /// workload, and every `(load, intensity)` cell serves under
    /// [`OverloadPolicy::standard`] seeded from the workload seed.
    pub fn run(&self, scenario: &Qntn, config: SimConfig) -> OverloadSurface {
        let arch = SpaceGround::new(
            scenario,
            self.satellites,
            config,
            PerturbationModel::TwoBody,
        );
        let sim = arch.sim();
        let overload = OverloadPolicy::standard(self.seed);
        let hold = HoldPolicy::disabled();

        let mut points = Vec::with_capacity(self.loads.len() * self.intensities.len());
        for &n in &self.loads {
            let stream = flash_crowd(sim, n, self.seed, self.crowd);
            let (queue, rejected) = ingest(sim.hosts().len(), sim.steps(), &stream);
            let rejected = rejected.len() as u64;
            for &intensity in &self.intensities {
                let engine = self.engine_at(sim, intensity);
                let out = serve_overload(
                    &engine,
                    &queue,
                    self.retry,
                    self.metric,
                    Some(self.capacity),
                    &hold,
                    &overload,
                );
                let report = overload_report(&out, &queue, rejected);
                points.push(OverloadPoint::from_report(
                    n,
                    intensity,
                    &report,
                    out.congestion_deferrals,
                ));
            }
        }
        OverloadSurface {
            satellites: self.satellites,
            attempt_rate_hz: self.capacity.attempt_rate_hz,
            points,
        }
    }

    /// The engine for one intensity rung: clean at 0, masked above.
    fn engine_at<'a>(&self, sim: &'a QuantumNetworkSim, intensity: f64) -> SweepEngine<'a> {
        let engine = SweepEngine::new(sim);
        if intensity == 0.0 {
            engine
        } else {
            engine.with_faults(Arc::new(
                FaultModel::standard(self.fault_seed)
                    .with_intensity(intensity)
                    .compile(sim),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qntn_serve::serve_with_admission;

    fn tiny() -> OverloadExperiment {
        OverloadExperiment {
            satellites: 4,
            loads: vec![200, 500],
            intensities: vec![0.0, 2.0],
            ..OverloadExperiment::quick()
        }
    }

    #[test]
    fn zero_config_cell_equals_the_admission_serve_bitwise() {
        // The differential anchor inside the experiment itself: a
        // disabled OverloadPolicy reproduces the plain admission serve
        // exactly, clean and faulted.
        let q = Qntn::standard();
        let e = tiny();
        let arch = SpaceGround::new(
            &q,
            e.satellites,
            SimConfig::default(),
            PerturbationModel::TwoBody,
        );
        let sim = arch.sim();
        let stream = flash_crowd(sim, 300, e.seed, e.crowd);
        let (queue, _) = ingest(sim.hosts().len(), sim.steps(), &stream);
        for intensity in [0.0, 2.0] {
            let engine = e.engine_at(sim, intensity);
            let base = serve_with_admission(&engine, &queue, e.retry, e.metric, e.capacity);
            let out = serve_overload(
                &engine,
                &queue,
                e.retry,
                e.metric,
                Some(e.capacity),
                &HoldPolicy::disabled(),
                &OverloadPolicy::disabled(),
            );
            assert_eq!(out.outcomes, base.outcomes, "intensity {intensity}");
            assert_eq!(out.congestion_deferrals, base.congestion_deferrals);
            assert_eq!(out.shed_count(), 0);
            assert_eq!(out.budget_deferrals, 0);
        }
    }

    #[test]
    fn surface_is_row_major_with_sane_percentages() {
        let q = Qntn::standard();
        let e = tiny();
        let surface = e.run(&q, SimConfig::default());
        assert_eq!(surface.points.len(), e.loads.len() * e.intensities.len());
        let mut k = 0;
        for &n in &e.loads {
            for &intensity in &e.intensities {
                let p = &surface.points[k];
                assert_eq!(p.requests, n);
                assert_eq!(p.intensity, intensity);
                for pct in [
                    p.served_percent,
                    p.first_try_percent,
                    p.shed_percent,
                    p.expired_percent,
                ] {
                    assert!((0.0..=100.0).contains(&pct), "cell {k}: {pct}");
                }
                // Sheds expire by definition.
                assert!(p.shed_percent <= p.expired_percent + 1e-9);
                k += 1;
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let q = Qntn::standard();
        let e = tiny();
        let a = e.run(&q, SimConfig::default());
        let b = e.run(&q, SimConfig::default());
        assert_eq!(a, b);
    }
}
