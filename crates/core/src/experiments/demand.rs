//! Demand-alignment extension: does the network work when users want it?
//!
//! Coverage percentages weight every minute of the day equally; real
//! traffic does not. This experiment weights each time step by a diurnal
//! demand profile (peaking in local business hours) and reports
//! *demand-weighted* availability. The punchline combines two earlier
//! findings: satellite coverage is roughly uniform in time, so weighting
//! barely moves it — but darkness-gated quantum links (the `night`
//! extension) are **anti-correlated** with business-hours demand, so a
//! night-only quantum service covers almost none of the weighted demand.

use crate::architecture::default_epoch;
use crate::experiments::visibility::LanVisibility;
use crate::scenario::Qntn;
use qntn_net::SimConfig;
use qntn_orbit::ephemeris::{PAPER_DURATION_S, PAPER_STEP_S};
use qntn_orbit::{PerturbationModel, Twilight};
use serde::{Deserialize, Serialize};

/// Tennessee is UTC−5 in summer (CDT in the middle/eastern-CST split; we
/// use a single offset for the region's demand clock).
pub const LOCAL_UTC_OFFSET_H: f64 = -5.0;

/// A diurnal demand profile: relative request intensity at local hour `h`.
///
/// A raised cosine peaking at 14:00 local, floored at 10 % overnight —
/// the standard shape of enterprise traffic.
pub fn business_hours_demand(local_hour: f64) -> f64 {
    let phase = (local_hour - 14.0) / 24.0 * std::f64::consts::TAU;
    (0.55 + 0.45 * phase.cos()).max(0.1)
}

/// Demand-weighted availability of a per-step availability mask.
pub fn demand_weighted_percent(available: &[bool], step_s: f64) -> f64 {
    let epoch = default_epoch();
    let mut served = 0.0;
    let mut total = 0.0;
    for (k, &up) in available.iter().enumerate() {
        let at = epoch.plus_seconds(k as f64 * step_s);
        // Hours since local midnight.
        let utc_h = (at.as_jd() + 0.5).fract() * 24.0;
        let local_h = (utc_h + LOCAL_UTC_OFFSET_H).rem_euclid(24.0);
        let w = business_hours_demand(local_h);
        total += w;
        if up {
            served += w;
        }
    }
    100.0 * served / total
}

/// The report: unweighted vs demand-weighted availability, with and
/// without darkness gating.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DemandReport {
    pub satellites: usize,
    /// Space-ground: plain coverage %, demand-weighted %.
    pub space_percent: f64,
    pub space_weighted_percent: f64,
    /// Night-gated space-ground, demand-weighted.
    pub space_night_weighted_percent: f64,
    /// Night-gated air-ground (= the dark mask), demand-weighted.
    pub air_night_weighted_percent: f64,
}

/// Run the analysis at one constellation size.
pub fn analyze(scenario: &Qntn, config: SimConfig, satellites: usize) -> DemandReport {
    let eph = crate::architecture::SpaceGround::ephemerides(satellites, PerturbationModel::TwoBody);
    let cube = LanVisibility::compute(scenario, config, &eph);
    let flags = cube.coverage_flags(satellites);

    let epoch = default_epoch();
    let steps = (PAPER_DURATION_S / PAPER_STEP_S) as usize;
    let dark: Vec<bool> = (0..steps)
        .map(|k| {
            let at = epoch.plus_seconds(k as f64 * PAPER_STEP_S);
            (0..scenario.lans.len()).all(|lan| {
                Twilight::Astronomical.is_dark(scenario.lan_centroid(lan).with_alt(300.0), at)
            })
        })
        .collect();
    let gated: Vec<bool> = flags.iter().zip(&dark).map(|(&c, &d)| c && d).collect();

    let plain = 100.0 * flags.iter().filter(|&&b| b).count() as f64 / steps as f64;
    DemandReport {
        satellites,
        space_percent: plain,
        space_weighted_percent: demand_weighted_percent(&flags, PAPER_STEP_S),
        space_night_weighted_percent: demand_weighted_percent(&gated, PAPER_STEP_S),
        air_night_weighted_percent: demand_weighted_percent(&dark, PAPER_STEP_S),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_profile_shape() {
        // Peak at 14:00, trough overnight, floor respected.
        assert!((business_hours_demand(14.0) - 1.0).abs() < 1e-12);
        assert!(business_hours_demand(2.0) <= business_hours_demand(10.0));
        for h in 0..24 {
            let d = business_hours_demand(f64::from(h));
            assert!((0.1..=1.0).contains(&d), "h={h}: {d}");
        }
        assert!(business_hours_demand(2.0) >= 0.1);
    }

    #[test]
    fn weighting_identities() {
        // Always-available -> 100% regardless of weighting; never -> 0%.
        assert!((demand_weighted_percent(&vec![true; 2880], 30.0) - 100.0).abs() < 1e-9);
        assert!(demand_weighted_percent(&vec![false; 2880], 30.0) < 1e-9);
    }

    #[test]
    fn night_availability_is_demand_suppressed() {
        // A mask that is up only when it's dark scores *below* its
        // unweighted fraction under a business-hours demand profile.
        let epoch = default_epoch();
        let steps = 2880;
        let dark: Vec<bool> = (0..steps)
            .map(|k| {
                let at = epoch.plus_seconds(k as f64 * 30.0);
                Twilight::Astronomical.is_dark(qntn_geo::Geodetic::from_deg(36.0, -85.0, 300.0), at)
            })
            .collect();
        let unweighted = 100.0 * dark.iter().filter(|&&d| d).count() as f64 / steps as f64;
        let weighted = demand_weighted_percent(&dark, 30.0);
        assert!(
            weighted < unweighted,
            "night service should lose under daytime demand: {weighted} vs {unweighted}"
        );
    }

    #[test]
    fn satellite_coverage_is_roughly_demand_neutral() {
        // Satellite passes are spread across the day, so weighting moves
        // coverage by only a few points.
        let q = Qntn::standard();
        let r = analyze(&q, SimConfig::default(), 18);
        assert!(
            (r.space_weighted_percent - r.space_percent).abs() < 5.0,
            "weighted {} vs plain {}",
            r.space_weighted_percent,
            r.space_percent
        );
        // And the night-gated weighted number is far below the plain one.
        assert!(r.space_night_weighted_percent < r.space_percent);
        assert!(r.air_night_weighted_percent < 40.0);
    }
}
