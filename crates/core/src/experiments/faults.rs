//! Degradation under deterministic fault injection — the `reproduce
//! faults` artifact.
//!
//! The paper's Table III assumes ideal conditions: every platform healthy
//! all day. This experiment re-runs the headline comparison (space–ground
//! constellation vs. air–ground HAP) under a seeded [`FaultModel`] at a
//! ladder of intensities, with retry-with-backoff request semantics, and
//! reports how coverage, served percentage and fidelity degrade. Intensity
//! 0 is exactly the paper's assumption — the zero point reproduces the
//! fault-free run bit for bit (asserted by tests), so the ladder anchors to
//! the published numbers.

use crate::architecture::{AirGround, SpaceGround};
use crate::scenario::Qntn;
use qntn_net::faults::FaultModel;
use qntn_net::requests::{sample_steps, RetryPolicy, RetryStats};
use qntn_net::{QuantumNetworkSim, SimConfig, SweepEngine};
use qntn_orbit::PerturbationModel;
use qntn_routing::RouteMetric;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Settings for one fault-degradation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultExperiment {
    /// Space–ground constellation size.
    pub satellites: usize,
    /// The fault-intensity ladder (0 = the paper's ideal conditions).
    pub intensities: Vec<f64>,
    /// Seed of the fault schedule (workload seed is separate).
    pub fault_seed: u64,
    /// How many arrival steps to sample across the day.
    pub sampled_steps: usize,
    /// Requests per sampled arrival step.
    pub requests_per_step: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Routing metric.
    pub metric: RouteMetric,
    /// Retry policy for blocked requests.
    pub retry: RetryPolicy,
}

/// One architecture's numbers at one fault intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultArchPoint {
    /// Full-day coverage percentage (paper Eq. 7) under the mask.
    pub coverage_percent: f64,
    /// Requests served by any attempt, percent.
    pub served_percent: f64,
    /// Served on the arrival step, percent.
    pub first_try_percent: f64,
    /// Rescued by a retry, percent.
    pub rescued_percent: f64,
    /// Expired unserved, percent.
    pub expired_percent: f64,
    /// Mean end-to-end square-root fidelity over served requests.
    pub mean_fidelity: f64,
    /// Mean per-link square-root fidelity over served requests.
    pub mean_link_fidelity: f64,
    /// The raw retried-sweep statistics.
    pub stats: RetryStats,
}

/// One rung of the intensity ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPoint {
    pub intensity: f64,
    pub space: FaultArchPoint,
    pub air: FaultArchPoint,
}

/// The full degradation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweep {
    pub satellites: usize,
    pub points: Vec<FaultPoint>,
}

impl FaultExperiment {
    /// The full artifact: the paper's 108-satellite constellation and HAP,
    /// paper-sized workload, intensities from ideal to 4× nominal.
    pub fn standard() -> FaultExperiment {
        FaultExperiment {
            satellites: 108,
            intensities: vec![0.0, 0.5, 1.0, 2.0, 4.0],
            fault_seed: 777,
            sampled_steps: 100,
            requests_per_step: 100,
            seed: 2024,
            metric: RouteMetric::PaperInverseEta,
            retry: RetryPolicy::standard(),
        }
    }

    /// A small configuration for tests and `--quick` runs.
    pub fn quick() -> FaultExperiment {
        FaultExperiment {
            satellites: 8,
            intensities: vec![0.0, 1.0, 4.0],
            fault_seed: 777,
            sampled_steps: 8,
            requests_per_step: 15,
            seed: 2024,
            metric: RouteMetric::PaperInverseEta,
            retry: RetryPolicy::standard(),
        }
    }

    /// Run the sweep (parallel over time steps).
    pub fn run(&self, scenario: &Qntn, config: SimConfig) -> FaultSweep {
        self.run_with_options(scenario, config, true)
    }

    /// [`FaultExperiment::run`] with explicit parallelism control. Both
    /// architectures and their contact windows are built once; each rung
    /// compiles one fault mask per simulator and shares it across workers.
    pub fn run_with_options(
        &self,
        scenario: &Qntn,
        config: SimConfig,
        parallel: bool,
    ) -> FaultSweep {
        let space = SpaceGround::new(
            scenario,
            self.satellites,
            config,
            PerturbationModel::TwoBody,
        );
        let air = AirGround::standard(scenario);
        let points = self
            .intensities
            .iter()
            .map(|&intensity| FaultPoint {
                intensity,
                space: self.arch_point(space.sim(), intensity, parallel),
                air: self.arch_point(air.sim(), intensity, parallel),
            })
            .collect();
        FaultSweep {
            satellites: self.satellites,
            points,
        }
    }

    fn arch_point(
        &self,
        sim: &QuantumNetworkSim,
        intensity: f64,
        parallel: bool,
    ) -> FaultArchPoint {
        let faults = Arc::new(
            FaultModel::standard(self.fault_seed)
                .with_intensity(intensity)
                .compile(sim),
        );
        let engine = SweepEngine::new(sim)
            .with_parallel(parallel)
            .with_faults(faults);
        let coverage = engine.coverage().percent();
        let steps = sample_steps(sim.steps(), self.sampled_steps);
        let stats = engine.sweep_with_retries(
            &steps,
            self.requests_per_step,
            self.seed,
            self.metric,
            self.retry,
        );
        FaultArchPoint {
            coverage_percent: coverage,
            served_percent: stats.served_percent(),
            first_try_percent: stats.first_try_percent(),
            rescued_percent: stats.rescued_percent(),
            expired_percent: stats.expired_percent(),
            mean_fidelity: stats.mean_fidelity,
            mean_link_fidelity: stats.mean_link_fidelity,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fidelity::FidelityExperiment;

    fn tiny() -> FaultExperiment {
        FaultExperiment {
            satellites: 4,
            intensities: vec![0.0, 1.0, FaultModel::INTENSITY_CAP],
            sampled_steps: 4,
            requests_per_step: 10,
            ..FaultExperiment::quick()
        }
    }

    #[test]
    fn served_is_monotone_in_intensity() {
        let q = Qntn::standard();
        let sweep = tiny().run(&q, SimConfig::default());
        for pair in sweep.points.windows(2) {
            assert!(pair[0].intensity < pair[1].intensity);
            assert!(
                pair[1].space.stats.served() <= pair[0].space.stats.served(),
                "space served rose: {:?}",
                pair
            );
            assert!(
                pair[1].air.stats.served() <= pair[0].air.stats.served(),
                "air served rose: {:?}",
                pair
            );
        }
        // Percent splits always partition the workload.
        for p in &sweep.points {
            for a in [p.space, p.air] {
                let total = a.first_try_percent + a.rescued_percent + a.expired_percent;
                assert!((total - 100.0).abs() < 1e-9, "{total}");
            }
        }
    }

    #[test]
    fn zero_intensity_matches_the_fault_free_experiment() {
        // The ladder's anchor: at intensity 0 the (single-attempt) served
        // set must equal the fault-free FidelityExperiment's, request for
        // request — the "ideal conditions" row IS the paper's number.
        let q = Qntn::standard();
        let mut e = tiny();
        e.retry = RetryPolicy::none();
        let sweep = e.run(&q, SimConfig::default());
        let zero = &sweep.points[0];
        assert_eq!(zero.intensity, 0.0);
        let clean = FidelityExperiment {
            sampled_steps: e.sampled_steps,
            requests_per_step: e.requests_per_step,
            seed: e.seed,
            metric: e.metric,
        };
        let arch = SpaceGround::new(
            &q,
            e.satellites,
            SimConfig::default(),
            PerturbationModel::TwoBody,
        );
        let clean_space = clean.run_space_ground(&arch);
        assert_eq!(zero.space.stats.served(), clean_space.stats.served);
        assert_eq!(
            zero.space.mean_fidelity.to_bits(),
            clean_space.mean_fidelity.to_bits(),
            "fault-free fidelity must be bit-identical at intensity 0"
        );
        assert_eq!(zero.space.stats.served_after_retry, 0);
    }

    #[test]
    fn deterministic_across_runs_and_parallelism() {
        let q = Qntn::standard();
        let e = tiny();
        let a = e.run_with_options(&q, SimConfig::default(), true);
        let b = e.run_with_options(&q, SimConfig::default(), false);
        assert_eq!(a, b);
    }
}
