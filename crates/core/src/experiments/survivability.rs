//! Survivability extension: edge-disjoint path redundancy.
//!
//! The air-ground architecture funnels every inter-city pair through one
//! HAP — survivability 1 by construction (one platform loss, one storm
//! cell, one maintenance window severs the region). The space-ground
//! architecture, when it is connected at all, often has several satellites
//! above threshold simultaneously and therefore genuine path redundancy.
//! This experiment measures the distribution of vertex-disjoint inter-city
//! path counts (platform-failure redundancy) for both architectures — the
//! resilience dimension Table III does not capture.

use crate::architecture::{AirGround, SpaceGround};
use qntn_net::requests::{sample_steps, RequestWorkload};
use qntn_net::QuantumNetworkSim;
use qntn_routing::survivability;
use serde::{Deserialize, Serialize};

/// Redundancy statistics for one architecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurvivabilityReport {
    /// Requests with at least one path, percent of all sampled.
    pub connected_percent: f64,
    /// Requests with ≥ 2 vertex-disjoint paths, percent of all sampled.
    pub redundant_percent: f64,
    /// Mean disjoint-path count over *connected* requests.
    pub mean_disjoint_paths: f64,
    /// Largest disjoint-path count observed.
    pub max_disjoint_paths: usize,
}

/// The experiment: sample steps × random inter-LAN pairs, count disjoint
/// paths on the thresholded graph.
#[derive(Debug, Clone, Copy)]
pub struct SurvivabilityExperiment {
    pub sampled_steps: usize,
    pub pairs_per_step: usize,
    pub seed: u64,
}

impl SurvivabilityExperiment {
    /// Default sampling.
    pub fn standard() -> SurvivabilityExperiment {
        SurvivabilityExperiment {
            sampled_steps: 20,
            pairs_per_step: 20,
            seed: 2024,
        }
    }

    /// Evaluate a simulator.
    pub fn run(&self, sim: &QuantumNetworkSim) -> SurvivabilityReport {
        let steps = sample_steps(sim.steps(), self.sampled_steps);
        let mut attempted = 0usize;
        let mut connected = 0usize;
        let mut redundant = 0usize;
        let mut sum_paths = 0usize;
        let mut max_paths = 0usize;
        for &step in &steps {
            let graph = sim.active_graph_at(step);
            let workload = RequestWorkload::generate(
                sim,
                self.pairs_per_step,
                self.seed ^ (step as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            for r in &workload.requests {
                attempted += 1;
                let k = survivability(&graph, r.src, r.dst);
                if k >= 1 {
                    connected += 1;
                    sum_paths += k;
                }
                if k >= 2 {
                    redundant += 1;
                }
                max_paths = max_paths.max(k);
            }
        }
        SurvivabilityReport {
            connected_percent: 100.0 * connected as f64 / attempted as f64,
            redundant_percent: 100.0 * redundant as f64 / attempted as f64,
            mean_disjoint_paths: if connected > 0 {
                sum_paths as f64 / connected as f64
            } else {
                0.0
            },
            max_disjoint_paths: max_paths,
        }
    }

    /// Evaluate the air-ground architecture.
    pub fn run_air_ground(&self, arch: &AirGround) -> SurvivabilityReport {
        self.run(arch.sim())
    }

    /// Evaluate the space-ground architecture.
    pub fn run_space_ground(&self, arch: &SpaceGround) -> SurvivabilityReport {
        self.run(arch.sim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Qntn;
    use qntn_net::SimConfig;
    use qntn_orbit::PerturbationModel;

    fn quick() -> SurvivabilityExperiment {
        SurvivabilityExperiment {
            sampled_steps: 3,
            pairs_per_step: 10,
            seed: 5,
        }
    }

    #[test]
    fn air_ground_is_connected_but_never_redundant() {
        // The HAP star: every inter-city pair has exactly one disjoint path.
        let q = Qntn::standard();
        let arch = AirGround::standard(&q);
        let r = quick().run_air_ground(&arch);
        assert!((r.connected_percent - 100.0).abs() < 1e-9);
        assert_eq!(r.redundant_percent, 0.0, "{r:?}");
        assert!((r.mean_disjoint_paths - 1.0).abs() < 1e-9);
        assert_eq!(r.max_disjoint_paths, 1);
    }

    #[test]
    fn space_ground_redundancy_needs_multiple_visible_satellites() {
        // Walker constellations are anti-clustered, so two satellites above
        // threshold for the *same* city pair at the same instant is rare
        // even at 108 satellites (measured: < 5 % of connected instants).
        // Assert the structural facts that always hold.
        let q = Qntn::standard();
        let arch = SpaceGround::new(&q, 36, SimConfig::default(), PerturbationModel::TwoBody);
        let r = SurvivabilityExperiment {
            sampled_steps: 12,
            pairs_per_step: 12,
            seed: 5,
        }
        .run_space_ground(&arch);
        assert!(r.connected_percent <= 100.0);
        assert!(r.redundant_percent <= r.connected_percent);
        if r.max_disjoint_paths >= 2 {
            assert!(r.mean_disjoint_paths > 1.0);
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let q = Qntn::standard();
        let arch = AirGround::standard(&q);
        let a = quick().run_air_ground(&arch);
        let b = quick().run_air_ground(&arch);
        assert_eq!(a.connected_percent, b.connected_percent);
        assert_eq!(a.max_disjoint_paths, b.max_disjoint_paths);
    }
}
