//! Fig. 8 — average entanglement fidelity of resolved requests vs the
//! number of satellites. A thin projection of [`super::sweep`].

use crate::experiments::sweep::ConstellationSweep;
use serde::{Deserialize, Serialize};

/// The average-fidelity series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FidelitySeries {
    pub satellites: Vec<usize>,
    pub mean_fidelity: Vec<f64>,
    pub mean_link_fidelity: Vec<f64>,
    pub mean_eta: Vec<f64>,
}

impl FidelitySeries {
    /// Project the series out of a finished sweep.
    pub fn from_sweep(sweep: &ConstellationSweep) -> FidelitySeries {
        FidelitySeries {
            satellites: sweep.points.iter().map(|p| p.satellites).collect(),
            mean_fidelity: sweep.points.iter().map(|p| p.stats.mean_fidelity).collect(),
            mean_link_fidelity: sweep
                .points
                .iter()
                .map(|p| p.stats.mean_link_fidelity)
                .collect(),
            mean_eta: sweep.points.iter().map(|p| p.stats.mean_eta).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::{ConstellationSweep, SweepSettings};
    use crate::scenario::Qntn;
    use qntn_net::SimConfig;
    use qntn_orbit::PerturbationModel;

    #[test]
    fn fidelity_consistent_with_eta() {
        let sweep = ConstellationSweep::run(
            &Qntn::standard(),
            SimConfig::default(),
            &[18],
            SweepSettings::quick(),
            PerturbationModel::TwoBody,
        );
        let s = FidelitySeries::from_sweep(&sweep);
        assert_eq!(s.satellites, vec![18]);
        if sweep.points[0].stats.served > 0 {
            // Jensen: mean F ≥ F(mean η) is not guaranteed in general, but
            // the concave (1+√η)/2 makes mean-of-F ≥ F-of-mean; check the
            // weaker sanity bounds instead.
            let f = s.mean_fidelity[0];
            let eta = s.mean_eta[0];
            assert!((0.5..=1.0).contains(&f));
            assert!((0.0..=1.0).contains(&eta));
            assert!(f >= (1.0 + eta.sqrt()) / 2.0 - 0.05);
        }
    }
}
