//! HAP-stability extension: pointing jitter from platform vibration.
//!
//! The paper flags "vibrations, which can impact the stability and accuracy
//! of entanglement distribution" as the air-ground architecture's key open
//! problem. This experiment sweeps the transmitter pointing jitter of the
//! HAP and reports where the architecture's headline numbers collapse:
//! jitter broadens the received spot (variance `2(σ_p·L)²`), dropping
//! transmissivity below threshold once σ_p·L approaches the beam radius.

use crate::architecture::AirGround;
use crate::experiments::fidelity::{ArchReport, FidelityExperiment};
use crate::scenario::Qntn;
use qntn_channel::params::FsoParams;
use qntn_net::SimConfig;
use serde::{Deserialize, Serialize};

/// One point of the jitter sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilityPoint {
    /// RMS pointing jitter, microradians.
    pub jitter_urad: f64,
    /// The air-ground report at that jitter.
    pub report: ArchReport,
}

/// The jitter sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilitySweep {
    pub points: Vec<StabilityPoint>,
}

impl StabilitySweep {
    /// Default sweep: 0 to 30 µrad (a 78 km HAP link's beam radius is
    /// ~0.2 m ≈ 2.6 µrad of pointing, so this spans harmless → fatal).
    pub fn standard_jitters_urad() -> Vec<f64> {
        vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0]
    }

    /// Run over the given jitter values (µrad).
    pub fn run(
        scenario: &Qntn,
        jitters_urad: &[f64],
        experiment: FidelityExperiment,
    ) -> StabilitySweep {
        let points = jitters_urad
            .iter()
            .map(|&urad| {
                let config = SimConfig {
                    fso: FsoParams::ideal().with_pointing_jitter(urad * 1e-6),
                    ..SimConfig::default()
                };
                let arch = AirGround::new(scenario, config);
                StabilityPoint {
                    jitter_urad: urad,
                    report: experiment.run_air_ground(&arch),
                }
            })
            .collect();
        StabilitySweep { points }
    }

    /// The largest jitter that still serves every request, µrad.
    pub fn tolerable_jitter_urad(&self) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.report.served_percent >= 100.0 - 1e-9)
            .map(|p| p.jitter_urad)
            .fold(None, |acc, j| Some(acc.map_or(j, |a: f64| a.max(j))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sweep(jitters: &[f64]) -> StabilitySweep {
        StabilitySweep::run(
            &Qntn::standard(),
            jitters,
            FidelityExperiment {
                sampled_steps: 2,
                requests_per_step: 15,
                ..FidelityExperiment::quick()
            },
        )
    }

    #[test]
    fn fidelity_degrades_monotonically_with_jitter() {
        let s = quick_sweep(&[0.0, 2.0, 8.0]);
        for w in s.points.windows(2) {
            let (a, b) = (&w[0].report, &w[1].report);
            assert!(b.served_percent <= a.served_percent + 1e-9);
            if a.stats.served > 0 && b.stats.served > 0 {
                assert!(b.mean_eta <= a.mean_eta + 1e-9);
            }
        }
    }

    #[test]
    fn zero_jitter_recovers_the_paper_baseline() {
        let s = quick_sweep(&[0.0]);
        let r = &s.points[0].report;
        assert!((r.served_percent - 100.0).abs() < 1e-9);
        assert!(r.mean_fidelity > 0.95);
    }

    #[test]
    fn large_jitter_kills_the_network() {
        let s = quick_sweep(&[50.0]);
        assert_eq!(s.points[0].report.served_percent, 0.0);
        assert_eq!(s.tolerable_jitter_urad(), None);
    }

    #[test]
    fn tolerable_jitter_is_single_digit_microradians() {
        let s = quick_sweep(&[0.0, 1.0, 30.0]);
        let tol = s.tolerable_jitter_urad().expect("zero jitter always works");
        assert!((1.0..30.0).contains(&tol), "{tol}");
    }
}
