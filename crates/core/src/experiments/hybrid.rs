//! The paper's future-work hybrid: a HAP **and** a satellite constellation.
//!
//! Section V: "we will investigate hybrid solutions that combine the
//! strengths of both space-ground and air-ground architectures." This
//! extension builds that network — the HAP provides the always-on floor,
//! satellites add extra (sometimes shorter/stronger) paths — and evaluates
//! it with the same experiment harness.

use crate::architecture::{default_epoch, SpaceGround};
use crate::scenario::Qntn;
use qntn_channel::params::ApertureSet;
use qntn_net::{Host, QuantumNetworkSim, SimConfig};
use qntn_orbit::ephemeris::{PAPER_DURATION_S, PAPER_STEP_S};
use qntn_orbit::PerturbationModel;

/// The hybrid architecture: ground LANs + one HAP + N satellites.
#[derive(Debug, Clone)]
pub struct Hybrid {
    sim: QuantumNetworkSim,
    satellites: usize,
}

impl Hybrid {
    /// Build with `n` satellites plus the standard HAP.
    pub fn new(scenario: &Qntn, n: usize, config: SimConfig, model: PerturbationModel) -> Hybrid {
        let apertures = ApertureSet::paper();
        let mut hosts = Vec::new();
        for (lan_id, lan) in scenario.lans.iter().enumerate() {
            for (k, &pos) in lan.nodes.iter().enumerate() {
                hosts.push(Host::ground(
                    format!("{}-{k}", lan.name),
                    lan_id,
                    pos,
                    apertures.ground_m,
                ));
            }
        }
        hosts.push(Host::hap("HAP-1", scenario.hap, apertures.hap_m));
        for (i, eph) in SpaceGround::ephemerides(n, model).into_iter().enumerate() {
            hosts.push(Host::satellite(
                format!("SAT-{i:03}"),
                eph,
                apertures.satellite_m,
            ));
        }
        let steps = (PAPER_DURATION_S / PAPER_STEP_S) as usize;
        let _ = default_epoch();
        Hybrid {
            sim: QuantumNetworkSim::new(hosts, config, steps, PAPER_STEP_S),
            satellites: n,
        }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &QuantumNetworkSim {
        &self.sim
    }

    /// Number of satellites (in addition to the HAP).
    pub fn satellites(&self) -> usize {
        self.satellites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fidelity::FidelityExperiment;

    #[test]
    fn hybrid_keeps_full_coverage() {
        let q = Qntn::standard();
        let h = Hybrid::new(&q, 6, SimConfig::default(), PerturbationModel::TwoBody);
        assert_eq!(h.satellites(), 6);
        assert_eq!(h.sim().hosts().len(), 31 + 1 + 6);
        let r = FidelityExperiment::quick().run(h.sim());
        // The HAP floor guarantees the air-ground properties survive.
        assert!((r.coverage_percent - 100.0).abs() < 1e-12);
        assert!((r.served_percent - 100.0).abs() < 1e-12);
    }

    #[test]
    fn hybrid_fidelity_at_least_air_ground() {
        // Extra satellite paths can only help the routing optimum; with the
        // paper's hop-biased metric they in practice leave fidelity within
        // noise of the HAP-only value.
        let q = Qntn::standard();
        let h = Hybrid::new(&q, 6, SimConfig::default(), PerturbationModel::TwoBody);
        let air = crate::architecture::AirGround::standard(&q);
        let e = FidelityExperiment::quick();
        let rh = e.run(h.sim());
        let ra = e.run_air_ground(&air);
        assert!(rh.mean_fidelity > ra.mean_fidelity - 0.05);
    }
}
