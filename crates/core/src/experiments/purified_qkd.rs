//! Purification-rescued QKD: closing the loop between two extension
//! findings.
//!
//! The QKD extension shows that satellite-relay pairs (η_path ≈ 0.63) carry
//! zero one-way BBM92 key at the paper's threshold; the repeater protocols
//! provide BBPSSW purification. This experiment composes them: iterate
//! (twirl → purify) on the distributed pair until the key fraction turns
//! positive, and account the raw-pair cost — the real price of turning
//! the paper's "entanglement service" into a key service.

use qntn_quantum::channels::amplitude_damping;
use qntn_quantum::protocols::{purify_bbpssw, twirl_to_werner};
use qntn_quantum::qkd::bbm92_key_fraction;
use qntn_quantum::state::{bell_phi_plus, DensityMatrix};
use serde::{Deserialize, Serialize};

/// Outcome of pumping one distributed pair until it carries key.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PumpOutcome {
    /// End-to-end transmissivity of the raw distributed pairs.
    pub eta: f64,
    /// Purification rounds needed (0 = raw pair already carries key).
    pub rounds: usize,
    /// Key fraction after the final round.
    pub key_fraction: f64,
    /// Expected raw pairs consumed per output pair
    /// (each round doubles the input and divides by its success rate).
    pub raw_pairs_per_output: f64,
    /// Secret bits per raw distributed pair: key_fraction / cost.
    pub key_per_raw_pair: f64,
}

/// Pump a one-sided-AD(η) pair with (twirl → BBPSSW) rounds until the
/// BBM92 key fraction is positive, up to `max_rounds`. Returns `None` when
/// the pump fails to reach a positive key (too noisy to rescue).
pub fn pump_until_key(eta: f64, max_rounds: usize) -> Option<PumpOutcome> {
    let bell = bell_phi_plus().density();
    let mut rho: DensityMatrix = amplitude_damping(eta).on_qubit(1, 2).apply(&bell);
    let mut cost = 1.0;
    for rounds in 0..=max_rounds {
        let key = bbm92_key_fraction(&rho);
        if key > 0.0 {
            return Some(PumpOutcome {
                eta,
                rounds,
                key_fraction: key,
                raw_pairs_per_output: cost,
                key_per_raw_pair: key / cost,
            });
        }
        if rounds == max_rounds {
            break;
        }
        let out = purify_bbpssw(&twirl_to_werner(&rho));
        cost = cost * 2.0 / out.success_probability;
        rho = out.state;
    }
    None
}

/// The sweep over path transmissivities (the reproduce artifact).
pub fn sweep(etas: &[f64], max_rounds: usize) -> Vec<(f64, Option<PumpOutcome>)> {
    etas.iter()
        .map(|&eta| (eta, pump_until_key(eta, max_rounds)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_pairs_need_no_pumping() {
        // HAP-grade path (η ≈ 0.92): raw pair already carries key.
        let out = pump_until_key(0.92, 5).expect("strong pair");
        assert_eq!(out.rounds, 0);
        assert_eq!(out.raw_pairs_per_output, 1.0);
        assert!(out.key_fraction > 0.3);
        assert_eq!(out.key_per_raw_pair, out.key_fraction);
    }

    #[test]
    fn satellite_pairs_are_rescued_at_a_price() {
        // Space-relay path (η ≈ 0.63): zero raw key, positive after pumping.
        let out = pump_until_key(0.63, 8).expect("pump should rescue 0.63");
        assert!(out.rounds >= 1, "{out:?}");
        assert!(out.key_fraction > 0.0);
        assert!(out.raw_pairs_per_output >= 2.0, "{out:?}");
        // Efficiency strictly worse than a raw HAP pair.
        let hap = pump_until_key(0.92, 5).unwrap();
        assert!(out.key_per_raw_pair < hap.key_per_raw_pair);
    }

    #[test]
    fn hopeless_pairs_stay_hopeless() {
        // Below the purification fixed point (Werner F <= 1/2) pumping
        // cannot help; η = 0.1 gives F ≈ 0.66... compute: AD(0.1) Bell pair
        // has F_jozsa = (1+√0.1)²/4 ≈ 0.43 < 1/2 — unrescuable.
        assert!(pump_until_key(0.1, 10).is_none());
    }

    #[test]
    fn rounds_decrease_with_eta() {
        let mut prev_rounds = usize::MAX;
        for eta in [0.55, 0.65, 0.75, 0.85] {
            if let Some(out) = pump_until_key(eta, 10) {
                assert!(out.rounds <= prev_rounds, "eta {eta}: {out:?}");
                prev_rounds = out.rounds;
            }
        }
        assert!(prev_rounds < usize::MAX, "at least one eta must succeed");
    }

    #[test]
    fn sweep_shape() {
        let rows = sweep(&[0.5, 0.7, 0.9], 6);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, 0.5);
    }
}
