//! Fig. 7 — percentage of served entanglement-distribution requests vs the
//! number of satellites. A thin projection of [`super::sweep`].

use crate::experiments::sweep::ConstellationSweep;
use serde::{Deserialize, Serialize};

/// The served-requests series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServedSeries {
    pub satellites: Vec<usize>,
    pub served_percent: Vec<f64>,
}

impl ServedSeries {
    /// Project the series out of a finished sweep.
    pub fn from_sweep(sweep: &ConstellationSweep) -> ServedSeries {
        ServedSeries {
            satellites: sweep.points.iter().map(|p| p.satellites).collect(),
            served_percent: sweep
                .points
                .iter()
                .map(|p| p.stats.served_percent())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::{ConstellationSweep, SweepSettings};
    use crate::scenario::Qntn;
    use qntn_net::SimConfig;
    use qntn_orbit::PerturbationModel;

    #[test]
    fn projection_matches_sweep() {
        let sweep = ConstellationSweep::run(
            &Qntn::standard(),
            SimConfig::default(),
            &[12],
            SweepSettings::quick(),
            PerturbationModel::TwoBody,
        );
        let s = ServedSeries::from_sweep(&sweep);
        assert_eq!(s.satellites, vec![12]);
        assert_eq!(s.served_percent.len(), 1);
        assert!((s.served_percent[0] - sweep.points[0].stats.served_percent()).abs() < 1e-12);
        assert!((0.0..=100.0).contains(&s.served_percent[0]));
    }
}
