//! Fig. 5 — transmissivity vs entanglement fidelity.
//!
//! The paper sweeps a single fiber link's transmissivity from 0 to 1 in
//! steps of 0.01, distributes a Bell pair and measures the fidelity; the
//! resulting curve justifies the 0.7 threshold ("transmissivity of 0.7
//! yields an entanglement fidelity greater than 90%"). We run the sweep
//! through the full density-matrix pipeline (not the closed form) so the
//! figure exercises the same code path as the network experiments.

use qntn_quantum::channels::amplitude_damping;
#[cfg(test)]
use qntn_quantum::fidelity::bell_ad_sqrt_fidelity;
use qntn_quantum::fidelity::{fidelity_to_pure, sqrt_fidelity_to_pure};
use qntn_quantum::state::bell_phi_plus;
use serde::{Deserialize, Serialize};

/// One point of the Fig. 5 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    pub eta: f64,
    /// Square-root convention (what the paper's figure shows).
    pub fidelity: f64,
    /// Jozsa convention (the square), for reference.
    pub fidelity_jozsa: f64,
}

/// The full transmissivity → fidelity curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FidelityCurve {
    pub points: Vec<CurvePoint>,
}

impl FidelityCurve {
    /// The paper's sweep: η from 0 to 1 inclusive in steps of 0.01.
    pub fn paper() -> FidelityCurve {
        Self::with_resolution(100)
    }

    /// A sweep with `n` intervals (n+1 points).
    pub fn with_resolution(n: usize) -> FidelityCurve {
        assert!(n >= 1);
        let bell = bell_phi_plus();
        let points = (0..=n)
            .map(|k| {
                let eta = k as f64 / n as f64;
                let damped = amplitude_damping(eta).on_qubit(1, 2).apply(&bell.density());
                CurvePoint {
                    eta,
                    fidelity: sqrt_fidelity_to_pure(&damped, &bell),
                    fidelity_jozsa: fidelity_to_pure(&damped, &bell),
                }
            })
            .collect();
        FidelityCurve { points }
    }

    /// The smallest η whose fidelity is at least `target` — how the paper
    /// picked its 0.7 threshold for F > 0.9.
    pub fn threshold_for_fidelity(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.fidelity >= target)
            .map(|p| p.eta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_101_points() {
        let c = FidelityCurve::paper();
        assert_eq!(c.points.len(), 101);
        assert_eq!(c.points[0].eta, 0.0);
        assert_eq!(c.points[100].eta, 1.0);
    }

    #[test]
    fn matches_closed_form_everywhere() {
        for p in &FidelityCurve::paper().points {
            assert!(
                (p.fidelity - bell_ad_sqrt_fidelity(p.eta)).abs() < 1e-10,
                "eta {}",
                p.eta
            );
        }
    }

    #[test]
    fn endpoints() {
        let c = FidelityCurve::paper();
        assert!((c.points[0].fidelity - 0.5).abs() < 1e-12);
        assert!((c.points[100].fidelity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_threshold_point() {
        let c = FidelityCurve::paper();
        // At η = 0.7 the fidelity exceeds 0.9 …
        let at_07 = c
            .points
            .iter()
            .find(|p| (p.eta - 0.7).abs() < 1e-9)
            .unwrap();
        assert!(at_07.fidelity > 0.9);
        // … and 0.7 is (approximately) where 0.9 is first reached.
        let th = c.threshold_for_fidelity(0.9).unwrap();
        assert!((0.6..=0.7).contains(&th), "{th}");
    }

    #[test]
    fn curve_is_monotone() {
        let c = FidelityCurve::paper();
        for w in c.points.windows(2) {
            assert!(w[1].fidelity >= w[0].fidelity);
            assert!(w[1].fidelity_jozsa >= w[0].fidelity_jozsa);
        }
    }

    #[test]
    fn jozsa_below_sqrt_convention() {
        for p in &FidelityCurve::paper().points[1..100] {
            assert!(p.fidelity_jozsa < p.fidelity);
        }
    }
}
