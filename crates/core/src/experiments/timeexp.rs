//! Store-and-forward serving vs. the memoryless baseline — the
//! `reproduce timeexp` artifact.
//!
//! The paper's routing is strictly simultaneous: a request is served only
//! if every link of some path is up *on the same step*. With decohering
//! quantum memories ([`qntn_quantum::memory`]) an intermediate node can
//! instead hold a Bell half across a contact gap and swap when the next
//! pass arrives. This experiment serves one seeded workload twice over
//! the same day — per-step ([`qntn_serve::serve_report`]) and hold-aware
//! at a ladder of memory horizons
//! ([`qntn_serve::serve_report_with_holds`]) — and reports how the served
//! percentage, waiting profile and delivered fidelity trade off as the
//! horizon grows. Horizon 0 with zero memory is the baseline itself, bit
//! for bit (the zero-horizon differential contract pinned in
//! `tests/timexp.rs`).

use crate::architecture::SpaceGround;
use crate::scenario::Qntn;
use qntn_net::requests::RetryPolicy;
use qntn_net::{SimConfig, SweepEngine};
use qntn_orbit::PerturbationModel;
use qntn_quantum::memory::ClassMemory;
use qntn_routing::RouteMetric;
use qntn_serve::{
    generate, ingest, serve_report, serve_report_with_holds, HoldPolicy, ServeReport, WorkloadKind,
};
use serde::{Deserialize, Serialize};

/// Settings for one store-and-forward comparison sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeexpExperiment {
    /// Space–ground constellation size.
    pub satellites: usize,
    /// The memory-horizon ladder, in steps (0 = hold-aware machinery with
    /// no lookahead; the memoryless per-step baseline is reported
    /// separately).
    pub horizons: Vec<usize>,
    /// Minimum end-to-end square-root fidelity a held delivery must
    /// retain, memory decay included ([`HoldPolicy::fidelity_floor`]).
    pub fidelity_floor: f64,
    /// Workload size (requests over the day).
    pub requests: usize,
    /// Workload shape.
    pub workload: WorkloadKind,
    /// Workload RNG seed.
    pub seed: u64,
    /// Routing metric.
    pub metric: RouteMetric,
    /// Retry policy shared by both serving modes.
    pub retry: RetryPolicy,
}

/// One serving mode's headline numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeexpPoint {
    /// Memory horizon in steps; `None` for the per-step baseline.
    pub horizon_steps: Option<usize>,
    /// Requests served by any attempt, percent of attempted.
    pub served_percent: f64,
    /// Served on the arrival step with no wait, percent.
    pub first_try_percent: f64,
    /// Rescued by a retry or a memory hold, percent.
    pub rescued_percent: f64,
    /// Expired unserved, percent.
    pub expired_percent: f64,
    /// Mean end-to-end square-root fidelity over served requests (memory
    /// decay included in the hold-aware rows).
    pub mean_fidelity: f64,
    /// Mean attempts per request.
    pub mean_attempts: f64,
    /// Median wait over served requests; `None` when nothing was served.
    pub p50_wait_steps: Option<u64>,
    /// 95th-percentile wait over served requests; `None` when nothing was
    /// served.
    pub p95_wait_steps: Option<u64>,
}

impl TimeexpPoint {
    fn from_report(horizon_steps: Option<usize>, r: &ServeReport) -> TimeexpPoint {
        TimeexpPoint {
            horizon_steps,
            served_percent: r.served_percent(),
            first_try_percent: r.first_try_percent(),
            rescued_percent: r.rescued_percent(),
            expired_percent: r.expired_percent(),
            mean_fidelity: r.mean_fidelity,
            mean_attempts: r.mean_attempts,
            p50_wait_steps: r.p50_wait_steps,
            p95_wait_steps: r.p95_wait_steps,
        }
    }
}

/// The full comparison: the memoryless baseline plus one row per horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeexpSweep {
    pub satellites: usize,
    pub fidelity_floor: f64,
    /// The per-step (memoryless) serve of the identical workload.
    pub baseline: TimeexpPoint,
    /// Hold-aware rows, one per horizon, in ladder order.
    pub points: Vec<TimeexpPoint>,
}

impl TimeexpExperiment {
    /// The full artifact: the paper's 108-satellite constellation, a
    /// day-scale workload, horizons from none to eight minutes of memory.
    pub fn standard() -> TimeexpExperiment {
        TimeexpExperiment {
            satellites: 108,
            horizons: vec![0, 1, 2, 4, 8, 16],
            fidelity_floor: 0.85,
            requests: 200_000,
            workload: WorkloadKind::Poisson,
            seed: 2024,
            metric: RouteMetric::PaperInverseEta,
            retry: RetryPolicy::standard(),
        }
    }

    /// A small configuration for tests and `--quick` runs. No fidelity
    /// floor: the quick artifact isolates the pure with/without-memory
    /// served-percentage comparison (and pins horizon 0 ≡ baseline in the
    /// output itself); the floor's semantics are covered by the serve and
    /// routing test suites.
    pub fn quick() -> TimeexpExperiment {
        TimeexpExperiment {
            satellites: 8,
            horizons: vec![0, 2, 6],
            fidelity_floor: 0.0,
            requests: 2_000,
            workload: WorkloadKind::Poisson,
            seed: 2024,
            metric: RouteMetric::PaperInverseEta,
            retry: RetryPolicy::standard(),
        }
    }

    /// Run the comparison (parallel over arrival groups).
    pub fn run(&self, scenario: &Qntn, config: SimConfig) -> TimeexpSweep {
        self.run_with_options(scenario, config, true)
    }

    /// [`TimeexpExperiment::run`] with explicit parallelism control. The
    /// architecture, engine and ingested queue are built once; every row
    /// serves the same accepted requests.
    pub fn run_with_options(
        &self,
        scenario: &Qntn,
        config: SimConfig,
        parallel: bool,
    ) -> TimeexpSweep {
        let arch = SpaceGround::new(
            scenario,
            self.satellites,
            config,
            PerturbationModel::TwoBody,
        );
        let sim = arch.sim();
        let engine = SweepEngine::new(sim).with_parallel(parallel);
        let stream = generate(sim, self.workload, self.requests, self.seed);
        let (queue, rejected) = ingest(sim.hosts().len(), sim.steps(), &stream);
        let rejected = rejected.len() as u64;

        let base = serve_report(&engine, &queue, self.retry, self.metric, rejected);
        let points = self
            .horizons
            .iter()
            .map(|&h| {
                let hold = HoldPolicy {
                    horizon_steps: h,
                    memory: ClassMemory::standard(),
                    fidelity_floor: self.fidelity_floor,
                };
                let r = serve_report_with_holds(
                    &engine,
                    &queue,
                    self.retry,
                    self.metric,
                    &hold,
                    rejected,
                );
                TimeexpPoint::from_report(Some(h), &r)
            })
            .collect();
        TimeexpSweep {
            satellites: self.satellites,
            fidelity_floor: self.fidelity_floor,
            baseline: TimeexpPoint::from_report(None, &base),
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TimeexpExperiment {
        TimeexpExperiment {
            satellites: 4,
            horizons: vec![0, 4],
            requests: 300,
            ..TimeexpExperiment::quick()
        }
    }

    #[test]
    fn zero_memory_row_equals_the_per_step_baseline_bitwise() {
        // The differential anchor inside the experiment itself: a
        // disabled HoldPolicy reproduces the baseline serve exactly.
        let q = Qntn::standard();
        let mut e = tiny();
        e.horizons = vec![0];
        e.fidelity_floor = 0.0;
        let arch = SpaceGround::new(
            &q,
            e.satellites,
            SimConfig::default(),
            PerturbationModel::TwoBody,
        );
        let engine = SweepEngine::new(arch.sim());
        let stream = generate(arch.sim(), e.workload, e.requests, e.seed);
        let (queue, rejected) = ingest(arch.sim().hosts().len(), arch.sim().steps(), &stream);
        let base = serve_report(&engine, &queue, e.retry, e.metric, rejected.len() as u64);
        let held = serve_report_with_holds(
            &engine,
            &queue,
            e.retry,
            e.metric,
            &HoldPolicy::disabled(),
            rejected.len() as u64,
        );
        assert_eq!(base, held);
    }

    #[test]
    fn rows_share_the_baseline_workload_and_report_all_horizons() {
        let q = Qntn::standard();
        let e = tiny();
        let sweep = e.run(&q, SimConfig::default());
        assert_eq!(sweep.baseline.horizon_steps, None);
        let horizons: Vec<Option<usize>> = sweep.points.iter().map(|p| p.horizon_steps).collect();
        assert_eq!(horizons, vec![Some(0), Some(4)]);
        for p in std::iter::once(&sweep.baseline).chain(&sweep.points) {
            let total = p.first_try_percent + p.rescued_percent + p.expired_percent;
            assert!((total - 100.0).abs() < 1e-9, "{total}");
        }
    }

    #[test]
    fn deterministic_across_runs_and_parallelism() {
        let q = Qntn::standard();
        let e = tiny();
        let a = e.run_with_options(&q, SimConfig::default(), true);
        let b = e.run_with_options(&q, SimConfig::default(), false);
        assert_eq!(a, b);
    }
}
