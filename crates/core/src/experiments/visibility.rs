//! Per-satellite LAN visibility — the shared substrate of the Fig. 6 sweep.
//!
//! For the coverage-vs-N figure the full simulator is overkill: what
//! decides connectivity is, per (satellite, time step, LAN), whether the
//! satellite has a link **above threshold** to at least one node of the
//! LAN. This module computes that boolean cube once for the full 108-
//! satellite constellation (rayon over satellites) and then answers
//! coverage queries for every prefix size N by union-find over the bipartite
//! LAN–satellite graph — which also captures multi-bounce paths
//! (LAN→sat→LAN→sat→LAN), exactly like component analysis on the full
//! simulator graph.
//!
//! The only paths this abstraction cannot see are inter-satellite links.
//! ISLs only reach the 0.7 threshold inside the vacuum diffraction budget
//! (~1150 km), which at the paper's spacing happens only briefly around
//! plane crossings between satellites whose ground footprints almost
//! completely overlap — so they add no LAN connectivity, and the fast path
//! agrees with the full simulator (both asserted by the workspace
//! integration tests).

use crate::scenario::Qntn;
use qntn_geo::Geodetic;
use qntn_net::{ContactWindows, Host, LinkEvaluator, SimConfig};
use qntn_orbit::Ephemeris;
use rayon::prelude::*;

/// The (satellite × step × LAN) qualification cube.
#[derive(Debug, Clone)]
pub struct LanVisibility {
    n_sats: usize,
    n_steps: usize,
    n_lans: usize,
    /// `qualifies[(sat * n_steps + step) * n_lans + lan]`.
    qualifies: Vec<bool>,
}

impl LanVisibility {
    /// Compute the cube for `ephemerides` against the scenario's LANs
    /// (parallel over satellites).
    pub fn compute(scenario: &Qntn, config: SimConfig, ephemerides: &[Ephemeris]) -> LanVisibility {
        Self::compute_with_options(scenario, config, ephemerides, true)
    }

    /// [`LanVisibility::compute`] with explicit parallelism control
    /// (`parallel: false` is the reproduce binary's `--no-parallel` path;
    /// results are bit-identical either way).
    pub fn compute_with_options(
        scenario: &Qntn,
        config: SimConfig,
        ephemerides: &[Ephemeris],
        parallel: bool,
    ) -> LanVisibility {
        let n_lans = scenario.lans.len();
        let n_sats = ephemerides.len();
        let n_steps = ephemerides.first().map_or(0, Ephemeris::len);
        let threshold = config.threshold;

        // Ground hosts per LAN (aperture 1.2 m, the paper's ground set).
        let ground: Vec<Vec<Host>> = scenario
            .lans
            .iter()
            .enumerate()
            .map(|(lan_id, lan)| {
                lan.nodes
                    .iter()
                    .map(|&pos| Host::ground("g", lan_id, pos, 1.2))
                    .collect()
            })
            .collect();

        // Contact windows over the flattened ground set: a satellite below a
        // site's horizon can never qualify, so the evaluator call is skipped
        // there (the windows' elevation ≥ 0 flags are a proven superset of
        // the evaluator's elevation > 0 requirement).
        let sites: Vec<Geodetic> = scenario
            .lans
            .iter()
            .flat_map(|lan| lan.nodes.iter().copied())
            .collect();
        let lan_base: Vec<usize> = scenario
            .lans
            .iter()
            .scan(0, |acc, lan| {
                let base = *acc;
                *acc += lan.nodes.len();
                Some(base)
            })
            .collect();
        let eph_refs: Vec<&Ephemeris> = ephemerides.iter().collect();
        let windows = ContactWindows::compute(&sites, &eph_refs, n_steps);

        // One evaluator derived from the same host set the full simulator
        // uses, so the Rytov altitude classes match `graph_at` exactly.
        let all_hosts: Vec<Host> = ground
            .iter()
            .flatten()
            .cloned()
            .chain(
                ephemerides
                    .iter()
                    .map(|e| Host::satellite("s", e.clone(), 1.2)),
            )
            .collect();
        let evaluator = LinkEvaluator::for_hosts(config, &all_hosts);

        let per_sat = |sat_idx: usize| {
            let sat = Host::satellite("s", ephemerides[sat_idx].clone(), 1.2);
            let mut flags = Vec::with_capacity(n_steps * n_lans);
            for step in 0..n_steps {
                for (lan, members) in ground.iter().enumerate() {
                    let base = lan_base[lan];
                    let hit = members.iter().enumerate().any(|(k, g)| {
                        windows.visible(sat_idx, step, base + k)
                            && evaluator
                                .fso_eta(g, &sat, step)
                                .is_some_and(|eta| eta >= threshold)
                    });
                    flags.push(hit);
                }
            }
            flags
        };
        let qualifies: Vec<bool> = if parallel {
            (0..n_sats).into_par_iter().flat_map_iter(per_sat).collect()
        } else {
            (0..n_sats).flat_map(per_sat).collect()
        };

        LanVisibility {
            n_sats,
            n_steps,
            n_lans,
            qualifies,
        }
    }

    /// Does satellite `sat` qualify to LAN `lan` at `step`?
    #[inline]
    pub fn qualifies(&self, sat: usize, step: usize, lan: usize) -> bool {
        self.qualifies[(sat * self.n_steps + step) * self.n_lans + lan]
    }

    /// Number of time steps in the cube.
    #[inline]
    pub fn steps(&self) -> usize {
        self.n_steps
    }

    /// Number of satellites in the cube.
    #[inline]
    pub fn satellites(&self) -> usize {
        self.n_sats
    }

    /// Per-step "all LANs interconnected" flags using only the first `n`
    /// satellites (the paper's incremental constellation prefix).
    pub fn coverage_flags(&self, n: usize) -> Vec<bool> {
        assert!(n <= self.n_sats, "prefix larger than cube");
        (0..self.n_steps)
            .map(|step| self.step_interconnected(step, n))
            .collect()
    }

    /// Union-find over {LANs} ∪ {first n satellites} with edges where a
    /// satellite qualifies to a LAN; connected ⇔ all LANs share a root.
    fn step_interconnected(&self, step: usize, n: usize) -> bool {
        let mut parent: Vec<usize> = (0..self.n_lans + n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for sat in 0..n {
            for lan in 0..self.n_lans {
                if self.qualifies(sat, step, lan) {
                    let a = find(&mut parent, lan);
                    let b = find(&mut parent, self.n_lans + sat);
                    parent[a] = b;
                }
            }
        }
        let root0 = find(&mut parent, 0);
        (1..self.n_lans).all(|lan| find(&mut parent, lan) == root0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::SpaceGround;
    use qntn_orbit::PerturbationModel;

    fn small_cube() -> (Qntn, LanVisibility) {
        let q = Qntn::standard();
        let eph = SpaceGround::ephemerides(12, PerturbationModel::TwoBody);
        let cube = LanVisibility::compute(&q, SimConfig::default(), &eph);
        (q, cube)
    }

    #[test]
    fn cube_dimensions() {
        let (_, cube) = small_cube();
        assert_eq!(cube.satellites(), 12);
        assert_eq!(cube.steps(), 2880);
    }

    #[test]
    fn coverage_flags_are_monotone_in_n() {
        // More satellites can only add connectivity.
        let (_, cube) = small_cube();
        let f6 = cube.coverage_flags(6);
        let f12 = cube.coverage_flags(12);
        for (step, (a, b)) in f6.iter().zip(&f12).enumerate() {
            assert!(
                !a || *b,
                "coverage lost when adding satellites at step {step}"
            );
        }
    }

    #[test]
    fn zero_satellites_means_no_coverage() {
        let (_, cube) = small_cube();
        assert!(cube.coverage_flags(0).iter().all(|&c| !c));
    }

    #[test]
    fn agrees_with_full_simulator() {
        // The fast path and the full graph componentry must agree wherever
        // ISL paths don't exist — which at the paper's spacing is everywhere
        // (see `isl_never_qualifies` in the integration tests).
        let (q, cube) = small_cube();
        let arch = SpaceGround::new(&q, 12, SimConfig::default(), PerturbationModel::TwoBody);
        let flags = cube.coverage_flags(12);
        for step in (0..2880).step_by(240) {
            let g = arch.sim().active_graph_at(step);
            let full = arch.sim().lans_interconnected(&g);
            assert_eq!(flags[step], full, "step {step}");
        }
    }

    #[test]
    fn union_find_handles_multi_bounce() {
        // Construct a synthetic cube: sat0 sees LANs {0,1}, sat1 sees {1,2}.
        // No satellite sees all three, but the LAN graph is connected via
        // LAN 1.
        // 2 sats × 1 step × 3 LANs.
        let mut qualifies = vec![false; 2 * 3];
        // sat0, step0: lans 0 and 1
        qualifies[0] = true;
        qualifies[1] = true;
        // sat1, step0: lans 1 and 2
        qualifies[3 + 1] = true;
        qualifies[3 + 2] = true;
        let cube = LanVisibility {
            n_sats: 2,
            n_steps: 1,
            n_lans: 3,
            qualifies,
        };
        assert!(
            cube.coverage_flags(2)[0],
            "multi-bounce connectivity must count"
        );
        assert!(
            !cube.coverage_flags(1)[0],
            "one satellite alone is not enough"
        );
    }
}
