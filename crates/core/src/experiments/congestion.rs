//! Congestion extension: finite pair-generation rates.
//!
//! Drops the paper's "infinite queue capacity" assumption: each link
//! produces `R·η` pairs per second, and a served request consumes one pair
//! on every link of its path. The air-ground star funnels all inter-city
//! traffic through the HAP's links, so it saturates first — quantifying how
//! load-bearing the ideal-capacity assumption is for the paper's 100 %
//! air-ground headline.

use crate::architecture::AirGround;
use crate::scenario::Qntn;
use qntn_net::capacity::{serve_with_capacity, BlockReason, CapacityModel};
use qntn_net::requests::RequestWorkload;
use qntn_net::SimConfig;
use qntn_routing::RouteMetric;
use serde::{Deserialize, Serialize};

/// One point of the rate sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CongestionPoint {
    /// Pair attempt rate, Hz.
    pub attempt_rate_hz: f64,
    /// Requests served, percent.
    pub served_percent: f64,
    /// Requests blocked by congestion, percent.
    pub congestion_percent: f64,
}

/// The attempt-rate sweep over the air-ground architecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionSweep {
    /// Requests per evaluation window.
    pub load: usize,
    pub points: Vec<CongestionPoint>,
}

impl CongestionSweep {
    /// Run: `load` simultaneous requests against the air-ground network at
    /// each attempt rate, one 30 s window, seeded.
    pub fn run(scenario: &Qntn, rates_hz: &[f64], load: usize, seed: u64) -> CongestionSweep {
        let arch = AirGround::new(scenario, SimConfig::default());
        let graph = arch.sim().active_graph_at(0);
        let workload = RequestWorkload::generate(arch.sim(), load, seed);
        let points = rates_hz
            .iter()
            .map(|&rate| {
                let model = CapacityModel {
                    attempt_rate_hz: rate,
                    window_s: 30.0,
                };
                let out = serve_with_capacity(
                    &graph,
                    &workload.requests,
                    RouteMetric::PaperInverseEta,
                    model,
                );
                CongestionPoint {
                    attempt_rate_hz: rate,
                    served_percent: 100.0 * out.served_count() as f64 / load as f64,
                    congestion_percent: 100.0 * out.blocked_count(BlockReason::Congestion) as f64
                        / load as f64,
                }
            })
            .collect();
        CongestionSweep { load, points }
    }

    /// Lowest rate that serves everything, if any point does.
    pub fn saturation_rate_hz(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.served_percent >= 100.0 - 1e-9)
            .map(|p| p.attempt_rate_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_is_monotone_in_rate() {
        let q = Qntn::standard();
        let sweep = CongestionSweep::run(&q, &[0.01, 0.1, 1.0, 10.0], 60, 7);
        for w in sweep.points.windows(2) {
            assert!(w[1].served_percent >= w[0].served_percent - 1e-9);
        }
        // Served + congested = 100 (air-ground always has routes).
        for p in &sweep.points {
            assert!((p.served_percent + p.congestion_percent - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn high_rate_recovers_the_ideal_assumption() {
        let q = Qntn::standard();
        let sweep = CongestionSweep::run(&q, &[100.0], 60, 7);
        assert!((sweep.points[0].served_percent - 100.0).abs() < 1e-9);
        assert_eq!(sweep.saturation_rate_hz(), Some(100.0));
    }

    #[test]
    fn starved_network_serves_little() {
        let q = Qntn::standard();
        let sweep = CongestionSweep::run(&q, &[0.001], 60, 7);
        assert!(
            sweep.points[0].served_percent < 20.0,
            "{}",
            sweep.points[0].served_percent
        );
        assert_eq!(sweep.saturation_rate_hz(), None);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let q = Qntn::standard();
        let a = CongestionSweep::run(&q, &[0.5], 40, 11);
        let b = CongestionSweep::run(&q, &[0.5], 40, 11);
        assert!((a.points[0].served_percent - b.points[0].served_percent).abs() < 1e-12);
    }
}
