//! Night-operations extension: darkness-gated quantum links.
//!
//! Every free-space quantum-link demonstration to date (Micius included)
//! operates only while the ground station is dark — daytime sky radiance
//! swamps single-photon detectors. The paper's ideal-conditions model has no
//! such constraint; this experiment applies it and reports how much of each
//! architecture's nominal coverage survives. It is the sharpest known
//! deviation between the paper's idealized results and a deployable system:
//! darkness gating caps *any* FSO architecture near the dark fraction of the
//! day (~30-40 % at Tennessee latitudes), erasing most of the air-ground
//! architecture's 100 % headline.

use crate::architecture::{default_epoch, SpaceGround};
use crate::experiments::visibility::LanVisibility;
use crate::scenario::Qntn;
use qntn_net::{CoverageAnalyzer, SimConfig};
use qntn_orbit::ephemeris::{PAPER_DURATION_S, PAPER_STEP_S};
use qntn_orbit::{PerturbationModel, Twilight};
use serde::{Deserialize, Serialize};

/// Result of the darkness-gated analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NightReport {
    /// Twilight convention used.
    pub twilight_deg: f64,
    /// Fraction of the day all three cities are dark, percent.
    pub dark_percent: f64,
    /// Space-ground nominal coverage, percent.
    pub space_nominal_percent: f64,
    /// Space-ground coverage with darkness gating, percent.
    pub space_night_percent: f64,
    /// Air-ground coverage with darkness gating, percent (nominal is 100).
    pub air_night_percent: f64,
}

/// The night-operations experiment.
#[derive(Debug, Clone, Copy)]
pub struct NightOps {
    /// How dark "dark" must be.
    pub twilight: Twilight,
    /// Constellation size for the space-ground side.
    pub satellites: usize,
}

impl NightOps {
    /// The default extension setup: astronomical darkness, 108 satellites.
    pub fn standard() -> NightOps {
        NightOps {
            twilight: Twilight::Astronomical,
            satellites: 108,
        }
    }

    /// Run over the paper's one-day window.
    pub fn run(&self, scenario: &Qntn, config: SimConfig) -> NightReport {
        let epoch = default_epoch();
        let steps = (PAPER_DURATION_S / PAPER_STEP_S) as usize;

        // Per-step darkness of each city (LAN centroid is ample: the sun
        // moves 0.125°/step and a LAN spans < 3 km).
        let dark: Vec<bool> = (0..steps)
            .map(|k| {
                let at = epoch.plus_seconds(k as f64 * PAPER_STEP_S);
                (0..scenario.lans.len()).all(|lan| {
                    self.twilight
                        .is_dark(scenario.lan_centroid(lan).with_alt(300.0), at)
                })
            })
            .collect();
        let dark_steps = dark.iter().filter(|&&d| d).count();

        // Space-ground nominal and gated coverage share one visibility cube.
        let eph = SpaceGround::ephemerides(self.satellites, PerturbationModel::TwoBody);
        let cube = LanVisibility::compute(scenario, config, &eph);
        let nominal_flags = cube.coverage_flags(self.satellites);
        let gated_flags: Vec<bool> = nominal_flags
            .iter()
            .zip(&dark)
            .map(|(&c, &d)| c && d)
            .collect();

        let nominal = CoverageAnalyzer::from_flags(nominal_flags, PAPER_STEP_S);
        let gated = CoverageAnalyzer::from_flags(gated_flags, PAPER_STEP_S);
        // Air-ground is up whenever the cities are dark (HAP links are
        // static and above threshold; validated elsewhere).
        let air = CoverageAnalyzer::from_flags(dark.clone(), PAPER_STEP_S);

        NightReport {
            twilight_deg: self.twilight.threshold().to_degrees(),
            dark_percent: 100.0 * dark_steps as f64 / steps as f64,
            space_nominal_percent: nominal.percent(),
            space_night_percent: gated.percent(),
            air_night_percent: air.percent(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn darkness_gating_only_reduces_coverage() {
        let q = Qntn::standard();
        let report = NightOps {
            twilight: Twilight::Civil,
            satellites: 12,
        }
        .run(&q, SimConfig::default());
        assert!(report.space_night_percent <= report.space_nominal_percent + 1e-9);
        assert!(report.space_night_percent <= report.dark_percent + 1e-9);
        assert!(report.air_night_percent <= 100.0);
        // Air-ground gated coverage equals the dark fraction exactly.
        assert!((report.air_night_percent - report.dark_percent).abs() < 1e-9);
    }

    #[test]
    fn tennessee_summer_dark_fraction_is_plausible() {
        // default_epoch is July 1: astronomical darkness for roughly
        // 4.5-8.5 hours -> 19-35% of the day.
        let q = Qntn::standard();
        let report = NightOps {
            twilight: Twilight::Astronomical,
            satellites: 6,
        }
        .run(&q, SimConfig::default());
        assert!(
            (15.0..40.0).contains(&report.dark_percent),
            "dark {}%",
            report.dark_percent
        );
        assert!((report.twilight_deg + 18.0).abs() < 1e-9);
    }

    #[test]
    fn stricter_twilight_means_less_darkness() {
        let q = Qntn::standard();
        let config = SimConfig::default();
        let civil = NightOps {
            twilight: Twilight::Civil,
            satellites: 6,
        }
        .run(&q, config);
        let astro = NightOps {
            twilight: Twilight::Astronomical,
            satellites: 6,
        }
        .run(&q, config);
        assert!(astro.dark_percent < civil.dark_percent);
    }
}
