//! Fig. 6 — coverage percentage of the space–ground network vs the number
//! of satellites (6, 12, …, 108 over one day).

use crate::experiments::paper_constellation_sizes;
use crate::experiments::visibility::LanVisibility;
use crate::scenario::Qntn;
use qntn_net::{CoverageAnalyzer, CoverageReport, SimConfig};
use qntn_orbit::ephemeris::PAPER_STEP_S;
use qntn_orbit::PerturbationModel;
use serde::{Deserialize, Serialize};

/// One row of the Fig. 6 series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoveragePoint {
    pub satellites: usize,
    pub coverage_percent: f64,
    pub coverage_minutes: f64,
    pub intervals: usize,
}

/// The whole sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageSweep {
    pub points: Vec<CoveragePoint>,
}

impl CoverageSweep {
    /// Run the paper's sweep (6..108 step 6, one day at 30 s cadence).
    pub fn paper(scenario: &Qntn, config: SimConfig) -> CoverageSweep {
        Self::run(
            scenario,
            config,
            &paper_constellation_sizes(),
            PerturbationModel::TwoBody,
        )
    }

    /// Run for arbitrary sizes / force model. One 108-satellite ephemeris
    /// generation is shared across all points (the constellation grows by
    /// prefix, per Table II).
    pub fn run(
        scenario: &Qntn,
        config: SimConfig,
        sizes: &[usize],
        model: PerturbationModel,
    ) -> CoverageSweep {
        Self::run_with_options(scenario, config, sizes, model, true)
    }

    /// [`CoverageSweep::run`] with explicit parallelism control
    /// (`parallel: false` is the reproduce binary's `--no-parallel` path;
    /// results are bit-identical either way).
    pub fn run_with_options(
        scenario: &Qntn,
        config: SimConfig,
        sizes: &[usize],
        model: PerturbationModel,
        parallel: bool,
    ) -> CoverageSweep {
        let max_n = sizes.iter().copied().max().unwrap_or(0);
        let ephemerides = crate::architecture::SpaceGround::ephemerides(max_n, model);
        let cube = LanVisibility::compute_with_options(scenario, config, &ephemerides, parallel);
        let points = sizes
            .iter()
            .map(|&n| {
                let report = CoverageAnalyzer::from_flags(cube.coverage_flags(n), PAPER_STEP_S);
                CoveragePoint {
                    satellites: n,
                    coverage_percent: report.percent(),
                    coverage_minutes: report.coverage_minutes(),
                    intervals: report.interval_count(),
                }
            })
            .collect();
        CoverageSweep { points }
    }

    /// Coverage of the largest constellation in the sweep.
    pub fn final_point(&self) -> &CoveragePoint {
        self.points.last().expect("sweep is never empty")
    }

    /// The air-ground reference report: full coverage by construction
    /// (validated against the simulator in the comparison experiment).
    pub fn air_ground_reference(steps: usize) -> CoverageReport {
        CoverageAnalyzer::from_flags(vec![true; steps], PAPER_STEP_S)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced sweep (shared by several assertions because the full
    /// 108-satellite day is the expensive part of the suite).
    fn small_sweep() -> CoverageSweep {
        CoverageSweep::run(
            &Qntn::standard(),
            SimConfig::default(),
            &[6, 18, 36],
            PerturbationModel::TwoBody,
        )
    }

    #[test]
    fn coverage_grows_with_constellation_size() {
        let s = small_sweep();
        assert_eq!(s.points.len(), 3);
        for w in s.points.windows(2) {
            assert!(
                w[1].coverage_percent >= w[0].coverage_percent,
                "{} sats: {}%, {} sats: {}%",
                w[0].satellites,
                w[0].coverage_percent,
                w[1].satellites,
                w[1].coverage_percent
            );
        }
        // Small constellations cover only a small slice of the day.
        assert!(
            s.points[0].coverage_percent < 30.0,
            "{}",
            s.points[0].coverage_percent
        );
    }

    #[test]
    fn minutes_and_percent_consistent() {
        for p in &small_sweep().points {
            assert!((p.coverage_minutes - p.coverage_percent / 100.0 * 1440.0).abs() < 1e-6);
        }
    }

    #[test]
    fn air_ground_reference_is_full_day() {
        let r = CoverageSweep::air_ground_reference(2880);
        assert!((r.percent() - 100.0).abs() < 1e-12);
        assert!((r.coverage_minutes() - 1440.0).abs() < 1e-9);
    }
}
