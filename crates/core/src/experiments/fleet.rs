//! Multi-HAP fleet extension: one platform per city + a stratospheric
//! FSO backbone.
//!
//! The paper's single central HAP is a single point of failure and forces
//! every link through ~78 km low-elevation slant paths. An obvious design
//! alternative puts one HAP *above each city* (short, near-vertical
//! ground links) and meshes the platforms with horizontal stratospheric
//! FSO links. The experiment's finding cuts the other way, though: with
//! the paper's 30 cm HAP apertures, the 110–135 km inter-platform hops
//! are diffraction-dead (a 30 cm receiver catches < 60 % of the spread
//! beam), so **no HAP–HAP backbone forms**. The fleet still serves 100 %
//! of requests — each HAP reaches *remote* cities' ground stations
//! directly, because the 1.2 m ground apertures catch what the 30 cm
//! platform apertures cannot. Tests pin both facts.

use crate::experiments::fidelity::{ArchReport, FidelityExperiment};
use crate::scenario::Qntn;
use qntn_channel::params::ApertureSet;
use qntn_geo::Geodetic;
use qntn_net::{Host, QuantumNetworkSim, SimConfig};
use qntn_orbit::ephemeris::{PAPER_DURATION_S, PAPER_STEP_S};

/// A fleet of HAPs over the scenario's cities.
#[derive(Debug, Clone)]
pub struct HapFleet {
    sim: QuantumNetworkSim,
    hap_nodes: Vec<usize>,
}

impl HapFleet {
    /// One HAP per LAN, hovering over each LAN's centroid at `alt_m`.
    pub fn per_city(scenario: &Qntn, alt_m: f64, config: SimConfig) -> HapFleet {
        let positions: Vec<Geodetic> = (0..scenario.lans.len())
            .map(|lan| scenario.lan_centroid(lan).with_alt(alt_m))
            .collect();
        Self::at_positions(scenario, &positions, config)
    }

    /// A fleet at explicit positions.
    pub fn at_positions(scenario: &Qntn, positions: &[Geodetic], config: SimConfig) -> HapFleet {
        assert!(!positions.is_empty(), "a fleet needs at least one HAP");
        let apertures = ApertureSet::paper();
        let mut hosts = Vec::new();
        for (lan_id, lan) in scenario.lans.iter().enumerate() {
            for (k, &pos) in lan.nodes.iter().enumerate() {
                hosts.push(Host::ground(
                    format!("{}-{k}", lan.name),
                    lan_id,
                    pos,
                    apertures.ground_m,
                ));
            }
        }
        let mut hap_nodes = Vec::new();
        for (i, &pos) in positions.iter().enumerate() {
            hap_nodes.push(hosts.len());
            hosts.push(Host::hap(format!("HAP-{i}"), pos, apertures.hap_m));
        }
        let steps = (PAPER_DURATION_S / PAPER_STEP_S) as usize;
        HapFleet {
            sim: QuantumNetworkSim::new(hosts, config, steps, PAPER_STEP_S),
            hap_nodes,
        }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &QuantumNetworkSim {
        &self.sim
    }

    /// Node ids of the HAPs.
    pub fn hap_nodes(&self) -> &[usize] {
        &self.hap_nodes
    }

    /// Evaluate with the standard experiment harness.
    pub fn evaluate(&self, experiment: FidelityExperiment) -> ArchReport {
        experiment.run(&self.sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::AirGround;
    use qntn_routing::RouteMetric;

    fn quick() -> FidelityExperiment {
        FidelityExperiment {
            sampled_steps: 2,
            requests_per_step: 20,
            ..FidelityExperiment::quick()
        }
    }

    #[test]
    fn per_city_fleet_has_three_haps() {
        let q = Qntn::standard();
        let fleet = HapFleet::per_city(&q, 30_000.0, SimConfig::default());
        assert_eq!(fleet.hap_nodes().len(), 3);
        assert_eq!(fleet.sim().hosts().len(), 34);
        for &n in fleet.hap_nodes() {
            assert!(fleet.sim().hosts()[n].is_hap());
        }
    }

    #[test]
    fn paper_apertures_cannot_form_a_hap_backbone() {
        // The design finding: at city spacing (110-135 km) the 30 cm
        // apertures leave every HAP-HAP link below threshold.
        let q = Qntn::standard();
        let fleet = HapFleet::per_city(&q, 30_000.0, SimConfig::default());
        let g = fleet.sim().active_graph_at(0);
        let haps = fleet.hap_nodes();
        for i in 0..haps.len() {
            for j in (i + 1)..haps.len() {
                assert!(
                    !g.has_edge(haps[i], haps[j]),
                    "unexpected backbone link {i}-{j}"
                );
            }
        }
    }

    #[test]
    fn haps_reach_remote_cities_ground_stations() {
        // What keeps the fleet connected instead: each HAP links ground
        // nodes of *other* cities (1.2 m receive apertures).
        let q = Qntn::standard();
        let fleet = HapFleet::per_city(&q, 30_000.0, SimConfig::default());
        let g = fleet.sim().active_graph_at(0);
        let hap0 = fleet.hap_nodes()[0]; // over TTU
        let remote = fleet.sim().lan_members(2)[0]; // an EPB node
        assert!(
            g.has_edge(hap0, remote),
            "HAP-0 should reach Chattanooga ground"
        );
    }

    #[test]
    fn fleet_serves_everything_with_full_coverage() {
        let q = Qntn::standard();
        let fleet = HapFleet::per_city(&q, 30_000.0, SimConfig::default());
        let r = fleet.evaluate(quick());
        assert!((r.coverage_percent - 100.0).abs() < 1e-9);
        assert!((r.served_percent - 100.0).abs() < 1e-9);
        assert!(r.mean_fidelity > 0.9);
    }

    #[test]
    fn fleet_ground_links_are_stronger_than_single_hap() {
        // The per-city HAP's links to its own city are near-vertical and
        // short; the central HAP's are 78 km slants. Compare best ground
        // link η.
        let q = Qntn::standard();
        let config = SimConfig::default();
        let fleet = HapFleet::per_city(&q, 30_000.0, config);
        let single = AirGround::new(&q, config);

        let best_eta = |g: &qntn_routing::Graph, hap: usize| {
            g.neighbors(hap)
                .iter()
                .map(|a| a.eta)
                .fold(0.0f64, f64::max)
        };
        let gf = fleet.sim().active_graph_at(0);
        let gs = single.sim().active_graph_at(0);
        let fleet_best = best_eta(&gf, fleet.hap_nodes()[0]);
        let single_best = best_eta(&gs, single.hap_node());
        assert!(
            fleet_best > single_best,
            "fleet {fleet_best} vs single {single_best}"
        );
    }

    #[test]
    fn fleet_paths_route_over_the_backbone() {
        let q = Qntn::standard();
        let fleet = HapFleet::per_city(&q, 30_000.0, SimConfig::default());
        let g = fleet.sim().active_graph_at(0);
        let src = fleet.sim().lan_members(0)[0];
        let dst = fleet.sim().lan_members(2)[0];
        let d = qntn_net::entanglement::distribute(&g, src, dst, RouteMetric::PaperInverseEta)
            .expect("fleet routes everything");
        // Path must traverse at least one HAP.
        assert!(
            d.path.iter().any(|n| fleet.hap_nodes().contains(n)),
            "path {:?} avoids the fleet",
            d.path
        );
    }
}
