//! QKD-service extension: secret-key capability of each architecture.
//!
//! The regional networks the paper cites (\[12\]–\[14\]) deliver QKD, not raw
//! entanglement. This experiment asks whether QNTN's distributed pairs are
//! QKD-grade: for every served request, the distributed pair's BBM92 key
//! fraction is computed from its exact density matrix. The striking result
//! (pinned by tests): at the paper's η = 0.7 link threshold, a two-hop
//! relay path's pair carries **zero** one-way key — entanglement
//! "distribution" at F ≈ 0.9 does not imply key delivery, so a QKD-grade
//! QNTN needs a stricter threshold or purification.

use crate::architecture::{AirGround, SpaceGround};
use qntn_net::requests::{sample_steps, RequestOutcome, RequestWorkload};
use qntn_net::QuantumNetworkSim;
use qntn_quantum::channels::amplitude_damping;
use qntn_quantum::qkd::bbm92_key_fraction;
use qntn_quantum::state::bell_phi_plus;
use qntn_routing::RouteMetric;
use serde::{Deserialize, Serialize};

/// Key statistics for one architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QkdReport {
    /// Requests attempted.
    pub attempted: usize,
    /// Requests served with *any* entanglement.
    pub served: usize,
    /// Served requests whose pair yields a positive key fraction.
    pub key_capable: usize,
    /// Mean key fraction over served requests (zeros included).
    pub mean_key_fraction: f64,
}

impl QkdReport {
    /// Percentage of all requests that could run QKD.
    pub fn key_capable_percent(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            100.0 * self.key_capable as f64 / self.attempted as f64
        }
    }
}

/// The QKD-service experiment.
#[derive(Debug, Clone, Copy)]
pub struct QkdExperiment {
    pub sampled_steps: usize,
    pub requests_per_step: usize,
    pub seed: u64,
}

impl QkdExperiment {
    /// A light default (the key fractions are deterministic given the
    /// routes; sampling density only affects the satellite geometry mix).
    pub fn standard() -> QkdExperiment {
        QkdExperiment {
            sampled_steps: 20,
            requests_per_step: 50,
            seed: 2024,
        }
    }

    /// Evaluate a simulator.
    pub fn run(&self, sim: &QuantumNetworkSim) -> QkdReport {
        let steps = sample_steps(sim.steps(), self.sampled_steps);
        let bell = bell_phi_plus().density();
        let mut report = QkdReport {
            attempted: 0,
            served: 0,
            key_capable: 0,
            mean_key_fraction: 0.0,
        };
        let mut key_sum = 0.0;
        for &step in &steps {
            let workload = RequestWorkload::generate(
                sim,
                self.requests_per_step,
                self.seed ^ (step as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            for outcome in workload.evaluate_at(sim, step, RouteMetric::PaperInverseEta) {
                report.attempted += 1;
                if let RequestOutcome::Served(d) = outcome {
                    report.served += 1;
                    let pair = amplitude_damping(d.eta).on_qubit(1, 2).apply(&bell);
                    let r = bbm92_key_fraction(&pair);
                    key_sum += r;
                    if r > 0.0 {
                        report.key_capable += 1;
                    }
                }
            }
        }
        if report.served > 0 {
            report.mean_key_fraction = key_sum / report.served as f64;
        }
        report
    }

    /// Evaluate the air-ground architecture.
    pub fn run_air_ground(&self, arch: &AirGround) -> QkdReport {
        self.run(arch.sim())
    }

    /// Evaluate the space-ground architecture.
    pub fn run_space_ground(&self, arch: &SpaceGround) -> QkdReport {
        self.run(arch.sim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Qntn;
    use qntn_net::SimConfig;
    use qntn_orbit::PerturbationModel;

    fn quick() -> QkdExperiment {
        QkdExperiment {
            sampled_steps: 3,
            requests_per_step: 15,
            seed: 7,
        }
    }

    #[test]
    fn air_ground_pairs_are_key_capable() {
        // HAP paths (η ≈ 0.92) sit comfortably above the key cliff.
        let q = Qntn::standard();
        let arch = AirGround::standard(&q);
        let r = quick().run_air_ground(&arch);
        assert_eq!(r.served, r.attempted);
        assert_eq!(r.key_capable, r.served, "every HAP pair should carry key");
        assert!(r.mean_key_fraction > 0.3, "{}", r.mean_key_fraction);
    }

    #[test]
    fn space_ground_pairs_mostly_fail_qkd() {
        // Satellite 2-hop paths (η ≈ 0.63) sit *below* the one-way key
        // cliff: served ≠ key-capable, the experiment's headline.
        let q = Qntn::standard();
        let arch = SpaceGround::new(&q, 36, SimConfig::default(), PerturbationModel::TwoBody);
        let r = QkdExperiment {
            sampled_steps: 20,
            requests_per_step: 25,
            seed: 7,
        }
        .run_space_ground(&arch);
        if r.served > 0 {
            assert!(
                r.key_capable < r.served / 2,
                "served {} but key-capable {}",
                r.served,
                r.key_capable
            );
        }
    }

    #[test]
    fn percentages_consistent() {
        let q = Qntn::standard();
        let arch = AirGround::standard(&q);
        let r = quick().run_air_ground(&arch);
        assert!((r.key_capable_percent() - 100.0).abs() < 1e-9);
        assert!(r.mean_key_fraction <= 1.0);
    }
}
