//! One module per artifact of the paper's evaluation section.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig5`] | Fig. 5 — transmissivity vs entanglement fidelity |
//! | [`visibility`] + [`fig6`] | Fig. 6 — coverage % vs number of satellites |
//! | [`sweep`] + [`fig7`]/[`fig8`] | Fig. 7/8 — served % and fidelity vs N |
//! | [`fidelity`] | the per-architecture fidelity/served experiment (Table III inputs) |
//! | [`hybrid`] | the paper's future-work hybrid (HAP + constellation) |
//! | [`faults`] | degradation vs. fault intensity (extension; intensity 0 = the paper) |
//! | [`timeexp`] | store-and-forward serving vs. the memoryless baseline (extension) |
//! | [`overload`] | overload-control surface: offered load × fault intensity (extension) |
//!
//! All experiments are deterministic for a fixed seed and parallel over
//! their dominant axis (satellites or time steps).

pub mod congestion;
pub mod demand;
pub mod faults;
pub mod fidelity;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fleet;
pub mod hybrid;
pub mod night;
pub mod overload;
pub mod purified_qkd;
pub mod qkd;
pub mod sensitivity;
pub mod stability;
pub mod survivability;
pub mod sweep;
pub mod timeexp;
pub mod visibility;

/// The constellation sizes the paper sweeps: 6, 12, …, 108.
pub fn paper_constellation_sizes() -> Vec<usize> {
    (1..=18).map(|k| k * 6).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn sizes_are_6_to_108() {
        let s = super::paper_constellation_sizes();
        assert_eq!(s.first(), Some(&6));
        assert_eq!(s.last(), Some(&108));
        assert_eq!(s.len(), 18);
        assert!(s.windows(2).all(|w| w[1] - w[0] == 6));
    }
}
