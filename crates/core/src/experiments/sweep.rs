//! The constellation request sweep shared by Fig. 7 and Fig. 8.
//!
//! For each constellation size N: build the space–ground simulator from the
//! shared Table II ephemeris prefix, draw 100 random inter-LAN requests at
//! each of 100 evenly sampled time steps of satellite movement, route with
//! the paper's Bellman–Ford metric, and record the served percentage
//! (Fig. 7) and the average fidelity of the resolved requests (Fig. 8).

use crate::architecture::SpaceGround;
use crate::experiments::paper_constellation_sizes;
use crate::scenario::Qntn;
use qntn_net::requests::{sample_steps, SweepStats};
use qntn_net::{ContactWindows, SimConfig, SweepEngine};
use qntn_orbit::PerturbationModel;
use qntn_routing::RouteMetric;
use serde::{Deserialize, Serialize};

/// The paper's workload shape: 100 requests × 100 sampled steps.
pub const PAPER_REQUESTS_PER_STEP: usize = 100;
pub const PAPER_SAMPLED_STEPS: usize = 100;

/// Workload/seed configuration for the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepSettings {
    pub requests_per_step: usize,
    pub sampled_steps: usize,
    pub seed: u64,
    pub metric: RouteMetric,
}

impl SweepSettings {
    /// The paper's settings.
    pub fn paper() -> SweepSettings {
        SweepSettings {
            requests_per_step: PAPER_REQUESTS_PER_STEP,
            sampled_steps: PAPER_SAMPLED_STEPS,
            seed: 2024,
            metric: RouteMetric::PaperInverseEta,
        }
    }

    /// A reduced load for tests and quick demos.
    pub fn quick() -> SweepSettings {
        SweepSettings {
            requests_per_step: 20,
            sampled_steps: 8,
            seed: 7,
            metric: RouteMetric::PaperInverseEta,
        }
    }
}

/// Per-N outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    pub satellites: usize,
    pub stats: SweepStats,
}

/// The full constellation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstellationSweep {
    pub settings: SweepSettings,
    pub points: Vec<SweepPoint>,
}

impl ConstellationSweep {
    /// Run the paper's sweep (6..108 step 6).
    pub fn paper(scenario: &Qntn, config: SimConfig) -> ConstellationSweep {
        Self::run(
            scenario,
            config,
            &paper_constellation_sizes(),
            SweepSettings::paper(),
            PerturbationModel::TwoBody,
        )
    }

    /// Run for arbitrary sizes and settings (parallel over time steps).
    pub fn run(
        scenario: &Qntn,
        config: SimConfig,
        sizes: &[usize],
        settings: SweepSettings,
        model: PerturbationModel,
    ) -> ConstellationSweep {
        Self::run_with_options(scenario, config, sizes, settings, model, true)
    }

    /// [`ConstellationSweep::run`] with explicit parallelism control
    /// (`parallel: false` is the reproduce binary's `--no-parallel` path;
    /// results are bit-identical either way). One full-constellation
    /// contact-window precompute is shared across every prefix size.
    pub fn run_with_options(
        scenario: &Qntn,
        config: SimConfig,
        sizes: &[usize],
        settings: SweepSettings,
        model: PerturbationModel,
        parallel: bool,
    ) -> ConstellationSweep {
        let max_n = sizes.iter().copied().max().unwrap_or(0);
        let ephemerides = SpaceGround::ephemerides(max_n, model);
        let max_arch = SpaceGround::from_ephemerides(scenario, ephemerides.clone(), config);
        let steps = sample_steps(max_arch.sim().steps(), settings.sampled_steps);
        let windows = ContactWindows::for_sim_steps(max_arch.sim(), &steps);
        let points = sizes
            .iter()
            .map(|&n| {
                let arch =
                    SpaceGround::from_ephemerides(scenario, ephemerides[..n].to_vec(), config);
                let engine = SweepEngine::with_windows(arch.sim(), windows.prefix(n))
                    .with_parallel(parallel);
                let stats = engine.sweep(
                    &steps,
                    settings.requests_per_step,
                    settings.seed,
                    settings.metric,
                );
                SweepPoint {
                    satellites: n,
                    stats,
                }
            })
            .collect();
        ConstellationSweep { settings, points }
    }

    /// The largest-N point (the paper's 108-satellite headline).
    pub fn final_point(&self) -> &SweepPoint {
        self.points.last().expect("sweep is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ConstellationSweep {
        ConstellationSweep::run(
            &Qntn::standard(),
            SimConfig::default(),
            &[6, 24],
            SweepSettings::quick(),
            PerturbationModel::TwoBody,
        )
    }

    #[test]
    fn served_grows_with_satellites_and_fidelity_is_high() {
        let s = small();
        assert_eq!(s.points.len(), 2);
        let (p6, p24) = (&s.points[0], &s.points[1]);
        assert!(p24.stats.served_percent() >= p6.stats.served_percent());
        // Any served request rode links above 0.7, so per the Fig. 5 curve
        // its fidelity exceeds ~0.84 even over two hops; averages sit higher.
        for p in &s.points {
            if p.stats.served > 0 {
                assert!(
                    p.stats.mean_fidelity > 0.85,
                    "N={}: {}",
                    p.satellites,
                    p.stats.mean_fidelity
                );
                assert!(p.stats.mean_fidelity <= 1.0);
            }
        }
    }

    #[test]
    fn attempted_counts_match_workload() {
        let s = small();
        for p in &s.points {
            assert_eq!(p.stats.attempted, 20 * 8);
        }
    }

    #[test]
    fn determinism() {
        let a = small();
        let b = small();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.stats, y.stats);
        }
    }
}
