//! # qntn-core — the QNTN scenario and the paper's experiments
//!
//! Ties the substrates together into the paper's study:
//!
//! - [`scenario::Qntn`] — the three Tennessee LANs with every Table I
//!   coordinate, plus the HAP position and paper parameters.
//! - [`architecture`] — the two contenders as first-class values:
//!   [`architecture::SpaceGround`] (N satellites of the Table II
//!   constellation driving a day-long simulation) and
//!   [`architecture::AirGround`] (the single 30 km HAP).
//! - [`experiments`] — one module per figure/table of the evaluation:
//!   Fig. 5 (transmissivity→fidelity), Fig. 6 (coverage vs N), Fig. 7
//!   (served requests vs N), Fig. 8 (fidelity vs N), Table III
//!   (architecture comparison), plus the hybrid extension.
//! - [`compare`] — Table III assembly from the experiment outputs.
//! - [`report`] — text/CSV rendering used by the `reproduce` binary.

pub mod architecture;
pub mod compare;
pub mod experiments;
pub mod report;
pub mod scenario;

pub use architecture::{AirGround, SpaceGround};
pub use compare::{ArchitectureMetrics, ComparisonReport};
pub use scenario::Qntn;
