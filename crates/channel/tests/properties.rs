//! Property-based tests for the channel models.

use proptest::prelude::*;
use qntn_channel::atmosphere::Atmosphere;
use qntn_channel::fiber::FiberChannel;
use qntn_channel::fso::{FsoChannel, FsoGeometry};
use qntn_channel::params::FsoParams;
use qntn_channel::units::{db_to_linear, linear_to_db};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn db_roundtrip(db in -60.0..20.0f64) {
        prop_assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
    }

    #[test]
    fn fiber_eta_in_unit_interval(km in 0.0..500.0f64, att in 0.01..1.0f64) {
        let eta = FiberChannel::new(km * 1000.0, att).transmissivity();
        prop_assert!((0.0..=1.0).contains(&eta));
    }

    #[test]
    fn fiber_is_multiplicative(a_km in 0.0..100.0f64, b_km in 0.0..100.0f64) {
        let f = |km: f64| FiberChannel::paper(km * 1000.0).transmissivity();
        prop_assert!((f(a_km) * f(b_km) - f(a_km + b_km)).abs() < 1e-12);
    }

    #[test]
    fn fiber_threshold_inversion(att in 0.05..0.5f64, th in 0.1..0.99f64) {
        let l = FiberChannel::max_length_for_threshold(att, th);
        let eta = FiberChannel::new(l, att).transmissivity();
        prop_assert!((eta - th).abs() < 1e-9);
    }

    #[test]
    fn atmosphere_depth_additive_and_monotone(
        alpha in 1e-7..1e-4f64,
        h_mid in 1_000.0..100_000.0f64,
        h_top_extra in 1_000.0..500_000.0f64,
    ) {
        let a = Atmosphere::new(alpha, 6_600.0);
        let h_top = h_mid + h_top_extra;
        let whole = a.zenith_optical_depth(0.0, h_top);
        let split = a.zenith_optical_depth(0.0, h_mid) + a.zenith_optical_depth(h_mid, h_top);
        prop_assert!((whole - split).abs() < 1e-12 * whole.max(1e-30));
        // Deeper paths attenuate at least as much.
        prop_assert!(a.zenith_optical_depth(0.0, h_mid) <= whole + 1e-15);
    }

    #[test]
    fn atmosphere_transmissivity_monotone_in_elevation(
        alpha in 1e-7..1e-4f64,
        e1 in 0.1..1.2f64,
        de in 0.01..0.3f64,
    ) {
        let a = Atmosphere::new(alpha, 6_600.0);
        let lo = a.transmissivity(0.0, 500_000.0, e1);
        let hi = a.transmissivity(0.0, 500_000.0, e1 + de);
        prop_assert!(hi >= lo);
    }

    #[test]
    fn fso_eta_in_unit_interval(
        range_km in 10.0..3_000.0f64,
        elev in 0.1..1.57f64,
        tx_ap in 0.1..2.0f64,
        rx_ap in 0.1..2.0f64,
        tx_alt_km in 20.0..600.0f64,
    ) {
        let geom = FsoGeometry::downlink(
            tx_ap, tx_alt_km * 1000.0, rx_ap, 300.0, range_km * 1000.0, elev,
        );
        let eta = FsoChannel::new(geom, FsoParams::ideal()).transmissivity();
        prop_assert!((0.0..=1.0).contains(&eta), "{eta}");
        prop_assert!(eta.is_finite());
    }

    #[test]
    fn fso_monotone_in_range(
        elev in 0.3..1.5f64,
        r1_km in 100.0..1_000.0f64,
        dr_km in 10.0..1_000.0f64,
    ) {
        let link = |km: f64| {
            let geom = FsoGeometry::downlink(1.2, 500_000.0, 1.2, 300.0, km * 1000.0, elev);
            FsoChannel::new(geom, FsoParams::ideal()).transmissivity()
        };
        prop_assert!(link(r1_km) >= link(r1_km + dr_km) - 1e-12);
    }

    #[test]
    fn weather_only_degrades(
        weather in 1.0..40.0f64,
        range_km in 50.0..1_200.0f64,
        elev in 0.3..1.5f64,
    ) {
        let geom = FsoGeometry::downlink(1.2, 500_000.0, 1.2, 300.0, range_km * 1000.0, elev);
        let ideal = FsoChannel::new(geom, FsoParams::ideal()).transmissivity();
        let bad = FsoChannel::new(geom, FsoParams::ideal().with_weather(weather)).transmissivity();
        prop_assert!(bad <= ideal + 1e-12, "weather {weather}: {bad} > {ideal}");
    }

    #[test]
    fn bigger_receiver_never_hurts(
        range_km in 100.0..1_500.0f64,
        elev in 0.3..1.5f64,
        rx1 in 0.2..1.0f64,
        extra in 0.05..1.0f64,
    ) {
        let link = |rx: f64| {
            let geom = FsoGeometry::downlink(1.2, 500_000.0, rx, 300.0, range_km * 1000.0, elev);
            FsoChannel::new(geom, FsoParams::ideal()).transmissivity()
        };
        prop_assert!(link(rx1 + extra) >= link(rx1) - 1e-12);
    }

    #[test]
    fn budget_factors_bound_total(
        range_km in 50.0..2_000.0f64,
        elev in 0.15..1.5f64,
    ) {
        let geom = FsoGeometry::downlink(1.2, 500_000.0, 1.2, 300.0, range_km * 1000.0, elev);
        let b = FsoChannel::new(geom, FsoParams::ideal()).budget();
        let eta = b.eta_total();
        prop_assert!(eta <= b.eta_th + 1e-12);
        prop_assert!(eta <= b.eta_atm + 1e-12);
        prop_assert!(eta <= b.eta_eff + 1e-12);
        prop_assert!(b.turbulence_spread >= 1.0);
        prop_assert!(b.long_term_spot_m >= b.diffraction_spot_m - 1e-12);
    }
}
