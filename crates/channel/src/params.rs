//! Calibrated FSO parameters.
//!
//! The paper states that "simulation parameters for FSO channels follow the
//! configuration outlined in [Ghalaii & Pirandola 2022], except for the
//! aperture size and the elevation angle", sets apertures of 120 cm
//! (satellites and ground) and 30 cm (HAPs), an elevation angle of π/9, and
//! assumes "perfect setup and ideal conditions". We cannot import that
//! paper's exact tables, so [`FsoParams::ideal`] is the documented
//! substitution: the same physical factor structure (diffraction ×
//! turbulence × extinction × receiver efficiency) with clear-sky constants
//! chosen so the resulting link budgets land where the paper's do —
//!
//! - HAP–ground links (≈ 78 km slant, 30 cm transmit aperture) at
//!   η ≈ 0.95, giving the air–ground fidelity of ≈ 0.98;
//! - satellite–ground links crossing the η = 0.7 threshold near 25°
//!   elevation, giving ≈ 55 % daily coverage at 108 satellites;
//! - inter-satellite distances in the paper's constellation far below
//!   threshold (so the single-satellite-relay behaviour emerges, as in the
//!   paper's results).
//!
//! Every constant is sweepable; the ablation benches exercise them.

use crate::atmosphere::Atmosphere;
use crate::turbulence::TurbulenceProfile;
use serde::{Deserialize, Serialize};

/// The paper's fixed elevation-angle parameter: π/9 (20°).
pub const PAPER_ELEVATION_RAD: f64 = std::f64::consts::PI / 9.0;

/// How the elevation angle entering the atmospheric/turbulence factors is
/// chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ElevationMode {
    /// Use the geometric elevation of each link at each instant (default).
    Geometric,
    /// Use a fixed elevation for the attenuation formulas, as the paper's
    /// parameter list ("the elevation angle is set to π/9") implies.
    Fixed(f64),
}

/// Aperture diameters for the three platform classes (paper Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApertureSet {
    /// Satellite aperture diameter, metres.
    pub satellite_m: f64,
    /// Ground-station aperture diameter, metres.
    pub ground_m: f64,
    /// HAP aperture diameter, metres.
    pub hap_m: f64,
}

impl ApertureSet {
    /// The paper's values: 120 cm satellites & ground, 30 cm HAPs.
    pub fn paper() -> ApertureSet {
        ApertureSet {
            satellite_m: 1.2,
            ground_m: 1.2,
            hap_m: 0.3,
        }
    }
}

/// The complete FSO model parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsoParams {
    /// Optical wavelength, metres (810 nm — the Micius downlink band).
    pub wavelength_m: f64,
    /// Transmit beam waist as a fraction of the transmit aperture *radius*
    /// (≈0.8 maximizes far-field coupling without hard truncation).
    pub tx_waist_ratio: f64,
    /// Receiver optics + detector efficiency (the paper's η_eff).
    pub receiver_efficiency: f64,
    /// Clear-sky atmosphere.
    pub atmosphere: Atmosphere,
    /// Turbulence profile.
    pub turbulence: TurbulenceProfile,
    /// Elevation-angle convention for the attenuation formulas.
    pub elevation_mode: ElevationMode,
    /// RMS transmitter pointing jitter, radians (platform vibration /
    /// station-keeping error). Zero under the paper's "stable flight"
    /// assumption; the HAP-stability extension sweeps it. Jitter adds
    /// `2(σ_p·L)²` to the long-term spot variance (Gaussian-pointing
    /// averaging).
    pub pointing_jitter_rad: f64,
}

impl FsoParams {
    /// The calibrated "perfect setup and ideal conditions" parameter set
    /// (see module docs for what each constant was calibrated against).
    pub fn ideal() -> FsoParams {
        FsoParams {
            wavelength_m: 810e-9,
            tx_waist_ratio: 0.85,
            receiver_efficiency: 0.998,
            atmosphere: Atmosphere::new(1.6e-6, 6_600.0),
            // Ideal conditions: a tenth of the nominal HV-5/7 strength.
            turbulence: TurbulenceProfile::scaled(0.1),
            elevation_mode: ElevationMode::Geometric,
            pointing_jitter_rad: 0.0,
        }
    }

    /// The ideal set with transmitter pointing jitter (HAP vibration /
    /// station-keeping error), for the stability extension.
    pub fn with_pointing_jitter(self, sigma_rad: f64) -> FsoParams {
        assert!(sigma_rad >= 0.0, "jitter must be non-negative");
        FsoParams {
            pointing_jitter_rad: sigma_rad,
            ..self
        }
    }

    /// The ideal set but with the paper's fixed π/9 elevation convention.
    pub fn ideal_fixed_elevation() -> FsoParams {
        FsoParams {
            elevation_mode: ElevationMode::Fixed(PAPER_ELEVATION_RAD),
            ..FsoParams::ideal()
        }
    }

    /// A degraded-weather variant: extinction and turbulence scaled by
    /// `weather` (1 = ideal, larger = worse). Used by the sensitivity
    /// extension benches.
    pub fn with_weather(self, weather: f64) -> FsoParams {
        assert!(weather >= 1.0, "weather factor is >= 1 (1 = ideal)");
        FsoParams {
            atmosphere: Atmosphere::new(
                self.atmosphere.sea_level_extinction_per_m * weather,
                self.atmosphere.scale_height_m,
            ),
            turbulence: TurbulenceProfile {
                scale: self.turbulence.scale * weather,
                ..self.turbulence
            },
            ..self
        }
    }

    /// Optical wavenumber `k = 2π/λ`.
    #[inline]
    pub fn wavenumber(&self) -> f64 {
        std::f64::consts::TAU / self.wavelength_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_apertures() {
        let a = ApertureSet::paper();
        assert_eq!(a.satellite_m, 1.2);
        assert_eq!(a.ground_m, 1.2);
        assert_eq!(a.hap_m, 0.3);
    }

    #[test]
    fn paper_elevation_is_20_degrees() {
        assert!((PAPER_ELEVATION_RAD.to_degrees() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_params_sane() {
        let p = FsoParams::ideal();
        assert!(p.receiver_efficiency > 0.9 && p.receiver_efficiency <= 1.0);
        assert!(
            p.turbulence.scale < 1.0,
            "ideal weather is calmer than HV-5/7"
        );
        assert!((p.wavenumber() - std::f64::consts::TAU / 810e-9).abs() < 1.0);
        assert_eq!(p.elevation_mode, ElevationMode::Geometric);
    }

    #[test]
    fn fixed_elevation_variant() {
        let p = FsoParams::ideal_fixed_elevation();
        match p.elevation_mode {
            ElevationMode::Fixed(e) => assert!((e - PAPER_ELEVATION_RAD).abs() < 1e-15),
            ElevationMode::Geometric => panic!("expected fixed mode"),
        }
    }

    #[test]
    fn weather_scaling() {
        let p = FsoParams::ideal().with_weather(3.0);
        let base = FsoParams::ideal();
        assert!(
            (p.atmosphere.sea_level_extinction_per_m
                - 3.0 * base.atmosphere.sea_level_extinction_per_m)
                .abs()
                < 1e-18
        );
        assert!((p.turbulence.scale - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn weather_below_one_rejected() {
        FsoParams::ideal().with_weather(0.5);
    }

    #[test]
    fn ideal_has_no_jitter() {
        assert_eq!(FsoParams::ideal().pointing_jitter_rad, 0.0);
        let p = FsoParams::ideal().with_pointing_jitter(5e-6);
        assert_eq!(p.pointing_jitter_rad, 5e-6);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_jitter_rejected() {
        FsoParams::ideal().with_pointing_jitter(-1.0);
    }
}
