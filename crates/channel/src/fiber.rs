//! Fiber-optic channels (the paper's Eq. 1).
//!
//! `η = e^{−αl}`, with the attenuation coefficient specified in dB/km the
//! way the paper's Section IV does (0.15 dB/km, from its reference \[18\]).
//! Exponential loss is exactly why direct inter-city fiber fails in QNTN:
//! at 0.15 dB/km a 111 km TTU→ORNL run has η ≈ 0.02, far below the 0.7
//! threshold, while intra-LAN links of a few hundred metres sit at η ≈ 0.99.

use crate::units::db_per_km_to_nepers_per_m;
use serde::{Deserialize, Serialize};

/// The paper's fiber attenuation: 0.15 dB/km.
pub const PAPER_FIBER_ATTENUATION_DB_PER_KM: f64 = 0.15;

/// A point-to-point fiber channel.
///
/// ```
/// use qntn_channel::fiber::FiberChannel;
///
/// // A 20 km run at the paper's 0.15 dB/km is a 3 dB (half-power) loss:
/// let fiber = FiberChannel::paper(20_000.0);
/// assert!((fiber.loss_db() - 3.0).abs() < 1e-9);
/// assert!((fiber.transmissivity() - 0.5).abs() < 2e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiberChannel {
    /// Physical length, metres.
    pub length_m: f64,
    /// Attenuation, dB/km.
    pub attenuation_db_per_km: f64,
}

impl FiberChannel {
    /// A fiber of `length_m` at the paper's 0.15 dB/km.
    pub fn paper(length_m: f64) -> FiberChannel {
        FiberChannel {
            length_m,
            attenuation_db_per_km: PAPER_FIBER_ATTENUATION_DB_PER_KM,
        }
    }

    /// A fiber with an explicit attenuation.
    pub fn new(length_m: f64, attenuation_db_per_km: f64) -> FiberChannel {
        assert!(length_m >= 0.0, "length must be non-negative");
        assert!(
            attenuation_db_per_km >= 0.0,
            "attenuation must be non-negative"
        );
        FiberChannel {
            length_m,
            attenuation_db_per_km,
        }
    }

    /// Transmissivity `η = e^{−αl}` (paper Eq. 1).
    pub fn transmissivity(&self) -> f64 {
        let alpha = db_per_km_to_nepers_per_m(self.attenuation_db_per_km);
        (-alpha * self.length_m).exp()
    }

    /// Total loss in dB.
    pub fn loss_db(&self) -> f64 {
        self.attenuation_db_per_km * self.length_m / 1000.0
    }

    /// Maximum length (metres) that still meets a transmissivity threshold.
    pub fn max_length_for_threshold(attenuation_db_per_km: f64, threshold: f64) -> f64 {
        assert!((0.0..1.0).contains(&threshold) && threshold > 0.0);
        let alpha = db_per_km_to_nepers_per_m(attenuation_db_per_km);
        -threshold.ln() / alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_is_lossless() {
        assert_eq!(FiberChannel::paper(0.0).transmissivity(), 1.0);
    }

    #[test]
    fn known_loss_values() {
        // 0.15 dB/km × 20 km = 3 dB -> η ≈ 0.501.
        let f = FiberChannel::paper(20_000.0);
        assert!((f.loss_db() - 3.0).abs() < 1e-12);
        assert!((f.transmissivity() - 0.501_187).abs() < 1e-6);
    }

    #[test]
    fn intra_lan_links_are_nearly_lossless() {
        // A 300 m campus link: η ≈ 0.99.
        let f = FiberChannel::paper(300.0);
        assert!(f.transmissivity() > 0.989, "{}", f.transmissivity());
    }

    #[test]
    fn inter_city_fiber_fails_threshold() {
        // The QNTN motivation: ~111 km between Cookeville and Oak Ridge.
        let f = FiberChannel::paper(111_000.0);
        assert!(f.transmissivity() < 0.03, "{}", f.transmissivity());
        assert!(f.transmissivity() < 0.7, "below the paper's threshold");
    }

    #[test]
    fn monotone_decreasing_in_length() {
        let mut prev = 1.1;
        for km in [0.0, 1.0, 5.0, 20.0, 100.0] {
            let eta = FiberChannel::paper(km * 1000.0).transmissivity();
            assert!(eta < prev);
            prev = eta;
        }
    }

    #[test]
    fn max_length_for_threshold_inverts_transmissivity() {
        let l = FiberChannel::max_length_for_threshold(0.15, 0.7);
        let eta = FiberChannel::paper(l).transmissivity();
        assert!((eta - 0.7).abs() < 1e-9);
        // ~10.3 km: the fiber "reach" at the paper's threshold.
        assert!((l / 1000.0 - 10.32).abs() < 0.05, "{}", l / 1000.0);
    }

    #[test]
    fn multiplicativity_over_segments() {
        // η(a+b) = η(a)·η(b): the property the routing product rule rests on.
        let a = FiberChannel::paper(7_000.0).transmissivity();
        let b = FiberChannel::paper(5_000.0).transmissivity();
        let ab = FiberChannel::paper(12_000.0).transmissivity();
        assert!((a * b - ab).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_length() {
        FiberChannel::new(-1.0, 0.15);
    }
}
