//! Weather-to-extinction mapping (Kim model).
//!
//! The weather extension sweeps need physical units: "visibility 10 km
//! haze" means more than "extinction × 8". The Kim model (the standard FSO
//! engineering form of Kruse's law) maps meteorological visibility `V` to
//! the extinction coefficient at wavelength λ:
//!
//! ```text
//! α = (3.912 / V) · (λ / 550 nm)^(−q),   q = q(V)
//! ```
//!
//! with the piecewise size-distribution exponent
//!
//! ```text
//! V > 50 km        q = 1.6
//! 6 < V ≤ 50 km    q = 1.3
//! 1 < V ≤ 6 km     q = 0.16·V + 0.34
//! 0.5 < V ≤ 1 km   q = V − 0.5
//! V ≤ 0.5 km       q = 0
//! ```

use crate::atmosphere::Atmosphere;
use serde::{Deserialize, Serialize};

/// Named weather conditions with their conventional visibility ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeatherCondition {
    /// Exceptionally clear: V = 50 km.
    ExceptionallyClear,
    /// Clear: V = 20 km.
    Clear,
    /// Light haze: V = 6 km.
    LightHaze,
    /// Haze: V = 4 km.
    Haze,
    /// Mist: V = 2 km.
    Mist,
    /// Light fog: V = 0.8 km.
    LightFog,
    /// Moderate fog: V = 0.4 km.
    ModerateFog,
}

impl WeatherCondition {
    /// Conventional meteorological visibility, metres.
    pub fn visibility_m(&self) -> f64 {
        match self {
            WeatherCondition::ExceptionallyClear => 50_000.0,
            WeatherCondition::Clear => 20_000.0,
            WeatherCondition::LightHaze => 6_000.0,
            WeatherCondition::Haze => 4_000.0,
            WeatherCondition::Mist => 2_000.0,
            WeatherCondition::LightFog => 800.0,
            WeatherCondition::ModerateFog => 400.0,
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            WeatherCondition::ExceptionallyClear => "exceptionally clear (V=50 km)",
            WeatherCondition::Clear => "clear (V=20 km)",
            WeatherCondition::LightHaze => "light haze (V=6 km)",
            WeatherCondition::Haze => "haze (V=4 km)",
            WeatherCondition::Mist => "mist (V=2 km)",
            WeatherCondition::LightFog => "light fog (V=0.8 km)",
            WeatherCondition::ModerateFog => "moderate fog (V=0.4 km)",
        }
    }
}

/// Kim's size-distribution exponent `q(V)`.
pub fn kim_q(visibility_m: f64) -> f64 {
    let v_km = visibility_m / 1000.0;
    if v_km > 50.0 {
        1.6
    } else if v_km > 6.0 {
        1.3
    } else if v_km > 1.0 {
        0.16 * v_km + 0.34
    } else if v_km > 0.5 {
        v_km - 0.5
    } else {
        0.0
    }
}

/// Sea-level extinction coefficient (1/m) at `wavelength_m` for the given
/// meteorological visibility (Kim model).
pub fn kim_extinction_per_m(visibility_m: f64, wavelength_m: f64) -> f64 {
    assert!(visibility_m > 0.0, "visibility must be positive");
    assert!(wavelength_m > 0.0, "wavelength must be positive");
    let q = kim_q(visibility_m);
    (3.912 / visibility_m) * (wavelength_m / 550e-9).powf(-q)
}

/// An exponential atmosphere whose sea-level extinction follows the Kim
/// model for the given visibility (scale height 6.6 km, like the clear-sky
/// default — fog layers are shallower in reality, making this pessimistic
/// for slant paths; documented conservatism).
pub fn atmosphere_for_visibility(visibility_m: f64, wavelength_m: f64) -> Atmosphere {
    Atmosphere::new(kim_extinction_per_m(visibility_m, wavelength_m), 6_600.0)
}

/// The visibility baked into the clear-sky link budgets, against which a
/// weather episode's *excess* extinction is measured.
pub const CLEAR_SKY_VISIBILITY_M: f64 = 50_000.0;

/// Multiplicative η penalty of a weather-front episode: the excess Kim
/// extinction of `visibility_m` over the clear-sky baseline, integrated
/// over an effective low-troposphere path of `effective_path_m`.
///
/// Returns a factor in `(0, 1]` — exactly 1.0 at (or above) clear-sky
/// visibility, since the baseline budgets already include that much loss.
/// The fault layer multiplies this onto atmosphere-crossing FSO links for
/// the duration of the front.
pub fn episode_eta_factor(visibility_m: f64, wavelength_m: f64, effective_path_m: f64) -> f64 {
    assert!(effective_path_m >= 0.0, "path must be non-negative");
    let excess = (kim_extinction_per_m(visibility_m, wavelength_m)
        - kim_extinction_per_m(CLEAR_SKY_VISIBILITY_M, wavelength_m))
    .max(0.0);
    (-excess * effective_path_m).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 810e-9;

    #[test]
    fn q_is_piecewise_continuous_at_breakpoints() {
        // At V = 6 km: 0.16*6 + 0.34 = 1.3 — continuous with the clear band.
        assert!((kim_q(6_000.0) - 1.3).abs() < 1e-12);
        assert!((kim_q(6_000.1) - 1.3).abs() < 1e-4);
        // At V = 1 km: 0.16 + 0.34 = 0.5 — continuous with the fog band.
        assert!((kim_q(1_000.0) - 0.5).abs() < 1e-12);
        assert!((kim_q(999.9) - 0.4999).abs() < 1e-3);
        // At V = 0.5 km both branches give 0.
        assert!((kim_q(500.0)).abs() < 1e-12);
    }

    #[test]
    fn extinction_increases_as_visibility_drops() {
        let mut prev = 0.0;
        for w in [
            WeatherCondition::ExceptionallyClear,
            WeatherCondition::Clear,
            WeatherCondition::LightHaze,
            WeatherCondition::Haze,
            WeatherCondition::Mist,
            WeatherCondition::LightFog,
            WeatherCondition::ModerateFog,
        ] {
            let a = kim_extinction_per_m(w.visibility_m(), LAMBDA);
            assert!(a > prev, "{}", w.label());
            prev = a;
        }
    }

    #[test]
    fn near_ir_beats_visible_in_haze() {
        // q > 0: longer wavelengths scatter less.
        let vis = 4_000.0;
        let a_810 = kim_extinction_per_m(vis, 810e-9);
        let a_550 = kim_extinction_per_m(vis, 550e-9);
        assert!(a_810 < a_550);
    }

    #[test]
    fn fog_is_wavelength_neutral() {
        // q = 0 below 500 m visibility: geometry-dominated scattering.
        let a_810 = kim_extinction_per_m(400.0, 810e-9);
        let a_1550 = kim_extinction_per_m(400.0, 1550e-9);
        assert!((a_810 - a_1550).abs() / a_810 < 1e-12);
    }

    #[test]
    fn clear_sky_magnitude() {
        // V = 50 km at 810 nm: ~0.047/km -> ~0.2 dB/km — consistent with
        // clear-air FSO budgets.
        let a = kim_extinction_per_m(50_000.0, LAMBDA);
        let db_per_km = a * 1000.0 * 10.0 / std::f64::consts::LN_10;
        assert!((0.1..0.5).contains(&db_per_km), "{db_per_km} dB/km");
    }

    #[test]
    fn fog_kills_a_hap_link() {
        // Moderate fog: ~9.8/km extinction; even 1 km of path is opaque.
        let atm = atmosphere_for_visibility(400.0, LAMBDA);
        let eta = atm.transmissivity(0.0, 30_000.0, 0.4);
        assert!(eta < 1e-10, "{eta}");
    }

    #[test]
    fn clear_atmosphere_supports_the_network() {
        let atm = atmosphere_for_visibility(50_000.0, LAMBDA);
        // Zenith ground-to-space transmissivity stays high.
        let eta = atm.transmissivity(0.0, 500_000.0, std::f64::consts::FRAC_PI_2);
        assert!(eta > 0.7, "{eta}");
    }

    #[test]
    #[should_panic(expected = "visibility must be positive")]
    fn rejects_zero_visibility() {
        kim_extinction_per_m(0.0, LAMBDA);
    }

    #[test]
    fn episode_factor_is_identity_at_clear_sky() {
        assert_eq!(
            episode_eta_factor(CLEAR_SKY_VISIBILITY_M, LAMBDA, 1_500.0),
            1.0
        );
        // Above the baseline the excess clamps to zero, not a gain.
        assert_eq!(episode_eta_factor(80_000.0, LAMBDA, 1_500.0), 1.0);
        // Zero path length means no excess loss regardless of visibility.
        assert_eq!(episode_eta_factor(2_000.0, LAMBDA, 0.0), 1.0);
    }

    #[test]
    fn episode_factor_is_monotone_in_visibility() {
        let mut prev = 0.0;
        for v in [400.0, 800.0, 2_000.0, 4_000.0, 6_000.0, 20_000.0, 50_000.0] {
            let f = episode_eta_factor(v, LAMBDA, 1_500.0);
            assert!((0.0..=1.0).contains(&f), "V={v}: {f}");
            assert!(f > prev, "V={v}: {f} !> {prev}");
            prev = f;
        }
    }

    #[test]
    fn episode_factor_magnitudes_bracket_the_threshold() {
        // The fault layer draws V log-uniform in [2 km, 20 km]; the factor
        // range should straddle the η = 0.7 serving threshold so fronts
        // actually matter.
        let worst = episode_eta_factor(2_000.0, LAMBDA, 1_500.0);
        let best = episode_eta_factor(20_000.0, LAMBDA, 1_500.0);
        assert!(worst < 0.3, "{worst}");
        assert!(best > 0.7, "{best}");
    }
}
