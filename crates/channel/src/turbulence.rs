//! Optical turbulence (the turbulence part of η_th in the paper's Eq. 2).
//!
//! The reference the paper takes its FSO parameters from (Ghalaii &
//! Pirandola 2022) characterizes turbulence through the refractive-index
//! structure parameter Cn². We implement the standard Hufnagel–Valley
//! profile, the slant-path Rytov variance, and the turbulence-induced
//! long-term beam-spread factor of Andrews & Phillips, and expose a single
//! `spread factor` the beam model multiplies into its spot size.
//!
//! The paper's simulations assume "perfect setup and ideal conditions
//! (stable weather)"; the `turbulence.scale` field of [`crate::params::FsoParams`] scales
//! the HV-5/7 profile down for that regime (1.0 = nominal HV-5/7), and the
//! weather-sensitivity ablation sweeps it back up.

use serde::{Deserialize, Serialize};

/// Hufnagel–Valley turbulence profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurbulenceProfile {
    /// Ground-level structure constant `A`, m^(−2/3) (HV-5/7: 1.7e-14).
    pub cn2_ground: f64,
    /// RMS upper-atmosphere wind speed, m/s (HV-5/7: 21).
    pub wind_rms_m_s: f64,
    /// Overall scale factor (1 = nominal profile, <1 = calmer than nominal).
    pub scale: f64,
}

impl TurbulenceProfile {
    /// The canonical HV-5/7 profile.
    pub fn hv57() -> TurbulenceProfile {
        TurbulenceProfile {
            cn2_ground: 1.7e-14,
            wind_rms_m_s: 21.0,
            scale: 1.0,
        }
    }

    /// The nominal profile scaled by `scale` (ideal-weather regimes use <1).
    pub fn scaled(scale: f64) -> TurbulenceProfile {
        assert!(scale >= 0.0, "scale must be non-negative");
        TurbulenceProfile {
            scale,
            ..TurbulenceProfile::hv57()
        }
    }

    /// No turbulence at all (vacuum / space-only paths).
    pub fn none() -> TurbulenceProfile {
        TurbulenceProfile {
            cn2_ground: 0.0,
            wind_rms_m_s: 0.0,
            scale: 0.0,
        }
    }

    /// `Cn²(h)` in m^(−2/3) at altitude `h_m`.
    pub fn cn2(&self, h_m: f64) -> f64 {
        let h = h_m.max(0.0);
        let w = self.wind_rms_m_s / 27.0;
        let term1 = 0.005_94 * w * w * (1e-5 * h).powi(10) * (-h / 1000.0).exp();
        let term2 = 2.7e-16 * (-h / 1500.0).exp();
        let term3 = self.cn2_ground * (-h / 100.0).exp();
        self.scale * (term1 + term2 + term3)
    }

    /// Slant-path Rytov variance for a **downlink** (receiver at
    /// `rx_alt_m`, transmitter far above at `tx_alt_m`), wavenumber
    /// `k = 2π/λ`, elevation `elev`:
    ///
    /// `σ_R² = 2.25·k^{7/6}·sec^{11/6}ζ · ∫ Cn²(h)·(h − h_rx)^{5/6} dh`
    ///
    /// Integrated by Simpson's rule up to min(tx_alt, 40 km) — Cn² is
    /// negligible above.
    pub fn rytov_variance_downlink(&self, k: f64, rx_alt_m: f64, tx_alt_m: f64, elev: f64) -> f64 {
        if self.scale == 0.0 || tx_alt_m <= rx_alt_m {
            return 0.0;
        }
        let zenith = std::f64::consts::FRAC_PI_2 - elev.max(5.0_f64.to_radians());
        let sec = 1.0 / zenith.cos();
        let h_top = tx_alt_m.min(40_000.0);
        if h_top <= rx_alt_m {
            return 0.0;
        }
        let integral = simpson(rx_alt_m, h_top, 400, |h| {
            self.cn2(h) * (h - rx_alt_m).max(0.0).powf(5.0 / 6.0)
        });
        2.25 * k.powf(7.0 / 6.0) * sec.powf(11.0 / 6.0) * integral
    }

    /// Long-term turbulence beam-spread factor `T ≥ 1`: the long-term spot
    /// size is `w_lt = w_d·√T` with
    /// `T = 1 + 1.33·σ_R²·Λ^{5/6}`, `Λ = 2L/(k·w_d²)`
    /// (Andrews & Phillips, weak-to-moderate fluctuation theory).
    pub fn spread_factor(&self, rytov_var: f64, k: f64, path_m: f64, w_diff_m: f64) -> f64 {
        if rytov_var <= 0.0 {
            return 1.0;
        }
        let lambda_param = 2.0 * path_m / (k * w_diff_m * w_diff_m);
        1.0 + 1.33 * rytov_var * lambda_param.powf(5.0 / 6.0)
    }
}

/// Simpson's rule on `[a, b]` with `n` (even) panels.
fn simpson(a: f64, b: f64, n: usize, f: impl Fn(f64) -> f64) -> f64 {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "Simpson needs an even panel count"
    );
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        acc += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const K_810NM: f64 = 2.0 * std::f64::consts::PI / 810e-9;

    #[test]
    fn simpson_integrates_polynomials_exactly() {
        // Simpson is exact for cubics.
        let got = simpson(0.0, 2.0, 2, |x| x * x * x);
        assert!((got - 4.0).abs() < 1e-12);
        let got = simpson(-1.0, 3.0, 100, |x| 3.0 * x * x);
        assert!((got - 28.0).abs() < 1e-9);
    }

    #[test]
    fn hv57_ground_value() {
        let p = TurbulenceProfile::hv57();
        // At h=0 the A-term dominates: Cn²(0) ≈ 1.7e-14 + 2.7e-16.
        assert!((p.cn2(0.0) - 1.727e-14).abs() < 1e-16);
    }

    #[test]
    fn cn2_decays_with_altitude() {
        let p = TurbulenceProfile::hv57();
        assert!(p.cn2(0.0) > p.cn2(1_000.0));
        assert!(p.cn2(1_000.0) > p.cn2(10_000.0) / 10.0); // tropopause bump exists
        assert!(p.cn2(30_000.0) < 1e-17, "{}", p.cn2(30_000.0));
    }

    #[test]
    fn zero_scale_kills_everything() {
        let p = TurbulenceProfile::none();
        assert_eq!(p.cn2(0.0), 0.0);
        assert_eq!(p.rytov_variance_downlink(K_810NM, 0.0, 500_000.0, 0.5), 0.0);
        assert_eq!(p.spread_factor(0.0, K_810NM, 1e6, 0.5), 1.0);
    }

    #[test]
    fn downlink_rytov_magnitude_is_weak() {
        // Downlink scintillation at 810 nm, zenith: σ_R² well below 1
        // (weak-fluctuation regime) for the nominal profile.
        let p = TurbulenceProfile::hv57();
        let r = p.rytov_variance_downlink(K_810NM, 0.0, 500_000.0, std::f64::consts::FRAC_PI_2);
        assert!(r > 0.0 && r < 1.0, "{r}");
    }

    #[test]
    fn rytov_grows_toward_the_horizon() {
        let p = TurbulenceProfile::hv57();
        let hi = p.rytov_variance_downlink(K_810NM, 0.0, 500_000.0, std::f64::consts::FRAC_PI_2);
        let lo = p.rytov_variance_downlink(K_810NM, 0.0, 500_000.0, std::f64::consts::PI / 9.0);
        assert!(lo > hi, "lo={lo} hi={hi}");
        // sec^{11/6}(70°) ≈ 7.2.
        assert!(
            (lo / hi - (1.0 / 20.0_f64.to_radians().sin()).powf(11.0 / 6.0)).abs() / (lo / hi)
                < 0.01
        );
    }

    #[test]
    fn elevated_receiver_sees_less_turbulence() {
        // A receiver at 30 km (HAP) is above almost all Cn².
        let p = TurbulenceProfile::hv57();
        let ground = p.rytov_variance_downlink(K_810NM, 0.0, 500_000.0, 0.9);
        let hap = p.rytov_variance_downlink(K_810NM, 30_000.0, 500_000.0, 0.9);
        assert!(hap < ground * 1e-3, "hap={hap} ground={ground}");
    }

    #[test]
    fn spread_factor_at_least_one_and_monotone() {
        let p = TurbulenceProfile::hv57();
        let mut prev = 1.0;
        for r in [0.0, 0.01, 0.1, 0.5] {
            let t = p.spread_factor(r, K_810NM, 700_000.0, 0.5);
            assert!(t >= prev, "rytov {r}");
            prev = t;
        }
        assert_eq!(p.spread_factor(0.0, K_810NM, 700_000.0, 0.5), 1.0);
    }

    #[test]
    fn scaling_is_linear_in_cn2() {
        let half = TurbulenceProfile::scaled(0.5);
        let full = TurbulenceProfile::hv57();
        let rh = half.rytov_variance_downlink(K_810NM, 0.0, 500_000.0, 0.8);
        let rf = full.rytov_variance_downlink(K_810NM, 0.0, 500_000.0, 0.8);
        assert!((rh * 2.0 - rf).abs() / rf < 1e-9);
    }

    #[test]
    fn no_turbulence_above_the_transmitter() {
        let p = TurbulenceProfile::hv57();
        // tx below rx: treated as no turbulent path (handled by caller for uplinks).
        assert_eq!(
            p.rytov_variance_downlink(K_810NM, 500_000.0, 30_000.0, 0.8),
            0.0
        );
    }
}
