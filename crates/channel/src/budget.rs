//! Itemized FSO link budgets.

use serde::{Deserialize, Serialize};

/// Every factor of one FSO link's transmissivity, for reports and debugging
/// calibration. Produced by [`crate::fso::FsoChannel::budget`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Slant range, metres.
    pub range_m: f64,
    /// Elevation used by the attenuation formulas, radians.
    pub elevation_rad: f64,
    /// Transmit beam waist, metres.
    pub beam_waist_m: f64,
    /// Diffraction-only spot radius at the receiver, metres.
    pub diffraction_spot_m: f64,
    /// Slant-path Rytov variance.
    pub rytov_variance: f64,
    /// Turbulence long-term spread factor `T ≥ 1` (spot area multiplier).
    pub turbulence_spread: f64,
    /// Long-term spot radius `w_lt = w_d·√T`, metres.
    pub long_term_spot_m: f64,
    /// Aperture-coupling transmissivity (diffraction + turbulence), the
    /// paper's η_th.
    pub eta_th: f64,
    /// Atmospheric extinction transmissivity, the paper's η_atm.
    pub eta_atm: f64,
    /// Receiver efficiency, the paper's η_eff.
    pub eta_eff: f64,
}

impl LinkBudget {
    /// Total transmissivity η = η_th·η_atm·η_eff (paper Eq. 2).
    #[inline]
    pub fn eta_total(&self) -> f64 {
        self.eta_th * self.eta_atm * self.eta_eff
    }

    /// Total loss in dB.
    pub fn loss_db(&self) -> f64 {
        -crate::units::linear_to_db(self.eta_total())
    }
}

impl std::fmt::Display for LinkBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FSO link budget @ {:.1} km, elev {:.1}°",
            self.range_m / 1000.0,
            self.elevation_rad.to_degrees()
        )?;
        writeln!(
            f,
            "  beam: w0 = {:.3} m -> diffraction spot {:.3} m, turbulence x{:.3} -> {:.3} m",
            self.beam_waist_m,
            self.diffraction_spot_m,
            self.turbulence_spread,
            self.long_term_spot_m
        )?;
        writeln!(
            f,
            "  eta_th = {:.4}  eta_atm = {:.4}  eta_eff = {:.4}",
            self.eta_th, self.eta_atm, self.eta_eff
        )?;
        write!(
            f,
            "  eta = {:.4}  ({:.2} dB loss)",
            self.eta_total(),
            self.loss_db()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LinkBudget {
        LinkBudget {
            range_m: 700_000.0,
            elevation_rad: 0.6,
            beam_waist_m: 0.48,
            diffraction_spot_m: 0.6,
            rytov_variance: 0.02,
            turbulence_spread: 1.05,
            long_term_spot_m: 0.615,
            eta_th: 0.85,
            eta_atm: 0.95,
            eta_eff: 0.995,
        }
    }

    #[test]
    fn total_is_product() {
        let b = sample();
        assert!((b.eta_total() - 0.85 * 0.95 * 0.995).abs() < 1e-12);
    }

    #[test]
    fn loss_db_positive_for_lossy_link() {
        let b = sample();
        assert!(b.loss_db() > 0.0);
        // η ≈ 0.8034 -> ≈ 0.95 dB.
        assert!((b.loss_db() - 0.951).abs() < 0.01, "{}", b.loss_db());
    }

    #[test]
    fn display_contains_key_fields() {
        let s = format!("{}", sample());
        assert!(s.contains("700.0 km"), "{s}");
        assert!(s.contains("eta_th"), "{s}");
        assert!(s.contains("dB loss"), "{s}");
    }
}
