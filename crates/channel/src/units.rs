//! Decibel ↔ linear conversions.
//!
//! Losses in the optics literature mix conventions freely (the paper quotes
//! fiber attenuation in dB/km but writes Eq. 1 with a natural-log
//! coefficient); these helpers keep the workspace honest about which one a
//! number is in.

/// Convert a power ratio in dB to linear (`10^(dB/10)`).
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10.0_f64.powf(db / 10.0)
}

/// Convert a linear power ratio to dB (`10·log₁₀`).
#[inline]
pub fn linear_to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Convert an attenuation coefficient in dB/km to nepers/m (the `α` of the
/// paper's `η = e^{−αl}` with `l` in metres).
#[inline]
pub fn db_per_km_to_nepers_per_m(db_per_km: f64) -> f64 {
    db_per_km / (1000.0 * 10.0 / std::f64::consts::LN_10)
}

/// Convert nepers/m to dB/km.
#[inline]
pub fn nepers_per_m_to_db_per_km(nepers_per_m: f64) -> f64 {
    nepers_per_m * 1000.0 * 10.0 / std::f64::consts::LN_10
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_linear_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn known_values() {
        assert!((db_to_linear(-10.0) - 0.1).abs() < 1e-15);
        assert!((db_to_linear(-3.0) - 0.501_187).abs() < 1e-6);
        assert!((linear_to_db(0.5) + 3.0103).abs() < 1e-4);
    }

    #[test]
    fn nepers_conversion_roundtrip() {
        let alpha = db_per_km_to_nepers_per_m(0.15);
        assert!((nepers_per_m_to_db_per_km(alpha) - 0.15).abs() < 1e-12);
        // 0.15 dB/km ≈ 3.454e-5 nepers/m.
        assert!((alpha - 3.4539e-5).abs() < 1e-8, "{alpha}");
    }

    #[test]
    fn conversion_consistency() {
        // exp(-α·L) must equal 10^(-dB·L/10) for matched coefficients.
        let db_per_km = 0.15;
        let alpha = db_per_km_to_nepers_per_m(db_per_km);
        for l_km in [1.0, 10.0, 50.0, 111.0] {
            let via_exp = (-alpha * l_km * 1000.0).exp();
            let via_db = db_to_linear(-db_per_km * l_km);
            assert!((via_exp - via_db).abs() < 1e-12, "L={l_km}");
        }
    }
}
