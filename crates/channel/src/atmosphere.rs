//! Atmospheric extinction (the η_atm factor of the paper's Eq. 2).
//!
//! We model clear-sky molecular/aerosol extinction with an exponential
//! profile `α(h) = α₀·e^{−h/H}`. The optical depth of a slant path between
//! altitudes `h_lo < h_hi` at zenith angle ζ is then closed-form:
//!
//! ```text
//! τ = α₀·H·(e^{−h_lo/H} − e^{−h_hi/H})·sec ζ,      η_atm = e^{−τ}
//! ```
//!
//! The flat-atmosphere secant approximation is accurate to a few percent up
//! to ζ ≈ 75°, comfortably covering the paper's π/9 (70° zenith) elevation
//! mask. The sea-level coefficient is part of the calibrated "ideal
//! conditions" parameter set (see [`crate::params`]).

use serde::{Deserialize, Serialize};

/// An exponential clear-sky atmosphere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Atmosphere {
    /// Sea-level extinction coefficient, 1/m.
    pub sea_level_extinction_per_m: f64,
    /// Scale height, metres.
    pub scale_height_m: f64,
}

impl Atmosphere {
    /// Construct; panics on non-physical inputs.
    pub fn new(sea_level_extinction_per_m: f64, scale_height_m: f64) -> Atmosphere {
        assert!(
            sea_level_extinction_per_m >= 0.0,
            "extinction must be non-negative"
        );
        assert!(scale_height_m > 0.0, "scale height must be positive");
        Atmosphere {
            sea_level_extinction_per_m,
            scale_height_m,
        }
    }

    /// A vacuum (for inter-satellite links).
    pub fn vacuum() -> Atmosphere {
        Atmosphere {
            sea_level_extinction_per_m: 0.0,
            scale_height_m: 1.0,
        }
    }

    /// Extinction coefficient at altitude `h_m`, 1/m.
    #[inline]
    pub fn extinction_at(&self, h_m: f64) -> f64 {
        self.sea_level_extinction_per_m * (-h_m.max(0.0) / self.scale_height_m).exp()
    }

    /// Zenith optical depth between two altitudes (order-insensitive).
    pub fn zenith_optical_depth(&self, h_a: f64, h_b: f64) -> f64 {
        let (lo, hi) = if h_a <= h_b { (h_a, h_b) } else { (h_b, h_a) };
        let h = self.scale_height_m;
        self.sea_level_extinction_per_m * h * ((-lo.max(0.0) / h).exp() - (-hi.max(0.0) / h).exp())
    }

    /// Slant-path optical depth at elevation `elev` (radians above horizon).
    ///
    /// Uses the flat-slab secant factor, clamped so grazing paths do not
    /// produce unbounded depths (a 5° floor on the elevation — links that
    /// low are far below the transmissivity threshold anyway).
    pub fn slant_optical_depth(&self, h_a: f64, h_b: f64, elev: f64) -> f64 {
        let clamped = elev.max(5.0_f64.to_radians());
        self.zenith_optical_depth(h_a, h_b) / clamped.sin()
    }

    /// Transmissivity of a slant path: `e^{−τ}`.
    pub fn transmissivity(&self, h_a: f64, h_b: f64, elev: f64) -> f64 {
        (-self.slant_optical_depth(h_a, h_b, elev)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn atm() -> Atmosphere {
        Atmosphere::new(2.0e-6, 6_600.0)
    }

    #[test]
    fn vacuum_is_transparent() {
        let v = Atmosphere::vacuum();
        assert_eq!(v.transmissivity(0.0, 500_000.0, 0.3), 1.0);
    }

    #[test]
    fn zenith_depth_ground_to_space_is_alpha_h() {
        let a = atm();
        let tau = a.zenith_optical_depth(0.0, 1e9);
        assert!((tau - 2.0e-6 * 6_600.0).abs() < 1e-12);
    }

    #[test]
    fn depth_is_order_insensitive_and_additive() {
        let a = atm();
        assert_eq!(
            a.zenith_optical_depth(0.0, 30_000.0),
            a.zenith_optical_depth(30_000.0, 0.0)
        );
        let whole = a.zenith_optical_depth(0.0, 500_000.0);
        let split =
            a.zenith_optical_depth(0.0, 30_000.0) + a.zenith_optical_depth(30_000.0, 500_000.0);
        assert!((whole - split).abs() < 1e-15);
    }

    #[test]
    fn most_extinction_is_below_hap_altitude() {
        // 30 km is ~4.5 scale heights: ≥98% of the zenith depth lies below.
        let a = atm();
        let below = a.zenith_optical_depth(0.0, 30_000.0);
        let total = a.zenith_optical_depth(0.0, 1e9);
        assert!(below / total > 0.98, "{}", below / total);
    }

    #[test]
    fn secant_scaling() {
        let a = atm();
        let zenith = a.slant_optical_depth(0.0, 500_000.0, FRAC_PI_2);
        let slant = a.slant_optical_depth(0.0, 500_000.0, std::f64::consts::PI / 6.0);
        assert!((slant / zenith - 2.0).abs() < 1e-9, "sec(60°) = 2");
    }

    #[test]
    fn grazing_clamp() {
        let a = atm();
        let t0 = a.transmissivity(0.0, 500_000.0, 0.0);
        let t5 = a.transmissivity(0.0, 500_000.0, 5.0_f64.to_radians());
        assert!(t0 > 0.0, "no blow-up at the horizon");
        assert!((t0 - t5).abs() < 1e-12, "clamped to the 5° floor");
    }

    #[test]
    fn transmissivity_monotone_in_elevation() {
        let a = atm();
        let mut prev = 0.0;
        for deg in [5.0, 10.0, 20.0, 45.0, 90.0] {
            let t = a.transmissivity(0.0, 500_000.0, f64::to_radians(deg));
            assert!(t > prev, "elev {deg}");
            prev = t;
        }
    }

    #[test]
    fn high_altitude_paths_see_little_atmosphere() {
        // 30 km -> 500 km slant: optically almost free.
        let a = atm();
        let t = a.transmissivity(30_000.0, 500_000.0, 0.5);
        assert!(t > 0.999, "{t}");
    }

    #[test]
    fn extinction_profile_decays() {
        let a = atm();
        assert!(a.extinction_at(0.0) > a.extinction_at(6_600.0));
        assert!((a.extinction_at(6_600.0) / a.extinction_at(0.0) - (-1.0_f64).exp()).abs() < 1e-12);
        // Negative altitudes clamp to sea level.
        assert_eq!(a.extinction_at(-100.0), a.extinction_at(0.0));
    }
}
