//! Free-space optical channels (the paper's Eq. 2: η = η_th·η_atm·η_eff).
//!
//! The beam model is a Gaussian beam launched from the *higher* endpoint
//! (the entanglement source in both QNTN architectures is the airborne
//! platform, Micius-style, so every atmospheric FSO link is a downlink):
//!
//! 1. **Diffraction**: waist `w₀ = ratio·a_tx` spreads to
//!    `w_d = w₀·√(1 + (L/z_R)²)`, `z_R = πw₀²/λ`.
//! 2. **Turbulence**: long-term spread `w_lt = w_d·√T` with `T` from the
//!    Rytov variance of the slant path ([`TurbulenceProfile`](crate::turbulence::TurbulenceProfile)).
//! 3. **Aperture coupling**: `η_th = 1 − e^{−2a_rx²/w_lt²}` — the power of a
//!    Gaussian spot captured by the receiver aperture of radius `a_rx`.
//! 4. **Extinction**: `η_atm` from the exponential atmosphere.
//! 5. **Receiver efficiency**: `η_eff`, a constant.
//!
//! Inter-satellite links (both endpoints above 80 km) skip 2 and 4.

use crate::budget::LinkBudget;
use crate::params::{ElevationMode, FsoParams};
use serde::{Deserialize, Serialize};

/// Altitude above which a path endpoint counts as "in space" (no
/// atmosphere/turbulence contribution on space-space paths).
pub const SPACE_ALTITUDE_M: f64 = 80_000.0;

/// The geometry of one FSO link at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsoGeometry {
    /// Transmit aperture **diameter**, metres (the higher endpoint).
    pub tx_aperture_m: f64,
    /// Receive aperture **diameter**, metres (the lower endpoint).
    pub rx_aperture_m: f64,
    /// Transmitter altitude, metres.
    pub tx_alt_m: f64,
    /// Receiver altitude, metres.
    pub rx_alt_m: f64,
    /// Slant range, metres.
    pub range_m: f64,
    /// Geometric elevation of the line of sight above the lower endpoint's
    /// horizon, radians.
    pub elevation_rad: f64,
}

impl FsoGeometry {
    /// Normalize so the transmitter is the higher endpoint (entanglement
    /// sources are airborne in QNTN; see module docs). Swaps apertures and
    /// altitudes if needed.
    pub fn downlink(
        high_aperture_m: f64,
        high_alt_m: f64,
        low_aperture_m: f64,
        low_alt_m: f64,
        range_m: f64,
        elevation_rad: f64,
    ) -> FsoGeometry {
        if high_alt_m >= low_alt_m {
            FsoGeometry {
                tx_aperture_m: high_aperture_m,
                rx_aperture_m: low_aperture_m,
                tx_alt_m: high_alt_m,
                rx_alt_m: low_alt_m,
                range_m,
                elevation_rad,
            }
        } else {
            FsoGeometry {
                tx_aperture_m: low_aperture_m,
                rx_aperture_m: high_aperture_m,
                tx_alt_m: low_alt_m,
                rx_alt_m: high_alt_m,
                range_m,
                elevation_rad,
            }
        }
    }

    /// True when both endpoints are above the sensible atmosphere.
    #[inline]
    pub fn is_space_only(&self) -> bool {
        self.tx_alt_m.min(self.rx_alt_m) > SPACE_ALTITUDE_M
    }
}

/// A free-space optical channel: geometry + calibrated parameters.
///
/// ```
/// use qntn_channel::fso::{FsoChannel, FsoGeometry};
/// use qntn_channel::params::FsoParams;
///
/// // A zenith satellite downlink: 500 km with the paper's 1.2 m apertures.
/// let geom = FsoGeometry::downlink(1.2, 500_000.0, 1.2, 300.0, 500_000.0,
///                                  std::f64::consts::FRAC_PI_2);
/// let eta = FsoChannel::new(geom, FsoParams::ideal()).transmissivity();
/// assert!(eta > 0.8 && eta < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsoChannel {
    pub geometry: FsoGeometry,
    pub params: FsoParams,
}

impl FsoChannel {
    /// Bind geometry to a parameter set.
    pub fn new(geometry: FsoGeometry, params: FsoParams) -> FsoChannel {
        assert!(geometry.range_m > 0.0, "range must be positive");
        assert!(geometry.tx_aperture_m > 0.0 && geometry.rx_aperture_m > 0.0);
        FsoChannel { geometry, params }
    }

    /// The elevation used by the attenuation formulas per the configured
    /// [`ElevationMode`].
    fn effective_elevation(&self) -> f64 {
        match self.params.elevation_mode {
            ElevationMode::Geometric => self.geometry.elevation_rad,
            ElevationMode::Fixed(e) => e,
        }
    }

    /// Full itemized link budget.
    pub fn budget(&self) -> LinkBudget {
        self.budget_with_rytov(None)
    }

    /// Link budget with an externally supplied Rytov variance (the network
    /// simulator caches Rytov over an elevation grid because the Simpson
    /// integral is by far the most expensive factor; `None` computes it
    /// exactly). Space-only paths ignore the override.
    pub fn budget_with_rytov(&self, rytov_override: Option<f64>) -> LinkBudget {
        let g = &self.geometry;
        let p = &self.params;
        let k = p.wavenumber();
        let elev = self.effective_elevation();

        // 1. Diffraction.
        let w0 = p.tx_waist_ratio * g.tx_aperture_m / 2.0;
        let z_r = std::f64::consts::PI * w0 * w0 / p.wavelength_m;
        let ratio = g.range_m / z_r;
        let w_diff = w0 * (1.0 + ratio * ratio).sqrt();

        // 2. Turbulence spread (atmospheric paths only; the receiver is the
        //    lower endpoint by construction).
        let (rytov, spread) = if g.is_space_only() {
            (0.0, 1.0)
        } else {
            let r = rytov_override.unwrap_or_else(|| {
                p.turbulence
                    .rytov_variance_downlink(k, g.rx_alt_m, g.tx_alt_m, elev)
            });
            (r, p.turbulence.spread_factor(r, k, g.range_m, w_diff))
        };
        // Pointing jitter broadens the long-term spot: Gaussian-pointing
        // averaging adds 2(σ_p·L)² to the spot variance.
        let jitter_m = p.pointing_jitter_rad * g.range_m;
        let w_lt = (w_diff * w_diff * spread + 2.0 * jitter_m * jitter_m).sqrt();

        // 3. Aperture coupling.
        let a_rx = g.rx_aperture_m / 2.0;
        let eta_th = 1.0 - (-2.0 * a_rx * a_rx / (w_lt * w_lt)).exp();

        // 4. Extinction.
        let eta_atm = if g.is_space_only() {
            1.0
        } else {
            p.atmosphere.transmissivity(g.rx_alt_m, g.tx_alt_m, elev)
        };

        LinkBudget {
            range_m: g.range_m,
            elevation_rad: elev,
            beam_waist_m: w0,
            diffraction_spot_m: w_diff,
            rytov_variance: rytov,
            turbulence_spread: spread,
            long_term_spot_m: w_lt,
            eta_th,
            eta_atm,
            eta_eff: p.receiver_efficiency,
        }
    }

    /// Total transmissivity η = η_th·η_atm·η_eff (the paper's Eq. 2).
    pub fn transmissivity(&self) -> f64 {
        self.budget().eta_total()
    }
}

/// SoA buffers for evaluating the total η of many *atmospheric downlinks*
/// in one call — the batched form of [`FsoChannel::budget_with_rytov`]
/// with a per-element Rytov variance supplied by the caller.
///
/// Element `i` of [`FsoBatch::eta`] is **bit-identical** to
/// `FsoChannel::new(geom_i, params).budget_with_rytov(Some(rytov_i)).eta_total()`
/// for non-space-only geometry: every stage applies exactly the scalar
/// path's expressions to each element, in the same per-element evaluation
/// order — Rust neither contracts floats into FMAs nor reassociates them,
/// so splitting the computation into per-stage loops over arrays cannot
/// change a bit. What it does change is the instruction mix: the
/// arithmetic-only diffraction stage auto-vectorizes, and the
/// `powf`/`exp`-bound stages run back to back with their table state hot.
/// `cached_vs_batch` below pins the bit-identity.
#[derive(Debug, Default, Clone)]
pub struct FsoBatch {
    tx_aperture_m: Vec<f64>,
    rx_aperture_m: Vec<f64>,
    tx_alt_m: Vec<f64>,
    rx_alt_m: Vec<f64>,
    range_m: Vec<f64>,
    elevation_rad: Vec<f64>,
    rytov: Vec<f64>,
    w_diff: Vec<f64>,
    w_lt: Vec<f64>,
    eta: Vec<f64>,
}

impl FsoBatch {
    /// Drop every queued element (buffers keep their capacity).
    pub fn clear(&mut self) {
        self.tx_aperture_m.clear();
        self.rx_aperture_m.clear();
        self.tx_alt_m.clear();
        self.rx_alt_m.clear();
        self.range_m.clear();
        self.elevation_rad.clear();
        self.rytov.clear();
    }

    /// Number of queued elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.range_m.len()
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.range_m.is_empty()
    }

    /// Queue one downlink: its geometry, the *effective* elevation the
    /// attenuation formulas should use (per the caller's
    /// [`ElevationMode`] resolution), and its Rytov variance. The kernel
    /// models atmospheric downlinks only — space-only geometry must stay
    /// on the scalar path.
    pub fn push(&mut self, geom: &FsoGeometry, effective_elevation_rad: f64, rytov: f64) {
        debug_assert!(
            !geom.is_space_only(),
            "the batch kernel models atmospheric downlinks only"
        );
        self.tx_aperture_m.push(geom.tx_aperture_m);
        self.rx_aperture_m.push(geom.rx_aperture_m);
        self.tx_alt_m.push(geom.tx_alt_m);
        self.rx_alt_m.push(geom.rx_alt_m);
        self.range_m.push(geom.range_m);
        self.elevation_rad.push(effective_elevation_rad);
        self.rytov.push(rytov);
    }

    /// Run the stage loops over every queued element. Afterwards
    /// [`FsoBatch::eta`] holds one total transmissivity per element, in
    /// push order.
    pub fn compute(&mut self, params: &FsoParams) {
        let n = self.len();
        let k = params.wavenumber();
        self.w_diff.clear();
        self.w_lt.clear();
        self.eta.clear();
        self.w_diff.reserve(n);
        self.w_lt.reserve(n);
        self.eta.reserve(n);
        // Stage 1 — diffraction: pure arithmetic plus one sqrt, the loop
        // the compiler vectorizes.
        for i in 0..n {
            let w0 = params.tx_waist_ratio * self.tx_aperture_m[i] / 2.0;
            let z_r = std::f64::consts::PI * w0 * w0 / params.wavelength_m;
            let ratio = self.range_m[i] / z_r;
            self.w_diff.push(w0 * (1.0 + ratio * ratio).sqrt());
        }
        // Stage 2 — turbulence spread and pointing jitter (powf-bound).
        for i in 0..n {
            let w_diff = self.w_diff[i];
            let spread = params
                .turbulence
                .spread_factor(self.rytov[i], k, self.range_m[i], w_diff);
            let jitter_m = params.pointing_jitter_rad * self.range_m[i];
            self.w_lt
                .push((w_diff * w_diff * spread + 2.0 * jitter_m * jitter_m).sqrt());
        }
        // Stage 3 — aperture coupling, extinction, receiver efficiency
        // (exp-bound). The multiply order matches `LinkBudget::eta_total`.
        for i in 0..n {
            let a_rx = self.rx_aperture_m[i] / 2.0;
            let w_lt = self.w_lt[i];
            let eta_th = 1.0 - (-2.0 * a_rx * a_rx / (w_lt * w_lt)).exp();
            let eta_atm = params.atmosphere.transmissivity(
                self.rx_alt_m[i],
                self.tx_alt_m[i],
                self.elevation_rad[i],
            );
            self.eta.push(eta_th * eta_atm * params.receiver_efficiency);
        }
    }

    /// The per-element total transmissivities of the last
    /// [`FsoBatch::compute`], in push order.
    #[inline]
    pub fn eta(&self) -> &[f64] {
        &self.eta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FsoParams;

    /// A satellite downlink at the given slant range / elevation with the
    /// paper's 1.2 m apertures.
    fn sat_link(range_m: f64, elev_deg: f64) -> FsoChannel {
        FsoChannel::new(
            FsoGeometry::downlink(1.2, 500_000.0, 1.2, 300.0, range_m, elev_deg.to_radians()),
            FsoParams::ideal(),
        )
    }

    /// A HAP downlink: 30 cm transmit aperture at 30 km, 1.2 m ground.
    fn hap_link(range_m: f64, elev_deg: f64) -> FsoChannel {
        FsoChannel::new(
            FsoGeometry::downlink(0.3, 30_000.0, 1.2, 300.0, range_m, elev_deg.to_radians()),
            FsoParams::ideal(),
        )
    }

    #[test]
    fn downlink_normalization_swaps_endpoints() {
        let g = FsoGeometry::downlink(1.2, 300.0, 0.3, 30_000.0, 78_000.0, 0.4);
        assert_eq!(g.tx_alt_m, 30_000.0);
        assert_eq!(g.tx_aperture_m, 0.3);
        assert_eq!(g.rx_aperture_m, 1.2);
    }

    #[test]
    fn transmissivity_in_unit_interval() {
        for (l, e) in [(500e3, 90.0), (700e3, 45.0), (1220e3, 20.0), (78e3, 22.0)] {
            let eta = sat_link(l, e).transmissivity();
            assert!((0.0..=1.0).contains(&eta), "L={l} e={e}: {eta}");
        }
    }

    #[test]
    fn zenith_satellite_link_is_strong() {
        // 500 km zenith pass with 1.2 m apertures: comfortably above 0.8.
        let eta = sat_link(500e3, 90.0).transmissivity();
        assert!(eta > 0.8, "{eta}");
    }

    #[test]
    fn satellite_threshold_crossing_between_20_and_40_degrees() {
        // The calibration that drives the paper's ~55% coverage: the 0.7
        // threshold is crossed somewhere in the mid-elevations, so the
        // effective mask is tighter than the geometric π/9.
        let lo = sat_link(1220e3, 20.0).transmissivity();
        let hi = sat_link(780e3, 40.0).transmissivity();
        assert!(lo < 0.7, "at 20°: {lo}");
        assert!(hi > 0.7, "at 40°: {hi}");
    }

    #[test]
    fn hap_link_supports_high_fidelity() {
        // ~78 km slant at ~22° elevation: η ≈ 0.95 ⇒ F ≈ 0.98.
        let eta = hap_link(78e3, 22.0).transmissivity();
        assert!(eta > 0.9, "{eta}");
        let f = (1.0 + (eta * eta).sqrt()) / 2.0; // two-link path fidelity
        assert!(f > 0.94, "{f}");
    }

    #[test]
    fn hap_beats_satellite_at_matched_elevation() {
        let hap = hap_link(78e3, 25.0).transmissivity();
        let sat = sat_link(1050e3, 25.0).transmissivity();
        assert!(hap > sat, "hap={hap} sat={sat}");
    }

    #[test]
    fn isl_at_constellation_spacing_is_far_below_threshold() {
        // Adjacent satellites in one plane are 2·a·sin(30°) = 6871 km apart;
        // even 1.2 m apertures cannot close that with a diffracting beam.
        let isl = FsoChannel::new(
            FsoGeometry::downlink(1.2, 500_000.0, 1.2, 500_000.0, 6_871_000.0, 0.0),
            FsoParams::ideal(),
        );
        let eta = isl.transmissivity();
        assert!(eta < 0.2, "{eta}");
        // And the budget confirms it's pure diffraction (vacuum path).
        let b = isl.budget();
        assert_eq!(b.eta_atm, 1.0);
        assert_eq!(b.turbulence_spread, 1.0);
    }

    #[test]
    fn short_isl_would_be_nearly_lossless() {
        let isl = FsoChannel::new(
            FsoGeometry::downlink(1.2, 500_000.0, 1.2, 500_000.0, 100_000.0, 0.0),
            FsoParams::ideal(),
        );
        // Capped near 1 − e^{−2/ratio²} ≈ 0.937 by receiver truncation.
        assert!(isl.transmissivity() > 0.92, "{}", isl.transmissivity());
    }

    #[test]
    fn monotone_decreasing_in_range() {
        let mut prev = 1.1;
        for l_km in [300.0, 500.0, 700.0, 900.0, 1100.0, 1300.0] {
            let eta = sat_link(l_km * 1000.0, 45.0).transmissivity();
            assert!(eta < prev, "L={l_km}");
            prev = eta;
        }
    }

    #[test]
    fn monotone_increasing_in_elevation_at_fixed_range() {
        let mut prev = 0.0;
        for e in [10.0, 20.0, 40.0, 70.0, 90.0] {
            let eta = sat_link(700e3, e).transmissivity();
            assert!(eta > prev, "e={e}");
            prev = eta;
        }
    }

    #[test]
    fn fixed_elevation_mode_ignores_geometry() {
        let params = FsoParams::ideal_fixed_elevation();
        let a = FsoChannel::new(
            FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 700e3, 0.2),
            params,
        );
        let b = FsoChannel::new(
            FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 700e3, 1.2),
            params,
        );
        assert_eq!(a.transmissivity(), b.transmissivity());
    }

    #[test]
    fn weather_degrades_links() {
        let ideal = hap_link(78e3, 22.0).transmissivity();
        let stormy = FsoChannel::new(
            hap_link(78e3, 22.0).geometry,
            FsoParams::ideal().with_weather(10.0),
        )
        .transmissivity();
        assert!(stormy < ideal, "stormy={stormy} ideal={ideal}");
    }

    #[test]
    fn budget_factors_multiply_to_total() {
        let b = sat_link(900e3, 30.0).budget();
        assert!((b.eta_total() - b.eta_th * b.eta_atm * b.eta_eff).abs() < 1e-15);
        assert!(b.long_term_spot_m >= b.diffraction_spot_m);
    }

    #[test]
    fn pointing_jitter_degrades_links() {
        let geom = FsoGeometry::downlink(0.3, 30_000.0, 1.2, 300.0, 78_000.0, 0.4);
        let clean = FsoChannel::new(geom, FsoParams::ideal()).transmissivity();
        let mut prev = clean;
        for sigma in [1e-6, 5e-6, 2e-5, 1e-4] {
            let eta = FsoChannel::new(geom, FsoParams::ideal().with_pointing_jitter(sigma))
                .transmissivity();
            assert!(eta <= prev + 1e-12, "sigma {sigma}");
            prev = eta;
        }
        // Microradian-class jitter is harmless; 100 urad over 78 km is not.
        let tiny =
            FsoChannel::new(geom, FsoParams::ideal().with_pointing_jitter(1e-6)).transmissivity();
        assert!((tiny - clean).abs() < 1e-3);
        assert!(
            prev < clean * 0.8,
            "100 urad should hurt: {prev} vs {clean}"
        );
    }

    #[test]
    fn batch_kernel_is_bit_identical_to_the_scalar_path() {
        // A spread of geometries across the regimes the network produces:
        // satellite downlinks, HAP downlinks, mountain receivers, and both
        // zero and heavy Rytov variances — every element must reproduce the
        // scalar budget bit for bit, for several parameter sets.
        let geoms = [
            (
                FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 500e3, 1.2),
                0.0,
            ),
            (
                FsoGeometry::downlink(1.2, 500e3, 1.2, 300.0, 1_220e3, 0.35),
                0.21,
            ),
            (
                FsoGeometry::downlink(0.3, 30e3, 1.2, 300.0, 78e3, 0.39),
                0.02,
            ),
            (
                FsoGeometry::downlink(1.2, 800e3, 1.2, 1500.0, 950e3, 0.8),
                1.7,
            ),
            (
                FsoGeometry::downlink(0.3, 30e3, 0.3, 30e3, 40e3, 0.001),
                0.0,
            ),
        ];
        for params in [
            FsoParams::ideal(),
            FsoParams::ideal().with_weather(10.0),
            FsoParams::ideal().with_pointing_jitter(2e-5),
        ] {
            let mut batch = FsoBatch::default();
            for (geom, rytov) in &geoms {
                batch.push(geom, geom.elevation_rad, *rytov);
            }
            assert_eq!(batch.len(), geoms.len());
            batch.compute(&params);
            for (i, (geom, rytov)) in geoms.iter().enumerate() {
                let scalar = FsoChannel::new(*geom, params)
                    .budget_with_rytov(Some(*rytov))
                    .eta_total();
                assert_eq!(
                    batch.eta()[i].to_bits(),
                    scalar.to_bits(),
                    "element {i}: batch {} vs scalar {scalar}",
                    batch.eta()[i]
                );
            }
            batch.clear();
            assert!(batch.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn rejects_zero_range() {
        FsoChannel::new(
            FsoGeometry::downlink(1.2, 500e3, 1.2, 0.0, 0.0, 0.5),
            FsoParams::ideal(),
        );
    }
}
