//! # qntn-channel — optical channel transmissivity models
//!
//! Everything that turns geometry into a transmissivity η ∈ [0, 1], the
//! quantity the paper feeds into its amplitude-damping channel and its
//! routing metric:
//!
//! - [`fiber::FiberChannel`] — Beer–Lambert fiber loss (paper Eq. 1), with
//!   the paper's 0.15 dB/km attenuation default.
//! - [`fso::FsoChannel`] — free-space optical links
//!   (paper Eq. 2, η = η_th · η_atm · η_eff): Gaussian-beam diffraction with
//!   aperture truncation, Hufnagel–Valley turbulence-induced beam spread,
//!   exponential-atmosphere extinction, and receiver efficiency. Supports
//!   satellite–ground, HAP–ground and (vacuum) inter-satellite geometry.
//! - [`atmosphere`] / [`turbulence`] — the two altitude-profile models
//!   behind η_atm and the turbulence term of η_th.
//! - [`params::FsoParams`] — the clear-sky calibration constants (the paper
//!   assumes "perfect setup and ideal conditions"; these constants are the
//!   documented substitution for the Ghalaii–Pirandola parameter set it
//!   references).
//! - [`budget::LinkBudget`] — an itemized per-factor report for one link.
//!
//! ## Units
//! Lengths metres, angles radians, transmissivities linear in [0, 1].

pub mod atmosphere;
pub mod budget;
pub mod fiber;
pub mod fso;
pub mod params;
pub mod turbulence;
pub mod units;
pub mod weather;

pub use atmosphere::Atmosphere;
pub use budget::LinkBudget;
pub use fiber::FiberChannel;
pub use fso::{FsoChannel, FsoGeometry};
pub use params::{ApertureSet, ElevationMode, FsoParams, PAPER_ELEVATION_RAD};
pub use turbulence::TurbulenceProfile;
pub use units::{db_to_linear, linear_to_db};
pub use weather::{atmosphere_for_visibility, kim_extinction_per_m, WeatherCondition};
