//! Crash-safe artifact files: atomic writes and checksummed frames.
//!
//! Two guarantees every long-running sweep leans on:
//!
//! 1. **Atomicity** — [`atomic_write`] is the single write-temp → fsync →
//!    rename helper in the workspace. A reader (or a resumed run) either
//!    sees the previous complete file or the new complete file, never a
//!    torn prefix, even across a `SIGKILL` or power loss mid-write.
//! 2. **Integrity** — [`write_frame_atomic`] / [`read_frame`] wrap a
//!    payload in a versioned, CRC32-checksummed frame. Any single-byte
//!    corruption of a frame file — header, length, checksum or payload —
//!    is rejected on load with [`QntnError::CorruptFrame`]; a
//!    checkpoint is never half-trusted.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"QNTNFRM\x01"
//!      8     4  version (caller-defined schema version)
//!     12     8  payload length in bytes
//!     20     4  CRC32 (IEEE) of the payload
//!     24     n  payload
//! ```

use crate::QntnError;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic prefix of every frame file.
pub const FRAME_MAGIC: [u8; 8] = *b"QNTNFRM\x01";

const HEADER_LEN: usize = 24;

/// CRC32 lookup table (IEEE 802.3 reflected polynomial), built at compile
/// time so the checksum has no runtime setup.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// FNV-1a over `bytes` — the workspace's cheap stable fingerprint hash
/// (checkpoints use it to bind a frame to the run parameters that
/// produced it).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fold a sequence of `u64` words into one FNV-1a fingerprint — the
/// canonical way runs derive their checkpoint-binding fingerprint from
/// their parameters (sizes, seeds, float bit patterns).
pub fn fingerprint(words: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Write `bytes` to `path` atomically: write a sibling temp file, fsync
/// it, rename it over `path`, and fsync the directory (on Unix) so the
/// rename itself is durable. Concurrent writers are safe against each
/// other (distinct temp names); readers never observe a partial file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), QntnError> {
    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| QntnError::Io {
            op: "write",
            path: path.display().to_string(),
            message: "path has no file name".into(),
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));

    let result = (|| {
        // qntn-lint: allow(atomic-writes-only) -- this IS atomic_write: the one canonical temp-file creation
        let mut f = fs::File::create(&tmp).map_err(|e| QntnError::io("create", &tmp, &e))?;
        f.write_all(bytes)
            .map_err(|e| QntnError::io("write", &tmp, &e))?;
        f.sync_all().map_err(|e| QntnError::io("fsync", &tmp, &e))?;
        drop(f);
        fs::rename(&tmp, path).map_err(|e| QntnError::io("rename", path, &e))?;
        #[cfg(unix)]
        {
            // Make the rename durable: fsync the containing directory.
            if let Ok(d) = fs::File::open(&dir) {
                // qntn-lint: allow(result-swallow) -- directory fsync is best-effort durability hardening; the data fsync above already errored loudly
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        // Best-effort cleanup; the error from the write path is what matters.
        // qntn-lint: allow(result-swallow) -- temp-file cleanup on the error path must not mask the original write error
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Frame `payload` under `version` and write it atomically to `path`.
pub fn write_frame_atomic(path: &Path, version: u32, payload: &[u8]) -> Result<(), QntnError> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&version.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    atomic_write(path, &frame)
}

fn corrupt(path: &Path, detail: impl std::fmt::Display) -> QntnError {
    QntnError::CorruptFrame {
        path: path.display().to_string(),
        detail: detail.to_string(),
    }
}

/// Validate the frame in `bytes` (as read from `path`, used only for error
/// context) and return its payload.
pub fn decode_frame(
    path: &Path,
    bytes: &[u8],
    expected_version: u32,
) -> Result<Vec<u8>, QntnError> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(
            path,
            format!(
                "{} bytes is shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            ),
        ));
    }
    if bytes[..8] != FRAME_MAGIC {
        return Err(corrupt(path, "bad magic"));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != expected_version {
        return Err(corrupt(
            path,
            format!("version {version}, expected {expected_version}"),
        ));
    }
    let len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let payload = &bytes[HEADER_LEN..];
    if len != payload.len() as u64 {
        return Err(corrupt(
            path,
            format!(
                "payload length {} does not match header {len}",
                payload.len()
            ),
        ));
    }
    let stored_crc = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(corrupt(
            path,
            format!("CRC32 mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"),
        ));
    }
    Ok(payload.to_vec())
}

/// Read and validate the frame at `path`, returning its payload.
pub fn read_frame(path: &Path, expected_version: u32) -> Result<Vec<u8>, QntnError> {
    let bytes = fs::read(path).map_err(|e| QntnError::io("read", path, &e))?;
    decode_frame(path, &bytes, expected_version)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "qntn_frame_test_{}_{}_{tag}.bin",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        let path = temp_path("roundtrip");
        let payload = b"hello checkpoint".to_vec();
        write_frame_atomic(&path, 3, &payload).unwrap();
        assert_eq!(read_frame(&path, 3).unwrap(), payload);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let path = temp_path("flip");
        write_frame_atomic(&path, 1, b"payload bytes under test").unwrap();
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            let result = decode_frame(&path, &bad, 1);
            assert!(
                matches!(result, Err(QntnError::CorruptFrame { .. })),
                "flip at byte {i} was accepted"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let path = temp_path("trunc");
        write_frame_atomic(&path, 1, b"0123456789").unwrap();
        let good = std::fs::read(&path).unwrap();
        for cut in 0..good.len() {
            assert!(
                matches!(
                    decode_frame(&path, &good[..cut], 1),
                    Err(QntnError::CorruptFrame { .. })
                ),
                "truncation to {cut} bytes was accepted"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let path = temp_path("version");
        write_frame_atomic(&path, 7, b"x").unwrap();
        assert!(matches!(
            read_frame(&path, 8),
            Err(QntnError::CorruptFrame { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let path = temp_path("atomic");
        atomic_write(&path, b"first contents").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reports_io_not_corruption() {
        let path = temp_path("missing");
        assert!(matches!(read_frame(&path, 1), Err(QntnError::Io { .. })));
    }

    #[test]
    fn fingerprint_is_stable_and_order_sensitive() {
        assert_eq!(fingerprint(&[1, 2, 3]), fingerprint(&[1, 2, 3]));
        assert_ne!(fingerprint(&[1, 2, 3]), fingerprint(&[3, 2, 1]));
        assert_ne!(fingerprint(&[]), fingerprint(&[0]));
    }
}
