//! Cooperative cancellation and deadlines for long-running sweeps.
//!
//! A full-day 108-satellite sweep is seconds of work; a multi-day horizon
//! or a service-mode batch is minutes to hours. [`RunControl`] is the
//! budget threaded through the sweep runtime: a [`CancelToken`] an
//! operator (or a Ctrl-C handler) can trip, plus an optional wall-clock
//! [`Deadline`]. Runs poll it at chunk boundaries and stop with a
//! *well-formed partial result* — a checkpoint on disk and a report of how
//! far they got — instead of being torn down mid-write.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run stopped before completing every step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The [`CancelToken`] was tripped (operator request, signal handler).
    Cancelled,
    /// The wall-clock [`Deadline`] expired.
    DeadlineExceeded,
}

impl std::fmt::Display for StopCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopCause::Cancelled => f.write_str("cancelled"),
            StopCause::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

#[derive(Debug, Clone)]
enum Flag {
    Shared(Arc<AtomicBool>),
    /// Backed by a `static` — what an async-signal-safe SIGINT handler
    /// needs, since a handler cannot own an `Arc`.
    Static(&'static AtomicBool),
}

/// A cooperative cancellation flag. Cloning shares the flag: any clone's
/// [`cancel`](CancelToken::cancel) is visible to every other clone.
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Flag,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken {
            flag: Flag::Shared(Arc::new(AtomicBool::new(false))),
        }
    }

    /// A token observing a `static` flag — lets an OS signal handler
    /// (which can only touch `static` state) participate in cooperative
    /// cancellation.
    pub fn from_static(flag: &'static AtomicBool) -> CancelToken {
        CancelToken {
            flag: Flag::Static(flag),
        }
    }

    /// Trip the flag. Idempotent.
    pub fn cancel(&self) {
        match &self.flag {
            Flag::Shared(f) => f.store(true, Ordering::SeqCst),
            Flag::Static(f) => f.store(true, Ordering::SeqCst),
        }
    }

    /// Has the flag been tripped (by any clone or the backing static)?
    pub fn is_cancelled(&self) -> bool {
        match &self.flag {
            Flag::Shared(f) => f.load(Ordering::SeqCst),
            Flag::Static(f) => f.load(Ordering::SeqCst),
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// A wall-clock deadline.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// The cancellation/deadline budget a resilient run polls between chunks.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    cancel: Option<CancelToken>,
    deadline: Option<Deadline>,
}

impl RunControl {
    /// No cancellation, no deadline — runs to completion.
    pub fn unlimited() -> RunControl {
        RunControl::default()
    }

    /// Attach a cancel token.
    pub fn with_cancel(mut self, token: CancelToken) -> RunControl {
        self.cancel = Some(token);
        self
    }

    /// Attach a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> RunControl {
        self.deadline = Some(deadline);
        self
    }

    /// The attached cancel token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Should the run stop now? Cancellation outranks the deadline when
    /// both have triggered (the operator's explicit request is the more
    /// specific signal).
    pub fn should_stop(&self) -> Option<StopCause> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopCause::Cancelled);
        }
        if self.deadline.as_ref().is_some_and(Deadline::expired) {
            return Some(StopCause::DeadlineExceeded);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn static_backed_token_observes_the_flag() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let t = CancelToken::from_static(&FLAG);
        assert!(!t.is_cancelled());
        FLAG.store(true, Ordering::SeqCst);
        assert!(t.is_cancelled());
        FLAG.store(false, Ordering::SeqCst); // restore for other tests
    }

    #[test]
    fn unlimited_control_never_stops() {
        assert_eq!(RunControl::unlimited().should_stop(), None);
    }

    #[test]
    fn expired_deadline_stops_the_run() {
        let c = RunControl::unlimited().with_deadline(Deadline::after(Duration::ZERO));
        assert_eq!(c.should_stop(), Some(StopCause::DeadlineExceeded));
        assert_eq!(Deadline::after(Duration::ZERO).remaining(), Duration::ZERO);
    }

    #[test]
    fn cancellation_outranks_the_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let c = RunControl::unlimited()
            .with_cancel(token)
            .with_deadline(Deadline::after(Duration::ZERO));
        assert_eq!(c.should_stop(), Some(StopCause::Cancelled));
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let c = RunControl::unlimited().with_deadline(Deadline::after(Duration::from_secs(3600)));
        assert_eq!(c.should_stop(), None);
    }
}
