//! A tiny deterministic binary codec for checkpoint payloads.
//!
//! The vendored `serde` stand-in is inert (derives expand to nothing), so
//! checkpoint frames cannot serialize through it. [`FrameCodec`] is the
//! replacement: a hand-rolled little-endian encoding with explicit length
//! prefixes, `f64` stored as raw bit patterns (round-trips are bit-exact —
//! the property the resume-≡-uninterrupted contract depends on), and
//! decoding that never panics — every malformed input surfaces as a
//! [`DecodeError`] the frame layer turns into
//! [`QntnError::CorruptFrame`](crate::QntnError::CorruptFrame).

use std::fmt;

/// A decode failure: what was being read and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(what: &str, detail: impl fmt::Display) -> Result<T, DecodeError> {
    Err(DecodeError(format!("{what}: {detail}")))
}

/// A bounds-checked reader over an encoded payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return err(
                "payload truncated",
                format!("needed {n} bytes, {} left", self.remaining()),
            );
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Fail unless every byte has been consumed (guards against frames
    /// whose payload is longer than the encoded structure — a corruption
    /// signature, not slack to ignore).
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return err(
                "payload has trailing bytes",
                format!("{} unconsumed", self.remaining()),
            );
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Types that can round-trip through a checkpoint frame payload.
///
/// `decode(encode(x)) == x` must hold bit-exactly (floats compare by bit
/// pattern), and `decode` must reject malformed input with an error rather
/// than panic.
pub trait FrameCodec: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from `r`.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError>;
}

impl FrameCodec for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.u8()
    }
}

impl FrameCodec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.u32()
    }
}

impl FrameCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.u64()
    }
}

impl FrameCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let v = r.u64()?;
        usize::try_from(v).or_else(|_| err("usize out of range", v))
    }
}

impl FrameCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => err("bool byte", other),
        }
    }
}

impl FrameCodec for f64 {
    /// Stored as the raw IEEE-754 bit pattern: NaN payloads, signed zeros
    /// and every finite value round-trip unchanged.
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl FrameCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n = usize::decode(r)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).or_else(|e| err("string not utf-8", e))
    }
}

impl<T: FrameCodec> FrameCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n = usize::decode(r)?;
        // Guard allocation against a corrupt length word: every element
        // takes at least one byte, so a length beyond the remaining bytes
        // is structurally impossible.
        if n > r.remaining() {
            return err("vec length exceeds payload", n);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: FrameCodec> FrameCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => err("option tag", other),
        }
    }
}

impl<A: FrameCodec, B: FrameCodec> FrameCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: FrameCodec, B: FrameCodec, C: FrameCodec> FrameCodec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// Encode one value into a fresh buffer.
pub fn encode_to_vec<T: FrameCodec>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decode one value from a whole buffer, requiring full consumption.
pub fn decode_all<T: FrameCodec>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let v = T::decode(&mut r)?;
    r.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: FrameCodec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        assert_eq!(decode_all::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("QNTN ✓"));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let bytes = encode_to_vec(&v);
            let back = decode_all::<f64>(&bytes).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<bool>::new());
        round_trip(Some(vec![0.25f64, -0.5]));
        round_trip(Option::<u32>::None);
        round_trip((7usize, String::from("x")));
        round_trip((1u8, 2u64, vec![true, false]));
    }

    #[test]
    fn truncation_is_rejected_not_panicking() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            assert!(
                decode_all::<Vec<u64>>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&42u64);
        bytes.push(0);
        assert!(decode_all::<u64>(&bytes).is_err());
    }

    #[test]
    fn hostile_lengths_are_rejected() {
        // A vec claiming u64::MAX elements must fail cleanly, not allocate.
        let bytes = encode_to_vec(&u64::MAX);
        assert!(decode_all::<Vec<u8>>(&bytes).is_err());
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(decode_all::<bool>(&[2]).is_err());
        assert!(decode_all::<Option<u8>>(&[9, 1]).is_err());
    }
}
