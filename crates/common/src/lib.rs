//! Typed indices and the workspace error type shared across QNTN crates.
//!
//! The simulator juggles three distinct index spaces — hosts (graph node
//! ids), satellites (contact-window rows) and time steps — all of which
//! used to be raw `usize`, so swapping two arguments compiled fine and
//! produced silently wrong topologies. [`HostId`], [`SatId`] and
//! [`StepId`] make those spaces distinct types. Each is a transparent
//! `usize` newtype: zero-cost, `serde`-compatible with the raw integer it
//! replaces, and convertible with `From`/[`index`](HostId::index) at API
//! boundaries that still speak `usize` (e.g. `qntn-routing`'s `NodeId`).
//!
//! [`QntnError`] is the workspace's structured error enum, replacing the
//! ad-hoc `Result<_, String>` signatures that configuration validation
//! used to return.
//!
//! The resilience layer lives here too, because both `qntn-net` (the sweep
//! runtime) and `qntn-bench` (the `reproduce` binary) need it:
//!
//! - [`codec`] — a tiny self-describing binary codec ([`codec::FrameCodec`])
//!   for checkpoint payloads; the vendored `serde` stub is inert, so
//!   checkpoint frames encode through this instead.
//! - [`frame`] — CRC32-checksummed, versioned frame files plus the one
//!   atomic write-temp-fsync-rename helper every artifact write goes
//!   through.
//! - [`control`] — cooperative cancellation ([`control::CancelToken`]) and
//!   wall-clock deadlines ([`control::Deadline`]), bundled as a
//!   [`control::RunControl`] that long-running sweeps poll at chunk
//!   boundaries.

pub mod codec;
pub mod control;
pub mod frame;

pub use codec::{ByteReader, FrameCodec};
pub use control::{CancelToken, Deadline, RunControl, StopCause};
pub use frame::{atomic_write, fnv1a64, read_frame, write_frame_atomic};

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! typed_index {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub usize);

        impl $name {
            /// The raw index, for arrays and `usize`-speaking APIs.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(i: usize) -> Self {
                $name(i)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

typed_index!(
    /// Index of a host in a simulation's host list. Doubles as the routing
    /// graph node id (`qntn-routing`'s `NodeId` is `usize`; convert with
    /// [`HostId::index`]).
    HostId
);
typed_index!(
    /// Row of a satellite in a contact-window table — the position of the
    /// satellite among a simulation's satellite hosts, *not* its host id.
    SatId
);
typed_index!(
    /// A discrete simulation time step (the paper: 0..2880 at 30 s each).
    StepId
);

/// The workspace error type: every validation and setup failure across the
/// QNTN crates, as data rather than a formatted string.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QntnError {
    /// A configuration field failed validation. `constraint` describes what
    /// was required, `got` what was found.
    InvalidConfig {
        field: &'static str,
        constraint: &'static str,
        got: f64,
    },
    /// A precomputed artifact (fault mask, contact windows, ephemeris) does
    /// not match the shape of the simulation it was offered to.
    ShapeMismatch {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// An I/O operation failed. `op` names the operation (`"write"`,
    /// `"rename"`, …), `path` the file involved; `message` is the rendered
    /// OS error (kept as a string so the variant stays `Clone + PartialEq`).
    Io {
        op: &'static str,
        path: String,
        message: String,
    },
    /// A checkpoint/artifact frame failed structural validation: bad magic,
    /// unsupported version, truncation, or a CRC32 mismatch. Never silently
    /// recovered from — a corrupt checkpoint must be deleted (or the run
    /// restarted fresh), not trusted.
    CorruptFrame { path: String, detail: String },
    /// A checkpoint frame is structurally valid but belongs to a different
    /// run (parameter fingerprint, step set, or length disagree).
    CheckpointMismatch {
        what: &'static str,
        expected: u64,
        got: u64,
    },
    /// A parallel sweep chunk panicked. The runtime quarantines the chunk
    /// (its steps carry no output) and either fails fast with this error or
    /// reports it alongside the healthy chunks' results, per policy.
    ChunkPanic {
        /// First and last simulation step of the poisoned range, inclusive.
        step_range: (usize, usize),
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// Anything that does not fit the structured variants.
    Other(String),
}

impl QntnError {
    /// Build an [`QntnError::Io`] from a `std::io::Error` with context.
    pub fn io(op: &'static str, path: &std::path::Path, err: &std::io::Error) -> QntnError {
        QntnError::Io {
            op,
            path: path.display().to_string(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for QntnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QntnError::InvalidConfig {
                field,
                constraint,
                got,
            } => write!(f, "{field} must be {constraint}, got {got}"),
            QntnError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected}, got {got}"),
            QntnError::Io { op, path, message } => {
                write!(f, "{op} {path}: {message}")
            }
            QntnError::CorruptFrame { path, detail } => {
                write!(f, "corrupt frame {path}: {detail}")
            }
            QntnError::CheckpointMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "checkpoint is from a different run: {what} expected {expected}, got {got}"
            ),
            QntnError::ChunkPanic {
                step_range: (lo, hi),
                payload,
            } => write!(
                f,
                "sweep chunk covering steps {lo}..={hi} panicked: {payload}"
            ),
            QntnError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for QntnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_ids_round_trip_usize() {
        let h: HostId = 7usize.into();
        assert_eq!(h.index(), 7);
        assert_eq!(usize::from(h), 7);
        assert_eq!(h.to_string(), "7");
        assert_eq!(StepId(3), StepId::from(3));
        assert!(SatId(1) < SatId(2));
    }

    #[test]
    fn errors_render_like_the_old_strings() {
        let e = QntnError::InvalidConfig {
            field: "threshold",
            constraint: "in (0, 1]",
            got: 1.5,
        };
        assert_eq!(e.to_string(), "threshold must be in (0, 1], got 1.5");
        let e = QntnError::ShapeMismatch {
            what: "fault mask hosts",
            expected: 5,
            got: 6,
        };
        assert_eq!(e.to_string(), "fault mask hosts: expected 5, got 6");
        assert_eq!(QntnError::Other("boom".into()).to_string(), "boom");
    }
}
