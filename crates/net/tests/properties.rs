//! Property-based tests for the network simulator.

use proptest::prelude::*;
use qntn_geo::Geodetic;
use qntn_net::capacity::{serve_with_capacity, CapacityModel};
use qntn_net::requests::{sample_steps, Request};
use qntn_net::{Host, QuantumNetworkSim, SimConfig};
use qntn_routing::{Graph, RouteMetric};

/// A small HAP network with `n_a`/`n_b` ground nodes per LAN at randomized
/// (but Tennessee-plausible) positions.
fn hap_network(n_a: usize, n_b: usize, seed: u64) -> QuantumNetworkSim {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut hosts = Vec::new();
    for k in 0..n_a {
        hosts.push(Host::ground(
            format!("A-{k}"),
            0,
            Geodetic::from_deg(36.17 + next() * 0.01, -85.51 + next() * 0.01, 300.0),
            1.2,
        ));
    }
    for k in 0..n_b {
        hosts.push(Host::ground(
            format!("B-{k}"),
            1,
            Geodetic::from_deg(35.91 + next() * 0.01, -84.30 + next() * 0.01, 250.0),
            1.2,
        ));
    }
    hosts.push(Host::hap(
        "HAP",
        Geodetic::from_deg(35.6692, -85.0662, 30_000.0),
        0.3,
    ));
    QuantumNetworkSim::new(hosts, SimConfig::default(), 4, 30.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn graph_construction_is_sane(n_a in 1usize..5, n_b in 1usize..5, seed in any::<u64>()) {
        let sim = hap_network(n_a, n_b, seed);
        let g = sim.graph_at(0);
        prop_assert_eq!(g.node_count(), n_a + n_b + 1);
        // Fiber mesh per LAN + one HAP link per ground node.
        let expect_fiber = n_a * (n_a - 1) / 2 + n_b * (n_b - 1) / 2;
        prop_assert_eq!(g.edge_count(), expect_fiber + n_a + n_b);
        // All transmissivities in range.
        for (_, _, eta) in g.edges() {
            prop_assert!((0.0..=1.0).contains(&eta));
        }
    }

    #[test]
    fn thresholding_monotone_on_live_graphs(n_a in 1usize..4, n_b in 1usize..4, seed in any::<u64>()) {
        let sim = hap_network(n_a, n_b, seed);
        let g = sim.graph_at(0);
        let mut prev_edges = usize::MAX;
        for t in [0.0, 0.5, 0.7, 0.9, 0.99] {
            let e = g.thresholded(t).edge_count();
            prop_assert!(e <= prev_edges);
            prev_edges = e;
        }
    }

    #[test]
    fn served_requests_have_valid_paths(n_a in 1usize..4, n_b in 1usize..4, seed in any::<u64>()) {
        let sim = hap_network(n_a, n_b, seed);
        let g = sim.active_graph_at(0);
        let hap = n_a + n_b;
        for src in 0..n_a {
            let dst = n_a; // first B node
            if let Some(d) = qntn_net::entanglement::distribute(&g, src, dst, RouteMetric::PaperInverseEta) {
                // Fidelity laws.
                prop_assert!(d.fidelity >= 0.5 && d.fidelity <= 1.0);
                prop_assert!(d.fidelity_jozsa <= d.fidelity + 1e-12);
                prop_assert!(d.mean_link_fidelity + 1e-12 >= d.fidelity);
                // Inter-LAN routes must traverse the HAP.
                prop_assert!(d.path.contains(&hap), "path {:?}", d.path);
            }
        }
    }

    #[test]
    fn capacity_never_serves_more_than_ideal(
        n_a in 2usize..4,
        n_b in 2usize..4,
        seed in any::<u64>(),
        rate in 0.001f64..10.0,
    ) {
        let sim = hap_network(n_a, n_b, seed);
        let g = sim.active_graph_at(0);
        let requests: Vec<Request> = (0..n_a)
            .flat_map(|a| (0..n_b).map(move |b| Request { src: a, dst: n_a + b }))
            .collect();
        let model = CapacityModel { attempt_rate_hz: rate, window_s: 30.0 };
        let constrained = serve_with_capacity(&g, &requests, RouteMetric::PaperInverseEta, model);
        let unconstrained = serve_with_capacity(
            &g,
            &requests,
            RouteMetric::PaperInverseEta,
            CapacityModel { attempt_rate_hz: 1e9, window_s: 30.0 },
        );
        prop_assert!(constrained.served_count() <= unconstrained.served_count());
        // Monotone in rate: doubling the rate cannot reduce service.
        let doubled = serve_with_capacity(
            &g,
            &requests,
            RouteMetric::PaperInverseEta,
            CapacityModel { attempt_rate_hz: rate * 2.0, window_s: 30.0 },
        );
        prop_assert!(doubled.served_count() >= constrained.served_count());
    }

    #[test]
    fn sample_steps_properties(total in 1usize..5000, count in 1usize..200) {
        let s = sample_steps(total, count);
        prop_assert!(!s.is_empty());
        prop_assert!(s.len() <= count.max(1));
        prop_assert!(s.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
        prop_assert!(*s.last().unwrap() < total);
        prop_assert_eq!(s[0], 0);
    }

    #[test]
    fn lan_interconnection_matches_componentry(n_a in 1usize..4, n_b in 1usize..4, seed in any::<u64>()) {
        let sim = hap_network(n_a, n_b, seed);
        let g = sim.active_graph_at(0);
        let inter = sim.lans_interconnected(&g);
        // Manual check via components.
        let labels = g.components();
        let manual = (0..n_a).any(|a| (0..n_b).any(|b| labels[a] == labels[n_a + b]));
        prop_assert_eq!(inter, manual);
    }

    #[test]
    fn empty_threshold_graph_disconnects(n_a in 1usize..4, n_b in 1usize..4, seed in any::<u64>()) {
        let sim = hap_network(n_a, n_b, seed);
        let g = sim.graph_at(0).thresholded(1.1_f64.min(1.0));
        // Threshold 1.0 keeps only perfect links; no FSO link is exactly 1.
        let empty = Graph::with_nodes(g.node_count());
        let _ = empty;
        prop_assert!(!sim.lans_interconnected(&g) || g.edge_count() > 0);
    }
}
