//! Coverage-period analysis (the paper's Eq. 6–7 and Fig. 6).
//!
//! The coverage period `T_c` is the total time during which all three LANs
//! are pairwise interconnected through the space segment; `P = T_c/T_day`.
//! Steps are evaluated in parallel (rayon) — each step's graph build is
//! independent — and stitched into intervals in index order, so the result
//! is deterministic.

use crate::simulator::QuantumNetworkSim;
use qntn_orbit::{merge_intervals, Interval};
use serde::{Deserialize, Serialize};

/// Result of a coverage analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Step duration, seconds.
    pub step_s: f64,
    /// Per-step connectivity flags.
    pub connected: Vec<bool>,
    /// Merged connected intervals on the simulation timeline.
    pub intervals: Vec<Interval>,
}

impl CoverageReport {
    /// Coverage period `T_c` in seconds (paper Eq. 6).
    pub fn coverage_s(&self) -> f64 {
        self.intervals.iter().map(Interval::duration_s).sum()
    }

    /// Coverage period in minutes, as the paper reports it.
    pub fn coverage_minutes(&self) -> f64 {
        self.coverage_s() / 60.0
    }

    /// Coverage percentage `P` of the simulated window (paper Eq. 7).
    pub fn percent(&self) -> f64 {
        100.0 * self.coverage_s() / (self.connected.len() as f64 * self.step_s)
    }

    /// Number of distinct connected intervals.
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }
}

/// Runs coverage analyses over a simulator.
pub struct CoverageAnalyzer;

impl CoverageAnalyzer {
    /// Full-window coverage of `sim`, via the contact-window-pruned
    /// [`crate::sweep_engine::SweepEngine`] (parallel over time steps;
    /// construct the engine directly to control parallelism).
    pub fn analyze(sim: &QuantumNetworkSim) -> CoverageReport {
        crate::sweep_engine::SweepEngine::new(sim).coverage()
    }

    /// Build a report from precomputed flags (used by the sweep experiments
    /// which share per-satellite visibility across constellation sizes).
    pub fn from_flags(connected: Vec<bool>, step_s: f64) -> CoverageReport {
        let mut raw = Vec::new();
        let mut start: Option<f64> = None;
        for (k, &on) in connected.iter().enumerate() {
            let t = k as f64 * step_s;
            if on {
                if start.is_none() {
                    start = Some(t);
                }
            } else if let Some(s) = start.take() {
                raw.push(Interval::new(s, t));
            }
        }
        if let Some(s) = start {
            raw.push(Interval::new(s, connected.len() as f64 * step_s));
        }
        CoverageReport {
            step_s,
            connected,
            intervals: merge_intervals(raw),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::linkeval::SimConfig;
    use qntn_geo::Geodetic;

    #[test]
    fn from_flags_intervals() {
        let flags = vec![false, true, true, false, true, false];
        let r = CoverageAnalyzer::from_flags(flags, 30.0);
        assert_eq!(r.interval_count(), 2);
        assert_eq!(r.coverage_s(), 3.0 * 30.0);
        assert!((r.percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn all_connected() {
        let r = CoverageAnalyzer::from_flags(vec![true; 10], 30.0);
        assert_eq!(r.interval_count(), 1);
        assert!((r.percent() - 100.0).abs() < 1e-12);
        assert!((r.coverage_minutes() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn never_connected() {
        let r = CoverageAnalyzer::from_flags(vec![false; 10], 30.0);
        assert_eq!(r.interval_count(), 0);
        assert_eq!(r.percent(), 0.0);
    }

    #[test]
    fn trailing_interval_closed_at_window_end() {
        let r = CoverageAnalyzer::from_flags(vec![false, true, true], 30.0);
        assert_eq!(r.interval_count(), 1);
        assert_eq!(r.intervals[0].start_s, 30.0);
        assert_eq!(r.intervals[0].end_s, 90.0);
    }

    #[test]
    fn hap_network_has_full_coverage() {
        // The paper's air-ground headline: 100% of the day.
        let hosts = vec![
            Host::ground("A", 0, Geodetic::from_deg(36.1757, -85.5066, 300.0), 1.2),
            Host::ground("B", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground("C", 2, Geodetic::from_deg(35.04159, -85.2799, 200.0), 1.2),
            Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3),
        ];
        let sim = crate::simulator::QuantumNetworkSim::new(hosts, SimConfig::default(), 20, 30.0);
        let r = CoverageAnalyzer::analyze(&sim);
        assert!((r.percent() - 100.0).abs() < 1e-12, "{}", r.percent());
        assert_eq!(r.interval_count(), 1);
    }
}
