//! The resilient sweep runtime: checkpoint/resume, cooperative
//! cancellation, and panic isolation for long-running sweeps.
//!
//! The [`crate::SweepEngine`] makes a full-day sweep *fast*; this module
//! makes it *survivable*. A run executes its steps in order, in chunks,
//! and after each chunk boundary:
//!
//! - **checkpoints** — progress (the completed step prefix plus every
//!   per-step output, floats as raw bit patterns) is serialized through
//!   [`qntn_common::codec`] into a versioned, CRC32-checksummed frame
//!   written atomically ([`qntn_common::frame`]). A resumed run loads the
//!   frame, verifies its fingerprint binds it to the same run parameters,
//!   and replays only the remaining steps. Because every step's output is
//!   a pure function of `(engine, step)`, *interrupted-then-resumed ≡
//!   uninterrupted, bit-identical* — proptested by the crash-injection
//!   harness in `tests/resilience.rs`.
//! - **cancellation / deadlines** — a [`RunControl`] is polled at every
//!   chunk boundary; a tripped [`qntn_common::CancelToken`] or expired
//!   [`qntn_common::Deadline`] stops the run with a final checkpoint and a
//!   well-formed partial [`RunReport`] instead of tearing it down.
//! - **panic isolation** — each step evaluation runs under
//!   `catch_unwind`, so a panicking chunk poisons only itself. Under
//!   [`PanicPolicy::FailFast`] the run checkpoints its progress and
//!   returns the structured
//!   [`QntnError::ChunkPanic`]; under [`PanicPolicy::Quarantine`] the
//!   poisoned step range is recorded in the report, its outputs stay
//!   `None`, and every healthy chunk completes.
//!
//! The runtime is generic over the per-step output type `T:`
//! [`FrameCodec`], so the same machinery drives connectivity-flag sweeps
//! (`T = bool`), request sweeps (`T = Vec<RequestOutcome>`), and any
//! future long-running workload.

// The resilience layer must never itself be a panic source: unwrap/expect
// are denied outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::entanglement::Distribution;
use crate::requests::RequestOutcome;
use crate::sweep_engine::{SweepEngine, SweepScratch};
use qntn_common::codec::{ByteReader, DecodeError, FrameCodec};
use qntn_common::{frame, QntnError, RunControl, StopCause};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Schema version of checkpoint frames written by this module.
pub const CHECKPOINT_VERSION: u32 = 1;

/// What to do when a sweep chunk panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PanicPolicy {
    /// Checkpoint progress, then surface the first
    /// [`QntnError::ChunkPanic`] as an error. The default: a panic is a
    /// bug, and silent degradation would hide it.
    #[default]
    FailFast,
    /// Quarantine the poisoned step range (outputs stay `None`), keep a
    /// structured report of every panic, and complete the healthy chunks.
    /// The degrade-and-report mode for operational runs where partial
    /// results beat no results.
    Quarantine,
}

/// How a resilient run executes: chunking, checkpointing, cancellation and
/// panic policy.
#[derive(Debug, Clone)]
pub struct RunPolicy {
    /// Steps evaluated per chunk. Chunk boundaries are where the run
    /// checkpoints and polls its [`RunControl`]; `1` gives exact
    /// step-granularity stops at the cost of a checkpoint write per step.
    pub chunk_steps: usize,
    /// Checkpoint file. `None` disables checkpointing (the run still honours
    /// cancellation and panic policy).
    pub checkpoint: Option<PathBuf>,
    /// Write the checkpoint every this many completed chunks (the final
    /// state — completion or interruption — is always written).
    pub checkpoint_every_chunks: usize,
    /// Cancellation / deadline budget, polled at chunk boundaries.
    pub control: RunControl,
    /// What a panicking chunk does to the run.
    pub panic_policy: PanicPolicy,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            chunk_steps: 64,
            checkpoint: None,
            checkpoint_every_chunks: 1,
            control: RunControl::unlimited(),
            panic_policy: PanicPolicy::FailFast,
        }
    }
}

impl RunPolicy {
    /// Checkpoint to `path` (written atomically; validated on load).
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> RunPolicy {
        self.checkpoint = Some(path.into());
        self
    }

    /// Set the chunk size (clamped to at least 1).
    pub fn with_chunk_steps(mut self, steps: usize) -> RunPolicy {
        self.chunk_steps = steps.max(1);
        self
    }

    /// Set the cancellation/deadline budget.
    pub fn with_control(mut self, control: RunControl) -> RunPolicy {
        self.control = control;
        self
    }

    /// Set the panic policy.
    pub fn with_panic_policy(mut self, policy: PanicPolicy) -> RunPolicy {
        self.panic_policy = policy;
        self
    }

    /// Set the checkpoint cadence in chunks (clamped to at least 1).
    pub fn with_checkpoint_every(mut self, chunks: usize) -> RunPolicy {
        self.checkpoint_every_chunks = chunks.max(1);
        self
    }
}

/// One quarantined panic: the poisoned step range and the rendered payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPanicReport {
    /// First and last panicked simulation step of the range, inclusive.
    pub step_range: (usize, usize),
    /// The panic payload rendered to a string (`&str`/`String` payloads
    /// verbatim, anything else a placeholder).
    pub payload: String,
}

impl ChunkPanicReport {
    /// The same information as a [`QntnError::ChunkPanic`].
    pub fn to_error(&self) -> QntnError {
        QntnError::ChunkPanic {
            step_range: self.step_range,
            payload: self.payload.clone(),
        }
    }
}

/// The outcome of a resilient run: per-step outputs aligned with the
/// `steps` slice, plus how far the run got and why it stopped (if it did).
#[derive(Debug, Clone)]
pub struct RunReport<T> {
    /// One slot per entry of `steps`. `Some` for evaluated steps, `None`
    /// for steps beyond [`completed`](RunReport::completed) and for steps
    /// quarantined by a panic.
    pub outputs: Vec<Option<T>>,
    /// Leading entries of `steps` processed so far (evaluated or
    /// quarantined). Resume picks up exactly here.
    pub completed: usize,
    /// Index this run started from: `0` for a fresh run, the loaded
    /// checkpoint's `completed` for a resumed one.
    pub resumed_from: usize,
    /// `Some` when the run stopped early (cancellation / deadline); the
    /// checkpoint, if configured, holds the progress.
    pub stopped: Option<StopCause>,
    /// Quarantined panics ([`PanicPolicy::Quarantine`] only).
    pub panics: Vec<ChunkPanicReport>,
}

impl<T> RunReport<T> {
    /// Did the run process every step (even if some were quarantined)?
    pub fn is_complete(&self) -> bool {
        self.stopped.is_none() && self.completed == self.outputs.len()
    }

    /// Did the run process every step and produce an output for each?
    pub fn is_clean(&self) -> bool {
        self.is_complete() && self.panics.is_empty()
    }

    /// The outputs, if the run is complete and panic-free.
    pub fn into_clean_outputs(self) -> Option<Vec<T>> {
        if !self.is_clean() {
            return None;
        }
        self.outputs.into_iter().collect()
    }
}

// ---- checkpoint frame payload ----

struct CheckpointState<T> {
    fingerprint: u64,
    total: usize,
    completed: usize,
    panics: Vec<ChunkPanicReport>,
    /// Outputs of the completed prefix only (length == completed).
    prefix: Vec<Option<T>>,
}

impl<T: FrameCodec> CheckpointState<T> {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.fingerprint.encode(&mut out);
        self.total.encode(&mut out);
        self.completed.encode(&mut out);
        let panics: Vec<(usize, usize, String)> = self
            .panics
            .iter()
            .map(|p| (p.step_range.0, p.step_range.1, p.payload.clone()))
            .collect();
        panics.encode(&mut out);
        debug_assert_eq!(self.prefix.len(), self.completed);
        for slot in &self.prefix {
            slot.encode(&mut out);
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<CheckpointState<T>, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let fingerprint = u64::decode(&mut r)?;
        let total = usize::decode(&mut r)?;
        let completed = usize::decode(&mut r)?;
        if completed > total {
            return Err(DecodeError(format!(
                "completed {completed} exceeds total {total}"
            )));
        }
        let raw_panics = Vec::<(usize, usize, String)>::decode(&mut r)?;
        let mut prefix = Vec::with_capacity(completed);
        for _ in 0..completed {
            prefix.push(Option::<T>::decode(&mut r)?);
        }
        r.finish()?;
        Ok(CheckpointState {
            fingerprint,
            total,
            completed,
            panics: raw_panics
                .into_iter()
                .map(|(lo, hi, payload)| ChunkPanicReport {
                    step_range: (lo, hi),
                    payload,
                })
                .collect(),
            prefix,
        })
    }
}

/// Combine a caller fingerprint with the step list, so a checkpoint also
/// refuses to resume onto a different step selection.
fn bind_fingerprint(caller: u64, steps: &[usize]) -> u64 {
    let mut words = Vec::with_capacity(steps.len() + 2);
    words.push(caller);
    words.push(steps.len() as u64);
    words.extend(steps.iter().map(|&s| s as u64));
    frame::fingerprint(&words)
}

fn write_checkpoint<T: FrameCodec + Clone>(
    path: &std::path::Path,
    fingerprint: u64,
    total: usize,
    completed: usize,
    outputs: &[Option<T>],
    panics: &[ChunkPanicReport],
) -> Result<(), QntnError> {
    let state = CheckpointState {
        fingerprint,
        total,
        completed,
        panics: panics.to_vec(),
        prefix: outputs[..completed].to_vec(),
    };
    frame::write_frame_atomic(path, CHECKPOINT_VERSION, &state.encode())
}

fn load_checkpoint<T: FrameCodec>(
    path: &std::path::Path,
    fingerprint: u64,
    total: usize,
) -> Result<Option<CheckpointState<T>>, QntnError> {
    if !path.exists() {
        return Ok(None);
    }
    let payload = frame::read_frame(path, CHECKPOINT_VERSION)?;
    let state = CheckpointState::<T>::decode(&payload).map_err(|e| QntnError::CorruptFrame {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    if state.fingerprint != fingerprint {
        return Err(QntnError::CheckpointMismatch {
            what: "run fingerprint",
            expected: fingerprint,
            got: state.fingerprint,
        });
    }
    if state.total != total {
        return Err(QntnError::CheckpointMismatch {
            what: "step count",
            expected: total as u64,
            got: state.total as u64,
        });
    }
    Ok(Some(state))
}

fn panic_payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Group a chunk's per-step panic payloads into contiguous
/// [`ChunkPanicReport`] ranges (one report per maximal run of consecutive
/// panicked steps, carrying the first payload of the run).
fn group_panics(chunk_steps: &[usize], failures: &[Option<String>]) -> Vec<ChunkPanicReport> {
    let mut reports: Vec<ChunkPanicReport> = Vec::new();
    let mut open: Option<(usize, usize, String)> = None;
    for (i, failure) in failures.iter().enumerate() {
        match failure {
            Some(payload) => match open.as_mut() {
                Some((_, hi, _)) if i > 0 && failures[i - 1].is_some() => *hi = chunk_steps[i],
                _ => {
                    if let Some((lo, hi, p)) = open.take() {
                        reports.push(ChunkPanicReport {
                            step_range: (lo, hi),
                            payload: p,
                        });
                    }
                    open = Some((chunk_steps[i], chunk_steps[i], payload.clone()));
                }
            },
            None => {
                if let Some((lo, hi, p)) = open.take() {
                    reports.push(ChunkPanicReport {
                        step_range: (lo, hi),
                        payload: p,
                    });
                }
            }
        }
    }
    if let Some((lo, hi, p)) = open.take() {
        reports.push(ChunkPanicReport {
            step_range: (lo, hi),
            payload: p,
        });
    }
    reports
}

/// Run `eval` over `steps` on `engine` resiliently. See the module docs
/// for the guarantees; `caller_fingerprint` must encode every parameter
/// the outputs depend on (constellation size, seeds, thresholds — use
/// [`qntn_common::frame::fingerprint`]), because it is what stops a stale
/// checkpoint from silently seeding a different run.
pub fn run_steps<T, F>(
    engine: &SweepEngine<'_>,
    steps: &[usize],
    caller_fingerprint: u64,
    policy: &RunPolicy,
    eval: F,
) -> Result<RunReport<T>, QntnError>
where
    T: FrameCodec + Clone + Send,
    F: Fn(&mut SweepScratch, usize) -> T + Sync,
{
    let fingerprint = bind_fingerprint(caller_fingerprint, steps);
    let total = steps.len();
    let mut outputs: Vec<Option<T>> = vec![None; total];
    let mut panics: Vec<ChunkPanicReport> = Vec::new();
    let mut completed = 0usize;

    if let Some(path) = &policy.checkpoint {
        if let Some(state) = load_checkpoint::<T>(path, fingerprint, total)? {
            completed = state.completed;
            panics = state.panics;
            for (slot, loaded) in outputs.iter_mut().zip(state.prefix) {
                *slot = loaded;
            }
        }
    }
    let resumed_from = completed;

    let chunk_steps = policy.chunk_steps.max(1);
    let cadence = policy.checkpoint_every_chunks.max(1);
    let mut chunks_since_checkpoint = 0usize;

    while completed < total {
        if let Some(cause) = policy.control.should_stop() {
            if let Some(path) = &policy.checkpoint {
                write_checkpoint(path, fingerprint, total, completed, &outputs, &panics)?;
            }
            return Ok(RunReport {
                outputs,
                completed,
                resumed_from,
                stopped: Some(cause),
                panics,
            });
        }

        let end = (completed + chunk_steps).min(total);
        let chunk = &steps[completed..end];
        // Per-step panic isolation: a panicking evaluation is caught in
        // the worker itself, so healthy steps of the same chunk still
        // produce outputs and the payload survives verbatim (a panic that
        // escaped to the thread scope would be reduced to "a scoped
        // thread panicked"). The scratch is safe to reuse afterwards:
        // every evaluation resets it before reading it.
        let results: Vec<Result<T, String>> = engine.map_steps(chunk, |scratch, step| {
            catch_unwind(AssertUnwindSafe(|| eval(scratch, step))).map_err(panic_payload_to_string)
        });

        let mut failures: Vec<Option<String>> = Vec::with_capacity(results.len());
        for (offset, result) in results.into_iter().enumerate() {
            match result {
                Ok(value) => {
                    outputs[completed + offset] = Some(value);
                    failures.push(None);
                }
                Err(payload) => failures.push(Some(payload)),
            }
        }
        let chunk_panics = group_panics(chunk, &failures);
        if !chunk_panics.is_empty() {
            match policy.panic_policy {
                PanicPolicy::FailFast => {
                    // Checkpoint the progress before this chunk so the
                    // (healthy) prefix survives, then surface the panic.
                    if let Some(path) = &policy.checkpoint {
                        write_checkpoint(path, fingerprint, total, completed, &outputs, &panics)?;
                    }
                    return Err(chunk_panics[0].to_error());
                }
                PanicPolicy::Quarantine => panics.extend(chunk_panics),
            }
        }
        completed = end;

        chunks_since_checkpoint += 1;
        if let Some(path) = &policy.checkpoint {
            if chunks_since_checkpoint >= cadence || completed == total {
                write_checkpoint(path, fingerprint, total, completed, &outputs, &panics)?;
                chunks_since_checkpoint = 0;
            }
        }
    }

    Ok(RunReport {
        outputs,
        completed,
        resumed_from,
        stopped: None,
        panics,
    })
}

// ---- FrameCodec impls for the sweep output types ----

impl FrameCodec for Distribution {
    fn encode(&self, out: &mut Vec<u8>) {
        self.path.encode(out);
        self.eta.encode(out);
        self.fidelity.encode(out);
        self.fidelity_jozsa.encode(out);
        self.mean_link_fidelity.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Distribution {
            path: Vec::<usize>::decode(r)?,
            eta: f64::decode(r)?,
            fidelity: f64::decode(r)?,
            fidelity_jozsa: f64::decode(r)?,
            mean_link_fidelity: f64::decode(r)?,
        })
    }
}

impl FrameCodec for RequestOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RequestOutcome::Unserved => out.push(0),
            RequestOutcome::Served(d) => {
                out.push(1);
                d.encode(out);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(RequestOutcome::Unserved),
            1 => Ok(RequestOutcome::Served(Distribution::decode(r)?)),
            other => Err(DecodeError(format!("request outcome tag {other}"))),
        }
    }
}

/// Fingerprint words shared by the engine-level resilient entry points:
/// host count, step count, threshold bit pattern, and the fault mask
/// intensity signature (0 when no mask is attached).
fn engine_fingerprint_words(engine: &SweepEngine<'_>, tag: u64) -> Vec<u64> {
    let sim = engine.sim();
    vec![
        tag,
        sim.hosts().len() as u64,
        sim.steps() as u64,
        sim.evaluator().config().threshold.to_bits(),
        engine.faults().map_or(0, |f| {
            frame::fingerprint(&[f.hosts() as u64, f.steps() as u64])
        }),
    ]
}

impl<'a> SweepEngine<'a> {
    /// The full-day connectivity flags ([`SweepEngine::connectivity_flags`])
    /// as a resilient run: checkpointed, cancellable, panic-isolated.
    /// A clean complete report's outputs equal `connectivity_flags()`
    /// bit for bit.
    pub fn connectivity_flags_resilient(
        &self,
        policy: &RunPolicy,
    ) -> Result<RunReport<bool>, QntnError> {
        let steps: Vec<usize> = (0..self.sim().steps()).collect();
        let fingerprint = frame::fingerprint(&engine_fingerprint_words(self, 0x666c_6167)); // "flag"
        run_steps(self, &steps, fingerprint, policy, |scratch, step| {
            self.active_graph_into(step, scratch);
            self.sim().lans_interconnected(&scratch.active)
        })
    }

    /// The request sweep ([`SweepEngine::sweep`]) as a resilient run over
    /// per-step outcome vectors. Aggregate the clean outputs with
    /// [`crate::requests::aggregate_outcomes`] to recover the exact
    /// [`crate::requests::SweepStats`] of the uninterrupted sweep.
    pub fn sweep_resilient(
        &self,
        steps: &[usize],
        requests_per_step: usize,
        seed: u64,
        metric: qntn_routing::RouteMetric,
        policy: &RunPolicy,
    ) -> Result<RunReport<Vec<RequestOutcome>>, QntnError> {
        use crate::entanglement::distribute_with;
        use crate::requests::RequestWorkload;
        let mut words = engine_fingerprint_words(self, 0x7265_7173); // "reqs"
        words.push(requests_per_step as u64);
        words.push(seed);
        words.push(metric as u64);
        let fingerprint = frame::fingerprint(&words);
        run_steps(self, steps, fingerprint, policy, |scratch, step| {
            let workload = RequestWorkload::generate(
                self.sim(),
                requests_per_step,
                seed ^ (step as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            self.active_graph_into(step, scratch);
            let SweepScratch { active, sssp, .. } = scratch;
            workload
                .requests
                .iter()
                .map(
                    |r| match distribute_with(active, r.src, r.dst, metric, sssp) {
                        Some(d) => RequestOutcome::Served(d),
                        None => RequestOutcome::Unserved,
                    },
                )
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::linkeval::SimConfig;
    use crate::simulator::QuantumNetworkSim;
    use qntn_common::{codec, CancelToken};
    use qntn_geo::Geodetic;
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

    fn temp_ckpt(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "qntn_runtime_test_{}_{}_{tag}.ckpt",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn hap_sim(steps: usize) -> QuantumNetworkSim {
        let hosts = vec![
            Host::ground("A-0", 0, Geodetic::from_deg(36.1757, -85.5066, 300.0), 1.2),
            Host::ground("B-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground("C-0", 2, Geodetic::from_deg(35.04159, -85.2799, 200.0), 1.2),
            Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3),
        ];
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    }

    #[test]
    fn clean_resilient_flags_match_the_plain_sweep() {
        let sim = hap_sim(40);
        let engine = SweepEngine::new(&sim);
        let report = engine
            .connectivity_flags_resilient(&RunPolicy::default())
            .unwrap();
        assert!(report.is_clean());
        assert_eq!(report.resumed_from, 0);
        assert_eq!(
            report.into_clean_outputs().unwrap(),
            engine.connectivity_flags()
        );
    }

    #[test]
    fn cancelled_run_checkpoints_and_resume_is_bit_identical() {
        let sim = hap_sim(60);
        let engine = SweepEngine::new(&sim);
        let ckpt = temp_ckpt("resume");

        // Cancel after ~20 evaluations; the run stops at a chunk boundary
        // with a frame on disk.
        let evals = AtomicUsize::new(0);
        let token = CancelToken::new();
        let steps: Vec<usize> = (0..60).collect();
        let policy = RunPolicy::default()
            .with_chunk_steps(8)
            .with_checkpoint(&ckpt)
            .with_control(RunControl::unlimited().with_cancel(token.clone()));
        let partial: RunReport<bool> = run_steps(&engine, &steps, 7, &policy, |scratch, step| {
            if evals.fetch_add(1, Ordering::SeqCst) + 1 >= 20 {
                token.cancel();
            }
            engine.active_graph_into(step, scratch);
            engine.sim().lans_interconnected(&scratch.active)
        })
        .unwrap();
        assert_eq!(partial.stopped, Some(StopCause::Cancelled));
        assert!(partial.completed < 60 && partial.completed >= 20);
        assert!(ckpt.exists());

        // Resume with no cancellation: completes, and the combined outputs
        // equal an uninterrupted run's exactly.
        let resume_policy = RunPolicy::default()
            .with_chunk_steps(8)
            .with_checkpoint(&ckpt);
        let full: RunReport<bool> =
            run_steps(&engine, &steps, 7, &resume_policy, |scratch, step| {
                engine.active_graph_into(step, scratch);
                engine.sim().lans_interconnected(&scratch.active)
            })
            .unwrap();
        assert_eq!(full.resumed_from, partial.completed);
        assert!(full.is_clean());
        assert_eq!(
            full.into_clean_outputs().unwrap(),
            engine.connectivity_flags()
        );
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn checkpoint_refuses_a_different_run() {
        let sim = hap_sim(20);
        let engine = SweepEngine::new(&sim);
        let ckpt = temp_ckpt("mismatch");
        let steps: Vec<usize> = (0..20).collect();
        let policy = RunPolicy::default().with_checkpoint(&ckpt);
        let _report: RunReport<bool> = run_steps(&engine, &steps, 1, &policy, |_, _| true).unwrap();
        // Same file, different caller fingerprint: refused, not resumed.
        let err = run_steps::<bool, _>(&engine, &steps, 2, &policy, |_, _| true).unwrap_err();
        assert!(matches!(err, QntnError::CheckpointMismatch { .. }), "{err}");
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn quarantine_completes_around_a_panicking_chunk() {
        let sim = hap_sim(30);
        let engine = SweepEngine::new(&sim);
        let steps: Vec<usize> = (0..30).collect();
        let policy = RunPolicy::default()
            .with_chunk_steps(5)
            .with_panic_policy(PanicPolicy::Quarantine);
        let report: RunReport<bool> = run_steps(&engine, &steps, 3, &policy, |scratch, step| {
            assert!(step != 12, "injected panic at step 12");
            engine.active_graph_into(step, scratch);
            engine.sim().lans_interconnected(&scratch.active)
        })
        .unwrap();
        assert!(report.is_complete());
        assert!(!report.is_clean());
        assert_eq!(report.panics.len(), 1);
        assert_eq!(report.panics[0].step_range, (12, 12));
        assert!(report.panics[0].payload.contains("injected panic"));
        assert!(report.outputs[12].is_none());
        let healthy = report.outputs.iter().filter(|o| o.is_some()).count();
        assert_eq!(healthy, 29);
    }

    #[test]
    fn fail_fast_surfaces_a_structured_chunk_panic() {
        let sim = hap_sim(30);
        let engine = SweepEngine::new(&sim);
        let steps: Vec<usize> = (0..30).collect();
        let policy = RunPolicy::default().with_chunk_steps(10);
        let err = run_steps::<bool, _>(&engine, &steps, 3, &policy, |_, step| {
            assert!(step != 15, "boom at 15");
            true
        })
        .unwrap_err();
        match err {
            QntnError::ChunkPanic {
                step_range,
                payload,
            } => {
                assert_eq!(step_range, (15, 15));
                assert!(payload.contains("boom at 15"), "{payload}");
            }
            other => panic!("expected ChunkPanic, got {other:?}"),
        }
    }

    #[test]
    fn consecutive_panicked_steps_group_into_one_range() {
        let reports = group_panics(
            &[10, 11, 12, 13, 14],
            &[
                None,
                Some("a".into()),
                Some("b".into()),
                None,
                Some("c".into()),
            ],
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].step_range, (11, 12));
        assert_eq!(reports[0].payload, "a");
        assert_eq!(reports[1].step_range, (14, 14));
    }

    #[test]
    fn request_outcomes_round_trip_bit_exactly() {
        let outcomes = vec![
            RequestOutcome::Unserved,
            RequestOutcome::Served(Distribution {
                path: vec![0, 3, 2],
                eta: 0.731,
                fidelity: 0.967,
                fidelity_jozsa: 0.935,
                mean_link_fidelity: 0.981,
            }),
        ];
        let bytes = codec::encode_to_vec(&outcomes);
        let back: Vec<RequestOutcome> = codec::decode_all(&bytes).unwrap();
        assert_eq!(back, outcomes);
        if let (RequestOutcome::Served(a), RequestOutcome::Served(b)) = (&outcomes[1], &back[1]) {
            assert_eq!(a.eta.to_bits(), b.eta.to_bits());
            assert_eq!(a.fidelity.to_bits(), b.fidelity.to_bits());
        }
    }

    #[test]
    fn resilient_request_sweep_recovers_the_plain_stats() {
        use crate::requests::aggregate_outcomes;
        use qntn_routing::RouteMetric;
        let sim = hap_sim(20);
        let engine = SweepEngine::new(&sim);
        let steps: Vec<usize> = (0..20).step_by(3).collect();
        let metric = RouteMetric::PaperInverseEta;
        let report = engine
            .sweep_resilient(&steps, 10, 2024, metric, &RunPolicy::default())
            .unwrap();
        let per_step = report.into_clean_outputs().unwrap();
        assert_eq!(
            aggregate_outcomes(&per_step),
            engine.sweep(&steps, 10, 2024, metric)
        );
    }

    #[test]
    fn completed_checkpoint_resumes_to_an_instant_noop() {
        let sim = hap_sim(15);
        let engine = SweepEngine::new(&sim);
        let ckpt = temp_ckpt("noop");
        let steps: Vec<usize> = (0..15).collect();
        let policy = RunPolicy::default().with_checkpoint(&ckpt);
        let evals = AtomicUsize::new(0);
        let first: RunReport<bool> = run_steps(&engine, &steps, 9, &policy, |_, _| {
            evals.fetch_add(1, Ordering::SeqCst);
            true
        })
        .unwrap();
        assert!(first.is_clean());
        assert_eq!(evals.load(Ordering::SeqCst), 15);
        let second: RunReport<bool> = run_steps(&engine, &steps, 9, &policy, |_, _| {
            evals.fetch_add(1, Ordering::SeqCst);
            true
        })
        .unwrap();
        assert!(second.is_clean());
        assert_eq!(second.resumed_from, 15);
        assert_eq!(evals.load(Ordering::SeqCst), 15, "no re-evaluation");
        let _ = std::fs::remove_file(&ckpt);
    }
}
