//! The single-source topology pipeline: **Scene → LinkMap → Topology**.
//!
//! Every per-step link graph in the workspace — the naive
//! [`QuantumNetworkSim::graph_at`] family, the window-pruned
//! [`crate::SweepEngine`], and both of their fault-masked variants — is
//! built by exactly one function, [`build_topology_into`], fed by two
//! layered stages:
//!
//! 1. **[`Scene`]** — the time-invariant layer. Classifies every host pair
//!    once into a [`Candidate`] (static geometry evaluated eagerly,
//!    ground–satellite pairs tagged with their [`ContactWindows`] slots,
//!    everything else dynamic) and owns the per-step visibility masks.
//!    Positions themselves stay columnar in the `qntn-orbit`
//!    [`Ephemeris`] sheets each [`Host`] references; the Scene adds the
//!    visibility and link-class layers on top rather than copying them.
//! 2. **[`LinkMap`]** — the per-step layer. Borrows a simulator, a Scene
//!    and an optional [`CompiledFaults`] mask and yields `(a, b, η)` for
//!    every live link of a step in the canonical insertion order (fiber
//!    mesh first, then candidates in ascending `(a, b)` order). The fault
//!    mask is a composable stage of this iteration — a gate and a weather
//!    factor folded into the single loop — not a forked copy of it.
//! 3. **Topology** — [`build_topology_into`] inserts the LinkMap's links
//!    into a caller-provided [`Graph`] scratch, allocation-free on the hot
//!    path.
//!
//! ## Determinism guarantee
//!
//! For any step the pipeline's graph is bit-identical — including
//! adjacency-list order, which routing tie-breaking depends on — across
//! every entry point, because there is only one construction path. The
//! clean and faulted variants coincide bitwise under an identity mask: no
//! edge is withheld and the weather multiply is `η × 1.0`, a bitwise no-op
//! for finite floats. Static candidates are evaluated once at step 0,
//! which is bitwise equal to evaluating them at any step because their
//! geometry (and therefore every float the evaluator reads) is
//! step-invariant. `tests/pipeline_goldens.rs` pins all of this against
//! fingerprints captured from the pre-pipeline implementation.

use crate::faults::CompiledFaults;
use crate::host::{Host, HostKind};
use crate::linkeval::LinkEvaluator;
use crate::simulator::QuantumNetworkSim;
use qntn_common::{HostId, RunControl, SatId, StepId, StopCause};
use qntn_geo::{Enu, Geodetic, Vec3, WGS84};
use qntn_orbit::{Ephemeris, PassPredictor};
use qntn_routing::Graph;
use rayon::prelude::*;
use std::sync::Arc;

/// Per-(satellite, step) bitmasks of which ground sites a satellite is at
/// or above the horizon of (elevation ≥ 0, the conservative superset of
/// the link evaluator's `elevation > 0` requirement).
///
/// Ground sites map to bit slots in host order; per-satellite step vectors
/// are `Arc`-shared so [`ContactWindows::prefix`] reuses one full-
/// constellation precompute across every constellation size of a sweep.
/// With more than 64 ground sites (not the paper's 31) the windows
/// degrade to "always visible" — correct, merely unpruned.
#[derive(Debug, Clone)]
pub struct ContactWindows {
    n_steps: usize,
    n_lows: usize,
    /// One mask vector per satellite; an empty vector means "no data,
    /// treat everything as visible".
    masks: Vec<Arc<Vec<u64>>>,
}

impl ContactWindows {
    /// Most ground slots a mask word can hold.
    const MAX_LOWS: usize = 64;

    /// Precompute windows for every step of every `(low, satellite)` pair.
    pub fn compute(lows: &[Geodetic], ephemerides: &[&Ephemeris], n_steps: usize) -> Self {
        match Self::compute_with_control(lows, ephemerides, n_steps, &RunControl::unlimited()) {
            Ok(windows) => windows,
            Err(cause) => unreachable!("unlimited control stopped a precompute: {cause}"),
        }
    }

    /// [`ContactWindows::compute`] under a cancellation/deadline budget,
    /// polled between per-satellite batches. A stopped precompute has no
    /// useful partial result, so it returns the [`StopCause`] instead of a
    /// torn table.
    pub fn compute_with_control(
        lows: &[Geodetic],
        ephemerides: &[&Ephemeris],
        n_steps: usize,
        control: &RunControl,
    ) -> Result<Self, StopCause> {
        let n_lows = lows.len();
        if n_lows > Self::MAX_LOWS {
            return Ok(Self::all_visible(n_steps, n_lows, ephemerides.len()));
        }
        let predictors: Vec<PassPredictor> = lows
            .iter()
            .map(|&site| PassPredictor::new(site, 0.0))
            .collect();
        // Batch the satellites so cancellation has chunk granularity
        // without a per-sample check on the hot path.
        const BATCH: usize = 8;
        let mut masks = Vec::with_capacity(ephemerides.len());
        for batch in ephemerides.chunks(BATCH) {
            if let Some(cause) = control.should_stop() {
                return Err(cause);
            }
            let part: Vec<Arc<Vec<u64>>> = batch
                .par_iter()
                .map(|eph| {
                    let mut mask = vec![0u64; n_steps];
                    for (slot, pred) in predictors.iter().enumerate() {
                        let flags = pred.above_horizon_flags(eph);
                        for (k, word) in mask.iter_mut().enumerate() {
                            if flags.get(k).copied().unwrap_or(false) {
                                *word |= 1 << slot;
                            }
                        }
                    }
                    Arc::new(mask)
                })
                .collect();
            masks.extend(part);
        }
        Ok(ContactWindows {
            n_steps,
            n_lows,
            masks,
        })
    }

    /// Precompute windows only at `steps` (e.g. the 100 sampled steps of a
    /// request sweep); every other step defaults to all-visible, so the
    /// result is exact wherever it is consulted and merely unpruned
    /// elsewhere.
    pub fn compute_for_steps(
        lows: &[Geodetic],
        ephemerides: &[&Ephemeris],
        n_steps: usize,
        steps: &[usize],
    ) -> Self {
        let n_lows = lows.len();
        if n_lows > Self::MAX_LOWS {
            return Self::all_visible(n_steps, n_lows, ephemerides.len());
        }
        // The same above-horizon predicate as `PassPredictor::
        // above_horizon_flags`, evaluated pointwise.
        let sites: Vec<(Vec3, Vec3)> = lows
            .iter()
            .map(|&site| (site.to_ecef(&WGS84), Enu::at(site, &WGS84).up()))
            .collect();
        let masks = ephemerides
            .par_iter()
            .map(|eph| {
                let mut mask = vec![u64::MAX; n_steps];
                for &step in steps {
                    let ecef = eph.at_step(step).ecef;
                    let mut word = 0u64;
                    for (slot, &(site_ecef, up)) in sites.iter().enumerate() {
                        if (ecef - site_ecef).dot(up) >= 0.0 {
                            word |= 1 << slot;
                        }
                    }
                    mask[step] = word;
                }
                Arc::new(mask)
            })
            .collect();
        ContactWindows {
            n_steps,
            n_lows,
            masks,
        }
    }

    /// Windows for every (ground, satellite) pair of `sim`, all steps.
    pub fn for_sim(sim: &QuantumNetworkSim) -> Self {
        let (lows, ephs) = Self::sim_geometry(sim);
        Self::compute(&lows, &ephs, sim.steps())
    }

    /// Windows for `sim` computed only at `steps`.
    pub fn for_sim_steps(sim: &QuantumNetworkSim, steps: &[usize]) -> Self {
        let (lows, ephs) = Self::sim_geometry(sim);
        Self::compute_for_steps(&lows, &ephs, sim.steps(), steps)
    }

    /// [`ContactWindows::for_sim`] under a cancellation/deadline budget.
    pub fn for_sim_with_control(
        sim: &QuantumNetworkSim,
        control: &RunControl,
    ) -> Result<Self, StopCause> {
        let (lows, ephs) = Self::sim_geometry(sim);
        Self::compute_with_control(&lows, &ephs, sim.steps(), control)
    }

    fn sim_geometry(sim: &QuantumNetworkSim) -> (Vec<Geodetic>, Vec<&Ephemeris>) {
        let lows = sim
            .hosts()
            .iter()
            .filter(|h| h.is_ground())
            .map(|h| h.geodetic_at(0))
            .collect();
        let ephs = sim
            .hosts()
            .iter()
            .filter_map(|h| match &h.kind {
                HostKind::Satellite { ephemeris } => Some(ephemeris),
                _ => None,
            })
            .collect();
        (lows, ephs)
    }

    pub(crate) fn all_visible(n_steps: usize, n_lows: usize, n_sats: usize) -> Self {
        ContactWindows {
            n_steps,
            n_lows,
            masks: (0..n_sats).map(|_| Arc::new(Vec::new())).collect(),
        }
    }

    /// Windows restricted to the first `n` satellites — the paper's
    /// constellation prefixes (Table II) at zero recompute cost.
    pub fn prefix(&self, n: usize) -> Self {
        assert!(
            n <= self.masks.len(),
            "prefix larger than the computed constellation"
        );
        ContactWindows {
            n_steps: self.n_steps,
            n_lows: self.n_lows,
            masks: self.masks[..n].to_vec(),
        }
    }

    /// Number of time steps covered.
    #[inline]
    pub fn steps(&self) -> usize {
        self.n_steps
    }

    /// Number of ground slots.
    #[inline]
    pub fn lows(&self) -> usize {
        self.n_lows
    }

    /// Number of satellites covered.
    #[inline]
    pub fn satellites(&self) -> usize {
        self.masks.len()
    }

    /// Is satellite `sat` at/above the horizon of ground slot `low` at
    /// `step`? Conservative: `true` whenever no window data exists.
    #[inline]
    pub fn visible(&self, sat: usize, step: usize, low: usize) -> bool {
        let mask = &self.masks[sat];
        if mask.is_empty() {
            return true;
        }
        (mask[step] >> low) & 1 == 1
    }
}

/// How the pipeline treats one host pair of the O(N²) loop — the Scene's
/// time-invariant classification of a candidate edge.
#[derive(Debug, Clone, Copy)]
pub enum Candidate {
    /// Neither endpoint moves: evaluated once at Scene construction; the
    /// stored η is bitwise equal to evaluating at any step.
    Static {
        /// Lower host id of the pair.
        a: HostId,
        /// Higher host id of the pair.
        b: HostId,
        /// The pair's step-invariant transmissivity.
        eta: f64,
        /// Does the link cross the atmosphere (≥ 1 ground endpoint), i.e.
        /// is it subject to the fault layer's weather factor?
        crosses_atmosphere: bool,
    },
    /// Ground–satellite: evaluated only inside the contact window. Always
    /// crosses the atmosphere.
    GroundSat {
        /// Lower host id of the pair.
        a: HostId,
        /// Higher host id of the pair.
        b: HostId,
        /// The satellite's row in the [`ContactWindows`].
        sat: SatId,
        /// The ground endpoint's bit slot in the [`ContactWindows`].
        low: usize,
    },
    /// Anything else time-varying (ISLs, HAP–satellite): evaluated every
    /// step.
    Dynamic {
        /// Lower host id of the pair.
        a: HostId,
        /// Higher host id of the pair.
        b: HostId,
        /// Does the link cross the atmosphere (≥ 1 ground endpoint)?
        crosses_atmosphere: bool,
    },
}

/// Stage 1 of the pipeline: the time-invariant description of what can
/// link to what — every candidate FSO edge classified once, plus the
/// precomputed visibility windows. Built once per simulator (unpruned) or
/// per engine (window-pruned); consulted by every per-step [`LinkMap`].
#[derive(Debug, Clone)]
pub struct Scene {
    n_hosts: usize,
    candidates: Vec<Candidate>,
    windows: ContactWindows,
}

impl Scene {
    /// Classify every host pair against precomputed `windows`.
    ///
    /// # Panics
    /// Panics when the windows' shape does not match the hosts' ground /
    /// satellite counts or `n_steps`.
    pub fn new(
        hosts: &[Host],
        evaluator: &LinkEvaluator,
        n_steps: usize,
        windows: ContactWindows,
    ) -> Scene {
        let n = hosts.len();
        // Slot maps: ground index -> window bit, satellite index -> window row.
        let mut ground_slot = vec![usize::MAX; n];
        let mut sat_slot = vec![usize::MAX; n];
        let (mut n_ground, mut n_sat) = (0, 0);
        for (i, h) in hosts.iter().enumerate() {
            if h.is_ground() {
                ground_slot[i] = n_ground;
                n_ground += 1;
            } else if h.is_satellite() {
                sat_slot[i] = n_sat;
                n_sat += 1;
            }
        }
        assert_eq!(
            windows.lows(),
            n_ground,
            "windows built for a different ground set"
        );
        assert_eq!(
            windows.satellites(),
            n_sat,
            "windows built for a different constellation"
        );
        assert_eq!(
            windows.steps(),
            n_steps,
            "windows built for a different time span"
        );

        let enable_isl = evaluator.config().enable_isl;
        let mut candidates = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let (ha, hb) = (&hosts[a], &hosts[b]);
                if ha.is_ground() && hb.is_ground() {
                    continue; // fiber mesh handles these; no FSO class
                }
                let crosses_atmosphere = ha.is_ground() || hb.is_ground();
                if !ha.is_satellite() && !hb.is_satellite() {
                    // Static geometry: the evaluation is time-invariant.
                    if let Some(eta) = evaluator.fso_eta(ha, hb, 0) {
                        candidates.push(Candidate::Static {
                            a: HostId(a),
                            b: HostId(b),
                            eta,
                            crosses_atmosphere,
                        });
                    }
                    continue;
                }
                if ha.is_satellite() && hb.is_satellite() {
                    if enable_isl {
                        candidates.push(Candidate::Dynamic {
                            a: HostId(a),
                            b: HostId(b),
                            crosses_atmosphere,
                        });
                    }
                    continue;
                }
                // Exactly one satellite. Window-prune only the ordinary
                // case where the other endpoint is a ground site and the
                // satellite is unambiguously the high endpoint; anything
                // exotic stays on the always-evaluate path.
                let (sat_idx, other) = if ha.is_satellite() { (a, b) } else { (b, a) };
                if hosts[other].is_ground() && hosts[sat_idx].altitude_at(0) >= 20_000.0 {
                    candidates.push(Candidate::GroundSat {
                        a: HostId(a),
                        b: HostId(b),
                        sat: SatId(sat_slot[sat_idx]),
                        low: ground_slot[other],
                    });
                } else {
                    candidates.push(Candidate::Dynamic {
                        a: HostId(a),
                        b: HostId(b),
                        crosses_atmosphere,
                    });
                }
            }
        }
        Scene {
            n_hosts: n,
            candidates,
            windows,
        }
    }

    /// A Scene whose windows treat every satellite as always visible — the
    /// naive evaluator's configuration. Exact (pruning is an optimization,
    /// never a semantic), merely unpruned.
    pub fn unpruned(hosts: &[Host], evaluator: &LinkEvaluator, n_steps: usize) -> Scene {
        let n_ground = hosts.iter().filter(|h| h.is_ground()).count();
        let n_sat = hosts.iter().filter(|h| h.is_satellite()).count();
        Scene::new(
            hosts,
            evaluator,
            n_steps,
            ContactWindows::all_visible(n_steps, n_ground, n_sat),
        )
    }

    /// Number of hosts classified.
    #[inline]
    pub fn hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of time steps covered.
    #[inline]
    pub fn steps(&self) -> usize {
        self.windows.steps()
    }

    /// The classified candidate edges, in ascending `(a, b)` order.
    #[inline]
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The visibility windows in use.
    #[inline]
    pub fn windows(&self) -> &ContactWindows {
        &self.windows
    }
}

/// Stage 2 of the pipeline: the per-step link view. Borrows a simulator,
/// a [`Scene`] and an optional fault mask, and yields every live link of a
/// step — in the canonical insertion order — with the mask applied as a
/// composable gate + weather stage inside the single iteration.
#[derive(Debug, Clone, Copy)]
pub struct LinkMap<'a> {
    hosts: &'a [Host],
    evaluator: &'a LinkEvaluator,
    fiber: &'a [(usize, usize, f64)],
    scene: &'a Scene,
    faults: Option<&'a CompiledFaults>,
}

impl<'a> LinkMap<'a> {
    /// A link view of `sim` through `scene`, optionally fault-masked.
    ///
    /// # Panics
    /// Panics when `scene` or `faults` was built for a different host
    /// count or time span than `sim`.
    pub fn new(
        sim: &'a QuantumNetworkSim,
        scene: &'a Scene,
        faults: Option<&'a CompiledFaults>,
    ) -> LinkMap<'a> {
        assert_eq!(
            scene.hosts(),
            sim.hosts().len(),
            "scene built for a different host set"
        );
        assert_eq!(
            scene.steps(),
            sim.steps(),
            "scene built for a different time span"
        );
        if let Some(f) = faults {
            assert_eq!(
                f.hosts(),
                sim.hosts().len(),
                "faults compiled for a different host set"
            );
            assert_eq!(
                f.steps(),
                sim.steps(),
                "faults compiled for a different time span"
            );
        }
        LinkMap {
            hosts: sim.hosts(),
            evaluator: sim.evaluator(),
            fiber: sim.fiber_edges(),
            scene,
            faults,
        }
    }

    /// The scene this view consults.
    #[inline]
    pub fn scene(&self) -> &Scene {
        self.scene
    }

    /// The fault mask applied, if any.
    #[inline]
    pub fn faults(&self) -> Option<&CompiledFaults> {
        self.faults
    }

    /// A host's ECEF position at `step` — the Scene's position column,
    /// read straight from the `qntn-orbit` movement sheet (satellites) or
    /// the fixed geodetic (ground, HAPs).
    #[inline]
    pub fn ecef_of(&self, host: HostId, step: StepId) -> Vec3 {
        self.hosts[host.index()].ecef_at(step.index())
    }

    /// Yield `(a, b, η)` for every live link at `step`, in the canonical
    /// insertion order: fiber mesh first, then candidates in ascending
    /// `(a, b)` order.
    ///
    /// The fault mask, when present, is applied inline: downed-host /
    /// flapped edges are withheld, and atmosphere-crossing links are
    /// scaled by the step's weather factor. Without a mask the weather
    /// factor is exactly 1.0 and `η × 1.0` is a bitwise no-op for the
    /// finite η the evaluator produces, so both configurations run the
    /// same loop without a bit of divergence. An identity mask likewise
    /// reproduces the clean output bit for bit — a checked property, not a
    /// short-circuit.
    ///
    /// # Panics
    /// Panics when `step` is out of range.
    pub fn for_each_link(&self, step: StepId, mut emit: impl FnMut(HostId, HostId, f64)) {
        let t = step.index();
        assert!(t < self.scene.steps(), "step out of range");
        let w = self.faults.map_or(1.0, |f| f.eta_factor(t));
        let up = |a: HostId, b: HostId| match self.faults {
            Some(f) => f.edge_up(t, a.index(), b.index()),
            None => true,
        };
        for &(a, b, eta) in self.fiber {
            let (a, b) = (HostId(a), HostId(b));
            if up(a, b) {
                emit(a, b, eta);
            }
        }
        for c in self.scene.candidates() {
            match *c {
                Candidate::Static {
                    a,
                    b,
                    eta,
                    crosses_atmosphere,
                } => {
                    if up(a, b) {
                        emit(a, b, if crosses_atmosphere { eta * w } else { eta });
                    }
                }
                Candidate::GroundSat { a, b, sat, low } => {
                    if up(a, b) && self.scene.windows().visible(sat.index(), t, low) {
                        if let Some(eta) = self.evaluator.fso_eta(
                            &self.hosts[a.index()],
                            &self.hosts[b.index()],
                            t,
                        ) {
                            // One endpoint is ground by construction.
                            emit(a, b, eta * w);
                        }
                    }
                }
                Candidate::Dynamic {
                    a,
                    b,
                    crosses_atmosphere,
                } => {
                    if up(a, b) {
                        if let Some(eta) = self.evaluator.fso_eta(
                            &self.hosts[a.index()],
                            &self.hosts[b.index()],
                            t,
                        ) {
                            emit(a, b, if crosses_atmosphere { eta * w } else { eta });
                        }
                    }
                }
            }
        }
    }
}

/// Stage 3 of the pipeline: build the full (unthresholded) per-step
/// [`Graph`] into caller-provided scratch. **This is the only function in
/// the workspace that materializes a per-step topology from positions and
/// η** — every `graph_at*` wrapper and engine `*_into` method delegates
/// here.
///
/// # Panics
/// Panics when `step` is out of range.
pub fn build_topology_into(links: &LinkMap<'_>, step: StepId, g: &mut Graph) {
    g.reset(links.scene().hosts());
    links.for_each_link(step, |a, b, eta| g.set_edge(a.index(), b.index(), eta));
}

/// Allocating convenience wrapper over [`build_topology_into`].
pub fn build_topology(links: &LinkMap<'_>, step: StepId) -> Graph {
    let mut g = Graph::default();
    build_topology_into(links, step, &mut g);
    g
}
