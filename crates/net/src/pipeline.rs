//! The single-source topology pipeline: **Scene → LinkMap → Topology**.
//!
//! Every per-step link graph in the workspace — the naive
//! [`QuantumNetworkSim::graph_at`] family, the window-pruned
//! [`crate::SweepEngine`], and both of their fault-masked variants — is
//! built by exactly one function, [`build_topology_into`], fed by two
//! layered stages:
//!
//! 1. **[`Scene`]** — the time-invariant layer. Classifies every host pair
//!    once into a [`Candidate`] (static geometry evaluated eagerly,
//!    ground–satellite pairs tagged with their [`ContactWindows`] slots,
//!    everything else dynamic) and owns the per-step visibility masks.
//!    Positions themselves stay columnar in the `qntn-orbit`
//!    [`Ephemeris`] sheets each [`Host`] references; the Scene adds the
//!    visibility and link-class layers on top rather than copying them.
//! 2. **[`LinkMap`]** — the per-step layer. Borrows a simulator, a Scene
//!    and an optional [`CompiledFaults`] mask and yields `(a, b, η)` for
//!    every live link of a step in the canonical insertion order (fiber
//!    mesh first, then candidates in ascending `(a, b)` order). The fault
//!    mask is a composable stage of this iteration — a gate and a weather
//!    factor folded into the single loop — not a forked copy of it.
//! 3. **Topology** — [`build_topology_into`] inserts the LinkMap's links
//!    into a caller-provided [`Graph`] scratch, allocation-free on the hot
//!    path.
//!
//! ## The incremental path
//!
//! Sweeps visit steps consecutively, and between consecutive steps only a
//! handful of contact windows open or close. The Scene therefore also
//! precomputes a CSR table of per-step *edge deltas*, and a [`StepCursor`]
//! carries the resulting active set (plus the SoA η batch scratch) from
//! step to step: [`build_topology_into_with`] advances the cursor in
//! O(transitions) and evaluates the surviving ground–satellite links
//! through the auto-vectorizable `FsoBatch` kernel. Both are pure
//! optimizations — the cursor reseeds itself bitwise-identically on any
//! non-consecutive access (or when handed to a different Scene), and the
//! batch kernel replicates the scalar evaluator's float operations
//! exactly, so the incremental path emits the same bits in the same order
//! as the rescan path.
//!
//! ## Determinism guarantee
//!
//! For any step the pipeline's graph is bit-identical — including
//! adjacency-list order, which routing tie-breaking depends on — across
//! every entry point, because there is only one construction path. The
//! clean and faulted variants coincide bitwise under an identity mask: no
//! edge is withheld and the weather multiply is `η × 1.0`, a bitwise no-op
//! for finite floats. Static candidates are evaluated once at step 0,
//! which is bitwise equal to evaluating them at any step because their
//! geometry (and therefore every float the evaluator reads) is
//! step-invariant. `tests/pipeline_goldens.rs` pins all of this against
//! fingerprints captured from the pre-pipeline implementation.

use crate::faults::CompiledFaults;
use crate::host::{Host, HostKind};
use crate::linkeval::{BatchOutcome, LinkEvaluator};
use crate::simulator::QuantumNetworkSim;
use qntn_channel::fso::FsoBatch;
use qntn_common::{HostId, QntnError, RunControl, SatId, StepId, StopCause};
use qntn_geo::{Enu, Geodetic, Vec3, WGS84};
use qntn_orbit::{Ephemeris, GroundGrid, PassPredictor};
use qntn_quantum::memory::ClassMemory;
use qntn_routing::{Graph, TimeExpandedGraph};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-(satellite, step) bitmasks of which ground sites a satellite is at
/// or above the horizon of (elevation ≥ 0, the conservative superset of
/// the link evaluator's `elevation > 0` requirement).
///
/// Ground sites map to bit slots in host order; per-satellite step vectors
/// are `Arc`-shared so [`ContactWindows::prefix`] reuses one full-
/// constellation precompute across every constellation size of a sweep.
/// With more than 64 ground sites (not the paper's 31) the windows
/// degrade to "always visible" — correct, merely unpruned.
#[derive(Debug, Clone)]
pub struct ContactWindows {
    n_steps: usize,
    n_lows: usize,
    /// One mask vector per satellite; an empty vector means "no data,
    /// treat everything as visible".
    masks: Vec<Arc<Vec<u64>>>,
}

impl ContactWindows {
    /// Most ground slots a mask word can hold.
    const MAX_LOWS: usize = 64;

    /// Precompute windows for every step of every `(low, satellite)` pair.
    pub fn compute(lows: &[Geodetic], ephemerides: &[&Ephemeris], n_steps: usize) -> Self {
        match Self::compute_with_control(lows, ephemerides, n_steps, &RunControl::unlimited()) {
            Ok(windows) => windows,
            Err(cause) => unreachable!("unlimited control stopped a precompute: {cause}"),
        }
    }

    /// [`ContactWindows::compute`] under a cancellation/deadline budget,
    /// polled between per-satellite batches. A stopped precompute has no
    /// useful partial result, so it returns the [`StopCause`] instead of a
    /// torn table.
    ///
    /// Spatially pruned: a [`GroundGrid`] over the sub-satellite direction
    /// sphere reduces the per-sample site loop from *all* ground slots to
    /// the handful the satellite could possibly be above the horizon of;
    /// each surviving slot still runs the exact predicate, and the grid's
    /// conservativeness proof (see `qntn_orbit::spatial`) makes every
    /// skipped slot provably below-horizon — so the masks are bit-identical
    /// to [`ContactWindows::compute_exhaustive`], which
    /// `tests/synthetic_regions.rs` pins differentially.
    pub fn compute_with_control(
        lows: &[Geodetic],
        ephemerides: &[&Ephemeris],
        n_steps: usize,
        control: &RunControl,
    ) -> Result<Self, StopCause> {
        let n_lows = lows.len();
        if n_lows > Self::MAX_LOWS {
            return Ok(Self::all_visible(n_steps, n_lows, ephemerides.len()));
        }
        // The exact per-site geometry of `PassPredictor::
        // above_horizon_flags`: ellipsoidal up vector and ECEF position.
        let sites: Vec<(Vec3, Vec3)> = lows
            .iter()
            .map(|&site| (site.to_ecef(&WGS84), Enu::at(site, &WGS84).up()))
            .collect();
        // Conservative geocentric-radius bound over every sample the grid
        // will be consulted for (per-satellite maxima in parallel, folded
        // in input order — deterministic, and max is order-insensitive
        // anyway).
        let per_sat_max: Vec<f64> = ephemerides
            .par_iter()
            .map(|eph| {
                eph.samples()
                    .iter()
                    .map(|s| s.ecef.norm())
                    .fold(0.0, f64::max)
            })
            .collect();
        let r_sat_max = per_sat_max.into_iter().fold(0.0, f64::max);
        let grid = GroundGrid::build(&sites, r_sat_max);
        // Batch the satellites so cancellation has chunk granularity
        // without a per-sample check on the hot path.
        const BATCH: usize = 8;
        let mut masks = Vec::with_capacity(ephemerides.len());
        for batch in ephemerides.chunks(BATCH) {
            if let Some(cause) = control.should_stop() {
                return Err(cause);
            }
            let part: Vec<Arc<Vec<u64>>> = batch
                .par_iter()
                .map(|eph| {
                    let mut mask = vec![0u64; n_steps];
                    let samples = eph.samples();
                    for (k, word) in mask.iter_mut().enumerate().take(samples.len()) {
                        let ecef = samples[k].ecef;
                        let mut near = grid.near_mask(ecef);
                        let mut w = 0u64;
                        while near != 0 {
                            let slot = near.trailing_zeros() as usize;
                            near &= near - 1;
                            let (site_ecef, up) = sites[slot];
                            if (ecef - site_ecef).dot(up) >= 0.0 {
                                w |= 1 << slot;
                            }
                        }
                        *word = w;
                    }
                    Arc::new(mask)
                })
                .collect();
            masks.extend(part);
        }
        Ok(ContactWindows {
            n_steps,
            n_lows,
            masks,
        })
    }

    /// The pre-spatial-index window precompute: per (site, satellite)
    /// pair, `PassPredictor::above_horizon_flags` over every sample — the
    /// O(sats × steps × sites) full scan. Kept as the differential oracle
    /// for the pruned [`ContactWindows::compute_with_control`]; the two
    /// must agree bit for bit on every mask word.
    pub fn compute_exhaustive(
        lows: &[Geodetic],
        ephemerides: &[&Ephemeris],
        n_steps: usize,
    ) -> Self {
        let n_lows = lows.len();
        if n_lows > Self::MAX_LOWS {
            return Self::all_visible(n_steps, n_lows, ephemerides.len());
        }
        let predictors: Vec<PassPredictor> = lows
            .iter()
            .map(|&site| PassPredictor::new(site, 0.0))
            .collect();
        let masks = ephemerides
            .par_iter()
            .map(|eph| {
                let mut mask = vec![0u64; n_steps];
                for (slot, pred) in predictors.iter().enumerate() {
                    let flags = pred.above_horizon_flags(eph);
                    for (k, word) in mask.iter_mut().enumerate() {
                        if flags.get(k).copied().unwrap_or(false) {
                            *word |= 1 << slot;
                        }
                    }
                }
                Arc::new(mask)
            })
            .collect();
        ContactWindows {
            n_steps,
            n_lows,
            masks,
        }
    }

    /// Precompute windows only at `steps` (e.g. the 100 sampled steps of a
    /// request sweep); every other step defaults to all-visible, so the
    /// result is exact wherever it is consulted and merely unpruned
    /// elsewhere.
    pub fn compute_for_steps(
        lows: &[Geodetic],
        ephemerides: &[&Ephemeris],
        n_steps: usize,
        steps: &[usize],
    ) -> Self {
        let n_lows = lows.len();
        if n_lows > Self::MAX_LOWS {
            return Self::all_visible(n_steps, n_lows, ephemerides.len());
        }
        // The same above-horizon predicate as `PassPredictor::
        // above_horizon_flags`, evaluated pointwise.
        let sites: Vec<(Vec3, Vec3)> = lows
            .iter()
            .map(|&site| (site.to_ecef(&WGS84), Enu::at(site, &WGS84).up()))
            .collect();
        let masks = ephemerides
            .par_iter()
            .map(|eph| {
                let mut mask = vec![u64::MAX; n_steps];
                for &step in steps {
                    let ecef = eph.at_step(step).ecef;
                    let mut word = 0u64;
                    for (slot, &(site_ecef, up)) in sites.iter().enumerate() {
                        if (ecef - site_ecef).dot(up) >= 0.0 {
                            word |= 1 << slot;
                        }
                    }
                    mask[step] = word;
                }
                Arc::new(mask)
            })
            .collect();
        ContactWindows {
            n_steps,
            n_lows,
            masks,
        }
    }

    /// Windows for every (ground, satellite) pair of `sim`, all steps.
    pub fn for_sim(sim: &QuantumNetworkSim) -> Self {
        let (lows, ephs) = Self::sim_geometry(sim);
        Self::compute(&lows, &ephs, sim.steps())
    }

    /// Windows for `sim` computed only at `steps`.
    pub fn for_sim_steps(sim: &QuantumNetworkSim, steps: &[usize]) -> Self {
        let (lows, ephs) = Self::sim_geometry(sim);
        Self::compute_for_steps(&lows, &ephs, sim.steps(), steps)
    }

    /// [`ContactWindows::for_sim`] under a cancellation/deadline budget.
    pub fn for_sim_with_control(
        sim: &QuantumNetworkSim,
        control: &RunControl,
    ) -> Result<Self, StopCause> {
        let (lows, ephs) = Self::sim_geometry(sim);
        Self::compute_with_control(&lows, &ephs, sim.steps(), control)
    }

    fn sim_geometry(sim: &QuantumNetworkSim) -> (Vec<Geodetic>, Vec<&Ephemeris>) {
        let lows = sim
            .hosts()
            .iter()
            .filter(|h| h.is_ground())
            .map(|h| h.geodetic_at(0))
            .collect();
        let ephs = sim
            .hosts()
            .iter()
            .filter_map(|h| match &h.kind {
                HostKind::Satellite { ephemeris } => Some(ephemeris),
                _ => None,
            })
            .collect();
        (lows, ephs)
    }

    pub(crate) fn all_visible(n_steps: usize, n_lows: usize, n_sats: usize) -> Self {
        // Every satellite shares one empty "no data" mask: the absence of
        // window data is represented by emptiness, not contents, so one
        // allocation serves the whole constellation.
        let empty = Arc::new(Vec::new());
        ContactWindows {
            n_steps,
            n_lows,
            masks: vec![empty; n_sats],
        }
    }

    /// Windows restricted to the first `n` satellites — the paper's
    /// constellation prefixes (Table II) at zero recompute cost.
    pub fn prefix(&self, n: usize) -> Self {
        assert!(
            n <= self.masks.len(),
            "prefix larger than the computed constellation"
        );
        ContactWindows {
            n_steps: self.n_steps,
            n_lows: self.n_lows,
            masks: self.masks[..n].to_vec(),
        }
    }

    /// Number of time steps covered.
    #[inline]
    pub fn steps(&self) -> usize {
        self.n_steps
    }

    /// Number of ground slots.
    #[inline]
    pub fn lows(&self) -> usize {
        self.n_lows
    }

    /// Number of satellites covered.
    #[inline]
    pub fn satellites(&self) -> usize {
        self.masks.len()
    }

    /// Is satellite `sat` at/above the horizon of ground slot `low` at
    /// `step`? Conservative: `true` whenever no window data exists.
    #[inline]
    pub fn visible(&self, sat: usize, step: usize, low: usize) -> bool {
        let mask = &self.masks[sat];
        if mask.is_empty() {
            return true;
        }
        (mask[step] >> low) & 1 == 1
    }
}

/// How the pipeline treats one host pair of the O(N²) loop — the Scene's
/// time-invariant classification of a candidate edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Candidate {
    /// Neither endpoint moves: evaluated once at Scene construction; the
    /// stored η is bitwise equal to evaluating at any step.
    Static {
        /// Lower host id of the pair.
        a: HostId,
        /// Higher host id of the pair.
        b: HostId,
        /// The pair's step-invariant transmissivity.
        eta: f64,
        /// Does the link cross the atmosphere (≥ 1 ground endpoint), i.e.
        /// is it subject to the fault layer's weather factor?
        crosses_atmosphere: bool,
    },
    /// Ground–satellite: evaluated only inside the contact window. Always
    /// crosses the atmosphere.
    GroundSat {
        /// Lower host id of the pair.
        a: HostId,
        /// Higher host id of the pair.
        b: HostId,
        /// The satellite's row in the [`ContactWindows`].
        sat: SatId,
        /// The ground endpoint's bit slot in the [`ContactWindows`].
        low: usize,
    },
    /// Anything else time-varying (ISLs, HAP–satellite): evaluated every
    /// step.
    Dynamic {
        /// Lower host id of the pair.
        a: HostId,
        /// Higher host id of the pair.
        b: HostId,
        /// Does the link cross the atmosphere (≥ 1 ground endpoint)?
        crosses_atmosphere: bool,
    },
}

/// Process-unique [`Scene`] identities, issued at construction. Starts at
/// 1 so a `Default` [`StepCursor`] (token 0) can never accidentally match
/// a real Scene. Relaxed ordering suffices: only uniqueness matters, and a
/// (impossible) duplicate would merely force a bit-identical reseed.
static SCENE_TOKENS: AtomicU64 = AtomicU64::new(1);

/// Stage 1 of the pipeline: the time-invariant description of what can
/// link to what — every candidate FSO edge classified once, plus the
/// precomputed visibility windows. Built once per simulator (unpruned) or
/// per engine (window-pruned); consulted by every per-step [`LinkMap`].
///
/// Alongside the candidate list the Scene precomputes the *incremental*
/// view of the windows: a CSR table of per-step edge deltas (which
/// window-pruned candidates open or close at each step) that lets a
/// [`StepCursor`] maintain the active set in O(changes) when sweeping
/// consecutive steps instead of rescanning every ground–satellite pair.
#[derive(Debug, Clone)]
pub struct Scene {
    n_hosts: usize,
    candidates: Vec<Candidate>,
    windows: ContactWindows,
    /// Indices (ascending) of the Static/Dynamic candidates — evaluated at
    /// every step regardless of visibility.
    always_eval: Vec<u32>,
    /// Indices (ascending) of the window-pruned GroundSat candidates.
    ground_sat: Vec<u32>,
    /// CSR offsets into `delta_events`: `n_steps + 1` entries, step 0
    /// always empty (a cursor seeds there, it never transitions into it).
    delta_offsets: Vec<u32>,
    /// Per-step visibility transitions, `candidate_index << 1 | open_bit`,
    /// sorted ascending within each step.
    delta_events: Vec<u32>,
    /// This Scene's process-unique identity; a [`StepCursor`] carrying a
    /// different token is reseeded rather than trusted.
    token: u64,
}

impl Scene {
    /// Classify every host pair against precomputed `windows`.
    ///
    /// # Errors
    /// Returns [`QntnError::ShapeMismatch`] when the windows' shape does
    /// not match the hosts' ground / satellite counts or `n_steps` —
    /// windows built for a different ground set, constellation, or time
    /// span describe a different scene and cannot be reinterpreted.
    pub fn new(
        hosts: &[Host],
        evaluator: &LinkEvaluator,
        n_steps: usize,
        windows: ContactWindows,
    ) -> Result<Scene, QntnError> {
        let n = hosts.len();
        // Slot maps: ground index -> window bit, satellite index -> window row.
        let mut ground_slot = vec![usize::MAX; n];
        let mut sat_slot = vec![usize::MAX; n];
        let (mut n_ground, mut n_sat) = (0, 0);
        for (i, h) in hosts.iter().enumerate() {
            if h.is_ground() {
                ground_slot[i] = n_ground;
                n_ground += 1;
            } else if h.is_satellite() {
                sat_slot[i] = n_sat;
                n_sat += 1;
            }
        }
        if windows.lows() != n_ground {
            return Err(QntnError::ShapeMismatch {
                what: "windows ground slots (built for a different ground set)",
                expected: n_ground,
                got: windows.lows(),
            });
        }
        if windows.satellites() != n_sat {
            return Err(QntnError::ShapeMismatch {
                what: "windows satellite rows (built for a different constellation)",
                expected: n_sat,
                got: windows.satellites(),
            });
        }
        if windows.steps() != n_steps {
            return Err(QntnError::ShapeMismatch {
                what: "windows steps (built for a different time span)",
                expected: n_steps,
                got: windows.steps(),
            });
        }

        let enable_isl = evaluator.config().enable_isl;
        let mut candidates = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let (ha, hb) = (&hosts[a], &hosts[b]);
                if ha.is_ground() && hb.is_ground() {
                    continue; // fiber mesh handles these; no FSO class
                }
                let crosses_atmosphere = ha.is_ground() || hb.is_ground();
                if !ha.is_satellite() && !hb.is_satellite() {
                    // Static geometry: the evaluation is time-invariant.
                    if let Some(eta) = evaluator.fso_eta(ha, hb, 0) {
                        candidates.push(Candidate::Static {
                            a: HostId(a),
                            b: HostId(b),
                            eta,
                            crosses_atmosphere,
                        });
                    }
                    continue;
                }
                if ha.is_satellite() && hb.is_satellite() {
                    if enable_isl {
                        candidates.push(Candidate::Dynamic {
                            a: HostId(a),
                            b: HostId(b),
                            crosses_atmosphere,
                        });
                    }
                    continue;
                }
                // Exactly one satellite. Window-prune only the ordinary
                // case where the other endpoint is a ground site and the
                // satellite is unambiguously the high endpoint; anything
                // exotic stays on the always-evaluate path.
                let (sat_idx, other) = if ha.is_satellite() { (a, b) } else { (b, a) };
                if hosts[other].is_ground() && hosts[sat_idx].altitude_at(0) >= 20_000.0 {
                    candidates.push(Candidate::GroundSat {
                        a: HostId(a),
                        b: HostId(b),
                        sat: SatId(sat_slot[sat_idx]),
                        low: ground_slot[other],
                    });
                } else {
                    candidates.push(Candidate::Dynamic {
                        a: HostId(a),
                        b: HostId(b),
                        crosses_atmosphere,
                    });
                }
            }
        }
        // Split the candidate list into the always-evaluated set and the
        // window-pruned set, and map (sat row, ground slot) back to the
        // candidate index so window transitions become candidate events.
        let n_lows = windows.lows();
        let mut cand_of = vec![u32::MAX; n_sat * n_lows];
        let mut always_eval = Vec::new();
        let mut ground_sat = Vec::new();
        for (ci, c) in candidates.iter().enumerate() {
            match *c {
                Candidate::GroundSat { sat, low, .. } => {
                    cand_of[sat.index() * n_lows + low] = ci as u32;
                    ground_sat.push(ci as u32);
                }
                _ => always_eval.push(ci as u32),
            }
        }
        let (delta_offsets, delta_events) = Scene::build_deltas(&windows, &cand_of);
        Ok(Scene {
            n_hosts: n,
            candidates,
            windows,
            always_eval,
            ground_sat,
            delta_offsets,
            delta_events,
            token: SCENE_TOKENS.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Turn the windows' per-step mask transitions into the CSR delta
    /// table: for each step `t ≥ 1`, the sorted list of window-pruned
    /// candidates whose visibility flips between `t-1` and `t`. Empty
    /// masks (all-visible) contribute no events — their candidates are in
    /// every seeded active set and never transition.
    fn build_deltas(windows: &ContactWindows, cand_of: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let n_steps = windows.steps();
        let n_lows = windows.lows();
        // Sampled-step windows pad uncomputed steps with `u64::MAX`, so
        // bits at or above `n_lows` can flip without naming any site —
        // keep only the live slots.
        let live = match n_lows {
            64 => u64::MAX,
            n => (1u64 << n) - 1,
        };
        let mut per_step: Vec<Vec<u32>> = vec![Vec::new(); n_steps];
        for (sat, mask) in windows.masks.iter().enumerate() {
            if mask.is_empty() {
                continue;
            }
            for t in 1..n_steps {
                let mut flips = (mask[t] ^ mask[t - 1]) & live;
                while flips != 0 {
                    let low = flips.trailing_zeros() as usize;
                    flips &= flips - 1;
                    let ci = cand_of[sat * n_lows + low];
                    if ci == u32::MAX {
                        continue; // slot pair carries no GroundSat candidate
                    }
                    let open = (mask[t] >> low) & 1;
                    per_step[t].push(ci << 1 | open as u32);
                }
            }
        }
        let mut offsets = Vec::with_capacity(n_steps + 1);
        offsets.push(0u32);
        let mut events = Vec::new();
        for mut step_events in per_step {
            // A candidate flips at most once per step, so sorting the
            // encoded events sorts by candidate index.
            step_events.sort_unstable();
            events.extend_from_slice(&step_events);
            offsets.push(events.len() as u32);
        }
        (offsets, events)
    }

    /// A Scene whose windows treat every satellite as always visible — the
    /// naive evaluator's configuration. Exact (pruning is an optimization,
    /// never a semantic), merely unpruned.
    pub fn unpruned(hosts: &[Host], evaluator: &LinkEvaluator, n_steps: usize) -> Scene {
        let n_ground = hosts.iter().filter(|h| h.is_ground()).count();
        let n_sat = hosts.iter().filter(|h| h.is_satellite()).count();
        match Scene::new(
            hosts,
            evaluator,
            n_steps,
            ContactWindows::all_visible(n_steps, n_ground, n_sat),
        ) {
            Ok(scene) => scene,
            Err(e) => unreachable!("all-visible windows mismatched their own host set: {e}"),
        }
    }

    /// Bring `cursor` up to `step`'s active set. A consecutive step
    /// (`cursor.step + 1` on a cursor this Scene seeded) advances by
    /// applying that step's edge deltas in O(transitions); any other
    /// target — a fresh cursor, a jump, or a cursor seeded by a different
    /// Scene (token mismatch) — reseeds by a full window scan. Both paths
    /// produce the identical active set, so correctness never depends on
    /// how the cursor got here.
    pub fn advance_cursor(&self, cursor: &mut StepCursor, step: usize) {
        if cursor.token == self.token {
            if cursor.step == step {
                return;
            }
            if step == cursor.step + 1 {
                self.apply_step_events(cursor, step);
                cursor.step = step;
                return;
            }
        }
        self.seed_cursor(cursor, step);
    }

    /// Rebuild the active set from scratch at `step` and bind the cursor
    /// to this Scene.
    fn seed_cursor(&self, cursor: &mut StepCursor, step: usize) {
        cursor.active.clear();
        for &ci in &self.ground_sat {
            let Candidate::GroundSat { sat, low, .. } = self.candidates[ci as usize] else {
                unreachable!("ground_sat index names a non-GroundSat candidate");
            };
            if self.windows.visible(sat.index(), step, low) {
                cursor.active.push(ci);
            }
        }
        cursor.token = self.token;
        cursor.step = step;
    }

    /// Apply `step`'s open/close events to the cursor's (sorted) active
    /// set via a linear merge into the cursor's scratch vector.
    fn apply_step_events(&self, cursor: &mut StepCursor, step: usize) {
        let lo = self.delta_offsets[step] as usize;
        let hi = self.delta_offsets[step + 1] as usize;
        let events = &self.delta_events[lo..hi];
        if events.is_empty() {
            return;
        }
        let StepCursor { active, merge, .. } = cursor;
        merge.clear();
        let mut i = 0;
        for &ev in events {
            let ci = ev >> 1;
            let open = ev & 1 == 1;
            while i < active.len() && active[i] < ci {
                merge.push(active[i]);
                i += 1;
            }
            if open {
                merge.push(ci);
            } else {
                debug_assert!(
                    i < active.len() && active[i] == ci,
                    "close event for an inactive candidate"
                );
                i += 1; // the closing candidate is dropped, not copied
            }
        }
        merge.extend_from_slice(&active[i..]);
        std::mem::swap(active, merge);
    }

    /// Number of hosts classified.
    #[inline]
    pub fn hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of time steps covered.
    #[inline]
    pub fn steps(&self) -> usize {
        self.windows.steps()
    }

    /// The classified candidate edges, in ascending `(a, b)` order.
    #[inline]
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The visibility windows in use.
    #[inline]
    pub fn windows(&self) -> &ContactWindows {
        &self.windows
    }
}

/// Resumable sweep state for the incremental topology path: the sorted
/// set of window-pruned candidates visible at the cursor's current step,
/// maintained from the [`Scene`]'s per-step edge deltas, plus the reusable
/// scratch (merge buffer, batch plan, SoA η batch) the incremental link
/// walk needs. `Default` yields an unseeded cursor (token 0, which no
/// Scene ever issues) that any [`Scene::advance_cursor`] call seeds on
/// first use; holding one per sweep worker makes consecutive-step sweeps
/// O(changes) instead of O(candidates) per step.
#[derive(Debug, Default, Clone)]
pub struct StepCursor {
    /// Token of the Scene that last seeded this cursor (0 = unseeded).
    token: u64,
    /// The step `active` describes.
    step: usize,
    /// Ascending candidate indices of the visible GroundSat candidates.
    active: Vec<u32>,
    /// Merge scratch for [`Scene::apply_step_events`].
    merge: Vec<u32>,
    /// Per-active-candidate outcome of the batch enqueue pass.
    plan: Vec<BatchOutcome>,
    /// SoA batch for the vectorized η kernel.
    batch: FsoBatch,
}

/// Stage 2 of the pipeline: the per-step link view. Borrows a simulator,
/// a [`Scene`] and an optional fault mask, and yields every live link of a
/// step — in the canonical insertion order — with the mask applied as a
/// composable gate + weather stage inside the single iteration.
#[derive(Debug, Clone, Copy)]
pub struct LinkMap<'a> {
    hosts: &'a [Host],
    evaluator: &'a LinkEvaluator,
    fiber: &'a [(usize, usize, f64)],
    scene: &'a Scene,
    faults: Option<&'a CompiledFaults>,
}

impl<'a> LinkMap<'a> {
    /// A link view of `sim` through `scene`, optionally fault-masked.
    ///
    /// # Panics
    /// Panics when `scene` or `faults` was built for a different host
    /// count or time span than `sim`.
    pub fn new(
        sim: &'a QuantumNetworkSim,
        scene: &'a Scene,
        faults: Option<&'a CompiledFaults>,
    ) -> LinkMap<'a> {
        assert_eq!(
            scene.hosts(),
            sim.hosts().len(),
            "scene built for a different host set"
        );
        assert_eq!(
            scene.steps(),
            sim.steps(),
            "scene built for a different time span"
        );
        if let Some(f) = faults {
            assert_eq!(
                f.hosts(),
                sim.hosts().len(),
                "faults compiled for a different host set"
            );
            assert_eq!(
                f.steps(),
                sim.steps(),
                "faults compiled for a different time span"
            );
        }
        LinkMap {
            hosts: sim.hosts(),
            evaluator: sim.evaluator(),
            fiber: sim.fiber_edges(),
            scene,
            faults,
        }
    }

    /// The scene this view consults.
    #[inline]
    pub fn scene(&self) -> &Scene {
        self.scene
    }

    /// The fault mask applied, if any.
    #[inline]
    pub fn faults(&self) -> Option<&CompiledFaults> {
        self.faults
    }

    /// A host's ECEF position at `step` — the Scene's position column,
    /// read straight from the `qntn-orbit` movement sheet (satellites) or
    /// the fixed geodetic (ground, HAPs).
    #[inline]
    pub fn ecef_of(&self, host: HostId, step: StepId) -> Vec3 {
        self.hosts[host.index()].ecef_at(step.index())
    }

    /// Yield `(a, b, η)` for every live link at `step`, in the canonical
    /// insertion order: fiber mesh first, then candidates in ascending
    /// `(a, b)` order.
    ///
    /// The fault mask, when present, is applied inline: downed-host /
    /// flapped edges are withheld, and atmosphere-crossing links are
    /// scaled by the step's weather factor. Without a mask the weather
    /// factor is exactly 1.0 and `η × 1.0` is a bitwise no-op for the
    /// finite η the evaluator produces, so both configurations run the
    /// same loop without a bit of divergence. An identity mask likewise
    /// reproduces the clean output bit for bit — a checked property, not a
    /// short-circuit.
    ///
    /// # Panics
    /// Panics when `step` is out of range.
    pub fn for_each_link(&self, step: StepId, mut emit: impl FnMut(HostId, HostId, f64)) {
        let t = step.index();
        assert!(t < self.scene.steps(), "step out of range");
        let w = self.faults.map_or(1.0, |f| f.eta_factor(t));
        let up = |a: HostId, b: HostId| match self.faults {
            Some(f) => f.edge_up(t, a.index(), b.index()),
            None => true,
        };
        for &(a, b, eta) in self.fiber {
            let (a, b) = (HostId(a), HostId(b));
            if up(a, b) {
                emit(a, b, eta);
            }
        }
        for c in self.scene.candidates() {
            match *c {
                Candidate::Static {
                    a,
                    b,
                    eta,
                    crosses_atmosphere,
                } => {
                    if up(a, b) {
                        emit(a, b, if crosses_atmosphere { eta * w } else { eta });
                    }
                }
                Candidate::GroundSat { a, b, sat, low } => {
                    if up(a, b) && self.scene.windows().visible(sat.index(), t, low) {
                        if let Some(eta) = self.evaluator.fso_eta(
                            &self.hosts[a.index()],
                            &self.hosts[b.index()],
                            t,
                        ) {
                            // One endpoint is ground by construction.
                            emit(a, b, eta * w);
                        }
                    }
                }
                Candidate::Dynamic {
                    a,
                    b,
                    crosses_atmosphere,
                } => {
                    if up(a, b) {
                        if let Some(eta) = self.evaluator.fso_eta(
                            &self.hosts[a.index()],
                            &self.hosts[b.index()],
                            t,
                        ) {
                            emit(a, b, if crosses_atmosphere { eta * w } else { eta });
                        }
                    }
                }
            }
        }
    }

    /// [`LinkMap::for_each_link`] driven by a resumable [`StepCursor`]:
    /// the window-pruned candidates come from the cursor's incrementally
    /// maintained active set instead of a full candidate scan, and their η
    /// evaluations run through the SoA batch kernel
    /// (`qntn_channel::fso::FsoBatch`) instead of one scalar call per
    /// link. Emission order and every emitted bit are identical to
    /// [`LinkMap::for_each_link`] — the batch kernel replicates the scalar
    /// expressions operation for operation, and the merge walk restores
    /// the canonical ascending `(a, b)` candidate order — which
    /// `tests/pipeline_goldens.rs` pins differentially.
    ///
    /// # Panics
    /// Panics when `step` is out of range.
    pub fn for_each_link_with(
        &self,
        step: StepId,
        cursor: &mut StepCursor,
        mut emit: impl FnMut(HostId, HostId, f64),
    ) {
        let t = step.index();
        assert!(t < self.scene.steps(), "step out of range");
        self.scene.advance_cursor(cursor, t);
        let w = self.faults.map_or(1.0, |f| f.eta_factor(t));
        let up = |a: HostId, b: HostId| match self.faults {
            Some(f) => f.edge_up(t, a.index(), b.index()),
            None => true,
        };
        for &(a, b, eta) in self.fiber {
            let (a, b) = (HostId(a), HostId(b));
            if up(a, b) {
                emit(a, b, eta);
            }
        }
        let StepCursor {
            active,
            plan,
            batch,
            ..
        } = cursor;
        // Pass 1: enqueue every live window-pruned candidate into the SoA
        // batch (or resolve it inline when the evaluator can), recording
        // one outcome per active candidate.
        plan.clear();
        batch.clear();
        for &ci in active.iter() {
            let Candidate::GroundSat { a, b, .. } = self.scene.candidates[ci as usize] else {
                unreachable!("cursor active set names a non-GroundSat candidate");
            };
            if up(a, b) {
                plan.push(self.evaluator.fso_eta_batch_enqueue(
                    &self.hosts[a.index()],
                    &self.hosts[b.index()],
                    t,
                    batch,
                ));
            } else {
                plan.push(BatchOutcome::Resolved(None));
            }
        }
        batch.compute(&self.evaluator.config().fso);
        // Pass 2: merge-walk the always-evaluated candidates and the
        // active window-pruned candidates in ascending candidate order, so
        // the emission sequence is exactly `for_each_link`'s.
        let etas = batch.eta();
        let always = &self.scene.always_eval;
        let mut next_slot = 0;
        let mut ai = 0; // cursor into `active` / `plan`
        let mut ei = 0; // cursor into `always`
        loop {
            let from_active = match (always.get(ei), active.get(ai)) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                // The two sets are disjoint, so strict inequality decides.
                (Some(&e), Some(&a)) => a < e,
            };
            if from_active {
                let Candidate::GroundSat { a, b, .. } = self.scene.candidates[active[ai] as usize]
                else {
                    unreachable!("cursor active set names a non-GroundSat candidate");
                };
                match plan[ai] {
                    BatchOutcome::Resolved(None) => {}
                    // One endpoint is ground by construction: always × w.
                    BatchOutcome::Resolved(Some(eta)) => emit(a, b, eta * w),
                    BatchOutcome::Queued => {
                        let eta = etas[next_slot];
                        next_slot += 1;
                        emit(a, b, eta * w);
                    }
                }
                ai += 1;
            } else {
                match self.scene.candidates[always[ei] as usize] {
                    Candidate::Static {
                        a,
                        b,
                        eta,
                        crosses_atmosphere,
                    } => {
                        if up(a, b) {
                            emit(a, b, if crosses_atmosphere { eta * w } else { eta });
                        }
                    }
                    Candidate::Dynamic {
                        a,
                        b,
                        crosses_atmosphere,
                    } => {
                        if up(a, b) {
                            if let Some(eta) = self.evaluator.fso_eta(
                                &self.hosts[a.index()],
                                &self.hosts[b.index()],
                                t,
                            ) {
                                emit(a, b, if crosses_atmosphere { eta * w } else { eta });
                            }
                        }
                    }
                    Candidate::GroundSat { .. } => {
                        unreachable!("always-eval set names a window-pruned candidate")
                    }
                }
                ei += 1;
            }
        }
    }
}

/// Stage 3 of the pipeline: build the full (unthresholded) per-step
/// [`Graph`] into caller-provided scratch. **This is the only function in
/// the workspace that materializes a per-step topology from positions and
/// η** — every `graph_at*` wrapper and engine `*_into` method delegates
/// here.
///
/// # Panics
/// Panics when `step` is out of range.
pub fn build_topology_into(links: &LinkMap<'_>, step: StepId, g: &mut Graph) {
    g.reset(links.scene().hosts());
    links.for_each_link(step, |a, b, eta| g.set_edge(a.index(), b.index(), eta));
}

/// [`build_topology_into`] driven by a resumable [`StepCursor`] — the
/// sweep engine's incremental entry point. The single-materializer
/// contract is unchanged: the graph is still produced by the pipeline's
/// one canonical link loop, merely fed by the cursor's incrementally
/// maintained active set and the batched η kernel, both of which are
/// bit-identical to the rescan path.
///
/// # Panics
/// Panics when `step` is out of range.
pub fn build_topology_into_with(
    links: &LinkMap<'_>,
    step: StepId,
    cursor: &mut StepCursor,
    g: &mut Graph,
) {
    g.reset(links.scene().hosts());
    links.for_each_link_with(step, cursor, |a, b, eta| {
        g.set_edge(a.index(), b.index(), eta)
    });
}

/// Allocating convenience wrapper over [`build_topology_into`].
pub fn build_topology(links: &LinkMap<'_>, step: StepId) -> Graph {
    let mut g = Graph::default();
    build_topology_into(links, step, &mut g);
    g
}

/// Per-host per-step memory-decay factors: each host's class
/// (ground / satellite / HAP) looked up in `memory`, mapped to the η-space
/// factor one hold step costs (`MemoryParams::per_step_eta_factor`).
/// A factor of `0.0` marks a host that cannot hold at all — the
/// time-expanded builder emits no hold edge for it.
pub fn host_hold_factors(hosts: &[Host], memory: &ClassMemory) -> Vec<f64> {
    hosts
        .iter()
        .map(|h| {
            let params = if h.is_ground() {
                &memory.ground
            } else if h.is_satellite() {
                &memory.satellite
            } else {
                &memory.hap
            };
            params.per_step_eta_factor()
        })
        .collect()
}

/// The single materializer of the time-expanded layer: fill `out` with
/// `(host, step)` nodes covering sweep steps `arrival ..= arrival + horizon`
/// (clamped to the scene's last step).
///
/// Each layer is produced by the *per-step* single materializer —
/// [`build_topology_into_with`] into `full`, thresholded into `active`
/// exactly as the sweep engine's serving path does — and its edges are
/// copied into the layer in `Graph::edges()` order, so with `horizon == 0`
/// the time-expanded edge list is bitwise the per-step active edge list.
/// Between consecutive layers, one directed hold edge per holding-capable
/// host (ascending host order, factors from [`host_hold_factors`]) carries
/// a stored qubit forward, paying its memory decay.
///
/// Allocation-free in the steady state: all three outputs (`full`,
/// `active`, `out`) reuse their storage across calls, and the cursor keeps
/// the layer walk incremental. On return `active` holds the *last* layer's
/// graph.
///
/// # Panics
/// Panics when `arrival` is out of range or `hold_factors` does not match
/// the scene's host count.
#[allow(clippy::too_many_arguments)] // scratch-reuse entry point, mirrors the engine's serving path
pub fn build_time_expanded_into(
    links: &LinkMap<'_>,
    arrival: StepId,
    horizon: usize,
    hold_factors: &[f64],
    cursor: &mut StepCursor,
    full: &mut Graph,
    active: &mut Graph,
    out: &mut TimeExpandedGraph,
) {
    let n_hosts = links.scene().hosts();
    let n_steps = links.scene().steps();
    assert_eq!(
        hold_factors.len(),
        n_hosts,
        "hold factors for a different host set"
    );
    let t0 = arrival.index();
    assert!(t0 < n_steps, "arrival step out of range");
    let last = (t0 + horizon).min(n_steps - 1);
    let threshold = links.evaluator.config().threshold;

    out.reset(n_hosts, t0);
    for (layer, step) in (t0..=last).enumerate() {
        out.begin_layer();
        if layer > 0 {
            for (host, &factor) in hold_factors.iter().enumerate() {
                if factor > 0.0 {
                    out.push_hold(host, factor);
                }
            }
        }
        build_topology_into_with(links, StepId(step), cursor, full);
        full.thresholded_into(threshold, active);
        for (u, v, eta) in active.edges() {
            out.push_link(u, v, eta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::linkeval::SimConfig;
    use qntn_geo::Epoch;
    use qntn_orbit::{paper_constellation, PerturbationModel, Propagator};

    fn sat_ephemerides(n_sats: usize, steps: usize) -> Vec<Ephemeris> {
        let props: Vec<Propagator> = paper_constellation(n_sats)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0)
    }

    fn hosts(n_sats: usize, steps: usize) -> Vec<Host> {
        let mut hosts = vec![
            Host::ground(
                "TTU-0",
                0,
                Geodetic::from_deg(36.1757, -85.5066, 300.0),
                1.2,
            ),
            Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground(
                "EPB-0",
                2,
                Geodetic::from_deg(35.04159, -85.2799, 200.0),
                1.2,
            ),
        ];
        for (i, eph) in sat_ephemerides(n_sats, steps).into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        hosts
    }

    fn real_windows(hosts: &[Host], n_steps: usize) -> ContactWindows {
        let lows: Vec<Geodetic> = hosts
            .iter()
            .filter(|h| h.is_ground())
            .map(|h| h.geodetic_at(0))
            .collect();
        let ephs: Vec<&Ephemeris> = hosts
            .iter()
            .filter_map(|h| match &h.kind {
                HostKind::Satellite { ephemeris } => Some(ephemeris),
                _ => None,
            })
            .collect();
        ContactWindows::compute(&lows, &ephs, n_steps)
    }

    #[test]
    fn all_visible_shares_one_empty_mask_and_stays_all_visible() {
        let windows = ContactWindows::all_visible(16, 5, 8);
        for sat in 1..8 {
            assert!(
                Arc::ptr_eq(&windows.masks[0], &windows.masks[sat]),
                "satellite {sat} got its own empty-mask allocation"
            );
        }
        for sat in 0..8 {
            for step in 0..16 {
                for low in 0..5 {
                    assert!(windows.visible(sat, step, low));
                }
            }
        }
    }

    #[test]
    fn mismatched_windows_are_reported_not_panicked() {
        let steps = 8;
        let hosts = hosts(3, steps);
        let evaluator = LinkEvaluator::new(SimConfig::default());
        // Each axis, both directions: the windows claim more and fewer
        // grounds / satellites / steps than the hosts describe.
        let cases = [
            (ContactWindows::all_visible(steps, 2, 3), "ground set", 3, 2),
            (ContactWindows::all_visible(steps, 4, 3), "ground set", 3, 4),
            (
                ContactWindows::all_visible(steps, 3, 2),
                "constellation",
                3,
                2,
            ),
            (
                ContactWindows::all_visible(steps, 3, 4),
                "constellation",
                3,
                4,
            ),
            (
                ContactWindows::all_visible(steps - 1, 3, 3),
                "time span",
                steps,
                steps - 1,
            ),
            (
                ContactWindows::all_visible(steps + 1, 3, 3),
                "time span",
                steps,
                steps + 1,
            ),
        ];
        for (windows, needle, want_expected, want_got) in cases {
            match Scene::new(&hosts, &evaluator, steps, windows) {
                Err(QntnError::ShapeMismatch {
                    what,
                    expected,
                    got,
                }) => {
                    assert!(
                        what.contains(needle),
                        "error {what:?} does not mention {needle:?}"
                    );
                    assert_eq!((expected, got), (want_expected, want_got), "axis {needle}");
                }
                other => panic!("expected a ShapeMismatch for {needle}, got {other:?}"),
            }
        }
        // And a matching shape still succeeds.
        let ok = Scene::new(
            &hosts,
            &evaluator,
            steps,
            ContactWindows::all_visible(steps, 3, 3),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn consecutive_advance_matches_a_fresh_seed() {
        let steps = 60;
        let hosts = hosts(4, steps);
        let evaluator = LinkEvaluator::new(SimConfig::default());
        let windows = real_windows(&hosts, steps);
        let scene = Scene::new(&hosts, &evaluator, steps, windows).expect("matching shape");
        let mut walked = StepCursor::default();
        let mut transitions = 0;
        for step in 0..steps {
            scene.advance_cursor(&mut walked, step);
            let mut fresh = StepCursor::default();
            scene.advance_cursor(&mut fresh, step);
            assert_eq!(
                walked.active, fresh.active,
                "incremental active set diverged from a fresh seed at step {step}"
            );
            let lo = scene.delta_offsets[step] as usize;
            let hi = scene.delta_offsets[step + 1] as usize;
            transitions += hi - lo;
        }
        assert!(
            transitions > 0,
            "the paper constellation never crossed a horizon in 60 steps; \
             the delta path was not exercised"
        );
    }

    #[test]
    fn a_cursor_from_another_scene_is_reseeded_not_trusted() {
        let steps = 20;
        let hosts = hosts(3, steps);
        let evaluator = LinkEvaluator::new(SimConfig::default());
        let pruned = Scene::new(&hosts, &evaluator, steps, real_windows(&hosts, steps))
            .expect("matching shape");
        let unpruned = Scene::unpruned(&hosts, &evaluator, steps);
        let mut cursor = StepCursor::default();
        scene_walk(&pruned, &mut cursor, 5);
        // The unpruned scene has no deltas at all; were the cursor's
        // step-5 state trusted, a consecutive advance would keep the
        // pruned active set instead of the full one.
        unpruned.advance_cursor(&mut cursor, 6);
        assert_eq!(
            cursor.active, unpruned.ground_sat,
            "foreign cursor was advanced instead of reseeded"
        );
        assert_eq!(cursor.token, unpruned.token);
    }

    fn scene_walk(scene: &Scene, cursor: &mut StepCursor, to: usize) {
        for step in 0..=to {
            scene.advance_cursor(cursor, step);
        }
    }
}
