//! Network hosts: ground stations, satellites and HAPs.
//!
//! Mirrors the paper's QuNetSim upgrade, where the `Host` class gained
//! location data and `Satellite`/`HAP` subclasses: satellites replay a
//! movement sheet ([`qntn_orbit::Ephemeris`]); HAPs and ground stations are
//! fixed.

use qntn_geo::{Geodetic, Vec3, WGS84};
use qntn_orbit::Ephemeris;

/// Identifier of a local-area network (0 = TTU, 1 = ORNL, 2 = EPB in the
/// standard scenario; the simulator itself is agnostic).
pub type LanId = usize;

/// What kind of platform a host is.
#[derive(Debug, Clone)]
pub enum HostKind {
    /// A ground station belonging to one LAN, at a fixed position.
    Ground { lan: LanId, position: Geodetic },
    /// A high-altitude platform hovering at a fixed position.
    Hap { position: Geodetic },
    /// A satellite replaying a movement sheet.
    Satellite { ephemeris: Ephemeris },
}

/// One node of the quantum network.
#[derive(Debug, Clone)]
pub struct Host {
    /// Human-readable name (e.g. "TTU-3", "SAT-041", "HAP-1").
    pub name: String,
    /// Platform kind and position source.
    pub kind: HostKind,
    /// FSO aperture diameter, metres (1.2 for ground/satellites, 0.3 for
    /// HAPs in the paper's setup).
    pub aperture_m: f64,
}

impl Host {
    /// A ground station.
    pub fn ground(
        name: impl Into<String>,
        lan: LanId,
        position: Geodetic,
        aperture_m: f64,
    ) -> Host {
        Host {
            name: name.into(),
            kind: HostKind::Ground { lan, position },
            aperture_m,
        }
    }

    /// A HAP.
    pub fn hap(name: impl Into<String>, position: Geodetic, aperture_m: f64) -> Host {
        Host {
            name: name.into(),
            kind: HostKind::Hap { position },
            aperture_m,
        }
    }

    /// A satellite bound to its movement sheet.
    pub fn satellite(name: impl Into<String>, ephemeris: Ephemeris, aperture_m: f64) -> Host {
        Host {
            name: name.into(),
            kind: HostKind::Satellite { ephemeris },
            aperture_m,
        }
    }

    /// The LAN this host belongs to, if it is a ground station.
    pub fn lan(&self) -> Option<LanId> {
        match &self.kind {
            HostKind::Ground { lan, .. } => Some(*lan),
            _ => None,
        }
    }

    /// True for satellites.
    pub fn is_satellite(&self) -> bool {
        matches!(self.kind, HostKind::Satellite { .. })
    }

    /// True for HAPs.
    pub fn is_hap(&self) -> bool {
        matches!(self.kind, HostKind::Hap { .. })
    }

    /// True for ground stations.
    pub fn is_ground(&self) -> bool {
        matches!(self.kind, HostKind::Ground { .. })
    }

    /// Geodetic position at time step `step` (satellites move; others
    /// don't).
    pub fn geodetic_at(&self, step: usize) -> Geodetic {
        match &self.kind {
            HostKind::Ground { position, .. } | HostKind::Hap { position } => *position,
            HostKind::Satellite { ephemeris } => ephemeris.at_step(step).geodetic,
        }
    }

    /// ECEF position at time step `step`.
    pub fn ecef_at(&self, step: usize) -> Vec3 {
        match &self.kind {
            HostKind::Ground { position, .. } | HostKind::Hap { position } => {
                position.to_ecef(&WGS84)
            }
            HostKind::Satellite { ephemeris } => ephemeris.at_step(step).ecef,
        }
    }

    /// Altitude at time step `step`, metres.
    pub fn altitude_at(&self, step: usize) -> f64 {
        self.geodetic_at(step).alt_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qntn_geo::Epoch;
    use qntn_orbit::{Keplerian, PerturbationModel, Propagator};

    fn sample_satellite() -> Host {
        let prop = Propagator::new(
            Keplerian::circular(6_871_000.0, 53f64.to_radians(), 0.0, 0.0),
            Epoch::J2000,
            PerturbationModel::TwoBody,
        );
        let eph = Ephemeris::generate(&prop, Epoch::J2000, 30.0, 3600.0);
        Host::satellite("SAT-000", eph, 1.2)
    }

    #[test]
    fn ground_host_is_static() {
        let g = Host::ground(
            "TTU-0",
            0,
            Geodetic::from_deg(36.1757, -85.5066, 300.0),
            1.2,
        );
        assert!(g.is_ground());
        assert_eq!(g.lan(), Some(0));
        assert_eq!(g.geodetic_at(0), g.geodetic_at(100));
        assert!((g.altitude_at(5) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn hap_host_is_static_and_lanless() {
        let h = Host::hap(
            "HAP-1",
            Geodetic::from_deg(35.6692, -85.0662, 30_000.0),
            0.3,
        );
        assert!(h.is_hap());
        assert_eq!(h.lan(), None);
        assert!((h.altitude_at(77) - 30_000.0).abs() < 1e-9);
        assert_eq!(h.aperture_m, 0.3);
    }

    #[test]
    fn satellite_moves_between_steps() {
        let s = sample_satellite();
        assert!(s.is_satellite());
        assert_eq!(s.lan(), None);
        let p0 = s.ecef_at(0);
        let p10 = s.ecef_at(10);
        // 300 s of LEO motion covers > 2000 km.
        assert!(p0.distance(p10) > 2_000_000.0);
        // Altitude stays near 500 km (geodetic wobble aside).
        assert!((s.altitude_at(0) - 500_000.0).abs() < 25_000.0);
    }

    #[test]
    fn ecef_and_geodetic_agree() {
        let s = sample_satellite();
        let g = s.geodetic_at(7);
        let e = s.ecef_at(7);
        assert!((g.to_ecef(&WGS84) - e).norm() < 1.0);
    }
}
