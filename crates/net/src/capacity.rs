//! Finite link capacity — relaxing the paper's infinite-queue assumption.
//!
//! The paper assumes "each node can serve all entanglement requests while
//! in range … without limitations". Physically, a link generates Bell pairs
//! at a finite rate: an attempt rate R (source repetition rate) times the
//! survival probability η. This module serves a request batch against
//! per-link pair budgets, exposing the congestion the ideal model hides —
//! most visibly at the HAP, whose star topology funnels *every* inter-city
//! request through two of its links.

use crate::entanglement::{distribute, Distribution};
use crate::requests::Request;
use qntn_routing::{Graph, RouteMetric};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The pair-generation model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityModel {
    /// Entangled-pair attempt rate per link, pairs/second (source clock).
    pub attempt_rate_hz: f64,
    /// Time window the budget covers, seconds (the simulator step).
    pub window_s: f64,
}

impl CapacityModel {
    /// Pair budget of a link with transmissivity `eta` over the window.
    pub fn link_budget(&self, eta: f64) -> f64 {
        self.attempt_rate_hz * eta * self.window_s
    }
}

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockReason {
    /// No path above threshold existed at all.
    NoRoute,
    /// A path existed, but a link on it had an exhausted pair budget.
    Congestion,
    /// `src == dst` — a zero-hop request consumes no link budget and used
    /// to be served vacuously; it is flagged instead of silently inflating
    /// the served count.
    Degenerate,
}

/// Outcome of serving a batch under capacity constraints.
#[derive(Debug, Clone)]
pub struct CapacityOutcome {
    /// Served distributions, in request order (None when blocked).
    pub served: Vec<Option<Distribution>>,
    /// Block reason per request, in request order (`None` when served) —
    /// a positional `Vec`, not a map, so iteration order is the request
    /// order and artifacts derived from it are deterministic.
    pub blocked: Vec<Option<BlockReason>>,
}

impl CapacityOutcome {
    /// Number served.
    pub fn served_count(&self) -> usize {
        self.served.iter().filter(|s| s.is_some()).count()
    }

    /// Number blocked for any reason.
    pub fn blocked_total(&self) -> usize {
        self.blocked.iter().filter(|b| b.is_some()).count()
    }

    /// Number blocked for a given reason.
    pub fn blocked_count(&self, reason: BlockReason) -> usize {
        self.blocked.iter().filter(|&&b| b == Some(reason)).count()
    }
}

/// Serve `requests` in arrival order against `graph`, consuming one pair of
/// budget per link per served request. Routing ignores congestion (the
/// paper's Bellman–Ford has no load term); a routed request whose path hits
/// an exhausted link is blocked, matching a reservation-style control plane.
pub fn serve_with_capacity(
    graph: &Graph,
    requests: &[Request],
    metric: RouteMetric,
    model: CapacityModel,
) -> CapacityOutcome {
    // Initial budgets per undirected edge.
    let mut budget: HashMap<(usize, usize), f64> = graph
        .edges()
        .map(|(u, v, eta)| ((u.min(v), u.max(v)), model.link_budget(eta)))
        .collect();

    let mut served = Vec::with_capacity(requests.len());
    let mut blocked: Vec<Option<BlockReason>> = Vec::with_capacity(requests.len());
    for r in requests {
        if r.src == r.dst {
            // Zero-hop: the empty key list below would pass the budget
            // check vacuously and count as served for free.
            blocked.push(Some(BlockReason::Degenerate));
            served.push(None);
            continue;
        }
        match distribute(graph, r.src, r.dst, metric) {
            None => {
                blocked.push(Some(BlockReason::NoRoute));
                served.push(None);
            }
            Some(d) => {
                let keys: Vec<(usize, usize)> = d
                    .path
                    .windows(2)
                    .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
                    .collect();
                let ok = keys
                    .iter()
                    .all(|k| budget.get(k).copied().unwrap_or(0.0) >= 1.0);
                if ok {
                    for k in &keys {
                        if let Some(b) = budget.get_mut(k) {
                            *b -= 1.0;
                        }
                    }
                    served.push(Some(d));
                    blocked.push(None);
                } else {
                    blocked.push(Some(BlockReason::Congestion));
                    served.push(None);
                }
            }
        }
    }
    CapacityOutcome { served, blocked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qntn_routing::Graph;

    /// A star: hub 0 linked to leaves 1..=4 (the HAP shape in miniature).
    fn star(eta: f64) -> Graph {
        let mut g = Graph::with_nodes(5);
        for leaf in 1..5 {
            g.set_edge(0, leaf, eta);
        }
        g
    }

    fn reqs(pairs: &[(usize, usize)]) -> Vec<Request> {
        pairs
            .iter()
            .map(|&(src, dst)| Request { src, dst })
            .collect()
    }

    #[test]
    fn budget_formula() {
        let m = CapacityModel {
            attempt_rate_hz: 10.0,
            window_s: 30.0,
        };
        assert!((m.link_budget(0.5) - 150.0).abs() < 1e-12);
        assert_eq!(m.link_budget(0.0), 0.0);
    }

    #[test]
    fn ample_capacity_serves_everything() {
        let g = star(0.9);
        let m = CapacityModel {
            attempt_rate_hz: 1000.0,
            window_s: 30.0,
        };
        let out = serve_with_capacity(
            &g,
            &reqs(&[(1, 2), (3, 4), (1, 4)]),
            RouteMetric::PaperInverseEta,
            m,
        );
        assert_eq!(out.served_count(), 3);
        assert_eq!(out.blocked_total(), 0);
        assert_eq!(out.blocked, vec![None, None, None]);
    }

    #[test]
    fn degenerate_requests_are_flagged_not_served_for_free() {
        // Regression: src == dst produced an empty key list, which passed
        // the budget check vacuously and was counted as served.
        let g = star(0.9);
        let m = CapacityModel {
            attempt_rate_hz: 1000.0,
            window_s: 30.0,
        };
        let out = serve_with_capacity(
            &g,
            &reqs(&[(2, 2), (1, 2), (0, 0)]),
            RouteMetric::PaperInverseEta,
            m,
        );
        assert_eq!(out.served_count(), 1);
        assert_eq!(out.blocked_count(BlockReason::Degenerate), 2);
        assert_eq!(
            out.blocked,
            vec![
                Some(BlockReason::Degenerate),
                None,
                Some(BlockReason::Degenerate)
            ]
        );
    }

    #[test]
    fn zero_capacity_blocks_everything_with_reason() {
        let g = star(0.9);
        let m = CapacityModel {
            attempt_rate_hz: 0.0,
            window_s: 30.0,
        };
        let out = serve_with_capacity(
            &g,
            &reqs(&[(1, 2), (3, 4)]),
            RouteMetric::PaperInverseEta,
            m,
        );
        assert_eq!(out.served_count(), 0);
        assert_eq!(out.blocked_count(BlockReason::Congestion), 2);
        assert_eq!(out.blocked_count(BlockReason::NoRoute), 0);
    }

    #[test]
    fn no_route_is_distinguished_from_congestion() {
        let mut g = star(0.9);
        let isolated = g.add_node();
        let m = CapacityModel {
            attempt_rate_hz: 1000.0,
            window_s: 30.0,
        };
        let out = serve_with_capacity(
            &g,
            &reqs(&[(1, isolated), (1, 2)]),
            RouteMetric::PaperInverseEta,
            m,
        );
        assert_eq!(out.blocked_count(BlockReason::NoRoute), 1);
        assert_eq!(out.served_count(), 1);
    }

    #[test]
    fn hub_links_saturate_in_arrival_order() {
        // Budget per link: exactly 2 pairs. Requests 1-2, 1-3, 1-4 each use
        // the hub-1 link; the third must be blocked.
        let g = star(1.0);
        let m = CapacityModel {
            attempt_rate_hz: 2.0,
            window_s: 1.0,
        };
        let out = serve_with_capacity(
            &g,
            &reqs(&[(1, 2), (1, 3), (1, 4)]),
            RouteMetric::PaperInverseEta,
            m,
        );
        assert!(out.served[0].is_some());
        assert!(out.served[1].is_some());
        assert!(out.served[2].is_none(), "third request exhausts link 0-1");
        assert_eq!(out.blocked_count(BlockReason::Congestion), 1);
    }

    #[test]
    fn budget_scales_with_eta() {
        // Weak links run out first: eta 0.5 halves the budget.
        let g = star(0.5);
        let m = CapacityModel {
            attempt_rate_hz: 2.0,
            window_s: 1.0,
        }; // 1 pair/link
        let out = serve_with_capacity(
            &g,
            &reqs(&[(1, 2), (1, 3)]),
            RouteMetric::PaperInverseEta,
            m,
        );
        assert_eq!(out.served_count(), 1);
    }

    #[test]
    fn served_distributions_carry_fidelity() {
        let g = star(0.81);
        let m = CapacityModel {
            attempt_rate_hz: 100.0,
            window_s: 1.0,
        };
        let out = serve_with_capacity(&g, &reqs(&[(1, 2)]), RouteMetric::PaperInverseEta, m);
        let d = out.served[0].as_ref().unwrap();
        assert!((d.eta - 0.81 * 0.81).abs() < 1e-12);
        assert!(d.fidelity > 0.85);
    }
}
