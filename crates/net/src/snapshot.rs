//! Per-step network census: what the topology looks like at one instant.
//!
//! Used by the `reproduce topology` artifact and by operators of the
//! simulator to sanity-check a configuration: how many links of each class
//! are active, and how good they are.

use crate::faults::CompiledFaults;
use crate::host::Host;
use crate::simulator::QuantumNetworkSim;
use qntn_routing::Graph;
use serde::{Deserialize, Serialize};

/// Which physical class a link belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Ground–ground fiber.
    Fiber,
    /// Ground–satellite FSO.
    SatGround,
    /// Ground–HAP FSO.
    HapGround,
    /// Satellite–satellite FSO.
    Isl,
    /// HAP–HAP or HAP–satellite FSO.
    AerialBackbone,
}

/// Classify one edge by its endpoint host kinds.
pub fn classify(a: &Host, b: &Host) -> LinkClass {
    match (
        a.is_ground(),
        b.is_ground(),
        a.is_satellite(),
        b.is_satellite(),
    ) {
        (true, true, _, _) => LinkClass::Fiber,
        (_, _, true, true) => LinkClass::Isl,
        (true, _, _, true) | (_, true, true, _) => LinkClass::SatGround,
        (true, _, _, _) | (_, true, _, _) => LinkClass::HapGround,
        _ => LinkClass::AerialBackbone,
    }
}

/// Census of one link class at one step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassCensus {
    pub count: usize,
    pub min_eta: f64,
    pub max_eta: f64,
    pub mean_eta: f64,
}

/// The full snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    pub step: usize,
    pub nodes: usize,
    pub active_links: usize,
    pub classes: Vec<(LinkClass, ClassCensus)>,
    /// Are all LANs interconnected at this step?
    pub interconnected: bool,
}

impl Snapshot {
    /// Take a census of the threshold-gated graph at `step`.
    pub fn take(sim: &QuantumNetworkSim, step: usize) -> Snapshot {
        let graph = sim.active_graph_at(step);
        Self::from_graph(sim, step, &graph)
    }

    /// Take the census under a compiled fault mask — what an operator
    /// would actually see at `step` given the scheduled outages, flaps and
    /// weather.
    pub fn take_with_faults(
        sim: &QuantumNetworkSim,
        step: usize,
        faults: &CompiledFaults,
    ) -> Snapshot {
        let graph = sim.active_graph_at_with_faults(step, faults);
        Self::from_graph(sim, step, &graph)
    }

    /// Census an already-built graph (lets callers reuse the graph).
    pub fn from_graph(sim: &QuantumNetworkSim, step: usize, graph: &Graph) -> Snapshot {
        use std::collections::HashMap;
        let mut acc: HashMap<LinkClass, (usize, f64, f64, f64)> = HashMap::new();
        for (u, v, eta) in graph.edges() {
            let class = classify(&sim.hosts()[u], &sim.hosts()[v]);
            let e = acc.entry(class).or_insert((0, f64::INFINITY, 0.0, 0.0));
            e.0 += 1;
            e.1 = e.1.min(eta);
            e.2 = e.2.max(eta);
            e.3 += eta;
        }
        let mut classes: Vec<(LinkClass, ClassCensus)> = acc
            .into_iter()
            .map(|(class, (count, min, max, sum))| {
                (
                    class,
                    ClassCensus {
                        count,
                        min_eta: min,
                        max_eta: max,
                        mean_eta: sum / count as f64,
                    },
                )
            })
            .collect();
        classes.sort_by_key(|(class, _)| format!("{class:?}"));
        Snapshot {
            step,
            nodes: graph.node_count(),
            active_links: graph.edge_count(),
            classes,
            interconnected: sim.lans_interconnected(graph),
        }
    }

    /// The census for one class, if any links of it are active.
    pub fn class(&self, class: LinkClass) -> Option<&ClassCensus> {
        self.classes
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, s)| s)
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "step {}: {} nodes, {} active links, interconnected: {}\n{:<16} {:>6} {:>8} {:>8} {:>8}\n",
            self.step, self.nodes, self.active_links, self.interconnected,
            "class", "count", "min_eta", "mean_eta", "max_eta"
        );
        for (class, s) in &self.classes {
            out.push_str(&format!(
                "{:<16} {:>6} {:>8.4} {:>8.4} {:>8.4}\n",
                format!("{class:?}"),
                s.count,
                s.min_eta,
                s.mean_eta,
                s.max_eta
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkeval::SimConfig;
    use qntn_geo::Geodetic;

    fn sim() -> QuantumNetworkSim {
        let hosts = vec![
            Host::ground("A-0", 0, Geodetic::from_deg(36.1757, -85.5066, 300.0), 1.2),
            Host::ground("A-1", 0, Geodetic::from_deg(36.1751, -85.5067, 300.0), 1.2),
            Host::ground("B-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3),
        ];
        QuantumNetworkSim::new(hosts, SimConfig::default(), 2, 30.0)
    }

    #[test]
    fn census_counts_by_class() {
        let s = Snapshot::take(&sim(), 0);
        assert_eq!(s.nodes, 4);
        // 1 fiber (A-0—A-1) + 3 HAP links.
        assert_eq!(s.class(LinkClass::Fiber).unwrap().count, 1);
        assert_eq!(s.class(LinkClass::HapGround).unwrap().count, 3);
        assert!(s.class(LinkClass::Isl).is_none());
        assert_eq!(s.active_links, 4);
        assert!(s.interconnected);
    }

    #[test]
    fn census_eta_statistics_are_consistent() {
        let s = Snapshot::take(&sim(), 0);
        for (_, c) in &s.classes {
            assert!(c.min_eta <= c.mean_eta && c.mean_eta <= c.max_eta);
            assert!(c.min_eta >= 0.7, "only above-threshold links in the census");
            assert!(c.max_eta <= 1.0);
        }
    }

    #[test]
    fn classify_covers_all_pairs() {
        let g = Host::ground("g", 0, Geodetic::from_deg(36.0, -85.0, 0.0), 1.2);
        let h = Host::hap("h", Geodetic::from_deg(35.7, -85.0, 30_000.0), 0.3);
        assert_eq!(classify(&g, &g), LinkClass::Fiber);
        assert_eq!(classify(&g, &h), LinkClass::HapGround);
        assert_eq!(classify(&h, &g), LinkClass::HapGround);
        assert_eq!(classify(&h, &h), LinkClass::AerialBackbone);
    }

    #[test]
    fn render_contains_rows() {
        let text = Snapshot::take(&sim(), 1).render();
        assert!(text.contains("Fiber"));
        assert!(text.contains("HapGround"));
        assert!(text.contains("interconnected: true"));
    }

    #[test]
    fn faulted_census_drops_a_downed_relay() {
        let sim = sim();
        let mut faults = CompiledFaults::identity(sim.hosts().len(), sim.steps());
        faults.force_host_down(0, 3); // the HAP
        let s = Snapshot::take_with_faults(&sim, 0, &faults);
        assert!(s.class(LinkClass::HapGround).is_none(), "HAP links gone");
        assert_eq!(s.class(LinkClass::Fiber).unwrap().count, 1);
        assert!(!s.interconnected);
        // An identity mask censuses exactly like the clean path.
        let identity = CompiledFaults::identity(sim.hosts().len(), sim.steps());
        assert_eq!(
            Snapshot::take_with_faults(&sim, 0, &identity).active_links,
            Snapshot::take(&sim, 0).active_links
        );
    }
}
