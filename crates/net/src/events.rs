//! Link-state timelines and per-link statistics.
//!
//! The paper's simulator "dynamically updates" satellite links as the
//! constellation moves; this module records those transitions — when each
//! link came up, went down, and how good it was while up — for the
//! operational analyses (duty cycles, handover rates) the examples print.

use crate::simulator::QuantumNetworkSim;
use qntn_orbit::{merge_intervals, Interval};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A link up/down transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkEvent {
    /// Simulation time, seconds.
    pub t_s: f64,
    /// Link endpoints (host indices, ordered).
    pub link: (usize, usize),
    /// True for link-up, false for link-down.
    pub up: bool,
}

/// Per-link aggregate over a scan window.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Time above threshold, seconds.
    pub up_time_s: f64,
    /// Number of distinct up intervals (passes).
    pub passes: usize,
    /// Best transmissivity observed while up.
    pub best_eta: f64,
    /// Mean transmissivity over up samples.
    pub mean_eta: f64,
}

/// Timeline of link activity over a step range.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkTimeline {
    /// All transitions, time-ordered.
    pub events: Vec<LinkEvent>,
    /// Aggregates per link.
    pub stats: HashMap<(usize, usize), LinkStats>,
    /// Window covered, seconds.
    pub window_s: f64,
}

impl LinkTimeline {
    /// Scan `sim` over `[start_step, end_step)` and record every threshold
    /// crossing of every link.
    pub fn scan(sim: &QuantumNetworkSim, start_step: usize, end_step: usize) -> LinkTimeline {
        assert!(start_step < end_step && end_step <= sim.steps());
        let step_s = sim.step_s();
        let mut events = Vec::new();
        let mut up_since: HashMap<(usize, usize), f64> = HashMap::new();
        let mut eta_sums: HashMap<(usize, usize), (f64, f64, usize)> = HashMap::new(); // (sum, best, n)
        let mut intervals: HashMap<(usize, usize), Vec<Interval>> = HashMap::new();

        let mut prev: HashMap<(usize, usize), f64> = HashMap::new();
        for step in start_step..end_step {
            let t = step as f64 * step_s;
            let graph = sim.active_graph_at(step);
            let mut current: HashMap<(usize, usize), f64> = HashMap::new();
            for (u, v, eta) in graph.edges() {
                current.insert((u, v), eta);
            }
            // Ups: in current, not in prev.
            for (&link, &eta) in &current {
                let entry = eta_sums.entry(link).or_insert((0.0, 0.0, 0));
                entry.0 += eta;
                entry.1 = entry.1.max(eta);
                entry.2 += 1;
                if !prev.contains_key(&link) {
                    events.push(LinkEvent {
                        t_s: t,
                        link,
                        up: true,
                    });
                    up_since.insert(link, t);
                }
            }
            // Downs: in prev, not in current.
            for &link in prev.keys() {
                if !current.contains_key(&link) {
                    events.push(LinkEvent {
                        t_s: t,
                        link,
                        up: false,
                    });
                    if let Some(since) = up_since.remove(&link) {
                        intervals
                            .entry(link)
                            .or_default()
                            .push(Interval::new(since, t));
                    }
                }
            }
            prev = current;
        }
        // Close any links still up at the end of the window.
        let t_end = end_step as f64 * step_s;
        for (link, since) in up_since {
            intervals
                .entry(link)
                .or_default()
                .push(Interval::new(since, t_end));
        }

        let stats = intervals
            .into_iter()
            .map(|(link, ivs)| {
                let merged = merge_intervals(ivs);
                let up_time: f64 = merged.iter().map(Interval::duration_s).sum();
                let (sum, best, n) = eta_sums.get(&link).copied().unwrap_or((0.0, 0.0, 0));
                (
                    link,
                    LinkStats {
                        up_time_s: up_time,
                        passes: merged.len(),
                        best_eta: best,
                        mean_eta: if n > 0 { sum / n as f64 } else { 0.0 },
                    },
                )
            })
            .collect();

        LinkTimeline {
            events,
            stats,
            window_s: (end_step - start_step) as f64 * step_s,
        }
    }

    /// Duty cycle of one link (fraction of the window it was up).
    pub fn duty_cycle(&self, link: (usize, usize)) -> f64 {
        self.stats
            .get(&link)
            .map_or(0.0, |s| s.up_time_s / self.window_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::linkeval::SimConfig;
    use qntn_geo::{Epoch, Geodetic};
    use qntn_orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};

    fn hap_sim(steps: usize) -> QuantumNetworkSim {
        let hosts = vec![
            Host::ground("A", 0, Geodetic::from_deg(36.1757, -85.5066, 300.0), 1.2),
            Host::ground("B", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3),
        ];
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    }

    #[test]
    fn static_hap_links_have_full_duty_cycle() {
        let sim = hap_sim(20);
        let tl = LinkTimeline::scan(&sim, 0, 20);
        for link in [(0usize, 2usize), (1, 2)] {
            assert!((tl.duty_cycle(link) - 1.0).abs() < 1e-12, "{link:?}");
            let s = &tl.stats[&link];
            assert_eq!(s.passes, 1);
            assert!(s.best_eta >= s.mean_eta);
        }
        // Only the two up events at t=0; nothing ever goes down.
        assert_eq!(tl.events.iter().filter(|e| e.up).count(), 2);
        assert_eq!(tl.events.iter().filter(|e| !e.up).count(), 0);
    }

    #[test]
    fn satellite_links_produce_transitions() {
        let props: Vec<Propagator> = paper_constellation(6)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        let ephs = Ephemeris::generate_many(&props, Epoch::J2000, 30.0, 86_400.0);
        let mut hosts = vec![Host::ground(
            "G",
            0,
            Geodetic::from_deg(36.0, -85.0, 300.0),
            1.2,
        )];
        for (i, e) in ephs.into_iter().enumerate() {
            hosts.push(Host::satellite(format!("S{i}"), e, 1.2));
        }
        let sim = QuantumNetworkSim::new(hosts, SimConfig::default(), 2880, 30.0);
        let tl = LinkTimeline::scan(&sim, 0, 2880);
        // Over a day, some satellite-ground passes must occur, each with a
        // matched up (and possibly trailing) structure.
        assert!(!tl.events.is_empty(), "no link events in a whole day");
        let ups = tl.events.iter().filter(|e| e.up).count();
        let downs = tl.events.iter().filter(|e| !e.up).count();
        assert!(ups >= downs && ups <= downs + 6);
        // Duty cycles are small for LEO links.
        for (link, s) in &tl.stats {
            let duty = s.up_time_s / tl.window_s;
            assert!(duty < 0.05, "{link:?}: {duty}");
            assert!(s.best_eta >= 0.7, "up requires threshold");
        }
    }

    #[test]
    fn events_are_time_ordered() {
        let sim = hap_sim(10);
        let tl = LinkTimeline::scan(&sim, 0, 10);
        for w in tl.events.windows(2) {
            assert!(w[0].t_s <= w[1].t_s);
        }
    }

    #[test]
    #[should_panic(expected = "start_step < end_step")]
    fn rejects_empty_window() {
        let sim = hap_sim(10);
        LinkTimeline::scan(&sim, 5, 5);
    }
}
