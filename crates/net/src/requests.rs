//! Entanglement-request workloads (paper Fig. 7 / Fig. 8).
//!
//! The paper generates 100 random requests whose source and destination lie
//! in *different* LANs, counts how many can be served at each of 100 time
//! steps of satellite movement, and averages. `RequestWorkload` reproduces
//! that: seeded generation (deterministic), per-step evaluation on the
//! threshold-gated graph, rayon-parallel sweeps over steps.
//!
//! The retry layer ([`RetryPolicy`], [`RetryOutcome`], [`RetryStats`])
//! extends this for faulty networks: a request blocked at its arrival step
//! may be re-attempted with doubling backoff within a deadline window, and
//! outcomes split into served-first-try / served-after-retry / expired.

use crate::entanglement::{distribute, Distribution};
use crate::faults::CompiledFaults;
use crate::simulator::QuantumNetworkSim;
use crate::sweep_engine::SweepEngine;
use qntn_routing::{NodeId, RouteMetric};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One entanglement-distribution request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    pub src: NodeId,
    pub dst: NodeId,
}

/// Outcome of attempting one request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// Routed and distributed with this result.
    Served(Distribution),
    /// No path above threshold existed.
    Unserved,
}

/// A batch of inter-LAN requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestWorkload {
    pub requests: Vec<Request>,
}

impl RequestWorkload {
    /// Draw `n` random requests between ground nodes of *different* LANs,
    /// deterministically from `seed`.
    ///
    /// # Panics
    /// Panics when the simulator has fewer than two LANs with members.
    pub fn generate(sim: &QuantumNetworkSim, n: usize, seed: u64) -> RequestWorkload {
        let lans: Vec<&[usize]> = (0..sim.lan_count())
            .map(|l| sim.lan_members(l))
            .filter(|m| !m.is_empty())
            .collect();
        assert!(lans.len() >= 2, "need at least two populated LANs");
        let mut rng = StdRng::seed_from_u64(seed);
        let requests = (0..n)
            .map(|_| {
                let a = rng.random_range(0..lans.len());
                let b = loop {
                    let b = rng.random_range(0..lans.len());
                    if b != a {
                        break b;
                    }
                };
                let src = lans[a][rng.random_range(0..lans[a].len())];
                let dst = lans[b][rng.random_range(0..lans[b].len())];
                Request { src, dst }
            })
            .collect();
        RequestWorkload { requests }
    }

    /// Evaluate every request against the thresholded graph at `step`.
    pub fn evaluate_at(
        &self,
        sim: &QuantumNetworkSim,
        step: usize,
        metric: RouteMetric,
    ) -> Vec<RequestOutcome> {
        let graph = sim.active_graph_at(step);
        self.requests
            .iter()
            .map(|r| match distribute(&graph, r.src, r.dst, metric) {
                Some(d) => RequestOutcome::Served(d),
                None => RequestOutcome::Unserved,
            })
            .collect()
    }

    /// Evaluate the workload arriving at step `arrival` under `faults`,
    /// with `policy` governing re-attempts — the naive reference the
    /// engine's [`SweepEngine::sweep_with_retries`] is differentially
    /// tested against. Builds one faulted thresholded graph per attempt
    /// step and serves every still-pending request on it; requests that
    /// exhaust the schedule expire. Outcomes are returned in request order.
    pub fn evaluate_with_retries(
        &self,
        sim: &QuantumNetworkSim,
        arrival: usize,
        metric: RouteMetric,
        policy: RetryPolicy,
        faults: &CompiledFaults,
    ) -> Vec<RetryOutcome> {
        let schedule = policy.attempt_steps(arrival, sim.steps());
        let mut outcomes: Vec<Option<RetryOutcome>> = vec![None; self.requests.len()];
        let mut pending = self.requests.len();
        for (k, &t) in schedule.iter().enumerate() {
            if pending == 0 {
                break;
            }
            let graph = sim.active_graph_at_with_faults(t, faults);
            for (r, slot) in self.requests.iter().zip(outcomes.iter_mut()) {
                if slot.is_some() {
                    continue;
                }
                if let Some(d) = distribute(&graph, r.src, r.dst, metric) {
                    *slot = Some(if k == 0 {
                        RetryOutcome::ServedFirstTry(d)
                    } else {
                        RetryOutcome::ServedAfterRetry {
                            distribution: d,
                            attempts: k + 1,
                            waited_steps: t - arrival,
                        }
                    });
                    pending -= 1;
                }
            }
        }
        outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or(RetryOutcome::Expired {
                    attempts: schedule.len(),
                })
            })
            .collect()
    }
}

/// When and how often a blocked request may be re-attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum total attempts (including the first). At least 1.
    pub max_attempts: usize,
    /// First re-attempt delay, steps; subsequent delays double. 0 disables
    /// retries entirely (single attempt).
    pub backoff_steps: usize,
    /// A re-attempt may not be scheduled later than `arrival +
    /// deadline_steps`.
    pub deadline_steps: usize,
}

impl RetryPolicy {
    /// Single attempt, no retries — the paper's semantics.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_steps: 0,
            deadline_steps: 0,
        }
    }

    /// Default production-ish policy: up to 4 attempts at arrival,
    /// +2, +6, +14 steps (doubling backoff), all within a 20-step
    /// (10-minute) deadline.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_steps: 2,
            deadline_steps: 20,
        }
    }

    /// The attempt steps for a request arriving at `arrival`: the arrival
    /// step itself, then doubling-backoff re-attempts while they stay
    /// within the deadline window and the simulated day. An arrival at or
    /// beyond `n_steps` is simply unschedulable — empty schedule, never a
    /// panic (request arrivals are untrusted input once `qntn-serve`
    /// ingests them by the million).
    pub fn attempt_steps(&self, arrival: usize, n_steps: usize) -> Vec<usize> {
        if arrival >= n_steps {
            return Vec::new();
        }
        let mut steps = vec![arrival];
        if self.backoff_steps == 0 {
            return steps;
        }
        // Offsets from arrival: b, 3b, 7b, ... — each gap doubles.
        let mut offset = self.backoff_steps;
        while steps.len() < self.max_attempts.max(1) {
            let t = arrival.saturating_add(offset);
            if t >= n_steps || offset > self.deadline_steps {
                break;
            }
            steps.push(t);
            offset = offset.saturating_mul(2).saturating_add(self.backoff_steps);
        }
        steps
    }
}

/// Outcome of one request under a retry policy.
#[derive(Debug, Clone, PartialEq)]
pub enum RetryOutcome {
    /// Served on the arrival step, no retry needed.
    ServedFirstTry(Distribution),
    /// Blocked at arrival but served later — by a retry, or (in the
    /// hold-aware serving mode) by a quantum memory bridging to a later
    /// pass within the same attempt.
    ServedAfterRetry {
        distribution: Distribution,
        /// Total attempts used, including the first (≥ 2 on the per-step
        /// path; a memory-rescued first attempt reports 1).
        attempts: usize,
        /// Steps between arrival and delivery (attempt offset plus, in
        /// hold mode, the steps spent holding).
        waited_steps: usize,
    },
    /// Every attempt within the deadline failed.
    Expired {
        /// Total attempts made.
        attempts: usize,
    },
}

impl RetryOutcome {
    /// The serving distribution, if the request was served at all.
    pub fn distribution(&self) -> Option<&Distribution> {
        match self {
            RetryOutcome::ServedFirstTry(d) => Some(d),
            RetryOutcome::ServedAfterRetry { distribution, .. } => Some(distribution),
            RetryOutcome::Expired { .. } => None,
        }
    }
}

/// Aggregate statistics over a retried (steps × requests) sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryStats {
    /// Total requests attempted.
    pub attempted: usize,
    /// Served on the arrival step.
    pub served_first_try: usize,
    /// Served by a re-attempt.
    pub served_after_retry: usize,
    /// Never served within the deadline.
    pub expired: usize,
    /// Mean end-to-end square-root fidelity over served requests.
    pub mean_fidelity: f64,
    /// Mean per-link square-root fidelity over served requests.
    pub mean_link_fidelity: f64,
    /// Mean end-to-end transmissivity over served requests.
    pub mean_eta: f64,
    /// Mean hop count over served requests.
    pub mean_hops: f64,
    /// Mean attempts per request (served or not).
    pub mean_attempts: f64,
    /// Mean wait (steps from arrival to service) over served requests.
    pub mean_wait_steps: f64,
}

impl RetryStats {
    /// Requests served by any attempt.
    pub fn served(&self) -> usize {
        self.served_first_try + self.served_after_retry
    }

    /// Served percentage (any attempt).
    pub fn served_percent(&self) -> f64 {
        percent(self.served(), self.attempted)
    }

    /// Percentage served without needing a retry.
    pub fn first_try_percent(&self) -> f64 {
        percent(self.served_first_try, self.attempted)
    }

    /// Percentage rescued by the retry layer.
    pub fn rescued_percent(&self) -> f64 {
        percent(self.served_after_retry, self.attempted)
    }

    /// Percentage that expired unserved.
    pub fn expired_percent(&self) -> f64 {
        percent(self.expired, self.attempted)
    }
}

fn percent(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Fold per-arrival-step retry outcomes into [`RetryStats`], in step order.
pub fn aggregate_retry_outcomes(per_step: &[Vec<RetryOutcome>]) -> RetryStats {
    let mut stats = RetryStats {
        attempted: 0,
        served_first_try: 0,
        served_after_retry: 0,
        expired: 0,
        mean_fidelity: 0.0,
        mean_link_fidelity: 0.0,
        mean_eta: 0.0,
        mean_hops: 0.0,
        mean_attempts: 0.0,
        mean_wait_steps: 0.0,
    };
    let (mut f_sum, mut fl_sum, mut eta_sum, mut hop_sum) = (0.0, 0.0, 0.0, 0.0);
    let (mut attempt_sum, mut wait_sum) = (0.0, 0.0);
    for outcomes in per_step {
        for o in outcomes {
            stats.attempted += 1;
            match o {
                RetryOutcome::ServedFirstTry(_) => {
                    stats.served_first_try += 1;
                    attempt_sum += 1.0;
                }
                RetryOutcome::ServedAfterRetry {
                    attempts,
                    waited_steps,
                    ..
                } => {
                    stats.served_after_retry += 1;
                    attempt_sum += *attempts as f64;
                    wait_sum += *waited_steps as f64;
                }
                RetryOutcome::Expired { attempts } => {
                    stats.expired += 1;
                    attempt_sum += *attempts as f64;
                }
            }
            if let Some(d) = o.distribution() {
                f_sum += d.fidelity;
                fl_sum += d.mean_link_fidelity;
                eta_sum += d.eta;
                hop_sum += (d.path.len() - 1) as f64;
            }
        }
    }
    let served = stats.served();
    if served > 0 {
        stats.mean_fidelity = f_sum / served as f64;
        stats.mean_link_fidelity = fl_sum / served as f64;
        stats.mean_eta = eta_sum / served as f64;
        stats.mean_hops = hop_sum / served as f64;
        stats.mean_wait_steps = wait_sum / served as f64;
    }
    if stats.attempted > 0 {
        stats.mean_attempts = attempt_sum / stats.attempted as f64;
    }
    stats
}

/// Aggregate statistics over a (steps × requests) sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Total requests attempted.
    pub attempted: usize,
    /// Requests served.
    pub served: usize,
    /// Mean end-to-end square-root fidelity over *served* requests
    /// (NaN-free: 0 when nothing was served).
    pub mean_fidelity: f64,
    /// Mean per-link square-root fidelity over served requests (the
    /// accounting the paper's Table III numbers imply; see qntn-net docs).
    pub mean_link_fidelity: f64,
    /// Mean end-to-end transmissivity over served requests.
    pub mean_eta: f64,
    /// Mean hop count over served requests.
    pub mean_hops: f64,
}

impl SweepStats {
    /// Served percentage (the paper's Fig. 7 y-axis).
    pub fn served_percent(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            100.0 * self.served as f64 / self.attempted as f64
        }
    }
}

/// The paper's experiment: at each of `steps`, draw a fresh batch of
/// `requests_per_step` random inter-LAN requests (seeded per step), attempt
/// them on that step's graph, and aggregate. Runs on the window-pruned
/// [`SweepEngine`] (parallel over steps, deterministic for a given `seed`);
/// construct an engine directly via [`SweepEngine::sweep`] to control
/// parallelism or share contact windows.
pub fn sweep(
    sim: &QuantumNetworkSim,
    steps: &[usize],
    requests_per_step: usize,
    seed: u64,
    metric: RouteMetric,
) -> SweepStats {
    SweepEngine::for_steps(sim, steps).sweep(steps, requests_per_step, seed, metric)
}

/// Fold per-step request outcomes into [`SweepStats`], in step order.
pub fn aggregate_outcomes(per_step: &[Vec<RequestOutcome>]) -> SweepStats {
    let mut stats = SweepStats {
        attempted: 0,
        served: 0,
        mean_fidelity: 0.0,
        mean_link_fidelity: 0.0,
        mean_eta: 0.0,
        mean_hops: 0.0,
    };
    let (mut f_sum, mut fl_sum, mut eta_sum, mut hop_sum) = (0.0, 0.0, 0.0, 0.0);
    for outcomes in per_step {
        for o in outcomes {
            stats.attempted += 1;
            if let RequestOutcome::Served(d) = o {
                stats.served += 1;
                f_sum += d.fidelity;
                fl_sum += d.mean_link_fidelity;
                eta_sum += d.eta;
                hop_sum += (d.path.len() - 1) as f64;
            }
        }
    }
    if stats.served > 0 {
        stats.mean_fidelity = f_sum / stats.served as f64;
        stats.mean_link_fidelity = fl_sum / stats.served as f64;
        stats.mean_eta = eta_sum / stats.served as f64;
        stats.mean_hops = hop_sum / stats.served as f64;
    }
    stats
}

/// Evenly spaced sample of `count` step indices across `total` steps —
/// how the experiments pick their "100 time steps of satellite movement".
pub fn sample_steps(total: usize, count: usize) -> Vec<usize> {
    assert!(total > 0 && count > 0);
    if count >= total {
        return (0..total).collect();
    }
    (0..count).map(|i| i * total / count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::linkeval::SimConfig;
    use qntn_geo::Geodetic;

    fn hap_sim() -> QuantumNetworkSim {
        let hosts = vec![
            Host::ground("A-0", 0, Geodetic::from_deg(36.1757, -85.5066, 300.0), 1.2),
            Host::ground("A-1", 0, Geodetic::from_deg(36.1751, -85.5067, 300.0), 1.2),
            Host::ground("B-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground("C-0", 2, Geodetic::from_deg(35.04159, -85.2799, 200.0), 1.2),
            Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3),
        ];
        QuantumNetworkSim::new(hosts, SimConfig::default(), 5, 30.0)
    }

    #[test]
    fn generation_is_deterministic_and_inter_lan() {
        let sim = hap_sim();
        let w1 = RequestWorkload::generate(&sim, 100, 7);
        let w2 = RequestWorkload::generate(&sim, 100, 7);
        assert_eq!(w1.requests, w2.requests);
        let w3 = RequestWorkload::generate(&sim, 100, 8);
        assert_ne!(w1.requests, w3.requests);
        for r in &w1.requests {
            let src_lan = sim.hosts()[r.src].lan().unwrap();
            let dst_lan = sim.hosts()[r.dst].lan().unwrap();
            assert_ne!(
                src_lan, dst_lan,
                "source and destination must differ in LAN"
            );
        }
    }

    #[test]
    fn hap_serves_everything() {
        let sim = hap_sim();
        let stats = sweep(&sim, &[0, 1, 2, 3, 4], 50, 42, RouteMetric::PaperInverseEta);
        assert_eq!(stats.attempted, 250);
        assert_eq!(stats.served, 250);
        assert!((stats.served_percent() - 100.0).abs() < 1e-12);
        // Two FSO hops via the HAP (plus maybe a campus fiber hop).
        assert!(stats.mean_hops >= 2.0);
        assert!(stats.mean_fidelity > 0.9, "{}", stats.mean_fidelity);
    }

    #[test]
    fn outcomes_match_graph_connectivity() {
        let sim = hap_sim();
        let w = RequestWorkload::generate(&sim, 20, 3);
        let outcomes = w.evaluate_at(&sim, 0, RouteMetric::PaperInverseEta);
        let g = sim.active_graph_at(0);
        for (r, o) in w.requests.iter().zip(&outcomes) {
            match o {
                RequestOutcome::Served(d) => {
                    assert!(g.connected(r.src, r.dst));
                    assert_eq!(d.path[0], r.src);
                    assert_eq!(*d.path.last().unwrap(), r.dst);
                }
                RequestOutcome::Unserved => assert!(!g.connected(r.src, r.dst)),
            }
        }
    }

    #[test]
    fn empty_sweep_is_zeroed() {
        let stats = SweepStats {
            attempted: 0,
            served: 0,
            mean_fidelity: 0.0,
            mean_link_fidelity: 0.0,
            mean_eta: 0.0,
            mean_hops: 0.0,
        };
        assert_eq!(stats.served_percent(), 0.0);
    }

    #[test]
    fn sample_steps_spacing() {
        let s = sample_steps(2880, 100);
        assert_eq!(s.len(), 100);
        assert_eq!(s[0], 0);
        assert!(s.windows(2).all(|w| w[1] > w[0]));
        assert!(*s.last().unwrap() < 2880);
        // Short totals return everything.
        assert_eq!(sample_steps(5, 100), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sweep_deterministic_across_runs() {
        let sim = hap_sim();
        let a = sweep(&sim, &[0, 2, 4], 30, 9, RouteMetric::PaperInverseEta);
        let b = sweep(&sim, &[0, 2, 4], 30, 9, RouteMetric::PaperInverseEta);
        assert_eq!(a, b);
    }

    #[test]
    fn retry_schedule_doubles_and_respects_deadline() {
        let p = RetryPolicy::standard();
        assert_eq!(p.attempt_steps(10, 1000), vec![10, 12, 16, 24]);
        // The +14 offset would land at 24; deadline 20 admits it (14 ≤ 20)
        // but a tighter deadline trims the tail.
        let tight = RetryPolicy {
            deadline_steps: 7,
            ..RetryPolicy::standard()
        };
        assert_eq!(tight.attempt_steps(10, 1000), vec![10, 12, 16]);
        // max_attempts caps the schedule.
        let two = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::standard()
        };
        assert_eq!(two.attempt_steps(0, 1000), vec![0, 2]);
        // The day boundary truncates re-attempts.
        assert_eq!(RetryPolicy::standard().attempt_steps(998, 1000), vec![998]);
        // No-retry policy: arrival only.
        assert_eq!(RetryPolicy::none().attempt_steps(5, 1000), vec![5]);
        // Out-of-range arrivals are unschedulable, not a panic.
        assert!(p.attempt_steps(1000, 1000).is_empty());
        assert!(p.attempt_steps(usize::MAX, 1000).is_empty());
        assert!(p.attempt_steps(0, 0).is_empty());
    }

    #[test]
    fn out_of_range_arrival_expires_without_attempts() {
        // Regression: an arrival at/after the end of the simulated day used
        // to assert inside `attempt_steps`, killing the whole sweep. It must
        // simply expire every request with zero attempts.
        let sim = hap_sim();
        let faults = CompiledFaults::identity(sim.hosts().len(), sim.steps());
        let w = RequestWorkload::generate(&sim, 5, 4);
        let outcomes = w.evaluate_with_retries(
            &sim,
            sim.steps(),
            RouteMetric::PaperInverseEta,
            RetryPolicy::standard(),
            &faults,
        );
        assert_eq!(outcomes.len(), 5);
        assert!(outcomes
            .iter()
            .all(|o| *o == RetryOutcome::Expired { attempts: 0 }));
    }

    #[test]
    fn retries_on_a_healthy_network_are_all_first_try() {
        let sim = hap_sim();
        let faults = CompiledFaults::identity(sim.hosts().len(), sim.steps());
        let w = RequestWorkload::generate(&sim, 25, 4);
        let outcomes = w.evaluate_with_retries(
            &sim,
            0,
            RouteMetric::PaperInverseEta,
            RetryPolicy::standard(),
            &faults,
        );
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, RetryOutcome::ServedFirstTry(_))));
        let stats = aggregate_retry_outcomes(&[outcomes]);
        assert_eq!(stats.served_first_try, 25);
        assert_eq!(stats.served_after_retry, 0);
        assert_eq!(stats.expired, 0);
        assert_eq!(stats.served_percent(), 100.0);
        assert_eq!(stats.mean_attempts, 1.0);
        assert_eq!(stats.mean_wait_steps, 0.0);
    }

    #[test]
    fn retry_rescues_a_transient_outage_and_expiry_counts_attempts() {
        let sim = hap_sim();
        // HAP (host 4, the only inter-LAN relay) down at steps 0 and 1,
        // back at step 2.
        let mut faults = CompiledFaults::identity(sim.hosts().len(), sim.steps());
        faults.force_host_down(0, 4);
        faults.force_host_down(1, 4);
        let w = RequestWorkload::generate(&sim, 10, 4);
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_steps: 1,
            deadline_steps: 4,
        }; // attempts at 0, 1, 3
        let outcomes =
            w.evaluate_with_retries(&sim, 0, RouteMetric::PaperInverseEta, policy, &faults);
        for o in &outcomes {
            match o {
                RetryOutcome::ServedAfterRetry {
                    attempts,
                    waited_steps,
                    ..
                } => {
                    assert_eq!(*attempts, 3);
                    assert_eq!(*waited_steps, 3);
                }
                other => panic!("expected ServedAfterRetry, got {other:?}"),
            }
        }
        // A permanent outage expires every request after the full schedule.
        let mut dead = CompiledFaults::identity(sim.hosts().len(), sim.steps());
        for t in 0..sim.steps() {
            dead.force_host_down(t, 4);
        }
        let outcomes =
            w.evaluate_with_retries(&sim, 0, RouteMetric::PaperInverseEta, policy, &dead);
        assert!(outcomes
            .iter()
            .all(|o| *o == RetryOutcome::Expired { attempts: 3 }));
        let stats = aggregate_retry_outcomes(&[outcomes]);
        assert_eq!(stats.expired_percent(), 100.0);
        assert_eq!(stats.mean_attempts, 3.0);
        assert_eq!(stats.mean_fidelity, 0.0);
    }
}
