//! Entanglement-request workloads (paper Fig. 7 / Fig. 8).
//!
//! The paper generates 100 random requests whose source and destination lie
//! in *different* LANs, counts how many can be served at each of 100 time
//! steps of satellite movement, and averages. `RequestWorkload` reproduces
//! that: seeded generation (deterministic), per-step evaluation on the
//! threshold-gated graph, rayon-parallel sweeps over steps.

use crate::entanglement::{distribute, Distribution};
use crate::simulator::QuantumNetworkSim;
use crate::sweep_engine::SweepEngine;
use qntn_routing::{NodeId, RouteMetric};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One entanglement-distribution request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    pub src: NodeId,
    pub dst: NodeId,
}

/// Outcome of attempting one request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// Routed and distributed with this result.
    Served(Distribution),
    /// No path above threshold existed.
    Unserved,
}

/// A batch of inter-LAN requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestWorkload {
    pub requests: Vec<Request>,
}

impl RequestWorkload {
    /// Draw `n` random requests between ground nodes of *different* LANs,
    /// deterministically from `seed`.
    ///
    /// # Panics
    /// Panics when the simulator has fewer than two LANs with members.
    pub fn generate(sim: &QuantumNetworkSim, n: usize, seed: u64) -> RequestWorkload {
        let lans: Vec<&[usize]> = (0..sim.lan_count())
            .map(|l| sim.lan_members(l))
            .filter(|m| !m.is_empty())
            .collect();
        assert!(lans.len() >= 2, "need at least two populated LANs");
        let mut rng = StdRng::seed_from_u64(seed);
        let requests = (0..n)
            .map(|_| {
                let a = rng.random_range(0..lans.len());
                let b = loop {
                    let b = rng.random_range(0..lans.len());
                    if b != a {
                        break b;
                    }
                };
                let src = lans[a][rng.random_range(0..lans[a].len())];
                let dst = lans[b][rng.random_range(0..lans[b].len())];
                Request { src, dst }
            })
            .collect();
        RequestWorkload { requests }
    }

    /// Evaluate every request against the thresholded graph at `step`.
    pub fn evaluate_at(
        &self,
        sim: &QuantumNetworkSim,
        step: usize,
        metric: RouteMetric,
    ) -> Vec<RequestOutcome> {
        let graph = sim.active_graph_at(step);
        self.requests
            .iter()
            .map(|r| match distribute(&graph, r.src, r.dst, metric) {
                Some(d) => RequestOutcome::Served(d),
                None => RequestOutcome::Unserved,
            })
            .collect()
    }
}

/// Aggregate statistics over a (steps × requests) sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Total requests attempted.
    pub attempted: usize,
    /// Requests served.
    pub served: usize,
    /// Mean end-to-end square-root fidelity over *served* requests
    /// (NaN-free: 0 when nothing was served).
    pub mean_fidelity: f64,
    /// Mean per-link square-root fidelity over served requests (the
    /// accounting the paper's Table III numbers imply; see qntn-net docs).
    pub mean_link_fidelity: f64,
    /// Mean end-to-end transmissivity over served requests.
    pub mean_eta: f64,
    /// Mean hop count over served requests.
    pub mean_hops: f64,
}

impl SweepStats {
    /// Served percentage (the paper's Fig. 7 y-axis).
    pub fn served_percent(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            100.0 * self.served as f64 / self.attempted as f64
        }
    }
}

/// The paper's experiment: at each of `steps`, draw a fresh batch of
/// `requests_per_step` random inter-LAN requests (seeded per step), attempt
/// them on that step's graph, and aggregate. Runs on the window-pruned
/// [`SweepEngine`] (parallel over steps, deterministic for a given `seed`);
/// construct an engine directly via [`SweepEngine::sweep`] to control
/// parallelism or share contact windows.
pub fn sweep(
    sim: &QuantumNetworkSim,
    steps: &[usize],
    requests_per_step: usize,
    seed: u64,
    metric: RouteMetric,
) -> SweepStats {
    SweepEngine::for_steps(sim, steps).sweep(steps, requests_per_step, seed, metric)
}

/// Fold per-step request outcomes into [`SweepStats`], in step order.
pub fn aggregate_outcomes(per_step: &[Vec<RequestOutcome>]) -> SweepStats {
    let mut stats = SweepStats {
        attempted: 0,
        served: 0,
        mean_fidelity: 0.0,
        mean_link_fidelity: 0.0,
        mean_eta: 0.0,
        mean_hops: 0.0,
    };
    let (mut f_sum, mut fl_sum, mut eta_sum, mut hop_sum) = (0.0, 0.0, 0.0, 0.0);
    for outcomes in per_step {
        for o in outcomes {
            stats.attempted += 1;
            if let RequestOutcome::Served(d) = o {
                stats.served += 1;
                f_sum += d.fidelity;
                fl_sum += d.mean_link_fidelity;
                eta_sum += d.eta;
                hop_sum += (d.path.len() - 1) as f64;
            }
        }
    }
    if stats.served > 0 {
        stats.mean_fidelity = f_sum / stats.served as f64;
        stats.mean_link_fidelity = fl_sum / stats.served as f64;
        stats.mean_eta = eta_sum / stats.served as f64;
        stats.mean_hops = hop_sum / stats.served as f64;
    }
    stats
}

/// Evenly spaced sample of `count` step indices across `total` steps —
/// how the experiments pick their "100 time steps of satellite movement".
pub fn sample_steps(total: usize, count: usize) -> Vec<usize> {
    assert!(total > 0 && count > 0);
    if count >= total {
        return (0..total).collect();
    }
    (0..count).map(|i| i * total / count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::linkeval::SimConfig;
    use qntn_geo::Geodetic;

    fn hap_sim() -> QuantumNetworkSim {
        let hosts = vec![
            Host::ground("A-0", 0, Geodetic::from_deg(36.1757, -85.5066, 300.0), 1.2),
            Host::ground("A-1", 0, Geodetic::from_deg(36.1751, -85.5067, 300.0), 1.2),
            Host::ground("B-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground("C-0", 2, Geodetic::from_deg(35.04159, -85.2799, 200.0), 1.2),
            Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3),
        ];
        QuantumNetworkSim::new(hosts, SimConfig::default(), 5, 30.0)
    }

    #[test]
    fn generation_is_deterministic_and_inter_lan() {
        let sim = hap_sim();
        let w1 = RequestWorkload::generate(&sim, 100, 7);
        let w2 = RequestWorkload::generate(&sim, 100, 7);
        assert_eq!(w1.requests, w2.requests);
        let w3 = RequestWorkload::generate(&sim, 100, 8);
        assert_ne!(w1.requests, w3.requests);
        for r in &w1.requests {
            let src_lan = sim.hosts()[r.src].lan().unwrap();
            let dst_lan = sim.hosts()[r.dst].lan().unwrap();
            assert_ne!(
                src_lan, dst_lan,
                "source and destination must differ in LAN"
            );
        }
    }

    #[test]
    fn hap_serves_everything() {
        let sim = hap_sim();
        let stats = sweep(&sim, &[0, 1, 2, 3, 4], 50, 42, RouteMetric::PaperInverseEta);
        assert_eq!(stats.attempted, 250);
        assert_eq!(stats.served, 250);
        assert!((stats.served_percent() - 100.0).abs() < 1e-12);
        // Two FSO hops via the HAP (plus maybe a campus fiber hop).
        assert!(stats.mean_hops >= 2.0);
        assert!(stats.mean_fidelity > 0.9, "{}", stats.mean_fidelity);
    }

    #[test]
    fn outcomes_match_graph_connectivity() {
        let sim = hap_sim();
        let w = RequestWorkload::generate(&sim, 20, 3);
        let outcomes = w.evaluate_at(&sim, 0, RouteMetric::PaperInverseEta);
        let g = sim.active_graph_at(0);
        for (r, o) in w.requests.iter().zip(&outcomes) {
            match o {
                RequestOutcome::Served(d) => {
                    assert!(g.connected(r.src, r.dst));
                    assert_eq!(d.path[0], r.src);
                    assert_eq!(*d.path.last().unwrap(), r.dst);
                }
                RequestOutcome::Unserved => assert!(!g.connected(r.src, r.dst)),
            }
        }
    }

    #[test]
    fn empty_sweep_is_zeroed() {
        let stats = SweepStats {
            attempted: 0,
            served: 0,
            mean_fidelity: 0.0,
            mean_link_fidelity: 0.0,
            mean_eta: 0.0,
            mean_hops: 0.0,
        };
        assert_eq!(stats.served_percent(), 0.0);
    }

    #[test]
    fn sample_steps_spacing() {
        let s = sample_steps(2880, 100);
        assert_eq!(s.len(), 100);
        assert_eq!(s[0], 0);
        assert!(s.windows(2).all(|w| w[1] > w[0]));
        assert!(*s.last().unwrap() < 2880);
        // Short totals return everything.
        assert_eq!(sample_steps(5, 100), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sweep_deterministic_across_runs() {
        let sim = hap_sim();
        let a = sweep(&sim, &[0, 2, 4], 30, 9, RouteMetric::PaperInverseEta);
        let b = sweep(&sim, &[0, 2, 4], 30, 9, RouteMetric::PaperInverseEta);
        assert_eq!(a, b);
    }
}
