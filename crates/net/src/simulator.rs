//! The time-stepped network simulator.
//!
//! Holds the host set, precomputes the static fiber mesh (ground nodes of
//! one LAN are pairwise fibered — at campus scales every fiber link is far
//! above threshold, so the LAN-internal topology choice is immaterial), and
//! materializes the transmissivity graph at any time step. Satellite links
//! connect and disconnect as the constellation moves, exactly as in the
//! paper's Section IV: "connections and disconnections of satellite links
//! are dynamically updated based on this transmissivity threshold".

use crate::faults::CompiledFaults;
use crate::host::{Host, HostKind, LanId};
use crate::linkeval::{LinkEvaluator, SimConfig};
use crate::pipeline::{build_topology, LinkMap, Scene};
use qntn_common::StepId;
use qntn_routing::Graph;

/// A complete simulation instance.
#[derive(Debug, Clone)]
pub struct QuantumNetworkSim {
    hosts: Vec<Host>,
    evaluator: LinkEvaluator,
    fiber_edges: Vec<(usize, usize, f64)>,
    lans: Vec<Vec<usize>>,
    steps: usize,
    step_s: f64,
    /// The unpruned (all-visible) scene the naive `graph_at*` family views
    /// the simulation through. Engines build their own window-pruned scene.
    scene: Scene,
}

impl QuantumNetworkSim {
    /// Assemble a simulator.
    ///
    /// `steps` × `step_s` is the simulated window (the paper: 2880 × 30 s).
    ///
    /// # Panics
    /// Panics when `config` fails [`SimConfig::validate`], or when a
    /// satellite's movement sheet is shorter than `steps` or uses a
    /// different cadence.
    pub fn new(hosts: Vec<Host>, config: SimConfig, steps: usize, step_s: f64) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid SimConfig: {e}");
        }
        assert!(steps > 0, "need at least one time step");
        for h in &hosts {
            if let HostKind::Satellite { ephemeris } = &h.kind {
                assert!(
                    ephemeris.len() >= steps,
                    "{}: movement sheet has {} samples, need {steps}",
                    h.name,
                    ephemeris.len()
                );
                assert!(
                    (ephemeris.step_s() - step_s).abs() < 1e-9,
                    "{}: movement sheet cadence {} != simulator cadence {step_s}",
                    h.name,
                    ephemeris.step_s()
                );
            }
        }
        let evaluator = LinkEvaluator::for_hosts(config, &hosts);

        // LAN membership map.
        let max_lan = hosts
            .iter()
            .filter_map(Host::lan)
            .max()
            .map_or(0, |m| m + 1);
        let mut lans: Vec<Vec<usize>> = vec![Vec::new(); max_lan];
        for (i, h) in hosts.iter().enumerate() {
            if let Some(lan) = h.lan() {
                lans[lan].push(i);
            }
        }

        // Static fiber mesh: all same-LAN ground pairs.
        let mut fiber_edges = Vec::new();
        for members in &lans {
            for (a_idx, &a) in members.iter().enumerate() {
                for &b in &members[a_idx + 1..] {
                    let eta = evaluator.fiber_eta(hosts[a].geodetic_at(0), hosts[b].geodetic_at(0));
                    fiber_edges.push((a, b, eta));
                }
            }
        }

        let scene = Scene::unpruned(&hosts, &evaluator, steps);

        QuantumNetworkSim {
            hosts,
            evaluator,
            fiber_edges,
            lans,
            steps,
            step_s,
            scene,
        }
    }

    /// All hosts (graph node id = index).
    #[inline]
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Number of time steps.
    #[inline]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Step duration, seconds.
    #[inline]
    pub fn step_s(&self) -> f64 {
        self.step_s
    }

    /// Number of LANs.
    #[inline]
    pub fn lan_count(&self) -> usize {
        self.lans.len()
    }

    /// Node ids of one LAN's members.
    #[inline]
    pub fn lan_members(&self, lan: LanId) -> &[usize] {
        &self.lans[lan]
    }

    /// The link evaluator (for budget inspection).
    #[inline]
    pub fn evaluator(&self) -> &LinkEvaluator {
        &self.evaluator
    }

    /// The precomputed static fiber mesh as `(a, b, eta)` triples, in the
    /// insertion order [`QuantumNetworkSim::graph_at`] uses.
    #[inline]
    pub fn fiber_edges(&self) -> &[(usize, usize, f64)] {
        &self.fiber_edges
    }

    /// The unpruned [`Scene`] this simulator views itself through.
    #[inline]
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The full transmissivity graph at a time step (no threshold applied).
    ///
    /// Thin wrapper over the shared Scene → LinkMap → Topology pipeline
    /// ([`crate::pipeline::build_topology_into`]).
    pub fn graph_at(&self, step: usize) -> Graph {
        build_topology(&LinkMap::new(self, &self.scene, None), StepId(step))
    }

    /// The threshold-gated graph at a time step — the network the paper's
    /// routing actually sees.
    pub fn active_graph_at(&self, step: usize) -> Graph {
        self.graph_at(step)
            .thresholded(self.evaluator.config().threshold)
    }

    /// [`QuantumNetworkSim::graph_at`] under a compiled fault mask: edges
    /// with a downed endpoint or a flapped link are withheld, and
    /// atmosphere-crossing FSO links (≥ 1 ground endpoint) are scaled by
    /// the step's weather η factor. Insertion order is identical to the
    /// clean path, and a weather factor of exactly 1.0 is a bitwise no-op
    /// (`x * 1.0 ≡ x` for finite floats), so an identity mask reproduces
    /// [`QuantumNetworkSim::graph_at`] bit for bit.
    ///
    /// This was the naive per-step reference the window-pruned
    /// [`crate::SweepEngine`] used to be differentially tested against;
    /// both now delegate to the same pipeline, so equality holds by
    /// construction (the old differential tests are kept as regression).
    ///
    /// # Panics
    /// Panics when `faults` was compiled for a different host count or
    /// time span.
    pub fn graph_at_with_faults(&self, step: usize, faults: &CompiledFaults) -> Graph {
        build_topology(&LinkMap::new(self, &self.scene, Some(faults)), StepId(step))
    }

    /// [`QuantumNetworkSim::active_graph_at`] under a compiled fault mask.
    pub fn active_graph_at_with_faults(&self, step: usize, faults: &CompiledFaults) -> Graph {
        self.graph_at_with_faults(step, faults)
            .thresholded(self.evaluator.config().threshold)
    }

    /// True when every pair of LANs is connected in `graph` (via any path).
    pub fn lans_interconnected(&self, graph: &Graph) -> bool {
        let labels = graph.components();
        for i in 0..self.lans.len() {
            for j in (i + 1)..self.lans.len() {
                let pair_connected = self.lans[i]
                    .iter()
                    .any(|&a| self.lans[j].iter().any(|&b| labels[a] == labels[b]));
                if !pair_connected {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qntn_geo::{Epoch, Geodetic};
    use qntn_orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};

    /// Two tiny LANs ~120 km apart plus a HAP between them.
    fn hap_sim() -> QuantumNetworkSim {
        let hosts = vec![
            Host::ground("A-0", 0, Geodetic::from_deg(36.1757, -85.5066, 300.0), 1.2),
            Host::ground("A-1", 0, Geodetic::from_deg(36.1751, -85.5067, 300.0), 1.2),
            Host::ground("B-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground("B-1", 1, Geodetic::from_deg(35.918, -84.304, 250.0), 1.2),
            Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3),
        ];
        QuantumNetworkSim::new(hosts, SimConfig::default(), 10, 30.0)
    }

    fn sat_sim(n_sats: usize, steps: usize) -> QuantumNetworkSim {
        let props: Vec<Propagator> = paper_constellation(n_sats)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        let ephs = Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0);
        let mut hosts = vec![
            Host::ground(
                "TTU-0",
                0,
                Geodetic::from_deg(36.1757, -85.5066, 300.0),
                1.2,
            ),
            Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground(
                "EPB-0",
                2,
                Geodetic::from_deg(35.04159, -85.2799, 200.0),
                1.2,
            ),
        ];
        for (i, eph) in ephs.into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    }

    #[test]
    fn fiber_mesh_is_intra_lan_only() {
        let sim = hap_sim();
        let g = sim.graph_at(0);
        assert!(g.has_edge(0, 1), "A-LAN internal fiber");
        assert!(g.has_edge(2, 3), "B-LAN internal fiber");
        assert!(
            !g.has_edge(0, 2),
            "no inter-LAN fiber, no ground-ground FSO"
        );
    }

    #[test]
    fn hap_links_all_ground_nodes() {
        let sim = hap_sim();
        let g = sim.active_graph_at(0);
        for node in 0..4 {
            assert!(g.has_edge(node, 4), "HAP -> node {node} above threshold");
        }
        assert!(sim.lans_interconnected(&g));
    }

    #[test]
    fn hap_connectivity_is_time_invariant() {
        let sim = hap_sim();
        let g0 = sim.active_graph_at(0);
        let g9 = sim.active_graph_at(9);
        assert_eq!(g0.edge_count(), g9.edge_count());
        for step in 0..10 {
            assert!(sim.lans_interconnected(&sim.active_graph_at(step)));
        }
    }

    #[test]
    fn lan_membership() {
        let sim = hap_sim();
        assert_eq!(sim.lan_count(), 2);
        assert_eq!(sim.lan_members(0), &[0, 1]);
        assert_eq!(sim.lan_members(1), &[2, 3]);
    }

    #[test]
    fn satellite_graph_changes_over_time() {
        let sim = sat_sim(12, 120);
        let counts: Vec<usize> = (0..120)
            .step_by(10)
            .map(|t| sim.active_graph_at(t).edge_count())
            .collect();
        // Link census must vary as satellites move (not constant).
        assert!(
            counts.windows(2).any(|w| w[0] != w[1]),
            "satellite links never changed: {counts:?}"
        );
    }

    #[test]
    fn without_satellites_lans_are_disconnected() {
        let sim = sat_sim(6, 2);
        assert_eq!(sim.lan_count(), 3);
        // Strip every edge touching a satellite from the simulator's actual
        // thresholded graph; the remaining terrestrial (fiber-only) network
        // must leave the three LANs mutually disconnected.
        let full = sim.active_graph_at(0);
        let mut terrestrial = Graph::with_nodes(sim.hosts().len());
        for (u, v, eta) in full.edges() {
            if sim.hosts()[u].is_ground() && sim.hosts()[v].is_ground() {
                terrestrial.set_edge(u, v, eta);
            }
        }
        assert!(
            !sim.lans_interconnected(&terrestrial),
            "LANs must not interconnect without the space segment"
        );
    }

    #[test]
    #[should_panic(expected = "invalid SimConfig")]
    fn rejects_invalid_config() {
        let hosts = vec![
            Host::ground("A", 0, Geodetic::from_deg(36.0, -85.0, 300.0), 1.2),
            Host::ground("B", 1, Geodetic::from_deg(35.9, -84.3, 250.0), 1.2),
        ];
        let config = SimConfig {
            threshold: f64::NAN,
            ..SimConfig::default()
        };
        QuantumNetworkSim::new(hosts, config, 10, 30.0);
    }

    #[test]
    #[should_panic(expected = "movement sheet has")]
    fn rejects_short_ephemeris() {
        let props: Vec<Propagator> = paper_constellation(1)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        let eph = Ephemeris::generate(&props[0], Epoch::J2000, 30.0, 300.0); // 10 steps
        let hosts = vec![
            Host::ground("G", 0, Geodetic::from_deg(36.0, -85.0, 300.0), 1.2),
            Host::satellite("S", eph, 1.2),
        ];
        QuantumNetworkSim::new(hosts, SimConfig::default(), 100, 30.0);
    }

    #[test]
    #[should_panic(expected = "step out of range")]
    fn rejects_out_of_range_step() {
        let sim = hap_sim();
        sim.graph_at(10);
    }

    #[test]
    fn identity_faults_reproduce_the_clean_graph_bitwise() {
        let sim = sat_sim(6, 30);
        let identity = CompiledFaults::identity(sim.hosts().len(), sim.steps());
        for step in [0, 7, 29] {
            let clean = sim.graph_at(step);
            let faulted = sim.graph_at_with_faults(step, &identity);
            assert_eq!(clean.edge_count(), faulted.edge_count());
            for ((ua, va, ea), (ub, vb, eb)) in clean.edges().zip(faulted.edges()) {
                assert_eq!((ua, va), (ub, vb));
                assert_eq!(ea.to_bits(), eb.to_bits(), "η differs at ({ua},{va})");
            }
            assert_eq!(
                sim.active_graph_at(step).edge_count(),
                sim.active_graph_at_with_faults(step, &identity)
                    .edge_count()
            );
        }
    }

    #[test]
    fn downed_host_loses_every_incident_edge() {
        let sim = hap_sim();
        let mut faults = CompiledFaults::identity(sim.hosts().len(), sim.steps());
        faults.force_host_down(0, 4); // the HAP
        let g = sim.graph_at_with_faults(0, &faults);
        for node in 0..4 {
            assert!(!g.has_edge(node, 4), "HAP edge to {node} must be gone");
        }
        assert!(g.has_edge(0, 1), "fiber between healthy hosts survives");
        assert!(!sim.lans_interconnected(&g.thresholded(0.7)));
        // The outage is step-local.
        assert!(sim.graph_at_with_faults(1, &faults).has_edge(0, 4));
    }

    #[test]
    #[should_panic(expected = "different host set")]
    fn rejects_mismatched_fault_mask() {
        let sim = hap_sim();
        let faults = CompiledFaults::identity(sim.hosts().len() + 1, sim.steps());
        sim.graph_at_with_faults(0, &faults);
    }
}
