//! Deterministic fault injection for the sweep path.
//!
//! The paper assumes every platform is permanently healthy ("ideal
//! conditions"); production networks are not. [`FaultModel`] schedules four
//! failure classes from one `StdRng` seed — satellite outages,
//! ground-station downtime windows, per-link flaps, and region-wide
//! weather-front η-degradation episodes — and compiles them into a
//! [`CompiledFaults`] per-step mask that both the [`crate::SweepEngine`]
//! and the naive per-step evaluator
//! ([`crate::QuantumNetworkSim::graph_at_with_faults`]) consult, so PR 1's
//! bit-identical engine ≡ naive differential contract extends to faulty
//! runs.
//!
//! **Determinism contract.** A `(FaultModel, simulator shape)` pair fully
//! determines the compiled schedule: same seed, same rates, same host set,
//! same step count → the same mask, bit for bit, on any thread count.
//!
//! **Intensity nesting.** `intensity` scales all failure classes at once,
//! and does so *monotonically by construction*: the model first draws a
//! fixed candidate pool sized for [`FaultModel::INTENSITY_CAP`] (every
//! candidate's start, duration, severity and activation variate are drawn
//! regardless of the configured intensity), then activates exactly the
//! candidates whose activation variate falls below
//! `intensity / INTENSITY_CAP`. Schedules at a lower intensity are
//! therefore literal subsets of schedules at a higher intensity, which
//! makes the served-request count provably monotone non-increasing in
//! intensity (edge removal and η-multiplication by a factor ≤ 1 are both
//! monotone through the threshold gate). `intensity == 0` activates
//! nothing: the compiled mask is the identity and every consumer is
//! byte-identical to the fault-free path.

use crate::simulator::QuantumNetworkSim;
use qntn_channel::weather::episode_eta_factor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Wavelength the weather-front penalty is evaluated at (the network's
/// 810 nm single-photon band).
const WEATHER_WAVELENGTH_M: f64 = 810e-9;

/// Effective low-troposphere path a weather front adds extinction over.
/// Fronts are shallow layers; 1.5 km of excess path spans factors from
/// ≈0.9 (clear→20 km visibility) down to ≈0.1 (mist), which brackets the
/// regimes of interest around the 0.7 threshold.
const WEATHER_EFFECTIVE_PATH_M: f64 = 1_500.0;

/// Per-category stream salts (decorrelate the four schedules drawn from
/// one seed).
const SALT_SAT: u64 = 0x5a5a_0000_0000_0001;
const SALT_GROUND: u64 = 0x5a5a_0000_0000_0002;
const SALT_FLAP: u64 = 0x5a5a_0000_0000_0003;
const SALT_WEATHER: u64 = 0x5a5a_0000_0000_0004;

/// A seeded, rate-parameterized fault schedule generator. See the module
/// docs for the determinism and monotonicity contracts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Master seed; all four failure classes derive their streams from it.
    pub seed: u64,
    /// Global severity multiplier in `[0, INTENSITY_CAP]`. 0 = no faults
    /// (identity mask); 1 = the nominal per-day rates below.
    pub intensity: f64,
    /// Expected outage episodes per satellite per day (at intensity 1).
    pub sat_outages_per_day: f64,
    /// Mean satellite outage duration, steps.
    pub sat_outage_mean_steps: usize,
    /// Expected downtime windows per ground station per day.
    pub ground_outages_per_day: f64,
    /// Mean ground-station downtime duration, steps.
    pub ground_outage_mean_steps: usize,
    /// Expected flap episodes per (ground, airborne) pair per day.
    pub link_flaps_per_day: f64,
    /// Mean link-flap duration, steps.
    pub link_flap_mean_steps: usize,
    /// Expected region-wide weather fronts per day.
    pub weather_fronts_per_day: f64,
    /// Mean weather-front duration, steps.
    pub weather_front_mean_steps: usize,
}

impl FaultModel {
    /// Upper bound on [`FaultModel::intensity`]; the candidate pools are
    /// sized for this cap so that intensity scaling stays a subset
    /// relation (see module docs).
    pub const INTENSITY_CAP: f64 = 8.0;

    /// The identity model: zero intensity, nothing ever fails. Compiles to
    /// a mask under which every consumer is byte-identical to the
    /// fault-free path.
    pub fn none() -> FaultModel {
        FaultModel::standard(0).with_intensity(0.0)
    }

    /// Nominal rates: a satellite loses ~1 h every fourth day, a ground
    /// station ~30 min every week, a ground-air link flaps for ~2 min a
    /// few times a week, and 1–2 weather fronts of ~2 h cross the region
    /// per day.
    pub fn standard(seed: u64) -> FaultModel {
        FaultModel {
            seed,
            intensity: 1.0,
            sat_outages_per_day: 0.25,
            sat_outage_mean_steps: 120,
            ground_outages_per_day: 0.15,
            ground_outage_mean_steps: 60,
            link_flaps_per_day: 0.3,
            link_flap_mean_steps: 4,
            weather_fronts_per_day: 1.5,
            weather_front_mean_steps: 240,
        }
    }

    /// Set the global intensity (clamped to `[0, INTENSITY_CAP]`).
    pub fn with_intensity(mut self, intensity: f64) -> FaultModel {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "intensity must be finite and non-negative"
        );
        self.intensity = intensity.min(Self::INTENSITY_CAP);
        self
    }

    /// Compile the schedule for one simulator into a per-step mask.
    ///
    /// The expensive part is proportional to candidate-pool size × episode
    /// length, independent of how the mask is later consumed; compile once
    /// and share (the mask is immutable).
    pub fn compile(&self, sim: &QuantumNetworkSim) -> CompiledFaults {
        let n_hosts = sim.hosts().len();
        let n_steps = sim.steps();
        let days = n_steps as f64 * sim.step_s() / 86_400.0;
        let p_active = (self.intensity / Self::INTENSITY_CAP).clamp(0.0, 1.0);
        let words = n_hosts.div_ceil(64);
        let mut down = vec![0u64; n_steps * words];
        let mut flaps: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_steps];
        let mut eta = vec![1.0f64; n_steps];

        let mut mark_down = |host: usize, start: usize, len: usize| {
            for step in start..(start + len).min(n_steps) {
                down[step * words + host / 64] |= 1u64 << (host % 64);
            }
        };

        // Platform outages: one candidate pool per host, all variates drawn
        // regardless of intensity (the nesting invariant).
        let mut sat_rng = StdRng::seed_from_u64(self.seed ^ SALT_SAT);
        let mut ground_rng = StdRng::seed_from_u64(self.seed ^ SALT_GROUND);
        for (i, host) in sim.hosts().iter().enumerate() {
            let (rng, rate, mean) = if host.is_ground() {
                (
                    &mut ground_rng,
                    self.ground_outages_per_day,
                    self.ground_outage_mean_steps,
                )
            } else {
                // Satellites and HAPs share the platform-outage class.
                (
                    &mut sat_rng,
                    self.sat_outages_per_day,
                    self.sat_outage_mean_steps,
                )
            };
            for (start, len) in episodes(rng, rate, days, mean, n_steps, p_active) {
                mark_down(i, start, len);
            }
        }

        // Link flaps: every (ground, airborne) pair, ascending (a, b) —
        // the churny FSO access links (ISLs are never near threshold).
        let mut flap_rng = StdRng::seed_from_u64(self.seed ^ SALT_FLAP);
        for a in 0..n_hosts {
            for b in (a + 1)..n_hosts {
                let (ha, hb) = (&sim.hosts()[a], &sim.hosts()[b]);
                if ha.is_ground() == hb.is_ground() {
                    continue;
                }
                for (start, len) in episodes(
                    &mut flap_rng,
                    self.link_flaps_per_day,
                    days,
                    self.link_flap_mean_steps,
                    n_steps,
                    p_active,
                ) {
                    let end = (start + len).min(n_steps);
                    for list in &mut flaps[start..end] {
                        list.push((a as u32, b as u32));
                    }
                }
            }
        }
        for list in &mut flaps {
            list.sort_unstable();
            list.dedup();
        }

        // Weather fronts: region-wide η multipliers on atmosphere-crossing
        // links. Severity (a visibility draw, log-uniform from mist to
        // clear) is drawn per candidate regardless of intensity.
        let mut weather_rng = StdRng::seed_from_u64(self.seed ^ SALT_WEATHER);
        let n_cand = candidate_count(self.weather_fronts_per_day, days);
        for _ in 0..n_cand {
            let u: f64 = weather_rng.random();
            let start = weather_rng.random_range(0..n_steps);
            let len = 1 + weather_rng.random_range(0..(2 * self.weather_front_mean_steps).max(1));
            let visibility_m = (weather_rng.random_range(2_000.0f64.ln()..20_000.0f64.ln())).exp();
            if u < p_active {
                let factor = episode_eta_factor(
                    visibility_m,
                    WEATHER_WAVELENGTH_M,
                    WEATHER_EFFECTIVE_PATH_M,
                );
                for step_eta in eta.iter_mut().take((start + len).min(n_steps)).skip(start) {
                    *step_eta *= factor;
                }
            }
        }

        let identity = down.iter().all(|&w| w == 0)
            && flaps.iter().all(Vec::is_empty)
            && eta.iter().all(|&f| f == 1.0);
        CompiledFaults {
            n_hosts,
            n_steps,
            words,
            down,
            flaps,
            eta,
            identity,
        }
    }
}

/// Number of candidates pooled so that the full `INTENSITY_CAP` keeps the
/// configured per-day rate.
fn candidate_count(rate_per_day: f64, days: f64) -> usize {
    if rate_per_day <= 0.0 {
        return 0;
    }
    (rate_per_day * days * FaultModel::INTENSITY_CAP).ceil() as usize
}

/// Draw one category's candidate episodes for one subject. Every variate
/// is drawn for every candidate — activation must not change the stream,
/// or lower intensities would stop being subsets of higher ones.
fn episodes(
    rng: &mut StdRng,
    rate_per_day: f64,
    days: f64,
    mean_steps: usize,
    n_steps: usize,
    p_active: f64,
) -> Vec<(usize, usize)> {
    let n_cand = candidate_count(rate_per_day, days);
    let mut out = Vec::new();
    for _ in 0..n_cand {
        let u: f64 = rng.random();
        let start = rng.random_range(0..n_steps);
        let len = 1 + rng.random_range(0..(2 * mean_steps).max(1));
        if u < p_active {
            out.push((start, len));
        }
    }
    out
}

/// The compiled per-step fault mask: which hosts are down, which links are
/// flapped, and the weather η multiplier, at every step. Immutable after
/// compilation; cheap to query from any thread.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFaults {
    n_hosts: usize,
    n_steps: usize,
    words: usize,
    /// `words` bitset words per step; bit h set = host h down.
    down: Vec<u64>,
    /// Per-step sorted `(a, b)` pairs (a < b) whose link is flapped.
    flaps: Vec<Vec<(u32, u32)>>,
    /// Per-step multiplicative η factor on atmosphere-crossing FSO links.
    eta: Vec<f64>,
    identity: bool,
}

impl CompiledFaults {
    /// A mask under which nothing is ever faulted.
    pub fn identity(n_hosts: usize, n_steps: usize) -> CompiledFaults {
        let words = n_hosts.div_ceil(64);
        CompiledFaults {
            n_hosts,
            n_steps,
            words,
            down: vec![0u64; n_steps * words],
            flaps: vec![Vec::new(); n_steps],
            eta: vec![1.0; n_steps],
            identity: true,
        }
    }

    /// Host count the mask was compiled for.
    #[inline]
    pub fn hosts(&self) -> usize {
        self.n_hosts
    }

    /// Step count the mask was compiled for.
    #[inline]
    pub fn steps(&self) -> usize {
        self.n_steps
    }

    /// Does this mask fault nothing at all? (Zero intensity, or a non-zero
    /// intensity that happened to activate no candidate.)
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Is host `h` up (not in an outage window) at `step`?
    #[inline]
    pub fn host_up(&self, step: usize, h: usize) -> bool {
        (self.down[step * self.words + h / 64] >> (h % 64)) & 1 == 0
    }

    /// Is the (a, b) link itself flapped at `step`? (Host outages are
    /// accounted separately; see [`CompiledFaults::edge_up`].)
    #[inline]
    pub fn link_flapped(&self, step: usize, a: usize, b: usize) -> bool {
        let key = if a <= b {
            (a as u32, b as u32)
        } else {
            (b as u32, a as u32)
        };
        self.flaps[step].binary_search(&key).is_ok()
    }

    /// Can the (a, b) edge exist at `step`? Both endpoints up and the link
    /// not flapped. A downed host loses *all* incident edges, fiber
    /// included.
    #[inline]
    pub fn edge_up(&self, step: usize, a: usize, b: usize) -> bool {
        self.host_up(step, a) && self.host_up(step, b) && !self.link_flapped(step, a, b)
    }

    /// The weather multiplier on atmosphere-crossing (ground-endpoint) FSO
    /// links at `step`; 1.0 when no front is active.
    #[inline]
    pub fn eta_factor(&self, step: usize) -> f64 {
        self.eta[step]
    }

    /// Hosts in an outage window at `step`.
    #[inline]
    pub fn hosts_down_at(&self, step: usize) -> usize {
        self.down[step * self.words..(step + 1) * self.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// The per-step health signal in `[0, 1]`: the up-host fraction scaled
    /// by the weather η factor (`1.0` = fully healthy). Because outage
    /// windows and weather fronts nest across intensities (see the module
    /// docs), health is monotone non-increasing in fault intensity at
    /// every step — the property the serve layer's degradation ladder
    /// leans on.
    pub fn step_health(&self, step: usize) -> f64 {
        let up = 1.0 - self.hosts_down_at(step) as f64 / self.n_hosts.max(1) as f64;
        up * self.eta[step]
    }

    /// Total (host, step) downtime cells — a load indicator for reports.
    pub fn host_down_steps(&self) -> usize {
        self.down.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total (pair, step) flap cells.
    pub fn flap_entries(&self) -> usize {
        self.flaps.iter().map(Vec::len).sum()
    }

    /// The worst per-step weather factor over the window.
    pub fn min_eta_factor(&self) -> f64 {
        self.eta.iter().copied().fold(1.0, f64::min)
    }

    /// Test support: force `host` down at `step` in a hand-crafted mask.
    #[cfg(test)]
    pub(crate) fn force_host_down(&mut self, step: usize, host: usize) {
        self.down[step * self.words + host / 64] |= 1u64 << (host % 64);
        self.identity = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::linkeval::SimConfig;
    use qntn_geo::{Epoch, Geodetic};
    use qntn_orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};

    fn sim(n_sats: usize, steps: usize) -> QuantumNetworkSim {
        let props: Vec<Propagator> = paper_constellation(n_sats)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        let ephs = Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0);
        let mut hosts = vec![
            Host::ground(
                "TTU-0",
                0,
                Geodetic::from_deg(36.1757, -85.5066, 300.0),
                1.2,
            ),
            Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground(
                "EPB-0",
                2,
                Geodetic::from_deg(35.04159, -85.2799, 200.0),
                1.2,
            ),
        ];
        for (i, eph) in ephs.into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    }

    #[test]
    fn compile_is_deterministic() {
        let s = sim(4, 200);
        let model = FaultModel::standard(42).with_intensity(2.0);
        assert_eq!(model.compile(&s), model.compile(&s));
        let other = FaultModel::standard(43).with_intensity(2.0);
        assert_ne!(model.compile(&s), other.compile(&s));
    }

    #[test]
    fn zero_intensity_compiles_to_identity() {
        let s = sim(3, 100);
        for seed in [0, 1, 987654321] {
            let f = FaultModel::standard(seed).with_intensity(0.0).compile(&s);
            assert!(f.is_identity());
            assert_eq!(f.host_down_steps(), 0);
            assert_eq!(f.flap_entries(), 0);
            assert_eq!(f.min_eta_factor(), 1.0);
            assert_eq!(f, CompiledFaults::identity(s.hosts().len(), s.steps()));
        }
        assert!(FaultModel::none().compile(&s).is_identity());
    }

    #[test]
    fn higher_intensity_schedules_contain_lower_ones() {
        // The monotonicity invariant: every fault active at intensity x is
        // active at intensity y >= x, and weather is pointwise harsher.
        let s = sim(5, 400);
        for seed in [7, 2024, 31337] {
            let lo = FaultModel::standard(seed).with_intensity(0.7).compile(&s);
            let hi = FaultModel::standard(seed).with_intensity(3.5).compile(&s);
            for step in 0..s.steps() {
                for h in 0..s.hosts().len() {
                    if !lo.host_up(step, h) {
                        assert!(
                            !hi.host_up(step, h),
                            "host {h} down set not nested at {step}"
                        );
                    }
                }
                for &(a, b) in &lo.flaps[step] {
                    assert!(
                        hi.link_flapped(step, a as usize, b as usize),
                        "flap set not nested at {step}"
                    );
                }
                assert!(
                    hi.eta_factor(step) <= lo.eta_factor(step) + 1e-15,
                    "weather not pointwise harsher at {step}"
                );
            }
        }
    }

    #[test]
    fn nominal_intensity_produces_faults() {
        let s = sim(6, 2880);
        let f = FaultModel::standard(11).compile(&s);
        assert!(!f.is_identity());
        assert!(f.host_down_steps() > 0, "expected some platform downtime");
        assert!(f.min_eta_factor() < 1.0, "expected at least one front");
        assert!(f.min_eta_factor() > 0.0);
    }

    #[test]
    fn edge_up_combines_hosts_and_flaps() {
        let s = sim(2, 50);
        let mut f = CompiledFaults::identity(s.hosts().len(), s.steps());
        // Hand-craft: host 0 down at step 3; link (1, 4) flapped at step 5.
        f.down[3 * f.words] |= 1;
        f.flaps[5].push((1, 4));
        f.identity = false;
        assert!(!f.host_up(3, 0));
        assert!(f.host_up(3, 1));
        assert!(!f.edge_up(3, 0, 1), "downed endpoint kills the edge");
        assert!(!f.edge_up(3, 1, 0), "order-insensitive");
        assert!(f.edge_up(4, 0, 1));
        assert!(!f.edge_up(5, 4, 1), "flap kills exactly that pair");
        assert!(f.edge_up(5, 1, 3));
    }

    #[test]
    fn intensity_is_clamped_to_cap() {
        let m = FaultModel::standard(1).with_intensity(1e6);
        assert_eq!(m.intensity, FaultModel::INTENSITY_CAP);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_intensity() {
        let _ = FaultModel::standard(1).with_intensity(-0.5);
    }

    #[test]
    fn weather_factors_are_physical() {
        let s = sim(3, 2880);
        let f = FaultModel::standard(5)
            .with_intensity(FaultModel::INTENSITY_CAP)
            .compile(&s);
        for step in 0..s.steps() {
            let w = f.eta_factor(step);
            assert!((0.0..=1.0).contains(&w), "step {step}: {w}");
        }
        // At the cap every candidate front is active; the worst step should
        // be well below clear-sky.
        assert!(f.min_eta_factor() < 0.9, "{}", f.min_eta_factor());
    }

    #[test]
    fn more_than_64_hosts_are_supported() {
        // The bitset is multi-word: 3 ground + 70 satellites = 73 hosts.
        let s = sim(70, 40);
        let f = FaultModel::standard(9)
            .with_intensity(FaultModel::INTENSITY_CAP)
            .compile(&s);
        assert_eq!(f.hosts(), 73);
        // Some host above bit 63 must go down at the cap with 70 sats.
        let high_host_down = (0..s.steps()).any(|t| (64..73).any(|h| !f.host_up(t, h)));
        assert!(high_host_down, "no outage landed in the second bitset word");
    }
}
