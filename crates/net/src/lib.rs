//! # qntn-net — the quantum network simulator
//!
//! The discrete-time simulator that replaces the paper's upgraded QuNetSim:
//!
//! - [`host::Host`] — network nodes: ground stations (members of one of the
//!   three LANs), satellites (driven by an [`qntn_orbit::Ephemeris`]
//!   movement sheet, exactly as the paper replayed STK output), and HAPs
//!   (hovering at a fixed geodetic position).
//! - [`linkeval::LinkEvaluator`] — turns pairwise geometry into
//!   transmissivities each time step: static fiber for intra-LAN pairs,
//!   FSO for satellite–ground / HAP–ground / satellite–satellite pairs,
//!   with a cached Rytov table so a full day × constellation sweep stays
//!   fast.
//! - [`simulator::QuantumNetworkSim`] — assembles the time-varying
//!   transmissivity graph and applies the paper's threshold gating.
//! - [`coverage`] — the coverage period T_c and percentage P (paper
//!   Eq. 6–7): the fraction of the day during which all three LANs are
//!   pairwise interconnected.
//! - [`requests`] — random inter-LAN entanglement request workloads and the
//!   served-percentage statistic (paper Fig. 7).
//! - [`entanglement`] — end-to-end distribution: route (paper's
//!   Bellman–Ford), compose the per-link amplitude-damping channels
//!   (η multiplies), damp one half of `|Φ+⟩`, report fidelity (paper
//!   Fig. 8; square-root convention, see `qntn-quantum`).
//! - [`faults`] — seeded deterministic fault injection (platform outages,
//!   link flaps, weather fronts) compiled into a per-step mask both the
//!   engine and the naive evaluator consult, plus retry-with-backoff
//!   request semantics in [`requests`].
//! - [`pipeline`] — the single-source topology pipeline
//!   (Scene → LinkMap → Topology): the one code path that turns positions
//!   and η into a per-step graph, shared by the naive `graph_at*` family,
//!   the [`sweep_engine::SweepEngine`], and every fault-masked variant.
//! - [`runtime`] — the resilient execution runtime layered on the engine:
//!   checkpoint/resume (interrupted-then-resumed ≡ uninterrupted,
//!   bit-identical), cooperative cancellation and deadlines, and per-chunk
//!   panic isolation with a fail-fast vs. quarantine policy knob.
//!
//! Determinism: given one seed, every statistic is bit-reproducible; the
//! rayon-parallel sweeps chunk by time step and merge in index order.

pub mod capacity;
pub mod coverage;
pub mod entanglement;
pub mod events;
pub mod faults;
pub mod heralded;
pub mod host;
pub mod linkeval;
pub mod pipeline;
pub mod requests;
pub mod runtime;
pub mod simulator;
pub mod snapshot;
pub mod sweep_engine;

pub use capacity::{serve_with_capacity, BlockReason, CapacityModel};
pub use coverage::{CoverageAnalyzer, CoverageReport};
pub use entanglement::{
    distribute, distribute_time_expanded, distribute_with, realize_with_hold, Distribution,
};
pub use events::{LinkEvent, LinkStats, LinkTimeline};
pub use faults::{CompiledFaults, FaultModel};
pub use heralded::{Delivery, HeraldedLink, HeraldedStats};
pub use host::{Host, HostKind, LanId};
pub use linkeval::{BatchOutcome, LinkEvaluator, SimConfig};
pub use pipeline::{
    build_time_expanded_into, build_topology, build_topology_into, build_topology_into_with,
    host_hold_factors, Candidate, ContactWindows, LinkMap, Scene, StepCursor,
};
pub use requests::{
    Request, RequestOutcome, RequestWorkload, RetryOutcome, RetryPolicy, RetryStats,
};
pub use runtime::{run_steps, ChunkPanicReport, PanicPolicy, RunPolicy, RunReport};
pub use simulator::QuantumNetworkSim;
pub use snapshot::{LinkClass, Snapshot};
pub use sweep_engine::{SweepEngine, SweepScratch};
