//! Heralded entanglement generation with quantum memories — the link-layer
//! view the paper abstracts away.
//!
//! The paper assumes a pair is "distributed" the instant a route exists.
//! Physically, a relay node (satellite or HAP) generates a pair with each
//! ground station by repeated heralded attempts: each attempt takes one
//! slot of duration `1/attempt_rate` and succeeds with probability η.
//! The *first* successful link's half then sits in a quantum memory,
//! decohering as `AD(e^{−t/T1})`, until the second link also succeeds and
//! the relay can swap. This module Monte-Carlos that process:
//!
//! - waiting-time statistics (geometric per link, max of two for the swap);
//! - the memory-decay penalty folded into the delivered fidelity via the
//!   exact density-matrix pipeline ([`qntn_quantum::protocols`]).
//!
//! Analytic anchors (pinned by tests): the mean attempt count of one link
//! is `1/η`; the mean of the max of two geometric variables is
//! `1/p₁ + 1/p₂ − 1/(p₁+p₂−p₁p₂)`.

use qntn_quantum::channels::{amplitude_damping, amplitude_damping_after};
use qntn_quantum::fidelity::sqrt_fidelity_to_pure;
use qntn_quantum::protocols::entanglement_swap;
use qntn_quantum::state::bell_phi_plus;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Physical-layer parameters of one relay (two-link) connection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeraldedLink {
    /// Transmissivity of the first (e.g. relay→source-city) link.
    pub eta_a: f64,
    /// Transmissivity of the second link.
    pub eta_b: f64,
    /// Heralded attempt rate per link, Hz.
    pub attempt_rate_hz: f64,
    /// Memory relaxation time T1, seconds.
    pub memory_t1_s: f64,
}

/// One Monte-Carlo delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// Time until both links had succeeded (the swap instant), seconds.
    pub latency_s: f64,
    /// Storage time the earlier pair spent in memory, seconds.
    pub storage_s: f64,
    /// Delivered end-to-end fidelity (sqrt convention), memory decay
    /// included.
    pub fidelity: f64,
}

/// Aggregate over a batch of deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeraldedStats {
    pub trials: usize,
    pub mean_latency_s: f64,
    pub mean_storage_s: f64,
    pub mean_fidelity: f64,
    /// Fidelity that would be reported with the paper's instantaneous
    /// assumption (no memory decay) — the comparison baseline.
    pub ideal_fidelity: f64,
}

impl HeraldedLink {
    /// Build the link-layer view of an already-routed [`Distribution`](crate::entanglement::Distribution):
    /// the relay's two FSO hops become the heralded links. Paths with more
    /// hops fold the extra (fiber) hops into the two FSO legs by splitting
    /// the η product around the midpoint relay.
    pub fn from_distribution(
        d: &crate::entanglement::Distribution,
        attempt_rate_hz: f64,
        memory_t1_s: f64,
    ) -> HeraldedLink {
        // Split the end-to-end product evenly when the hop structure isn't
        // exactly two links; exact for the canonical 2-hop relay.
        let eta_half = d.eta.max(1e-12).sqrt();
        HeraldedLink {
            eta_a: eta_half,
            eta_b: eta_half,
            attempt_rate_hz,
            memory_t1_s,
        }
    }

    /// Number of attempts until one link succeeds (geometric, ≥ 1).
    fn attempts_until_success(rng: &mut StdRng, p: f64) -> u64 {
        debug_assert!(p > 0.0 && p <= 1.0);
        // Inverse-CDF sampling keeps this O(1) even for tiny p.
        let u: f64 = rng.random_range(0.0..1.0);
        if p >= 1.0 {
            return 1;
        }
        (u.ln() / (1.0 - p).ln()).floor() as u64 + 1
    }

    /// Sample just the timing of one delivery: `(t_a, t_b)` in seconds.
    /// Cheap (no density matrices); [`Self::deliver`] builds on it.
    pub fn sample_times(&self, rng: &mut StdRng) -> (f64, f64) {
        assert!(
            self.eta_a > 0.0 && self.eta_b > 0.0,
            "links must have eta > 0"
        );
        let slot = 1.0 / self.attempt_rate_hz;
        let n_a = Self::attempts_until_success(rng, self.eta_a);
        let n_b = Self::attempts_until_success(rng, self.eta_b);
        (n_a as f64 * slot, n_b as f64 * slot)
    }

    /// Simulate one delivery.
    pub fn deliver(&self, rng: &mut StdRng) -> Delivery {
        let (t_a, t_b) = self.sample_times(rng);
        let latency = t_a.max(t_b);
        let storage = (t_a - t_b).abs();

        // The earlier pair's stored half decoheres for `storage` seconds.
        let bell = bell_phi_plus().density();
        let raw = |eta: f64| amplitude_damping(eta).on_qubit(1, 2).apply(&bell);
        let (early_eta, late_eta) = if t_a <= t_b {
            (self.eta_a, self.eta_b)
        } else {
            (self.eta_b, self.eta_a)
        };
        let mut early = raw(early_eta);
        early = amplitude_damping_after(storage, self.memory_t1_s)
            .on_qubit(1, 2)
            .apply(&early);
        let late = raw(late_eta);
        let swapped = entanglement_swap(&early, &late);
        Delivery {
            latency_s: latency,
            storage_s: storage,
            fidelity: sqrt_fidelity_to_pure(&swapped, &bell_phi_plus()),
        }
    }

    /// The fidelity under the paper's instantaneous assumption (no memory).
    pub fn ideal_fidelity(&self) -> f64 {
        let bell = bell_phi_plus().density();
        let a = amplitude_damping(self.eta_a).on_qubit(1, 2).apply(&bell);
        let b = amplitude_damping(self.eta_b).on_qubit(1, 2).apply(&bell);
        sqrt_fidelity_to_pure(&entanglement_swap(&a, &b), &bell_phi_plus())
    }

    /// Monte-Carlo a batch (deterministic for a fixed seed).
    pub fn simulate(&self, trials: usize, seed: u64) -> HeraldedStats {
        assert!(trials > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut lat, mut sto, mut fid) = (0.0, 0.0, 0.0);
        for _ in 0..trials {
            let d = self.deliver(&mut rng);
            lat += d.latency_s;
            sto += d.storage_s;
            fid += d.fidelity;
        }
        let n = trials as f64;
        HeraldedStats {
            trials,
            mean_latency_s: lat / n,
            mean_storage_s: sto / n,
            mean_fidelity: fid / n,
            ideal_fidelity: self.ideal_fidelity(),
        }
    }

    /// Analytic mean latency in slots: `E[max(G_a, G_b)]` for geometric
    /// variables with success probabilities η_a and η_b.
    pub fn analytic_mean_latency_slots(&self) -> f64 {
        let (pa, pb) = (self.eta_a, self.eta_b);
        1.0 / pa + 1.0 / pb - 1.0 / (pa + pb - pa * pb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(eta_a: f64, eta_b: f64) -> HeraldedLink {
        HeraldedLink {
            eta_a,
            eta_b,
            attempt_rate_hz: 1000.0,
            memory_t1_s: 0.1,
        }
    }

    #[test]
    fn perfect_links_deliver_in_one_slot() {
        let stats = link(1.0, 1.0).simulate(100, 1);
        assert!((stats.mean_latency_s - 0.001).abs() < 1e-12);
        assert_eq!(stats.mean_storage_s, 0.0);
        assert!((stats.mean_fidelity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_latency_matches_analytic_max_of_geometrics() {
        // Timing-only sampling (no density matrices) for tight statistics.
        for (ea, eb) in [(0.9, 0.9), (0.8, 0.5), (0.3, 0.7)] {
            let l = link(ea, eb);
            let mut rng = StdRng::seed_from_u64(42);
            let n = 60_000;
            let mean: f64 = (0..n)
                .map(|_| {
                    let (ta, tb) = l.sample_times(&mut rng);
                    ta.max(tb)
                })
                .sum::<f64>()
                / f64::from(n);
            let expect_slots = l.analytic_mean_latency_slots();
            let got_slots = mean * l.attempt_rate_hz;
            assert!(
                (got_slots - expect_slots).abs() / expect_slots < 0.05,
                "({ea},{eb}): {got_slots} vs {expect_slots}"
            );
        }
    }

    #[test]
    fn single_link_mean_attempts_is_inverse_eta() {
        // Symmetric η: E[G] = 1/η per link; check via a degenerate pair
        // where one link always succeeds immediately.
        let l = link(0.25, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 60_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let (ta, tb) = l.sample_times(&mut rng);
                ta.max(tb)
            })
            .sum::<f64>()
            / f64::from(n);
        let slots = mean * l.attempt_rate_hz;
        assert!((slots - 4.0).abs() < 0.2, "{slots}");
    }

    #[test]
    fn memory_decay_costs_fidelity() {
        // Slow attempts + short T1: the waiting pair decoheres.
        let slow = HeraldedLink {
            eta_a: 0.3,
            eta_b: 0.3,
            attempt_rate_hz: 10.0,
            memory_t1_s: 0.2,
        };
        let stats = slow.simulate(400, 9);
        assert!(
            stats.mean_fidelity < stats.ideal_fidelity - 0.01,
            "memory decay should bite: {} vs ideal {}",
            stats.mean_fidelity,
            stats.ideal_fidelity
        );
        // Long memories recover the ideal value.
        let good = HeraldedLink {
            memory_t1_s: 1e6,
            ..slow
        };
        let stats = good.simulate(400, 9);
        assert!((stats.mean_fidelity - stats.ideal_fidelity).abs() < 1e-6);
    }

    #[test]
    fn ideal_fidelity_matches_direct_swap() {
        // Cross-check against the protocols module: swap of AD pairs.
        let l = link(0.8, 0.6);
        let direct = qntn_quantum::protocols::swap_damped_bell_pairs(0.8, 0.6);
        let f = sqrt_fidelity_to_pure(&direct, &bell_phi_plus());
        assert!((l.ideal_fidelity() - f).abs() < 1e-12);
    }

    #[test]
    fn from_distribution_splits_eta() {
        let d = crate::entanglement::Distribution {
            path: vec![0, 1, 2],
            eta: 0.64,
            fidelity: 0.9,
            fidelity_jozsa: 0.81,
            mean_link_fidelity: 0.95,
        };
        let l = HeraldedLink::from_distribution(&d, 1000.0, 0.1);
        assert!((l.eta_a - 0.8).abs() < 1e-12);
        assert!((l.eta_b - 0.8).abs() < 1e-12);
        // Ideal fidelity consistent with swapping the two halves.
        assert!(l.ideal_fidelity() > 0.85);
    }

    #[test]
    fn deterministic_for_seed() {
        let l = link(0.5, 0.7);
        assert_eq!(l.simulate(150, 3), l.simulate(150, 3));
        assert_ne!(l.simulate(150, 3), l.simulate(150, 4));
    }

    #[test]
    fn latency_grows_as_eta_falls() {
        let fast = link(0.9, 0.9).simulate(300, 5);
        let slow = link(0.2, 0.2).simulate(300, 5);
        assert!(slow.mean_latency_s > fast.mean_latency_s * 3.0);
    }

    #[test]
    #[should_panic(expected = "eta > 0")]
    fn rejects_dead_link() {
        let mut rng = StdRng::seed_from_u64(0);
        link(0.0, 0.5).sample_times(&mut rng);
    }
}
