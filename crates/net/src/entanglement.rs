//! End-to-end entanglement distribution.
//!
//! Given the thresholded graph at a time step, a request is served by:
//!
//! 1. routing with the paper's Bellman–Ford metric (`1/(η+ε)`);
//! 2. composing the per-link amplitude-damping channels — AD composes as
//!    `AD(η₁)∘AD(η₂) = AD(η₁·η₂)`, so the end-to-end channel is AD of the
//!    path's transmissivity product (proved in `qntn-quantum` tests);
//! 3. sending one half of `|Φ+⟩` through that channel and measuring the
//!    entanglement fidelity against the ideal Bell state.
//!
//! The classic edge-relaxation Bellman–Ford is used per request (it is
//! provably equivalent to the paper's distance-vector Algorithm 1 — see
//! `qntn-routing::table` — and much cheaper per (source, destination)
//! query); an integration test cross-checks the two on live simulator
//! graphs.

use qntn_quantum::channels::amplitude_damping;
use qntn_quantum::fidelity::{fidelity_to_pure, sqrt_fidelity_to_pure};
use qntn_quantum::state::bell_phi_plus;
use qntn_routing::{
    bellman_ford_into, extract_time_route, time_sssp_into, Graph, NodeId, Route, RouteMetric,
    SsspTable, TimeExpandedGraph, TimeRoute, TimeTable,
};
use serde::{Deserialize, Serialize};

/// Outcome of one successful entanglement distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// The routed node path.
    pub path: Vec<NodeId>,
    /// End-to-end transmissivity (product over links).
    pub eta: f64,
    /// End-to-end square-root entanglement fidelity — one Bell half damped
    /// by AD(Πη) (see `qntn-quantum` crate docs for the convention).
    pub fidelity: f64,
    /// Jozsa-convention end-to-end fidelity (the square), for reference.
    pub fidelity_jozsa: f64,
    /// Mean **per-link** square-root fidelity along the path: average of
    /// F(η_link) over hops. This is the accounting under which the paper's
    /// joint numbers (55 % coverage *and* 0.96 space-ground fidelity) are
    /// reachable; the end-to-end product convention cannot produce both.
    /// Reported alongside the end-to-end value everywhere.
    pub mean_link_fidelity: f64,
}

/// Attempt to distribute a Bell pair from `src` to `dst` over `graph`
/// (already threshold-gated). Returns `None` when no route exists.
pub fn distribute(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    metric: RouteMetric,
) -> Option<Distribution> {
    distribute_with(graph, src, dst, metric, &mut SsspTable::default())
}

/// [`distribute`] with caller-provided routing scratch — the sweep engine's
/// per-worker reuse path. Identical result, no per-request table allocation.
pub fn distribute_with(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    metric: RouteMetric,
    scratch: &mut SsspTable,
) -> Option<Distribution> {
    let route = bellman_ford_into(graph, src, dst, metric, scratch)?;
    // Every hop of a returned route is an edge of `graph` by construction;
    // propagate rather than panic if that ever stops holding.
    let mut link_etas = Vec::with_capacity(route.nodes.len().saturating_sub(1));
    for w in route.nodes.windows(2) {
        link_etas.push(graph.eta(w[0], w[1])?);
    }
    Some(realize(&route, &link_etas))
}

/// Attempt to distribute a Bell pair from `src` to `dst` over a
/// time-expanded graph (the store-and-forward serving mode): one
/// [`time_sssp_into`] pass from `src`, best-layer extraction with the
/// `eta_floor` fidelity cutoff, then the same amplitude-damping
/// realization as the per-step path with the hold decay folded into the
/// end-to-end η. Returns the projected host-level route alongside the
/// measured [`Distribution`].
pub fn distribute_time_expanded(
    texp: &TimeExpandedGraph,
    src: NodeId,
    dst: NodeId,
    metric: RouteMetric,
    eta_floor: f64,
    scratch: &mut TimeTable,
) -> Option<(TimeRoute, Distribution)> {
    if src >= texp.n_hosts() || dst >= texp.n_hosts() || texp.layers() == 0 {
        return None;
    }
    time_sssp_into(texp, src, metric, scratch);
    let tr = extract_time_route(texp, scratch, src, dst, metric, eta_floor)?;
    let dist = realize_with_hold(&tr.route, &tr.link_etas, tr.hold_eta);
    Some((tr, dist))
}

/// Degrade a Bell pair over an already-chosen route and measure fidelity.
/// `link_etas` are the per-hop transmissivities (their product must equal
/// the route's `eta_product`).
pub fn realize(route: &Route, link_etas: &[f64]) -> Distribution {
    realize_with_hold(route, link_etas, 1.0)
}

/// [`realize`] for store-and-forward routes: the route's `eta_product`
/// additionally carries `hold_eta`, the product of the memory-decay
/// factors paid while holding (`1.0` reduces bitwise to [`realize`] —
/// `η × 1.0` is a no-op for finite floats). The end-to-end state is one
/// Bell half through AD(`eta_product`) — memory decay is one more
/// amplitude-damping stage under the workspace's composition law — while
/// `mean_link_fidelity` keeps averaging over *physical* links only.
pub fn realize_with_hold(route: &Route, link_etas: &[f64], hold_eta: f64) -> Distribution {
    debug_assert!(
        (link_etas.iter().product::<f64>() * hold_eta - route.eta_product).abs() < 1e-9,
        "link etas inconsistent with route product"
    );
    let bell = bell_phi_plus();
    let damped = amplitude_damping(route.eta_product)
        .on_qubit(1, 2)
        .apply(&bell.density());
    let mean_link_fidelity = if link_etas.is_empty() {
        1.0
    } else {
        link_etas
            .iter()
            .map(|&eta| qntn_quantum::fidelity::bell_ad_sqrt_fidelity(eta))
            .sum::<f64>()
            / link_etas.len() as f64
    };
    Distribution {
        path: route.nodes.clone(),
        eta: route.eta_product,
        fidelity: sqrt_fidelity_to_pure(&damped, &bell),
        fidelity_jozsa: fidelity_to_pure(&damped, &bell),
        mean_link_fidelity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qntn_quantum::fidelity::{bell_ad_fidelity, bell_ad_sqrt_fidelity};

    fn chain(etas: &[f64]) -> Graph {
        let mut g = Graph::with_nodes(etas.len() + 1);
        for (i, &eta) in etas.iter().enumerate() {
            g.set_edge(i, i + 1, eta);
        }
        g
    }

    #[test]
    fn single_perfect_link() {
        let g = chain(&[1.0]);
        let d = distribute(&g, 0, 1, RouteMetric::PaperInverseEta).unwrap();
        assert!((d.fidelity - 1.0).abs() < 1e-12);
        assert_eq!(d.path, vec![0, 1]);
    }

    #[test]
    fn fidelity_matches_closed_form() {
        for etas in [vec![0.9], vec![0.9, 0.8], vec![0.95, 0.92, 0.88]] {
            let g = chain(&etas);
            let d = distribute(&g, 0, etas.len(), RouteMetric::PaperInverseEta).unwrap();
            let eta_path: f64 = etas.iter().product();
            assert!((d.eta - eta_path).abs() < 1e-12);
            assert!((d.fidelity - bell_ad_sqrt_fidelity(eta_path)).abs() < 1e-10);
            assert!((d.fidelity_jozsa - bell_ad_fidelity(eta_path)).abs() < 1e-10);
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = chain(&[0.9]);
        g.add_node();
        assert!(distribute(&g, 0, 2, RouteMetric::PaperInverseEta).is_none());
    }

    #[test]
    fn threshold_eta_gives_paper_calibration_fidelity() {
        // A single link right at the 0.7 threshold: fidelity ≈ 0.918 > 0.9,
        // the paper's Fig. 5 justification for the threshold choice.
        let g = chain(&[0.7]);
        let d = distribute(&g, 0, 1, RouteMetric::PaperInverseEta).unwrap();
        assert!(d.fidelity > 0.9 && d.fidelity < 0.92, "{}", d.fidelity);
    }

    #[test]
    fn mean_link_fidelity_definition() {
        let g = chain(&[0.9, 0.7]);
        let d = distribute(&g, 0, 2, RouteMetric::PaperInverseEta).unwrap();
        let expect = (bell_ad_sqrt_fidelity(0.9) + bell_ad_sqrt_fidelity(0.7)) / 2.0;
        assert!((d.mean_link_fidelity - expect).abs() < 1e-12);
        // Per-link accounting never falls below the end-to-end value.
        assert!(d.mean_link_fidelity >= d.fidelity);
    }

    #[test]
    fn jozsa_is_square_of_sqrt_fidelity() {
        let g = chain(&[0.8, 0.85]);
        let d = distribute(&g, 0, 2, RouteMetric::PaperInverseEta).unwrap();
        assert!((d.fidelity * d.fidelity - d.fidelity_jozsa).abs() < 1e-10);
    }

    #[test]
    fn better_metric_never_hurts_fidelity() {
        // On any graph, NegLogEta's η product is >= the paper metric's.
        let mut g = Graph::with_nodes(4);
        g.set_edge(0, 1, 0.9);
        g.set_edge(1, 3, 0.9);
        g.set_edge(0, 2, 0.75);
        g.set_edge(2, 3, 0.99);
        g.set_edge(0, 3, 0.72);
        let paper = distribute(&g, 0, 3, RouteMetric::PaperInverseEta).unwrap();
        let optimal = distribute(&g, 0, 3, RouteMetric::NegLogEta).unwrap();
        assert!(optimal.eta >= paper.eta - 1e-12);
        assert!(optimal.fidelity >= paper.fidelity - 1e-12);
    }
    fn texp_from_layers(
        n_hosts: usize,
        layers: &[&[(usize, usize, f64)]],
        hold: f64,
    ) -> TimeExpandedGraph {
        let mut t = TimeExpandedGraph::default();
        t.reset(n_hosts, 0);
        for (l, links) in layers.iter().enumerate() {
            t.begin_layer();
            if l > 0 && hold > 0.0 {
                for h in 0..n_hosts {
                    t.push_hold(h, hold);
                }
            }
            for &(u, v, eta) in *links {
                t.push_link(u, v, eta);
            }
        }
        t
    }

    #[test]
    fn realize_with_unit_hold_is_bitwise_realize() {
        let route = Route {
            nodes: vec![0, 1, 2],
            cost: 2.3,
            eta_product: 0.9 * 0.8,
        };
        let link_etas = [0.9, 0.8];
        let plain = realize(&route, &link_etas);
        let held = realize_with_hold(&route, &link_etas, 1.0);
        assert_eq!(plain.eta.to_bits(), held.eta.to_bits());
        assert_eq!(plain.fidelity.to_bits(), held.fidelity.to_bits());
        assert_eq!(
            plain.mean_link_fidelity.to_bits(),
            held.mean_link_fidelity.to_bits()
        );
        assert_eq!(plain.path, held.path);
    }

    #[test]
    fn realize_with_hold_degrades_fidelity_but_not_link_accounting() {
        let hold = 0.9;
        let held_route = Route {
            nodes: vec![0, 1, 2],
            cost: 2.3,
            eta_product: 0.9 * 0.8 * hold,
        };
        let free_route = Route {
            nodes: vec![0, 1, 2],
            cost: 2.3,
            eta_product: 0.9 * 0.8,
        };
        let link_etas = [0.9, 0.8];
        let held = realize_with_hold(&held_route, &link_etas, hold);
        let free = realize(&free_route, &link_etas);
        assert!(held.fidelity < free.fidelity);
        assert!((held.eta - 0.9 * 0.8 * hold).abs() < 1e-12);
        // The decay lives in the end-to-end channel; per-link averages only
        // ever see physical links.
        assert_eq!(
            held.mean_link_fidelity.to_bits(),
            free.mean_link_fidelity.to_bits()
        );
    }

    #[test]
    fn single_layer_time_expanded_matches_per_step_distribute_bitwise() {
        let etas = [0.95, 0.82, 0.88];
        let g = chain(&etas);
        let texp = texp_from_layers(4, &[&[(0, 1, 0.95), (1, 2, 0.82), (2, 3, 0.88)]], 0.0);
        let per_step = distribute(&g, 0, 3, RouteMetric::PaperInverseEta).unwrap();
        let (tr, d) = distribute_time_expanded(
            &texp,
            0,
            3,
            RouteMetric::PaperInverseEta,
            0.0,
            &mut TimeTable::default(),
        )
        .unwrap();
        assert_eq!(tr.delivered_layer, 0);
        assert_eq!(tr.hold_steps, 0);
        assert_eq!(tr.swaps, 2);
        assert_eq!(d.path, per_step.path);
        assert_eq!(d.eta.to_bits(), per_step.eta.to_bits());
        assert_eq!(d.fidelity.to_bits(), per_step.fidelity.to_bits());
    }

    #[test]
    fn hold_bridges_links_that_are_never_simultaneous() {
        // Link 0-1 exists only on layer 0, link 1-2 only on layer 1: host 1
        // must hold a Bell half for one step and swap.
        let hold = 0.9;
        let texp = texp_from_layers(3, &[&[(0, 1, 0.9)], &[(1, 2, 0.8)]], hold);
        let got = distribute_time_expanded(
            &texp,
            0,
            2,
            RouteMetric::PaperInverseEta,
            0.0,
            &mut TimeTable::default(),
        );
        let (tr, d) = got.expect("holding makes 0 -> 2 reachable");
        assert_eq!(tr.route.nodes, vec![0, 1, 2]);
        assert_eq!(tr.delivered_layer, 1);
        assert_eq!(tr.hold_steps, 1);
        assert_eq!(tr.swaps, 1);
        assert!((d.eta - 0.9 * 0.8 * hold).abs() < 1e-12);
        // A floor above what the decohered pair retains rejects it.
        let floor_eta = 0.9 * 0.8 * hold + 1e-6;
        assert!(distribute_time_expanded(
            &texp,
            0,
            2,
            RouteMetric::PaperInverseEta,
            floor_eta,
            &mut TimeTable::default(),
        )
        .is_none());
    }

    #[test]
    fn time_expanded_out_of_range_endpoints_return_none() {
        let texp = texp_from_layers(3, &[&[(0, 1, 0.9)]], 0.0);
        let mut scratch = TimeTable::default();
        let m = RouteMetric::PaperInverseEta;
        assert!(distribute_time_expanded(&texp, 3, 0, m, 0.0, &mut scratch).is_none());
        assert!(distribute_time_expanded(&texp, 0, 7, m, 0.0, &mut scratch).is_none());
        assert!(distribute_time_expanded(
            &TimeExpandedGraph::default(),
            0,
            1,
            m,
            0.0,
            &mut scratch
        )
        .is_none());
    }
}
