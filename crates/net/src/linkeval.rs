//! Per-step link evaluation: geometry → transmissivity.
//!
//! Three link classes, mirroring the paper's Section III-A:
//!
//! - **fiber** between ground nodes of one LAN (static, Beer–Lambert over
//!   the geodesic distance);
//! - **FSO** between any ground node and any satellite or HAP (downlink
//!   convention — the airborne platform is the entanglement source);
//! - **FSO** between satellites (vacuum: diffraction and receiver
//!   efficiency only), evaluated only within a range cutoff since the
//!   diffraction budget is hopeless beyond ~2000 km with 1.2 m apertures.
//!
//! The Rytov variance integral is the expensive factor, and for a fixed
//! altitude pair it depends only on elevation, so [`RytovTable`]
//! precomputes it on a 0.25° elevation grid per altitude class (satellite→
//! ground, HAP→ground) and interpolates. The cache-vs-exact error is far
//! below anything the threshold test can resolve (tested).

use crate::host::Host;
use qntn_channel::fiber::FiberChannel;
use qntn_channel::fso::{FsoChannel, FsoGeometry};
use qntn_channel::params::{ElevationMode, FsoParams};
use qntn_geo::look::look_angles_ecef;
use qntn_geo::{vincenty_m, Geodetic, WGS84};
use serde::{Deserialize, Serialize};

/// The paper's transmissivity threshold for link establishment.
pub const PAPER_THRESHOLD: f64 = 0.7;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// FSO parameter set.
    pub fso: FsoParams,
    /// Transmissivity threshold gating link establishment (paper: 0.7).
    pub threshold: f64,
    /// Fiber attenuation, dB/km (paper: 0.15).
    pub fiber_attenuation_db_per_km: f64,
    /// Inter-satellite links farther than this are skipped outright.
    pub isl_max_range_m: f64,
    /// Evaluate inter-satellite links at all (they never pass threshold at
    /// the paper's constellation spacing, but cost time; default on for
    /// faithfulness, benches may disable).
    pub enable_isl: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fso: FsoParams::ideal(),
            threshold: PAPER_THRESHOLD,
            fiber_attenuation_db_per_km: 0.15,
            isl_max_range_m: 2_000_000.0,
            enable_isl: true,
        }
    }
}

/// Precomputed Rytov variance vs elevation for one (rx_alt, tx_alt) class.
#[derive(Debug, Clone)]
pub struct RytovTable {
    min_elev: f64,
    step: f64,
    values: Vec<f64>,
}

impl RytovTable {
    /// Grid resolution: 0.25 degrees.
    const STEP_RAD: f64 = 0.25 * std::f64::consts::PI / 180.0;

    /// Build the table for a downlink from `tx_alt_m` to `rx_alt_m`.
    pub fn build(params: &FsoParams, rx_alt_m: f64, tx_alt_m: f64) -> RytovTable {
        let k = params.wavenumber();
        let min_elev = 1.0_f64.to_radians();
        let max_elev = std::f64::consts::FRAC_PI_2;
        let n = ((max_elev - min_elev) / Self::STEP_RAD).ceil() as usize + 2;
        let values = (0..n)
            .map(|i| {
                let elev = min_elev + i as f64 * Self::STEP_RAD;
                params
                    .turbulence
                    .rytov_variance_downlink(k, rx_alt_m, tx_alt_m, elev)
            })
            .collect();
        RytovTable { min_elev, step: Self::STEP_RAD, values }
    }

    /// Linear interpolation, clamped to the grid.
    pub fn lookup(&self, elev: f64) -> f64 {
        let x = ((elev - self.min_elev) / self.step).clamp(0.0, (self.values.len() - 1) as f64);
        let i = x.floor() as usize;
        if i + 1 >= self.values.len() {
            return self.values[self.values.len() - 1];
        }
        let frac = x - i as f64;
        self.values[i] * (1.0 - frac) + self.values[i + 1] * frac
    }
}

/// Minimum altitude (metres, spherical Earth) of the straight segment
/// between two ECEF points — the clearance test for elevated-platform
/// links.
fn ray_min_altitude_m(p1: qntn_geo::Vec3, p2: qntn_geo::Vec3) -> f64 {
    let d = p2 - p1;
    let denom = d.norm_sq();
    let t = if denom < 1e-9 { 0.0 } else { (-p1.dot(d) / denom).clamp(0.0, 1.0) };
    (p1 + d * t).norm() - 6_371_000.0
}

/// Evaluates link transmissivities for host pairs.
#[derive(Debug, Clone)]
pub struct LinkEvaluator {
    config: SimConfig,
    sat_ground_rytov: RytovTable,
    hap_ground_rytov: RytovTable,
}

impl LinkEvaluator {
    /// Build the evaluator, precomputing the Rytov tables for the two
    /// atmospheric altitude classes (ground≈0.3 km → 500 km satellites,
    /// ground → 30 km HAPs).
    pub fn new(config: SimConfig) -> LinkEvaluator {
        LinkEvaluator {
            sat_ground_rytov: RytovTable::build(&config.fso, 300.0, 500_000.0),
            hap_ground_rytov: RytovTable::build(&config.fso, 300.0, 30_000.0),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Fiber transmissivity between two static ground positions.
    pub fn fiber_eta(&self, a: Geodetic, b: Geodetic) -> f64 {
        let dist =
            vincenty_m(a, b, &WGS84).unwrap_or_else(|| qntn_geo::haversine_m(a, b, &WGS84));
        FiberChannel::new(dist, self.config.fiber_attenuation_db_per_km).transmissivity()
    }

    /// FSO transmissivity between two hosts at a time step, or `None` when
    /// the pair has no FSO link class (e.g. two ground nodes) or the
    /// geometry rules it out (below horizon, ISL beyond cutoff).
    pub fn fso_eta(&self, a: &Host, b: &Host, step: usize) -> Option<f64> {
        // Classify the pair.
        let both_ground = a.is_ground() && b.is_ground();
        if both_ground {
            return None;
        }
        let both_airborne_space = a.is_satellite() && b.is_satellite();
        if both_airborne_space {
            if !self.config.enable_isl {
                return None;
            }
            let pa = a.ecef_at(step);
            let pb = b.ecef_at(step);
            let range = pa.distance(pb);
            if range > self.config.isl_max_range_m || range <= 0.0 {
                return None;
            }
            let geom = FsoGeometry::downlink(
                a.aperture_m,
                a.altitude_at(step),
                b.aperture_m,
                b.altitude_at(step),
                range,
                std::f64::consts::FRAC_PI_2, // irrelevant in vacuum
            );
            return Some(FsoChannel::new(geom, self.config.fso).transmissivity());
        }

        // Ground–satellite, ground–HAP, HAP–HAP or HAP–satellite: order by
        // altitude.
        let (low, high) = if a.altitude_at(step) <= b.altitude_at(step) { (a, b) } else { (b, a) };
        let low_pos = low.geodetic_at(step);
        let look = look_angles_ecef(low_pos, high.ecef_at(step), &WGS84);
        // Visibility: a ground endpoint needs positive elevation; between
        // two *elevated* platforms (e.g. a HAP fleet) the line of sight is
        // legitimately a fraction of a degree below the local horizontal,
        // so the test is instead that the ray clears the dense atmosphere.
        if low_pos.alt_m < 10_000.0 {
            if look.elevation <= 0.0 {
                return None; // below the horizon
            }
        } else if ray_min_altitude_m(low.ecef_at(step), high.ecef_at(step)) < 10_000.0 {
            return None; // grazing the troposphere / the planet
        }
        let geom = FsoGeometry::downlink(
            high.aperture_m,
            high.altitude_at(step),
            low.aperture_m,
            low_pos.alt_m,
            look.range_m,
            look.elevation,
        );
        let channel = FsoChannel::new(geom, self.config.fso);
        // Cached Rytov for the two common downlink classes; exact elsewhere.
        let rytov = if matches!(self.config.fso.elevation_mode, ElevationMode::Geometric) {
            if high.is_satellite() && low.is_ground() {
                Some(self.sat_ground_rytov.lookup(look.elevation))
            } else if high.is_hap() && low.is_ground() {
                Some(self.hap_ground_rytov.lookup(look.elevation))
            } else {
                None
            }
        } else {
            None
        };
        Some(channel.budget_with_rytov(rytov).eta_total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use qntn_geo::Epoch;
    use qntn_orbit::{Ephemeris, Keplerian, PerturbationModel, Propagator};

    fn ground(lat: f64, lon: f64) -> Host {
        Host::ground("G", 0, Geodetic::from_deg(lat, lon, 300.0), 1.2)
    }

    fn hap() -> Host {
        Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3)
    }

    fn satellite(raan_deg: f64, ta_deg: f64) -> Host {
        let prop = Propagator::new(
            Keplerian::circular(
                6_871_000.0,
                53f64.to_radians(),
                raan_deg.to_radians(),
                ta_deg.to_radians(),
            ),
            Epoch::J2000,
            PerturbationModel::TwoBody,
        );
        Host::satellite("S", Ephemeris::generate(&prop, Epoch::J2000, 30.0, 86_400.0), 1.2)
    }

    fn eval() -> LinkEvaluator {
        LinkEvaluator::new(SimConfig::default())
    }

    #[test]
    fn fiber_between_campus_nodes_is_strong() {
        let e = eval();
        let eta = e.fiber_eta(
            Geodetic::from_deg(36.1757, -85.5066, 300.0),
            Geodetic::from_deg(36.1751, -85.5067, 300.0),
        );
        assert!(eta > 0.99, "{eta}");
    }

    #[test]
    fn fiber_between_cities_fails_threshold() {
        let e = eval();
        let eta = e.fiber_eta(
            Geodetic::from_deg(36.1757, -85.5066, 300.0),
            Geodetic::from_deg(35.91, -84.3, 250.0),
        );
        assert!(eta < PAPER_THRESHOLD, "{eta}");
    }

    #[test]
    fn ground_to_ground_has_no_fso() {
        let e = eval();
        assert!(e.fso_eta(&ground(36.0, -85.0), &ground(35.5, -85.2), 0).is_none());
    }

    #[test]
    fn hap_ground_link_is_high_quality() {
        let e = eval();
        let eta = e
            .fso_eta(&hap(), &ground(36.1757, -85.5066), 0)
            .expect("HAP should see Cookeville");
        assert!(eta > 0.9, "{eta}");
        assert!(eta >= PAPER_THRESHOLD);
        // Symmetric in argument order.
        let eta2 = e.fso_eta(&ground(36.1757, -85.5066), &hap(), 0).unwrap();
        assert!((eta - eta2).abs() < 1e-12);
    }

    #[test]
    fn below_horizon_satellite_gives_none() {
        // A satellite with RAAN/anomaly putting it on the far side of Earth
        // at t=0 must be invisible from Tennessee.
        let e = eval();
        let g = ground(36.0, -85.0);
        let mut seen_none = false;
        for ta in [0.0, 90.0, 180.0, 270.0] {
            let s = satellite(0.0, ta);
            if e.fso_eta(&g, &s, 0).is_none() {
                seen_none = true;
            }
        }
        assert!(seen_none, "some geometry must be below the horizon");
    }

    #[test]
    fn satellite_link_exists_somewhere_during_a_day() {
        let e = eval();
        let g = ground(36.0, -85.0);
        let s = satellite(260.0, 60.0);
        let best = (0..2880)
            .filter_map(|t| e.fso_eta(&g, &s, t))
            .fold(0.0_f64, f64::max);
        assert!(best > 0.0, "satellite never rose above the horizon");
    }

    #[test]
    fn cached_rytov_matches_exact_within_tolerance() {
        // Compare the cached path with an exact-Rytov evaluation.
        let cfg = SimConfig::default();
        let e = LinkEvaluator::new(cfg);
        let g = ground(36.0, -85.0);
        let s = satellite(0.0, 0.0);
        for step in (0..2880).step_by(97) {
            let Some(eta_cached) = e.fso_eta(&g, &s, step) else { continue };
            // Exact: rebuild the channel without the cache.
            let look = look_angles_ecef(g.geodetic_at(step), s.ecef_at(step), &WGS84);
            let geom = FsoGeometry::downlink(1.2, s.altitude_at(step), 1.2, 300.0, look.range_m, look.elevation);
            let exact = FsoChannel::new(geom, cfg.fso).transmissivity();
            assert!(
                (eta_cached - exact).abs() < 1e-4,
                "step {step}: cached {eta_cached} vs exact {exact}"
            );
        }
    }

    #[test]
    fn isl_respects_range_cutoff() {
        let mut cfg = SimConfig::default();
        cfg.isl_max_range_m = 1_000.0; // absurdly small: nothing qualifies
        let e = LinkEvaluator::new(cfg);
        let s1 = satellite(0.0, 0.0);
        let s2 = satellite(0.0, 60.0);
        assert!(e.fso_eta(&s1, &s2, 0).is_none());
    }

    #[test]
    fn isl_disabled_gives_none() {
        let cfg = SimConfig { enable_isl: false, ..SimConfig::default() };
        let e = LinkEvaluator::new(cfg);
        let s1 = satellite(0.0, 0.0);
        let s2 = satellite(0.0, 60.0);
        assert!(e.fso_eta(&s1, &s2, 0).is_none());
    }

    #[test]
    fn in_plane_neighbours_are_below_threshold() {
        // Adjacent satellites in one plane: 60° apart at a = 6871 km is a
        // 6871 km chord — way beyond any FSO budget here.
        let cfg = SimConfig { isl_max_range_m: 1e7, ..SimConfig::default() };
        let e = LinkEvaluator::new(cfg);
        let s1 = satellite(0.0, 0.0);
        let s2 = satellite(0.0, 60.0);
        if let Some(eta) = e.fso_eta(&s1, &s2, 0) {
            assert!(eta < PAPER_THRESHOLD, "{eta}");
        }
    }

    #[test]
    fn ray_min_altitude_cases() {
        use qntn_geo::Vec3;
        let r = 6_371_000.0;
        // Two points at 30 km altitude, ~90 km apart: midpoint dips but
        // stays high.
        let a = Vec3::new(r + 30_000.0, 0.0, 0.0);
        let b = Vec3::new(r + 30_000.0, 90_000.0, 0.0).normalized().unwrap() * (r + 30_000.0);
        let min_alt = ray_min_altitude_m(a, b);
        assert!((29_000.0..30_001.0).contains(&min_alt), "{min_alt}");
        // Antipodal-ish chord passes through the planet.
        let c = Vec3::new(-(r + 30_000.0), 0.0, 0.0);
        assert!(ray_min_altitude_m(a, c) < 0.0);
        // Degenerate zero-length segment.
        assert!((ray_min_altitude_m(a, a) - 30_000.0).abs() < 1.0);
    }

    #[test]
    fn hap_to_hap_stratospheric_link_evaluates() {
        // A short stratospheric hop (~40 km) with 30 cm apertures clears
        // the threshold; a city-spacing hop (~110 km) does not — the
        // diffraction budget of a 30 cm receiver runs out (the fleet
        // experiment's design finding).
        let e = eval();
        let h1 = Host::hap("H1", Geodetic::from_deg(36.00, -85.00, 30_000.0), 0.3);
        let near = Host::hap("H2", Geodetic::from_deg(36.00, -84.56, 30_000.0), 0.3);
        let eta = e.fso_eta(&h1, &near, 0).expect("stratospheric path is clear");
        assert!(eta >= PAPER_THRESHOLD, "40 km hop: {eta}");
        let far = Host::hap("H3", Geodetic::from_deg(35.90, -83.80, 30_000.0), 0.3);
        let eta_far = e.fso_eta(&h1, &far, 0).expect("path is clear, just lossy");
        assert!(eta_far < PAPER_THRESHOLD, "110 km hop: {eta_far}");
    }

    #[test]
    fn hap_link_through_the_planet_is_rejected() {
        let e = eval();
        let h1 = Host::hap("H1", Geodetic::from_deg(36.0, -85.0, 30_000.0), 0.3);
        let h2 = Host::hap("H2", Geodetic::from_deg(-36.0, 95.0, 30_000.0), 0.3);
        assert!(e.fso_eta(&h1, &h2, 0).is_none());
    }

    #[test]
    fn rytov_table_interpolation_is_smooth() {
        let t = RytovTable::build(&FsoParams::ideal(), 300.0, 500_000.0);
        let a = t.lookup(0.5);
        let b = t.lookup(0.5001);
        assert!((a - b).abs() / a.max(1e-30) < 1e-2);
        // Clamps outside the grid.
        let lo = t.lookup(0.0);
        let hi = t.lookup(2.0);
        assert!(lo.is_finite() && hi.is_finite());
    }
}
