//! Per-step link evaluation: geometry → transmissivity.
//!
//! Three link classes, mirroring the paper's Section III-A:
//!
//! - **fiber** between ground nodes of one LAN (static, Beer–Lambert over
//!   the geodesic distance);
//! - **FSO** between any ground node and any satellite or HAP (downlink
//!   convention — the airborne platform is the entanglement source);
//! - **FSO** between satellites (vacuum: diffraction and receiver
//!   efficiency only), evaluated only within a range cutoff since the
//!   diffraction budget is hopeless beyond ~2000 km with 1.2 m apertures.
//!
//! The Rytov variance integral is the expensive factor, and for a fixed
//! altitude pair it depends only on elevation, so [`RytovTable`]
//! precomputes it on a 0.25° elevation grid per (receiver, transmitter)
//! altitude class and interpolates. Tables are keyed by the altitude
//! classes of the actual host set ([`LinkEvaluator::for_hosts`]); a pair
//! whose altitudes match no table falls back to exact evaluation instead
//! of silently using a wrong-altitude table. The cache-vs-exact error is
//! far below anything the threshold test can resolve (tested).

use crate::host::Host;
use qntn_channel::fiber::FiberChannel;
use qntn_channel::fso::{FsoBatch, FsoChannel, FsoGeometry};
use qntn_channel::params::{ElevationMode, FsoParams};
use qntn_common::QntnError;
use qntn_geo::look::look_angles_ecef;
use qntn_geo::{vincenty_m, Geodetic, WGS84};
use serde::{Deserialize, Serialize};

/// The paper's transmissivity threshold for link establishment.
pub const PAPER_THRESHOLD: f64 = 0.7;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// FSO parameter set.
    pub fso: FsoParams,
    /// Transmissivity threshold gating link establishment (paper: 0.7).
    pub threshold: f64,
    /// Fiber attenuation, dB/km (paper: 0.15).
    pub fiber_attenuation_db_per_km: f64,
    /// Inter-satellite links farther than this are skipped outright.
    pub isl_max_range_m: f64,
    /// Evaluate inter-satellite links at all (they never pass threshold at
    /// the paper's constellation spacing, but cost time; default on for
    /// faithfulness, benches may disable).
    pub enable_isl: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fso: FsoParams::ideal(),
            threshold: PAPER_THRESHOLD,
            fiber_attenuation_db_per_km: 0.15,
            isl_max_range_m: 2_000_000.0,
            enable_isl: true,
        }
    }
}

impl SimConfig {
    /// Check every parameter for physical sense, returning the first
    /// offending field as a structured [`QntnError::InvalidConfig`]. A
    /// silent NaN or non-positive threshold here would otherwise propagate
    /// into every coverage and fidelity statistic, so
    /// [`crate::QuantumNetworkSim::new`] refuses invalid configurations
    /// loudly.
    pub fn validate(&self) -> Result<(), QntnError> {
        let invalid = |field: &'static str, constraint: &'static str, got: f64| {
            Err(QntnError::InvalidConfig {
                field,
                constraint,
                got,
            })
        };
        let positive_finite = |name: &'static str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                invalid(name, "positive and finite", v)
            }
        };
        if !(self.threshold.is_finite() && self.threshold > 0.0 && self.threshold <= 1.0) {
            return invalid("threshold", "in (0, 1]", self.threshold);
        }
        positive_finite(
            "fiber_attenuation_db_per_km",
            self.fiber_attenuation_db_per_km,
        )?;
        positive_finite("isl_max_range_m", self.isl_max_range_m)?;
        positive_finite("fso.wavelength_m", self.fso.wavelength_m)?;
        positive_finite("fso.tx_waist_ratio", self.fso.tx_waist_ratio)?;
        if !(self.fso.receiver_efficiency.is_finite()
            && self.fso.receiver_efficiency > 0.0
            && self.fso.receiver_efficiency <= 1.0)
        {
            return invalid(
                "fso.receiver_efficiency",
                "in (0, 1]",
                self.fso.receiver_efficiency,
            );
        }
        if !(self.fso.pointing_jitter_rad.is_finite() && self.fso.pointing_jitter_rad >= 0.0) {
            return invalid(
                "fso.pointing_jitter_rad",
                "non-negative and finite",
                self.fso.pointing_jitter_rad,
            );
        }
        if let ElevationMode::Fixed(e) = self.fso.elevation_mode {
            if !e.is_finite() {
                return invalid("fso.elevation_mode fixed elevation", "finite", e);
            }
        }
        let atm = &self.fso.atmosphere;
        if !(atm.sea_level_extinction_per_m.is_finite() && atm.sea_level_extinction_per_m >= 0.0) {
            return invalid(
                "fso.atmosphere.sea_level_extinction_per_m",
                "non-negative and finite",
                atm.sea_level_extinction_per_m,
            );
        }
        positive_finite("fso.atmosphere.scale_height_m", atm.scale_height_m)?;
        let turb = &self.fso.turbulence;
        for (name, v) in [
            ("fso.turbulence.cn2_ground", turb.cn2_ground),
            ("fso.turbulence.wind_rms_m_s", turb.wind_rms_m_s),
            ("fso.turbulence.scale", turb.scale),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return invalid(name, "non-negative and finite", v);
            }
        }
        Ok(())
    }
}

/// Precomputed Rytov variance vs elevation for one (rx_alt, tx_alt) class.
#[derive(Debug, Clone)]
pub struct RytovTable {
    rx_alt_m: f64,
    tx_alt_m: f64,
    min_elev: f64,
    step: f64,
    values: Vec<f64>,
}

impl RytovTable {
    /// Grid resolution: 0.25 degrees.
    const STEP_RAD: f64 = 0.25 * std::f64::consts::PI / 180.0;

    /// Build the table for a downlink from `tx_alt_m` to `rx_alt_m`.
    pub fn build(params: &FsoParams, rx_alt_m: f64, tx_alt_m: f64) -> RytovTable {
        let k = params.wavenumber();
        let min_elev = 1.0_f64.to_radians();
        let max_elev = std::f64::consts::FRAC_PI_2;
        let n = ((max_elev - min_elev) / Self::STEP_RAD).ceil() as usize + 2;
        let values = (0..n)
            .map(|i| {
                let elev = min_elev + i as f64 * Self::STEP_RAD;
                params
                    .turbulence
                    .rytov_variance_downlink(k, rx_alt_m, tx_alt_m, elev)
            })
            .collect();
        RytovTable {
            rx_alt_m,
            tx_alt_m,
            min_elev,
            step: Self::STEP_RAD,
            values,
        }
    }

    /// Receiver altitude class the table was built for, metres.
    #[inline]
    pub fn rx_alt_m(&self) -> f64 {
        self.rx_alt_m
    }

    /// Transmitter altitude class the table was built for, metres.
    #[inline]
    pub fn tx_alt_m(&self) -> f64 {
        self.tx_alt_m
    }

    /// Linear interpolation, clamped to the grid.
    pub fn lookup(&self, elev: f64) -> f64 {
        let x = ((elev - self.min_elev) / self.step).clamp(0.0, (self.values.len() - 1) as f64);
        let i = x.floor() as usize;
        if i + 1 >= self.values.len() {
            return self.values[self.values.len() - 1];
        }
        let frac = x - i as f64;
        self.values[i] * (1.0 - frac) + self.values[i + 1] * frac
    }
}

/// Minimum altitude (metres, spherical Earth) of the straight segment
/// between two ECEF points — the clearance test for elevated-platform
/// links.
fn ray_min_altitude_m(p1: qntn_geo::Vec3, p2: qntn_geo::Vec3) -> f64 {
    let d = p2 - p1;
    let denom = d.norm_sq();
    let t = if denom < 1e-9 {
        0.0
    } else {
        (-p1.dot(d) / denom).clamp(0.0, 1.0)
    };
    (p1 + d * t).norm() - 6_371_000.0
}

/// Evaluates link transmissivities for host pairs.
#[derive(Debug, Clone)]
pub struct LinkEvaluator {
    config: SimConfig,
    /// Rytov tables, one per (rx, tx) altitude class, sorted by class so
    /// two evaluators built from the same classes behave identically.
    rytov_tables: Vec<RytovTable>,
}

impl LinkEvaluator {
    /// Receiver altitudes are binned to 100 m for table keying; a lookup
    /// must sit within this distance of a table's class to use the cache.
    const RX_TOL_M: f64 = 60.0;
    /// Transmitter class granularity switches at this altitude: 5 km bins
    /// below (HAPs), 50 km bins above (satellites — wide enough to absorb
    /// the ellipsoidal altitude variation of a circular orbit, ~21 km,
    /// where the Rytov integral is flat because all turbulence lies below
    /// ~30 km).
    const TX_SPLIT_M: f64 = 100_000.0;
    /// Cap on precomputed tables; pairs beyond the cap fall back to exact
    /// evaluation (correct, just slower).
    const MAX_TABLES: usize = 12;

    /// Build the evaluator with the two legacy altitude classes
    /// (300 m ground → 500 km satellites, 300 m ground → 30 km HAPs).
    /// Prefer [`LinkEvaluator::for_hosts`], which derives the classes from
    /// the actual host set; any pair outside these classes silently takes
    /// the exact (slower) path rather than a wrong-altitude table.
    pub fn new(config: SimConfig) -> LinkEvaluator {
        Self::from_classes(config, &[(300.0, 30_000.0), (300.0, 500_000.0)])
    }

    /// Build the evaluator with Rytov tables keyed by the altitude classes
    /// actually present in `hosts`: one receiver class per 100 m ground
    /// bin × one transmitter class per satellite/HAP altitude bin.
    pub fn for_hosts(config: SimConfig, hosts: &[Host]) -> LinkEvaluator {
        let mut rx: Vec<f64> = hosts
            .iter()
            .filter(|h| h.is_ground())
            .map(|h| Self::rx_class_m(h.altitude_at(0)))
            .collect();
        let mut tx: Vec<f64> = hosts
            .iter()
            .filter(|h| !h.is_ground())
            .map(|h| Self::tx_class_m(h.altitude_at(0)))
            .collect();
        for v in [&mut rx, &mut tx] {
            v.sort_by(f64::total_cmp);
            v.dedup();
        }
        let classes: Vec<(f64, f64)> = rx
            .iter()
            .flat_map(|&r| tx.iter().map(move |&t| (r, t)))
            .take(Self::MAX_TABLES)
            .collect();
        Self::from_classes(config, &classes)
    }

    /// Build with explicit (rx_alt, tx_alt) table classes.
    pub fn from_classes(config: SimConfig, classes: &[(f64, f64)]) -> LinkEvaluator {
        let mut classes: Vec<(f64, f64)> = classes.to_vec();
        classes.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        classes.dedup();
        let rytov_tables = classes
            .iter()
            .map(|&(rx_alt, tx_alt)| RytovTable::build(&config.fso, rx_alt, tx_alt))
            .collect();
        LinkEvaluator {
            config,
            rytov_tables,
        }
    }

    /// Canonical receiver (ground) altitude class: 100 m bins.
    fn rx_class_m(alt_m: f64) -> f64 {
        (alt_m / 100.0).round() * 100.0
    }

    /// Canonical transmitter (satellite/HAP) altitude class: 5 km bins in
    /// the stratosphere, 50 km bins for orbital altitudes.
    fn tx_class_m(alt_m: f64) -> f64 {
        if alt_m < Self::TX_SPLIT_M {
            (alt_m / 5_000.0).round() * 5_000.0
        } else {
            (alt_m / 50_000.0).round() * 50_000.0
        }
    }

    /// The (rx_alt, tx_alt) classes of the precomputed Rytov tables, as a
    /// borrowing iterator (no per-call allocation; `collect()` if a `Vec`
    /// is needed).
    pub fn rytov_classes(&self) -> impl ExactSizeIterator<Item = (f64, f64)> + '_ {
        self.rytov_tables
            .iter()
            .map(|t| (t.rx_alt_m(), t.tx_alt_m()))
    }

    /// The nearest precomputed table matching this (receiver, transmitter)
    /// altitude pair within the class tolerances, or `None` when the pair
    /// has no matching class and must be evaluated exactly.
    fn rytov_table_for(&self, rx_alt_m: f64, tx_alt_m: f64) -> Option<&RytovTable> {
        let tx_tol = |tx_class: f64| {
            if tx_class < Self::TX_SPLIT_M {
                2_500.0
            } else {
                50_000.0
            }
        };
        self.rytov_tables
            .iter()
            .filter(|t| {
                (rx_alt_m - t.rx_alt_m()).abs() <= Self::RX_TOL_M
                    && (tx_alt_m - t.tx_alt_m()).abs() <= tx_tol(t.tx_alt_m())
            })
            .min_by(|a, b| {
                let ta = (tx_alt_m - a.tx_alt_m()).abs();
                let tb = (tx_alt_m - b.tx_alt_m()).abs();
                ta.total_cmp(&tb).then(
                    (rx_alt_m - a.rx_alt_m())
                        .abs()
                        .total_cmp(&(rx_alt_m - b.rx_alt_m()).abs()),
                )
            })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Fiber transmissivity between two static ground positions.
    pub fn fiber_eta(&self, a: Geodetic, b: Geodetic) -> f64 {
        let dist = vincenty_m(a, b, &WGS84).unwrap_or_else(|| qntn_geo::haversine_m(a, b, &WGS84));
        FiberChannel::new(dist, self.config.fiber_attenuation_db_per_km).transmissivity()
    }

    /// FSO transmissivity between two hosts at a time step, or `None` when
    /// the pair has no FSO link class (e.g. two ground nodes) or the
    /// geometry rules it out (below horizon, ISL beyond cutoff).
    pub fn fso_eta(&self, a: &Host, b: &Host, step: usize) -> Option<f64> {
        // Classify the pair.
        let both_ground = a.is_ground() && b.is_ground();
        if both_ground {
            return None;
        }
        let both_airborne_space = a.is_satellite() && b.is_satellite();
        if both_airborne_space {
            if !self.config.enable_isl {
                return None;
            }
            let pa = a.ecef_at(step);
            let pb = b.ecef_at(step);
            let range = pa.distance(pb);
            if range > self.config.isl_max_range_m || range <= 0.0 {
                return None;
            }
            let geom = FsoGeometry::downlink(
                a.aperture_m,
                a.altitude_at(step),
                b.aperture_m,
                b.altitude_at(step),
                range,
                std::f64::consts::FRAC_PI_2, // irrelevant in vacuum
            );
            return Some(FsoChannel::new(geom, self.config.fso).transmissivity());
        }

        // Ground–satellite, ground–HAP, HAP–HAP or HAP–satellite: order by
        // altitude.
        let (low, high) = if a.altitude_at(step) <= b.altitude_at(step) {
            (a, b)
        } else {
            (b, a)
        };
        let low_pos = low.geodetic_at(step);
        let look = look_angles_ecef(low_pos, high.ecef_at(step), &WGS84);
        // Visibility: a ground endpoint needs positive elevation; between
        // two *elevated* platforms (e.g. a HAP fleet) the line of sight is
        // legitimately a fraction of a degree below the local horizontal,
        // so the test is instead that the ray clears the dense atmosphere.
        if low_pos.alt_m < 10_000.0 {
            if look.elevation <= 0.0 {
                return None; // below the horizon
            }
        } else if ray_min_altitude_m(low.ecef_at(step), high.ecef_at(step)) < 10_000.0 {
            return None; // grazing the troposphere / the planet
        }
        let geom = FsoGeometry::downlink(
            high.aperture_m,
            high.altitude_at(step),
            low.aperture_m,
            low_pos.alt_m,
            look.range_m,
            look.elevation,
        );
        let channel = FsoChannel::new(geom, self.config.fso);
        // Cached Rytov when a table matches this pair's altitude classes;
        // exact evaluation otherwise (a mismatched-altitude table would be
        // silently wrong, the bug this keying exists to prevent).
        let rytov = if matches!(self.config.fso.elevation_mode, ElevationMode::Geometric)
            && low.is_ground()
            && (high.is_satellite() || high.is_hap())
        {
            self.rytov_table_for(low_pos.alt_m, high.altitude_at(step))
                .map(|t| t.lookup(look.elevation))
        } else {
            None
        };
        Some(channel.budget_with_rytov(rytov).eta_total())
    }

    /// Phase 1 of the batched η path: run [`LinkEvaluator::fso_eta`]'s
    /// classification and geometry for one pair, then either resolve it
    /// immediately or queue its SoA row. Resolved outcomes carry exactly
    /// the value `fso_eta` returns (the no-link cases, plus the paths the
    /// batch kernel does not model — ISLs and exo-atmospheric pairs —
    /// which are evaluated scalar right here); queued pairs get their η
    /// from [`FsoBatch::compute`], bit-identical to the scalar path by the
    /// kernel's contract. The split exists so [`crate::pipeline::LinkMap`]
    /// can gather a whole step's ground–satellite links and run the
    /// Rytov/diffraction/budget math as stage loops over arrays.
    pub fn fso_eta_batch_enqueue(
        &self,
        a: &Host,
        b: &Host,
        step: usize,
        batch: &mut FsoBatch,
    ) -> BatchOutcome {
        if (a.is_ground() && b.is_ground()) || (a.is_satellite() && b.is_satellite()) {
            // No FSO class, or the ISL path — not an atmospheric downlink;
            // the scalar evaluator covers both.
            return BatchOutcome::Resolved(self.fso_eta(a, b, step));
        }
        // The same ordering, look angles and visibility gates as `fso_eta`.
        let (low, high) = if a.altitude_at(step) <= b.altitude_at(step) {
            (a, b)
        } else {
            (b, a)
        };
        let low_pos = low.geodetic_at(step);
        let look = look_angles_ecef(low_pos, high.ecef_at(step), &WGS84);
        if low_pos.alt_m < 10_000.0 {
            if look.elevation <= 0.0 {
                return BatchOutcome::Resolved(None);
            }
        } else if ray_min_altitude_m(low.ecef_at(step), high.ecef_at(step)) < 10_000.0 {
            return BatchOutcome::Resolved(None);
        }
        let geom = FsoGeometry::downlink(
            high.aperture_m,
            high.altitude_at(step),
            low.aperture_m,
            low_pos.alt_m,
            look.range_m,
            look.elevation,
        );
        if geom.is_space_only() {
            // Exo-atmospheric (never reachable while the low endpoint is a
            // ground site, but kept total): the kernel's turbulence and
            // extinction stages don't apply, so take the scalar budget.
            let channel = FsoChannel::new(geom, self.config.fso);
            return BatchOutcome::Resolved(Some(channel.budget_with_rytov(None).eta_total()));
        }
        // Resolve the effective elevation and the Rytov variance *now*, the
        // way the scalar path would: a matching table interpolates on the
        // geometric elevation, everything else computes the exact integral
        // the budget would otherwise compute internally — same expression,
        // same arguments, same bits.
        let elev = match self.config.fso.elevation_mode {
            ElevationMode::Geometric => geom.elevation_rad,
            ElevationMode::Fixed(e) => e,
        };
        let rytov = if matches!(self.config.fso.elevation_mode, ElevationMode::Geometric)
            && low.is_ground()
            && (high.is_satellite() || high.is_hap())
        {
            match self.rytov_table_for(low_pos.alt_m, high.altitude_at(step)) {
                Some(t) => t.lookup(look.elevation),
                None => self.config.fso.turbulence.rytov_variance_downlink(
                    self.config.fso.wavenumber(),
                    geom.rx_alt_m,
                    geom.tx_alt_m,
                    elev,
                ),
            }
        } else {
            self.config.fso.turbulence.rytov_variance_downlink(
                self.config.fso.wavenumber(),
                geom.rx_alt_m,
                geom.tx_alt_m,
                elev,
            )
        };
        batch.push(&geom, elev, rytov);
        BatchOutcome::Queued
    }
}

/// Disposition of one pair offered to
/// [`LinkEvaluator::fso_eta_batch_enqueue`].
#[derive(Debug, Clone, Copy)]
pub enum BatchOutcome {
    /// The pair resolved without the kernel — either no link, or a path
    /// the batch kernel does not model, evaluated scalar. The value is
    /// exactly what [`LinkEvaluator::fso_eta`] returns.
    Resolved(Option<f64>),
    /// Geometry and Rytov variance appended to the batch; the η arrives
    /// from [`FsoBatch::compute`] in push order.
    Queued,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use qntn_geo::Epoch;
    use qntn_orbit::{Ephemeris, Keplerian, PerturbationModel, Propagator};

    fn ground(lat: f64, lon: f64) -> Host {
        Host::ground("G", 0, Geodetic::from_deg(lat, lon, 300.0), 1.2)
    }

    fn hap() -> Host {
        Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3)
    }

    fn satellite(raan_deg: f64, ta_deg: f64) -> Host {
        let prop = Propagator::new(
            Keplerian::circular(
                6_871_000.0,
                53f64.to_radians(),
                raan_deg.to_radians(),
                ta_deg.to_radians(),
            ),
            Epoch::J2000,
            PerturbationModel::TwoBody,
        );
        Host::satellite(
            "S",
            Ephemeris::generate(&prop, Epoch::J2000, 30.0, 86_400.0),
            1.2,
        )
    }

    fn eval() -> LinkEvaluator {
        LinkEvaluator::new(SimConfig::default())
    }

    #[test]
    fn fiber_between_campus_nodes_is_strong() {
        let e = eval();
        let eta = e.fiber_eta(
            Geodetic::from_deg(36.1757, -85.5066, 300.0),
            Geodetic::from_deg(36.1751, -85.5067, 300.0),
        );
        assert!(eta > 0.99, "{eta}");
    }

    #[test]
    fn fiber_between_cities_fails_threshold() {
        let e = eval();
        let eta = e.fiber_eta(
            Geodetic::from_deg(36.1757, -85.5066, 300.0),
            Geodetic::from_deg(35.91, -84.3, 250.0),
        );
        assert!(eta < PAPER_THRESHOLD, "{eta}");
    }

    #[test]
    fn ground_to_ground_has_no_fso() {
        let e = eval();
        assert!(e
            .fso_eta(&ground(36.0, -85.0), &ground(35.5, -85.2), 0)
            .is_none());
    }

    #[test]
    fn hap_ground_link_is_high_quality() {
        let e = eval();
        let eta = e
            .fso_eta(&hap(), &ground(36.1757, -85.5066), 0)
            .expect("HAP should see Cookeville");
        assert!(eta > 0.9, "{eta}");
        assert!(eta >= PAPER_THRESHOLD);
        // Symmetric in argument order.
        let eta2 = e.fso_eta(&ground(36.1757, -85.5066), &hap(), 0).unwrap();
        assert!((eta - eta2).abs() < 1e-12);
    }

    #[test]
    fn below_horizon_satellite_gives_none() {
        // A satellite with RAAN/anomaly putting it on the far side of Earth
        // at t=0 must be invisible from Tennessee.
        let e = eval();
        let g = ground(36.0, -85.0);
        let mut seen_none = false;
        for ta in [0.0, 90.0, 180.0, 270.0] {
            let s = satellite(0.0, ta);
            if e.fso_eta(&g, &s, 0).is_none() {
                seen_none = true;
            }
        }
        assert!(seen_none, "some geometry must be below the horizon");
    }

    #[test]
    fn satellite_link_exists_somewhere_during_a_day() {
        let e = eval();
        let g = ground(36.0, -85.0);
        let s = satellite(260.0, 60.0);
        let best = (0..2880)
            .filter_map(|t| e.fso_eta(&g, &s, t))
            .fold(0.0_f64, f64::max);
        assert!(best > 0.0, "satellite never rose above the horizon");
    }

    #[test]
    fn cached_rytov_matches_exact_within_tolerance() {
        // Compare the cached path with an exact-Rytov evaluation.
        let cfg = SimConfig::default();
        let e = LinkEvaluator::new(cfg);
        let g = ground(36.0, -85.0);
        let s = satellite(0.0, 0.0);
        for step in (0..2880).step_by(97) {
            let Some(eta_cached) = e.fso_eta(&g, &s, step) else {
                continue;
            };
            // Exact: rebuild the channel without the cache.
            let look = look_angles_ecef(g.geodetic_at(step), s.ecef_at(step), &WGS84);
            let geom = FsoGeometry::downlink(
                1.2,
                s.altitude_at(step),
                1.2,
                300.0,
                look.range_m,
                look.elevation,
            );
            let exact = FsoChannel::new(geom, cfg.fso).transmissivity();
            assert!(
                (eta_cached - exact).abs() < 1e-4,
                "step {step}: cached {eta_cached} vs exact {exact}"
            );
        }
    }

    fn satellite_at(sma_m: f64, raan_deg: f64, ta_deg: f64) -> Host {
        let prop = Propagator::new(
            Keplerian::circular(
                sma_m,
                53f64.to_radians(),
                raan_deg.to_radians(),
                ta_deg.to_radians(),
            ),
            Epoch::J2000,
            PerturbationModel::TwoBody,
        );
        Host::satellite(
            "S",
            Ephemeris::generate(&prop, Epoch::J2000, 30.0, 86_400.0),
            1.2,
        )
    }

    #[test]
    fn rytov_cache_keys_by_altitude_class() {
        // Regression for the hardcoded 500 km / 300 m tables: an 800 km
        // constellation over a 600 m ground site must get tables built for
        // *its* altitudes, and the cached path must still track the exact
        // evaluation.
        let cfg = SimConfig::default();
        let g = Host::ground("G", 0, Geodetic::from_deg(36.0, -85.0, 600.0), 1.2);
        let s = satellite_at(7_171_000.0, 0.0, 0.0); // ~800 km altitude
        let e = LinkEvaluator::for_hosts(cfg, &[g.clone(), s.clone()]);
        let classes: Vec<(f64, f64)> = e.rytov_classes().collect();
        assert_eq!(classes.len(), 1, "{classes:?}");
        assert!((classes[0].0 - 600.0).abs() < 1e-9, "{classes:?}");
        assert!((classes[0].1 - 800_000.0).abs() < 50_000.0, "{classes:?}");
        let mut checked = 0;
        for step in (0..2880).step_by(97) {
            let Some(eta_cached) = e.fso_eta(&g, &s, step) else {
                continue;
            };
            let look = look_angles_ecef(g.geodetic_at(step), s.ecef_at(step), &WGS84);
            let geom = FsoGeometry::downlink(
                1.2,
                s.altitude_at(step),
                1.2,
                600.0,
                look.range_m,
                look.elevation,
            );
            let exact = FsoChannel::new(geom, cfg.fso).transmissivity();
            assert!(
                (eta_cached - exact).abs() < 1e-4,
                "step {step}: cached {eta_cached} vs exact {exact}"
            );
            checked += 1;
        }
        assert!(checked > 0, "satellite never visible; test is vacuous");
    }

    #[test]
    fn unmatched_altitude_class_falls_back_to_exact() {
        // The legacy evaluator only carries 300 m-ground classes; a mountain
        // site at 1500 m matches no table, so the evaluator must take the
        // exact path (bit-identical to a by-hand exact budget) instead of
        // reusing the 300 m table as the old code did.
        let cfg = SimConfig::default();
        let e = LinkEvaluator::new(cfg);
        let g = Host::ground("G", 0, Geodetic::from_deg(36.0, -85.0, 1_500.0), 1.2);
        assert!(e.rytov_table_for(1_500.0, 500_000.0).is_none());
        let s = satellite_at(6_871_000.0, 0.0, 0.0);
        let mut checked = 0;
        for step in (0..2880).step_by(53) {
            let Some(eta) = e.fso_eta(&g, &s, step) else {
                continue;
            };
            let look = look_angles_ecef(g.geodetic_at(step), s.ecef_at(step), &WGS84);
            let geom = FsoGeometry::downlink(
                1.2,
                s.altitude_at(step),
                1.2,
                1_500.0,
                look.range_m,
                look.elevation,
            );
            let exact = FsoChannel::new(geom, cfg.fso).transmissivity();
            assert!((eta - exact).abs() < 1e-15, "step {step}: {eta} vs {exact}");
            checked += 1;
        }
        assert!(checked > 0, "satellite never visible; test is vacuous");
    }

    #[test]
    fn for_hosts_derives_classes_from_host_set() {
        let cfg = SimConfig::default();
        let hosts = vec![
            Host::ground("G1", 0, Geodetic::from_deg(36.0, -85.0, 300.0), 1.2),
            Host::ground("G2", 1, Geodetic::from_deg(35.9, -84.3, 250.0), 1.2),
            Host::ground("G3", 2, Geodetic::from_deg(35.0, -85.3, 200.0), 1.2),
            hap(),
            satellite_at(6_871_000.0, 0.0, 0.0),
        ];
        let e = LinkEvaluator::for_hosts(cfg, &hosts);
        let classes: Vec<(f64, f64)> = e.rytov_classes().collect();
        // rx bins {200, 300} (250 rounds up) × tx bins {30 km, 500 km}.
        assert_eq!(classes.len(), 4, "{classes:?}");
        for rx in [200.0, 300.0] {
            for tx in [30_000.0, 500_000.0] {
                assert!(
                    classes
                        .iter()
                        .any(|&(r, t)| r == rx && (t - tx).abs() <= 50_000.0),
                    "missing class ({rx}, {tx}): {classes:?}"
                );
            }
        }
    }

    #[test]
    fn batched_path_matches_fso_eta_bit_for_bit() {
        // Every pair class the pipeline can offer the batch path — cached
        // Rytov, exact-fallback Rytov (mountain site), HAP downlink,
        // HAP–satellite, ISL, and fixed-elevation mode — must reproduce
        // the scalar evaluator bit for bit, resolved or queued.
        let mountain = Host::ground("M", 0, Geodetic::from_deg(36.0, -85.0, 1_500.0), 1.2);
        let pairs = [
            (ground(36.0, -85.0), satellite(260.0, 60.0)),
            (mountain, satellite(120.0, 180.0)),
            (ground(35.0, -85.3), hap()),
            (hap(), satellite(0.0, 0.0)),
            (satellite(0.0, 0.0), satellite(0.0, 60.0)),
        ];
        for cfg in [
            SimConfig::default(),
            SimConfig {
                fso: qntn_channel::params::FsoParams::ideal_fixed_elevation(),
                ..SimConfig::default()
            },
        ] {
            let e = LinkEvaluator::new(cfg);
            for step in (0..2880).step_by(37) {
                let mut batch = FsoBatch::default();
                let plan: Vec<BatchOutcome> = pairs
                    .iter()
                    .map(|(a, b)| e.fso_eta_batch_enqueue(a, b, step, &mut batch))
                    .collect();
                batch.compute(&e.config().fso);
                let mut slot = 0;
                for ((a, b), outcome) in pairs.iter().zip(&plan) {
                    let scalar = e.fso_eta(a, b, step).map(f64::to_bits);
                    let batched = match outcome {
                        BatchOutcome::Resolved(v) => v.map(f64::to_bits),
                        BatchOutcome::Queued => {
                            let eta = batch.eta()[slot];
                            slot += 1;
                            Some(eta.to_bits())
                        }
                    };
                    assert_eq!(batched, scalar, "step {step}: {} – {}", a.name, b.name);
                }
                assert_eq!(slot, batch.len(), "step {step}: unconsumed batch rows");
            }
        }
    }

    #[test]
    fn validate_accepts_default_and_rejects_nonsense() {
        assert!(SimConfig::default().validate().is_ok());
        let bad = |f: &dyn Fn(&mut SimConfig)| {
            let mut c = SimConfig::default();
            f(&mut c);
            c.validate()
        };
        assert!(bad(&|c| c.threshold = 0.0).is_err());
        assert!(bad(&|c| c.threshold = 1.5).is_err());
        assert!(bad(&|c| c.threshold = f64::NAN).is_err());
        assert!(bad(&|c| c.fiber_attenuation_db_per_km = -0.1).is_err());
        assert!(bad(&|c| c.fiber_attenuation_db_per_km = f64::INFINITY).is_err());
        assert!(bad(&|c| c.isl_max_range_m = 0.0).is_err());
        assert!(bad(&|c| c.fso.wavelength_m = f64::NAN).is_err());
        assert!(bad(&|c| c.fso.receiver_efficiency = 0.0).is_err());
        assert!(bad(&|c| c.fso.receiver_efficiency = 1.2).is_err());
        assert!(bad(&|c| c.fso.pointing_jitter_rad = -1e-6).is_err());
        assert!(bad(&|c| c.fso.turbulence.scale = f64::NAN).is_err());
        assert!(bad(&|c| c.fso.atmosphere.scale_height_m = 0.0).is_err());
        assert!(bad(&|c| c.fso.elevation_mode = ElevationMode::Fixed(f64::NAN)).is_err());
    }

    #[test]
    fn isl_respects_range_cutoff() {
        let cfg = SimConfig {
            isl_max_range_m: 1_000.0, // absurdly small: nothing qualifies
            ..SimConfig::default()
        };
        let e = LinkEvaluator::new(cfg);
        let s1 = satellite(0.0, 0.0);
        let s2 = satellite(0.0, 60.0);
        assert!(e.fso_eta(&s1, &s2, 0).is_none());
    }

    #[test]
    fn isl_disabled_gives_none() {
        let cfg = SimConfig {
            enable_isl: false,
            ..SimConfig::default()
        };
        let e = LinkEvaluator::new(cfg);
        let s1 = satellite(0.0, 0.0);
        let s2 = satellite(0.0, 60.0);
        assert!(e.fso_eta(&s1, &s2, 0).is_none());
    }

    #[test]
    fn in_plane_neighbours_are_below_threshold() {
        // Adjacent satellites in one plane: 60° apart at a = 6871 km is a
        // 6871 km chord — way beyond any FSO budget here.
        let cfg = SimConfig {
            isl_max_range_m: 1e7,
            ..SimConfig::default()
        };
        let e = LinkEvaluator::new(cfg);
        let s1 = satellite(0.0, 0.0);
        let s2 = satellite(0.0, 60.0);
        if let Some(eta) = e.fso_eta(&s1, &s2, 0) {
            assert!(eta < PAPER_THRESHOLD, "{eta}");
        }
    }

    #[test]
    fn ray_min_altitude_cases() {
        use qntn_geo::Vec3;
        let r = 6_371_000.0;
        // Two points at 30 km altitude, ~90 km apart: midpoint dips but
        // stays high.
        let a = Vec3::new(r + 30_000.0, 0.0, 0.0);
        let b = Vec3::new(r + 30_000.0, 90_000.0, 0.0).normalized().unwrap() * (r + 30_000.0);
        let min_alt = ray_min_altitude_m(a, b);
        assert!((29_000.0..30_001.0).contains(&min_alt), "{min_alt}");
        // Antipodal-ish chord passes through the planet.
        let c = Vec3::new(-(r + 30_000.0), 0.0, 0.0);
        assert!(ray_min_altitude_m(a, c) < 0.0);
        // Degenerate zero-length segment.
        assert!((ray_min_altitude_m(a, a) - 30_000.0).abs() < 1.0);
    }

    #[test]
    fn hap_to_hap_stratospheric_link_evaluates() {
        // A short stratospheric hop (~40 km) with 30 cm apertures clears
        // the threshold; a city-spacing hop (~110 km) does not — the
        // diffraction budget of a 30 cm receiver runs out (the fleet
        // experiment's design finding).
        let e = eval();
        let h1 = Host::hap("H1", Geodetic::from_deg(36.00, -85.00, 30_000.0), 0.3);
        let near = Host::hap("H2", Geodetic::from_deg(36.00, -84.56, 30_000.0), 0.3);
        let eta = e
            .fso_eta(&h1, &near, 0)
            .expect("stratospheric path is clear");
        assert!(eta >= PAPER_THRESHOLD, "40 km hop: {eta}");
        let far = Host::hap("H3", Geodetic::from_deg(35.90, -83.80, 30_000.0), 0.3);
        let eta_far = e.fso_eta(&h1, &far, 0).expect("path is clear, just lossy");
        assert!(eta_far < PAPER_THRESHOLD, "110 km hop: {eta_far}");
    }

    #[test]
    fn hap_link_through_the_planet_is_rejected() {
        let e = eval();
        let h1 = Host::hap("H1", Geodetic::from_deg(36.0, -85.0, 30_000.0), 0.3);
        let h2 = Host::hap("H2", Geodetic::from_deg(-36.0, 95.0, 30_000.0), 0.3);
        assert!(e.fso_eta(&h1, &h2, 0).is_none());
    }

    #[test]
    fn rytov_table_interpolation_is_smooth() {
        let t = RytovTable::build(&FsoParams::ideal(), 300.0, 500_000.0);
        let a = t.lookup(0.5);
        let b = t.lookup(0.5001);
        assert!((a - b).abs() / a.max(1e-30) < 1e-2);
        // Clamps outside the grid.
        let lo = t.lookup(0.0);
        let hi = t.lookup(2.0);
        assert!(lo.is_finite() && hi.is_finite());
    }
}
