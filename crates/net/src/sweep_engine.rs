//! The sweep engine: fast, deterministic evaluation of the daily time loop.
//!
//! Every headline number of the paper (Figs. 6–8, Table III) is a function
//! of the thresholded link graph at up to 2880 time steps. The naive loop
//! re-evaluates every host pair at every step — O(N²) full FSO budgets per
//! step, although a 500 km satellite is above a Tennessee site's horizon
//! only a few percent of the day. [`SweepEngine`] removes that waste in
//! three layers:
//!
//! 1. **Contact-window pruning** ([`ContactWindows`]): per (ground,
//!    satellite) pair, the zero-elevation-mask visibility windows are
//!    precomputed from the movement sheets with `qntn-orbit`'s pass
//!    machinery (one dot product per sample). Outside a window the link
//!    evaluator is provably `None` (it requires strictly positive
//!    elevation, the windows include elevation ≥ 0), so the engine skips
//!    the FSO budget entirely. Inside a window the evaluator runs
//!    unchanged — pruning is exact, not approximate.
//! 2. **Step parallelism**: time steps are independent, so sweeps fan them
//!    across rayon workers and reassemble results in step order. A
//!    `--no-parallel` escape hatch ([`SweepEngine::with_parallel`]) runs
//!    the same closures on one thread; both paths are bit-identical
//!    because no result depends on worker assignment.
//! 3. **Scratch reuse** ([`SweepScratch`]): each worker keeps one full-
//!    graph buffer, one thresholded-graph buffer and one Bellman–Ford
//!    table, reset (not reallocated) per step via `Graph::reset` /
//!    `SsspTable::reset`.
//! 4. **Incremental topology + batched η** ([`crate::pipeline::StepCursor`]):
//!    each worker's scratch also carries a step cursor, and workers sweep
//!    *contiguous* step chunks, so between consecutive steps the active
//!    ground–satellite set advances from the Scene's precomputed edge
//!    deltas in O(windows opened/closed) instead of a full candidate
//!    rescan — and the surviving links evaluate through the SoA
//!    `FsoBatch` kernel. On a non-consecutive step the cursor reseeds
//!    itself, bit-identically, so chunk boundaries cannot affect results.
//!
//! **Determinism guarantee**: for any step, the engine's graphs are
//! bit-identical — including adjacency-list order, which routing
//! tie-breaking depends on — to `QuantumNetworkSim::graph_at` /
//! `active_graph_at`, *by construction*: both delegate to the shared
//! Scene → LinkMap → Topology pipeline in [`crate::pipeline`], so there is
//! only one code path that builds a per-step graph (fiber mesh first, then
//! host pairs in ascending `(a, b)` order; the thresholded graph is
//! derived from it by the same `thresholded` filter). The pre-pipeline
//! differential tests (naive == sequential == parallel down to the
//! adjacency lists) are kept as regression.

use crate::coverage::{CoverageAnalyzer, CoverageReport};
use crate::entanglement::distribute_with;
use crate::faults::CompiledFaults;
use crate::pipeline::{
    build_time_expanded_into, build_topology_into, build_topology_into_with, LinkMap, Scene,
    StepCursor,
};
use crate::requests::{
    aggregate_outcomes, aggregate_retry_outcomes, RequestOutcome, RequestWorkload, RetryOutcome,
    RetryPolicy, RetryStats, SweepStats,
};
use crate::simulator::QuantumNetworkSim;
use qntn_common::{QntnError, StepId};
use qntn_routing::{Graph, RouteMetric, SsspTable, TimeExpandedGraph, TimeTable};
use rayon::prelude::*;
use std::sync::Arc;

pub use crate::pipeline::ContactWindows;

/// Per-worker reusable buffers for a sweep (one full graph, one
/// thresholded graph, one Bellman–Ford table).
#[derive(Debug, Default)]
pub struct SweepScratch {
    /// The unthresholded graph of the last [`SweepEngine::active_graph_into`].
    pub full: Graph,
    /// The thresholded graph of the last [`SweepEngine::active_graph_into`].
    pub active: Graph,
    /// Routing scratch for [`distribute_with`].
    pub sssp: SsspTable,
    /// Incremental-topology state: the visible candidate set carried from
    /// step to step (plus the batched-η scratch). Self-seeding — a fresh
    /// or out-of-sequence cursor rebuilds itself bit-identically.
    pub cursor: StepCursor,
    /// The layered graph of the last [`SweepEngine::time_expanded_into`].
    pub texp: TimeExpandedGraph,
    /// Routing scratch for the time-expanded solver.
    pub ttable: TimeTable,
}

/// The window-pruned, step-parallel, buffer-reusing sweep evaluator. See
/// the module docs for the design and the determinism guarantee.
#[derive(Debug, Clone)]
pub struct SweepEngine<'a> {
    sim: &'a QuantumNetworkSim,
    /// Window-pruned classification of the simulator's candidate edges.
    scene: Scene,
    parallel: bool,
    faults: Option<Arc<CompiledFaults>>,
}

impl<'a> SweepEngine<'a> {
    /// An engine with full-day contact windows (the right choice when most
    /// steps will be visited, e.g. coverage analysis).
    pub fn new(sim: &'a QuantumNetworkSim) -> Self {
        Self::with_windows(sim, ContactWindows::for_sim(sim))
    }

    /// An engine with windows computed only at `steps` (the right choice
    /// for sampled-step request sweeps).
    pub fn for_steps(sim: &'a QuantumNetworkSim, steps: &[usize]) -> Self {
        Self::with_windows(sim, ContactWindows::for_sim_steps(sim, steps))
    }

    /// [`SweepEngine::new`] with the full-day window precompute itself
    /// under a cancellation/deadline budget — the precompute is the one
    /// setup phase long enough to need it on large constellations.
    pub fn try_new(
        sim: &'a QuantumNetworkSim,
        control: &qntn_common::RunControl,
    ) -> Result<Self, qntn_common::StopCause> {
        Ok(Self::with_windows(
            sim,
            ContactWindows::for_sim_with_control(sim, control)?,
        ))
    }

    /// An engine reusing precomputed windows — e.g. a
    /// [`ContactWindows::prefix`] of one full-constellation precompute
    /// shared across every size of a constellation sweep.
    ///
    /// # Panics
    /// Panics when the windows' shape does not match the simulator's
    /// ground/satellite counts or step count; [`SweepEngine::try_with_windows`]
    /// is the non-panicking form.
    pub fn with_windows(sim: &'a QuantumNetworkSim, windows: ContactWindows) -> Self {
        match Self::try_with_windows(sim, windows) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`SweepEngine::with_windows`] that reports a shape mismatch as a
    /// [`QntnError::ShapeMismatch`] instead of panicking — the right form
    /// at request boundaries, where mismatched precomputes are an input
    /// error, not a bug.
    pub fn try_with_windows(
        sim: &'a QuantumNetworkSim,
        windows: ContactWindows,
    ) -> Result<Self, QntnError> {
        let scene = Scene::new(sim.hosts(), sim.evaluator(), sim.steps(), windows)?;
        Ok(SweepEngine {
            sim,
            scene,
            parallel: true,
            faults: None,
        })
    }

    /// Toggle step-level parallelism (the `--no-parallel` escape hatch).
    /// Results are bit-identical either way; the sequential path exists to
    /// demonstrate that, and for single-core or debugging runs.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attach a compiled fault mask: every graph the engine builds then
    /// matches [`QuantumNetworkSim::graph_at_with_faults`] bit-for-bit
    /// (the fault-extended differential contract). The mask is `Arc`-shared
    /// so one compile serves every worker.
    ///
    /// # Panics
    /// Panics when the mask's shape does not match the simulator.
    pub fn with_faults(mut self, faults: Arc<CompiledFaults>) -> Self {
        assert_eq!(
            faults.hosts(),
            self.sim.hosts().len(),
            "faults compiled for a different host set"
        );
        assert_eq!(
            faults.steps(),
            self.sim.steps(),
            "faults compiled for a different time span"
        );
        self.faults = Some(faults);
        self
    }

    /// The attached fault mask, if any.
    #[inline]
    pub fn faults(&self) -> Option<&CompiledFaults> {
        self.faults.as_deref()
    }

    /// The simulator this engine evaluates.
    #[inline]
    pub fn sim(&self) -> &QuantumNetworkSim {
        self.sim
    }

    /// The contact windows in use.
    #[inline]
    pub fn windows(&self) -> &ContactWindows {
        self.scene.windows()
    }

    /// The window-pruned [`Scene`] this engine evaluates through.
    #[inline]
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Build the full (unthresholded) graph at `step` into `g` — a thin
    /// wrapper over the shared Scene → LinkMap → Topology pipeline
    /// ([`crate::pipeline::build_topology_into`]), so the result is
    /// bit-identical to [`QuantumNetworkSim::graph_at`] (or, with a fault
    /// mask attached, [`QuantumNetworkSim::graph_at_with_faults`]) by
    /// construction: both run the exact same code.
    pub fn graph_into(&self, step: usize, g: &mut Graph) {
        let links = LinkMap::new(self.sim, &self.scene, self.faults.as_deref());
        build_topology_into(&links, StepId(step), g);
    }

    /// The full graph at `step` (allocating convenience wrapper).
    pub fn graph_at(&self, step: usize) -> Graph {
        let mut g = Graph::default();
        self.graph_into(step, &mut g);
        g
    }

    /// Build the threshold-gated graph at `step` into `scratch.active`
    /// (using `scratch.full` as the intermediate), matching
    /// [`QuantumNetworkSim::active_graph_at`] bit-for-bit.
    ///
    /// This is the engine's hot path, so it runs the *incremental*
    /// pipeline entry point: `scratch.cursor` carries the visible
    /// candidate set between calls (O(window transitions) on consecutive
    /// steps) and the batched η kernel evaluates the survivors. The
    /// rescan path stays available as [`SweepEngine::graph_into`], and
    /// the two are differentially pinned against each other (and against
    /// the naive simulator) by the engine tests and
    /// `tests/pipeline_goldens.rs`.
    pub fn active_graph_into(&self, step: usize, scratch: &mut SweepScratch) {
        let links = LinkMap::new(self.sim, &self.scene, self.faults.as_deref());
        build_topology_into_with(&links, StepId(step), &mut scratch.cursor, &mut scratch.full);
        scratch
            .full
            .thresholded_into(self.sim.evaluator().config().threshold, &mut scratch.active);
    }

    /// Build the time-expanded graph spanning steps
    /// `arrival ..= arrival + horizon` (clamped to the last step) into
    /// `scratch.texp` — the hold-aware serving mode's topology entry
    /// point, a thin wrapper over the pipeline's single materializer
    /// [`crate::pipeline::build_time_expanded_into`].
    ///
    /// Each layer runs the exact per-step path of
    /// [`SweepEngine::active_graph_into`] (cursor-driven build, then
    /// threshold), so with `horizon == 0` the single layer's edge list is
    /// bitwise the per-step active graph's — the seam the zero-horizon
    /// differential contract rests on. `hold_factors` comes from
    /// [`crate::pipeline::host_hold_factors`]; hosts with factor `0.0`
    /// get no hold edges.
    pub fn time_expanded_into(
        &self,
        arrival: usize,
        horizon: usize,
        hold_factors: &[f64],
        scratch: &mut SweepScratch,
    ) {
        let links = LinkMap::new(self.sim, &self.scene, self.faults.as_deref());
        build_time_expanded_into(
            &links,
            StepId(arrival),
            horizon,
            hold_factors,
            &mut scratch.cursor,
            &mut scratch.full,
            &mut scratch.active,
            &mut scratch.texp,
        );
    }

    /// The threshold-gated graph at `step` (allocating convenience wrapper).
    pub fn active_graph_at(&self, step: usize) -> Graph {
        let mut scratch = SweepScratch::default();
        self.active_graph_into(step, &mut scratch);
        scratch.active
    }

    /// Run `f` over `steps` — in parallel with per-worker scratch by
    /// default, sequentially with one scratch under
    /// [`SweepEngine::with_parallel`]`(false)` — returning results in step
    /// order either way.
    pub fn map_steps<R, F>(&self, steps: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut SweepScratch, usize) -> R + Sync,
    {
        if self.parallel {
            // Contiguous chunks (instead of per-step work items) keep each
            // worker's step cursor on consecutive steps, where the
            // incremental topology path is O(window transitions). Chunking
            // cannot affect results: `f` sees only its scratch and the
            // step, and the scratch's every construction path is
            // bit-identical regardless of how steps are grouped — the
            // chunk size is purely a load-balance/latency knob.
            let chunk = steps
                .len()
                .div_ceil(4 * rayon::current_num_threads().max(1))
                .max(1);
            let chunks: Vec<&[usize]> = steps.chunks(chunk).collect();
            let per_chunk: Vec<Vec<R>> = chunks
                .par_iter()
                .map(|chunk| {
                    let mut scratch = SweepScratch::default();
                    chunk.iter().map(|&step| f(&mut scratch, step)).collect()
                })
                .collect();
            per_chunk.into_iter().flatten().collect()
        } else {
            let mut scratch = SweepScratch::default();
            steps.iter().map(|&step| f(&mut scratch, step)).collect()
        }
    }

    /// Per-step "all LANs interconnected" flags over the whole window.
    pub fn connectivity_flags(&self) -> Vec<bool> {
        let steps: Vec<usize> = (0..self.sim.steps()).collect();
        self.map_steps(&steps, |scratch, step| {
            self.active_graph_into(step, scratch);
            self.sim.lans_interconnected(&scratch.active)
        })
    }

    /// Full-window coverage report (paper Eq. 6–7).
    pub fn coverage(&self) -> CoverageReport {
        CoverageAnalyzer::from_flags(self.connectivity_flags(), self.sim.step_s())
    }

    /// The paper's request sweep: per step, a seeded workload of
    /// `requests_per_step` inter-LAN requests attempted on that step's
    /// thresholded graph. Identical statistics to the naive
    /// [`crate::requests`] path (which now delegates here).
    pub fn sweep(
        &self,
        steps: &[usize],
        requests_per_step: usize,
        seed: u64,
        metric: RouteMetric,
    ) -> SweepStats {
        let per_step: Vec<Vec<RequestOutcome>> = self.map_steps(steps, |scratch, step| {
            let workload = RequestWorkload::generate(
                self.sim,
                requests_per_step,
                seed ^ (step as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            self.active_graph_into(step, scratch);
            let SweepScratch { active, sssp, .. } = scratch;
            workload
                .requests
                .iter()
                .map(
                    |r| match distribute_with(active, r.src, r.dst, metric, sssp) {
                        Some(d) => RequestOutcome::Served(d),
                        None => RequestOutcome::Unserved,
                    },
                )
                .collect()
        });
        aggregate_outcomes(&per_step)
    }

    /// The request sweep with retry-with-backoff semantics: per arrival
    /// step, the seeded workload is attempted on the arrival graph, and
    /// blocked requests are re-attempted at `policy`'s backoff steps (still
    /// within the day) until they are served or expire. With a fault mask
    /// attached, every attempt sees the masked graph; outcomes are
    /// identical to the naive
    /// [`RequestWorkload::evaluate_with_retries`] loop, request by request.
    ///
    /// Note retries look *forward in time* from each arrival: arrival steps
    /// near the end of the day get truncated schedules, exactly as the
    /// naive path truncates them.
    pub fn sweep_with_retries(
        &self,
        steps: &[usize],
        requests_per_step: usize,
        seed: u64,
        metric: RouteMetric,
        policy: RetryPolicy,
    ) -> RetryStats {
        let per_step: Vec<Vec<RetryOutcome>> = self.map_steps(steps, |scratch, arrival| {
            let workload = RequestWorkload::generate(
                self.sim,
                requests_per_step,
                seed ^ (arrival as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let schedule = policy.attempt_steps(arrival, self.sim.steps());
            let mut outcomes: Vec<Option<RetryOutcome>> = vec![None; workload.requests.len()];
            let mut pending = workload.requests.len();
            for (k, &t) in schedule.iter().enumerate() {
                if pending == 0 {
                    break;
                }
                self.active_graph_into(t, scratch);
                let SweepScratch { active, sssp, .. } = scratch;
                for (r, slot) in workload.requests.iter().zip(outcomes.iter_mut()) {
                    if slot.is_some() {
                        continue;
                    }
                    if let Some(d) = distribute_with(active, r.src, r.dst, metric, sssp) {
                        *slot = Some(if k == 0 {
                            RetryOutcome::ServedFirstTry(d)
                        } else {
                            RetryOutcome::ServedAfterRetry {
                                distribution: d,
                                attempts: k + 1,
                                waited_steps: t - arrival,
                            }
                        });
                        pending -= 1;
                    }
                }
            }
            outcomes
                .into_iter()
                .map(|o| {
                    o.unwrap_or(RetryOutcome::Expired {
                        attempts: schedule.len(),
                    })
                })
                .collect()
        });
        aggregate_retry_outcomes(&per_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::linkeval::SimConfig;
    use qntn_geo::{Epoch, Geodetic};
    use qntn_orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};

    fn sat_ephemerides(n_sats: usize, steps: usize) -> Vec<Ephemeris> {
        let props: Vec<Propagator> = paper_constellation(n_sats)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0)
    }

    fn grounds() -> Vec<Host> {
        vec![
            Host::ground(
                "TTU-0",
                0,
                Geodetic::from_deg(36.1757, -85.5066, 300.0),
                1.2,
            ),
            Host::ground(
                "TTU-1",
                0,
                Geodetic::from_deg(36.1751, -85.5067, 300.0),
                1.2,
            ),
            Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground(
                "EPB-0",
                2,
                Geodetic::from_deg(35.04159, -85.2799, 200.0),
                1.2,
            ),
        ]
    }

    fn sat_sim(n_sats: usize, steps: usize) -> QuantumNetworkSim {
        let mut hosts = grounds();
        for (i, eph) in sat_ephemerides(n_sats, steps).into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    }

    fn hybrid_sim(steps: usize) -> QuantumNetworkSim {
        let mut hosts = grounds();
        hosts.push(Host::hap(
            "HAP",
            Geodetic::from_deg(35.6692, -85.0662, 30_000.0),
            0.3,
        ));
        for (i, eph) in sat_ephemerides(4, steps).into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    }

    fn assert_graphs_identical(a: &Graph, b: &Graph, ctx: &str) {
        assert_eq!(a.node_count(), b.node_count(), "{ctx}: node count");
        assert_eq!(a.edge_count(), b.edge_count(), "{ctx}: edge count");
        for u in 0..a.node_count() {
            assert_eq!(
                a.neighbors(u),
                b.neighbors(u),
                "{ctx}: adjacency of node {u}"
            );
        }
    }

    #[test]
    fn windows_are_a_superset_of_qualifying_links() {
        // Wherever the naive evaluator finds a ground-satellite link, the
        // window must be open — otherwise pruning would drop real links.
        let sim = sat_sim(6, 240);
        let windows = ContactWindows::for_sim(&sim);
        let hosts = sim.hosts();
        for step in (0..240).step_by(7) {
            for (low, g) in hosts.iter().enumerate().filter(|(_, h)| h.is_ground()) {
                for (sat_slot, s) in hosts.iter().filter(|h| h.is_satellite()).enumerate() {
                    if sim.evaluator().fso_eta(g, s, step).is_some() {
                        assert!(
                            windows.visible(sat_slot, step, low),
                            "step {step}: window closed over a live link"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engine_graphs_match_naive_exactly() {
        for (name, sim) in [("sat", sat_sim(6, 120)), ("hybrid", hybrid_sim(120))] {
            let engine = SweepEngine::new(&sim);
            for step in (0..120).step_by(11) {
                assert_graphs_identical(
                    &engine.graph_at(step),
                    &sim.graph_at(step),
                    &format!("{name} full graph, step {step}"),
                );
                assert_graphs_identical(
                    &engine.active_graph_at(step),
                    &sim.active_graph_at(step),
                    &format!("{name} active graph, step {step}"),
                );
            }
        }
    }

    #[test]
    fn parallel_and_sequential_are_bit_identical() {
        let sim = sat_sim(6, 120);
        let par = SweepEngine::new(&sim);
        let seq = SweepEngine::new(&sim).with_parallel(false);
        assert_eq!(par.connectivity_flags(), seq.connectivity_flags());
        let steps: Vec<usize> = (0..120).step_by(13).collect();
        let metric = RouteMetric::PaperInverseEta;
        assert_eq!(
            par.sweep(&steps, 15, 2024, metric),
            seq.sweep(&steps, 15, 2024, metric)
        );
        let cov_par = par.coverage();
        let cov_seq = seq.coverage();
        assert_eq!(cov_par.connected, cov_seq.connected);
        assert_eq!(cov_par.intervals, cov_seq.intervals);
    }

    #[test]
    fn engine_sweep_matches_naive_request_loop() {
        let sim = sat_sim(6, 120);
        let engine = SweepEngine::new(&sim);
        let steps: Vec<usize> = (0..120).step_by(17).collect();
        let metric = RouteMetric::PaperInverseEta;
        let seed = 99;
        let naive: Vec<Vec<RequestOutcome>> = steps
            .iter()
            .map(|&step| {
                let w = RequestWorkload::generate(
                    &sim,
                    10,
                    seed ^ (step as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                w.evaluate_at(&sim, step, metric)
            })
            .collect();
        assert_eq!(
            engine.sweep(&steps, 10, seed, metric),
            aggregate_outcomes(&naive)
        );
    }

    #[test]
    fn prefix_windows_match_fresh_windows() {
        // One 12-satellite precompute, reused for the 5-satellite prefix.
        let steps = 120;
        let sim12 = sat_sim(12, steps);
        let sim5 = sat_sim(5, steps);
        let shared = ContactWindows::for_sim(&sim12);
        let engine_shared = SweepEngine::with_windows(&sim5, shared.prefix(5));
        let engine_fresh = SweepEngine::new(&sim5);
        for step in (0..steps).step_by(19) {
            assert_graphs_identical(
                &engine_shared.active_graph_at(step),
                &engine_fresh.active_graph_at(step),
                &format!("prefix step {step}"),
            );
        }
    }

    #[test]
    fn subset_windows_are_exact_at_their_steps() {
        let sim = sat_sim(6, 240);
        let steps: Vec<usize> = vec![3, 60, 121, 200];
        let engine = SweepEngine::for_steps(&sim, &steps);
        for &step in &steps {
            assert_graphs_identical(
                &engine.active_graph_at(step),
                &sim.active_graph_at(step),
                &format!("subset step {step}"),
            );
        }
        // Uncomputed steps stay correct (all-visible fallback, no pruning).
        assert_graphs_identical(
            &engine.active_graph_at(42),
            &sim.active_graph_at(42),
            "uncomputed step",
        );
    }

    #[test]
    fn coverage_matches_analyzer() {
        let sim = sat_sim(6, 240);
        let from_engine = SweepEngine::new(&sim).coverage();
        let naive: Vec<bool> = (0..sim.steps())
            .map(|t| sim.lans_interconnected(&sim.active_graph_at(t)))
            .collect();
        assert_eq!(from_engine.connected, naive);
    }

    #[test]
    #[should_panic(expected = "different constellation")]
    fn mismatched_windows_are_rejected() {
        let sim = sat_sim(6, 120);
        let other = sat_sim(5, 120);
        let windows = ContactWindows::for_sim(&other);
        let _ = SweepEngine::with_windows(&sim, windows);
    }

    #[test]
    fn try_with_windows_reports_the_mismatch_as_an_error() {
        let sim = sat_sim(6, 120);
        let other = sat_sim(5, 120);
        match SweepEngine::try_with_windows(&sim, ContactWindows::for_sim(&other)) {
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("different constellation") && msg.contains("expected 6, got 5"),
                    "unhelpful mismatch report: {msg}"
                );
            }
            Ok(_) => panic!("mismatched windows were accepted"),
        }
    }

    #[test]
    fn faulted_engine_graphs_match_naive_exactly() {
        use crate::faults::FaultModel;
        for (name, sim) in [("sat", sat_sim(6, 120)), ("hybrid", hybrid_sim(120))] {
            for intensity in [0.5, 2.0, FaultModel::INTENSITY_CAP] {
                let faults = Arc::new(
                    FaultModel::standard(314)
                        .with_intensity(intensity)
                        .compile(&sim),
                );
                let engine = SweepEngine::new(&sim).with_faults(faults.clone());
                for step in (0..120).step_by(11) {
                    assert_graphs_identical(
                        &engine.graph_at(step),
                        &sim.graph_at_with_faults(step, &faults),
                        &format!("{name} faulted full graph, i={intensity}, step {step}"),
                    );
                    assert_graphs_identical(
                        &engine.active_graph_at(step),
                        &sim.active_graph_at_with_faults(step, &faults),
                        &format!("{name} faulted active graph, i={intensity}, step {step}"),
                    );
                }
            }
        }
    }

    #[test]
    fn identity_faults_leave_the_engine_bit_identical() {
        use crate::faults::FaultModel;
        let sim = hybrid_sim(120);
        let clean = SweepEngine::new(&sim);
        let masked = SweepEngine::new(&sim).with_faults(Arc::new(FaultModel::none().compile(&sim)));
        assert!(masked.faults().unwrap().is_identity());
        for step in (0..120).step_by(13) {
            assert_graphs_identical(
                &clean.graph_at(step),
                &masked.graph_at(step),
                &format!("identity mask, step {step}"),
            );
        }
        assert_eq!(clean.connectivity_flags(), masked.connectivity_flags());
        let steps: Vec<usize> = (0..120).step_by(13).collect();
        let metric = RouteMetric::PaperInverseEta;
        assert_eq!(
            clean.sweep(&steps, 10, 2024, metric),
            masked.sweep(&steps, 10, 2024, metric)
        );
        assert_eq!(
            clean.sweep_with_retries(&steps, 10, 2024, metric, RetryPolicy::standard()),
            masked.sweep_with_retries(&steps, 10, 2024, metric, RetryPolicy::standard())
        );
    }

    #[test]
    fn retry_sweep_matches_the_naive_retry_loop() {
        use crate::faults::FaultModel;
        let sim = sat_sim(6, 120);
        let faults = Arc::new(FaultModel::standard(777).with_intensity(3.0).compile(&sim));
        let engine = SweepEngine::new(&sim).with_faults(faults.clone());
        let steps: Vec<usize> = (0..120).step_by(17).collect();
        let metric = RouteMetric::PaperInverseEta;
        let (seed, policy) = (99, RetryPolicy::standard());
        let naive: Vec<Vec<RetryOutcome>> = steps
            .iter()
            .map(|&arrival| {
                let w = RequestWorkload::generate(
                    &sim,
                    10,
                    seed ^ (arrival as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                w.evaluate_with_retries(&sim, arrival, metric, policy, &faults)
            })
            .collect();
        assert_eq!(
            engine.sweep_with_retries(&steps, 10, seed, metric, policy),
            aggregate_retry_outcomes(&naive)
        );
    }

    #[test]
    fn retry_sweep_is_parallel_sequential_identical() {
        use crate::faults::FaultModel;
        let sim = sat_sim(6, 120);
        let faults = Arc::new(FaultModel::standard(5).with_intensity(2.0).compile(&sim));
        let par = SweepEngine::new(&sim).with_faults(faults.clone());
        let seq = SweepEngine::new(&sim)
            .with_faults(faults)
            .with_parallel(false);
        let steps: Vec<usize> = (0..120).step_by(13).collect();
        let metric = RouteMetric::PaperInverseEta;
        assert_eq!(
            par.sweep_with_retries(&steps, 12, 2024, metric, RetryPolicy::standard()),
            seq.sweep_with_retries(&steps, 12, 2024, metric, RetryPolicy::standard())
        );
        assert_eq!(par.connectivity_flags(), seq.connectivity_flags());
    }

    #[test]
    fn served_requests_are_monotone_in_fault_intensity() {
        use crate::faults::FaultModel;
        let sim = sat_sim(6, 120);
        let steps: Vec<usize> = (0..120).step_by(7).collect();
        let metric = RouteMetric::PaperInverseEta;
        let mut prev_served = usize::MAX;
        for intensity in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let faults = Arc::new(
                FaultModel::standard(42)
                    .with_intensity(intensity)
                    .compile(&sim),
            );
            let engine = SweepEngine::new(&sim).with_faults(faults);
            let stats = engine.sweep(&steps, 15, 2024, metric);
            assert!(
                stats.served <= prev_served,
                "served went up with intensity {intensity}: {} > {prev_served}",
                stats.served
            );
            prev_served = stats.served;
        }
    }

    #[test]
    #[should_panic(expected = "different time span")]
    fn mismatched_faults_are_rejected() {
        use crate::faults::FaultModel;
        let sim = sat_sim(4, 120);
        let other = sat_sim(4, 60);
        let faults = Arc::new(FaultModel::standard(1).compile(&other));
        let _ = SweepEngine::new(&sim).with_faults(faults);
    }
    #[test]
    fn time_expanded_layer_zero_is_the_per_step_active_graph_bitwise() {
        let sim = hybrid_sim(40);
        let engine = SweepEngine::new(&sim);
        let factors = crate::pipeline::host_hold_factors(
            sim.hosts(),
            &qntn_quantum::memory::ClassMemory::standard(),
        );
        let mut per_step = SweepScratch::default();
        let mut held = SweepScratch::default();
        for step in [0usize, 7, 19, 39] {
            engine.active_graph_into(step, &mut per_step);
            engine.time_expanded_into(step, 0, &factors, &mut held);
            let texp = &held.texp;
            assert_eq!(texp.layers(), 1, "step {step}");
            assert_eq!(texp.base_step(), step);
            assert_eq!(texp.node_count(), sim.hosts().len());
            let expected: Vec<(usize, usize, u64)> = per_step
                .active
                .edges()
                .map(|(u, v, eta)| (u, v, eta.to_bits()))
                .collect();
            let got: Vec<(usize, usize, u64)> = texp
                .edges()
                .iter()
                .map(|e| {
                    assert!(!e.hold, "step {step}: horizon 0 has no hold edges");
                    (e.from, e.to, e.eta.to_bits())
                })
                .collect();
            assert_eq!(got, expected, "step {step}: edge sequence");
            // The builder's last-layer active graph is the per-step one.
            assert_graphs_identical(&held.active, &per_step.active, "builder scratch");
        }
    }

    #[test]
    fn time_expanded_horizon_clamps_and_counts_holds() {
        let sim = sat_sim(3, 20);
        let engine = SweepEngine::new(&sim);
        let memory = qntn_quantum::memory::ClassMemory::standard();
        let factors = crate::pipeline::host_hold_factors(sim.hosts(), &memory);
        let n_hosts = sim.hosts().len();
        let mut scratch = SweepScratch::default();
        // Horizon past the end of the day clamps to the last step.
        engine.time_expanded_into(15, 100, &factors, &mut scratch);
        assert_eq!(scratch.texp.layers(), 5, "steps 15..=19");
        assert_eq!(scratch.texp.node_count(), 5 * n_hosts);
        let holds = scratch.texp.edges().iter().filter(|e| e.hold).count();
        assert_eq!(holds, 4 * n_hosts, "one hold per host per layer gap");
        // Zero-memory factors emit no hold edges at all.
        let none = crate::pipeline::host_hold_factors(
            sim.hosts(),
            &qntn_quantum::memory::ClassMemory::none(),
        );
        engine.time_expanded_into(15, 100, &none, &mut scratch);
        assert!(scratch.texp.edges().iter().all(|e| !e.hold));
    }

    #[test]
    fn hold_factors_follow_host_classes() {
        let sim = hybrid_sim(10);
        let memory = qntn_quantum::memory::ClassMemory {
            ground: qntn_quantum::memory::MemoryParams::with_t2_steps(40.0),
            satellite: qntn_quantum::memory::MemoryParams::none(),
            hap: qntn_quantum::memory::MemoryParams::ideal(),
        };
        let factors = crate::pipeline::host_hold_factors(sim.hosts(), &memory);
        assert_eq!(factors.len(), sim.hosts().len());
        for (host, &f) in sim.hosts().iter().zip(&factors) {
            if host.is_ground() {
                assert!((f - (-2.0f64 / 40.0).exp()).abs() < 1e-15);
            } else if host.is_satellite() {
                assert_eq!(f, 0.0);
            } else {
                assert_eq!(f, 1.0);
            }
        }
    }

    #[test]
    fn faulted_time_expanded_layer_zero_matches_faulted_per_step() {
        use crate::faults::FaultModel;
        let sim = sat_sim(4, 60);
        let faults = Arc::new(FaultModel::standard(11).with_intensity(2.0).compile(&sim));
        let engine = SweepEngine::new(&sim).with_faults(faults);
        let factors = crate::pipeline::host_hold_factors(
            sim.hosts(),
            &qntn_quantum::memory::ClassMemory::none(),
        );
        let mut per_step = SweepScratch::default();
        let mut held = SweepScratch::default();
        for step in [0usize, 13, 31, 59] {
            engine.active_graph_into(step, &mut per_step);
            engine.time_expanded_into(step, 0, &factors, &mut held);
            let expected: Vec<(usize, usize, u64)> = per_step
                .active
                .edges()
                .map(|(u, v, eta)| (u, v, eta.to_bits()))
                .collect();
            let got: Vec<(usize, usize, u64)> = held
                .texp
                .edges()
                .iter()
                .map(|e| (e.from, e.to, e.eta.to_bits()))
                .collect();
            assert_eq!(got, expected, "faulted step {step}");
        }
    }
}
