//! The sweep engine: fast, deterministic evaluation of the daily time loop.
//!
//! Every headline number of the paper (Figs. 6–8, Table III) is a function
//! of the thresholded link graph at up to 2880 time steps. The naive loop
//! re-evaluates every host pair at every step — O(N²) full FSO budgets per
//! step, although a 500 km satellite is above a Tennessee site's horizon
//! only a few percent of the day. [`SweepEngine`] removes that waste in
//! three layers:
//!
//! 1. **Contact-window pruning** ([`ContactWindows`]): per (ground,
//!    satellite) pair, the zero-elevation-mask visibility windows are
//!    precomputed from the movement sheets with `qntn-orbit`'s pass
//!    machinery (one dot product per sample). Outside a window the link
//!    evaluator is provably `None` (it requires strictly positive
//!    elevation, the windows include elevation ≥ 0), so the engine skips
//!    the FSO budget entirely. Inside a window the evaluator runs
//!    unchanged — pruning is exact, not approximate.
//! 2. **Step parallelism**: time steps are independent, so sweeps fan them
//!    across rayon workers and reassemble results in step order. A
//!    `--no-parallel` escape hatch ([`SweepEngine::with_parallel`]) runs
//!    the same closures on one thread; both paths are bit-identical
//!    because no result depends on worker assignment.
//! 3. **Scratch reuse** ([`SweepScratch`]): each worker keeps one full-
//!    graph buffer, one thresholded-graph buffer and one Bellman–Ford
//!    table, reset (not reallocated) per step via `Graph::reset` /
//!    `SsspTable::reset`.
//!
//! **Determinism guarantee**: for any step, the engine's graphs are
//! bit-identical — including adjacency-list order, which routing
//! tie-breaking depends on — to `QuantumNetworkSim::graph_at` /
//! `active_graph_at`. The full graph replicates the naive insertion order
//! (fiber mesh first, then host pairs in ascending `(a, b)` order) and the
//! thresholded graph is derived from it by the same `thresholded` filter.
//! Tests assert naive == sequential == parallel down to the adjacency
//! lists.

use crate::coverage::{CoverageAnalyzer, CoverageReport};
use crate::entanglement::distribute_with;
use crate::host::HostKind;
use crate::requests::{aggregate_outcomes, RequestOutcome, RequestWorkload, SweepStats};
use crate::simulator::QuantumNetworkSim;
use qntn_geo::{Enu, Geodetic, Vec3, WGS84};
use qntn_orbit::{Ephemeris, PassPredictor};
use qntn_routing::{Graph, RouteMetric, SsspTable};
use rayon::prelude::*;
use std::sync::Arc;

/// Per-(satellite, step) bitmasks of which ground sites a satellite is at
/// or above the horizon of (elevation ≥ 0, the conservative superset of
/// the link evaluator's `elevation > 0` requirement).
///
/// Ground sites map to bit slots in host order; per-satellite step vectors
/// are `Arc`-shared so [`ContactWindows::prefix`] reuses one full-
/// constellation precompute across every constellation size of a sweep.
/// With more than 64 ground sites (not the paper's 31) the windows
/// degrade to "always visible" — correct, merely unpruned.
#[derive(Debug, Clone)]
pub struct ContactWindows {
    n_steps: usize,
    n_lows: usize,
    /// One mask vector per satellite; an empty vector means "no data,
    /// treat everything as visible".
    masks: Vec<Arc<Vec<u64>>>,
}

impl ContactWindows {
    /// Most ground slots a mask word can hold.
    const MAX_LOWS: usize = 64;

    /// Precompute windows for every step of every `(low, satellite)` pair.
    pub fn compute(lows: &[Geodetic], ephemerides: &[&Ephemeris], n_steps: usize) -> Self {
        let n_lows = lows.len();
        if n_lows > Self::MAX_LOWS {
            return Self::all_visible(n_steps, n_lows, ephemerides.len());
        }
        let predictors: Vec<PassPredictor> = lows
            .iter()
            .map(|&site| PassPredictor::new(site, 0.0))
            .collect();
        let masks = ephemerides
            .par_iter()
            .map(|eph| {
                let mut mask = vec![0u64; n_steps];
                for (slot, pred) in predictors.iter().enumerate() {
                    let flags = pred.above_horizon_flags(eph);
                    for (k, word) in mask.iter_mut().enumerate() {
                        if flags.get(k).copied().unwrap_or(false) {
                            *word |= 1 << slot;
                        }
                    }
                }
                Arc::new(mask)
            })
            .collect();
        ContactWindows {
            n_steps,
            n_lows,
            masks,
        }
    }

    /// Precompute windows only at `steps` (e.g. the 100 sampled steps of a
    /// request sweep); every other step defaults to all-visible, so the
    /// result is exact wherever it is consulted and merely unpruned
    /// elsewhere.
    pub fn compute_for_steps(
        lows: &[Geodetic],
        ephemerides: &[&Ephemeris],
        n_steps: usize,
        steps: &[usize],
    ) -> Self {
        let n_lows = lows.len();
        if n_lows > Self::MAX_LOWS {
            return Self::all_visible(n_steps, n_lows, ephemerides.len());
        }
        // The same above-horizon predicate as `PassPredictor::
        // above_horizon_flags`, evaluated pointwise.
        let sites: Vec<(Vec3, Vec3)> = lows
            .iter()
            .map(|&site| (site.to_ecef(&WGS84), Enu::at(site, &WGS84).up()))
            .collect();
        let masks = ephemerides
            .par_iter()
            .map(|eph| {
                let mut mask = vec![u64::MAX; n_steps];
                for &step in steps {
                    let ecef = eph.at_step(step).ecef;
                    let mut word = 0u64;
                    for (slot, &(site_ecef, up)) in sites.iter().enumerate() {
                        if (ecef - site_ecef).dot(up) >= 0.0 {
                            word |= 1 << slot;
                        }
                    }
                    mask[step] = word;
                }
                Arc::new(mask)
            })
            .collect();
        ContactWindows {
            n_steps,
            n_lows,
            masks,
        }
    }

    /// Windows for every (ground, satellite) pair of `sim`, all steps.
    pub fn for_sim(sim: &QuantumNetworkSim) -> Self {
        let (lows, ephs) = Self::sim_geometry(sim);
        Self::compute(&lows, &ephs, sim.steps())
    }

    /// Windows for `sim` computed only at `steps`.
    pub fn for_sim_steps(sim: &QuantumNetworkSim, steps: &[usize]) -> Self {
        let (lows, ephs) = Self::sim_geometry(sim);
        Self::compute_for_steps(&lows, &ephs, sim.steps(), steps)
    }

    fn sim_geometry(sim: &QuantumNetworkSim) -> (Vec<Geodetic>, Vec<&Ephemeris>) {
        let lows = sim
            .hosts()
            .iter()
            .filter(|h| h.is_ground())
            .map(|h| h.geodetic_at(0))
            .collect();
        let ephs = sim
            .hosts()
            .iter()
            .filter_map(|h| match &h.kind {
                HostKind::Satellite { ephemeris } => Some(ephemeris),
                _ => None,
            })
            .collect();
        (lows, ephs)
    }

    fn all_visible(n_steps: usize, n_lows: usize, n_sats: usize) -> Self {
        ContactWindows {
            n_steps,
            n_lows,
            masks: (0..n_sats).map(|_| Arc::new(Vec::new())).collect(),
        }
    }

    /// Windows restricted to the first `n` satellites — the paper's
    /// constellation prefixes (Table II) at zero recompute cost.
    pub fn prefix(&self, n: usize) -> Self {
        assert!(
            n <= self.masks.len(),
            "prefix larger than the computed constellation"
        );
        ContactWindows {
            n_steps: self.n_steps,
            n_lows: self.n_lows,
            masks: self.masks[..n].to_vec(),
        }
    }

    /// Number of time steps covered.
    #[inline]
    pub fn steps(&self) -> usize {
        self.n_steps
    }

    /// Number of ground slots.
    #[inline]
    pub fn lows(&self) -> usize {
        self.n_lows
    }

    /// Number of satellites covered.
    #[inline]
    pub fn satellites(&self) -> usize {
        self.masks.len()
    }

    /// Is satellite `sat` at/above the horizon of ground slot `low` at
    /// `step`? Conservative: `true` whenever no window data exists.
    #[inline]
    pub fn visible(&self, sat: usize, step: usize, low: usize) -> bool {
        let mask = &self.masks[sat];
        if mask.is_empty() {
            return true;
        }
        (mask[step] >> low) & 1 == 1
    }
}

/// How the engine treats one host pair of the O(N²) loop.
#[derive(Debug, Clone, Copy)]
enum PairKind {
    /// Neither endpoint moves: evaluated once at construction.
    Static { a: usize, b: usize, eta: f64 },
    /// Ground–satellite: evaluated only inside the contact window.
    GroundSat {
        a: usize,
        b: usize,
        sat: usize,
        low: usize,
    },
    /// Anything else time-varying (ISLs, HAP–satellite): evaluated every
    /// step.
    Dynamic { a: usize, b: usize },
}

/// Per-worker reusable buffers for a sweep (one full graph, one
/// thresholded graph, one Bellman–Ford table).
#[derive(Debug, Default)]
pub struct SweepScratch {
    /// The unthresholded graph of the last [`SweepEngine::active_graph_into`].
    pub full: Graph,
    /// The thresholded graph of the last [`SweepEngine::active_graph_into`].
    pub active: Graph,
    /// Routing scratch for [`distribute_with`].
    pub sssp: SsspTable,
}

/// The window-pruned, step-parallel, buffer-reusing sweep evaluator. See
/// the module docs for the design and the determinism guarantee.
#[derive(Debug, Clone)]
pub struct SweepEngine<'a> {
    sim: &'a QuantumNetworkSim,
    windows: ContactWindows,
    pairs: Vec<PairKind>,
    parallel: bool,
}

impl<'a> SweepEngine<'a> {
    /// An engine with full-day contact windows (the right choice when most
    /// steps will be visited, e.g. coverage analysis).
    pub fn new(sim: &'a QuantumNetworkSim) -> Self {
        Self::with_windows(sim, ContactWindows::for_sim(sim))
    }

    /// An engine with windows computed only at `steps` (the right choice
    /// for sampled-step request sweeps).
    pub fn for_steps(sim: &'a QuantumNetworkSim, steps: &[usize]) -> Self {
        Self::with_windows(sim, ContactWindows::for_sim_steps(sim, steps))
    }

    /// An engine reusing precomputed windows — e.g. a
    /// [`ContactWindows::prefix`] of one full-constellation precompute
    /// shared across every size of a constellation sweep.
    ///
    /// # Panics
    /// Panics when the windows' shape does not match the simulator's
    /// ground/satellite counts or step count.
    pub fn with_windows(sim: &'a QuantumNetworkSim, windows: ContactWindows) -> Self {
        let hosts = sim.hosts();
        let n = hosts.len();
        // Slot maps: ground index -> window bit, satellite index -> window row.
        let mut ground_slot = vec![usize::MAX; n];
        let mut sat_slot = vec![usize::MAX; n];
        let (mut n_ground, mut n_sat) = (0, 0);
        for (i, h) in hosts.iter().enumerate() {
            if h.is_ground() {
                ground_slot[i] = n_ground;
                n_ground += 1;
            } else if h.is_satellite() {
                sat_slot[i] = n_sat;
                n_sat += 1;
            }
        }
        assert_eq!(
            windows.lows(),
            n_ground,
            "windows built for a different ground set"
        );
        assert_eq!(
            windows.satellites(),
            n_sat,
            "windows built for a different constellation"
        );
        assert_eq!(
            windows.steps(),
            sim.steps(),
            "windows built for a different time span"
        );

        let evaluator = sim.evaluator();
        let enable_isl = evaluator.config().enable_isl;
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let (ha, hb) = (&hosts[a], &hosts[b]);
                if ha.is_ground() && hb.is_ground() {
                    continue; // fiber mesh handles these; no FSO class
                }
                if !ha.is_satellite() && !hb.is_satellite() {
                    // Static geometry: the evaluation is time-invariant.
                    if let Some(eta) = evaluator.fso_eta(ha, hb, 0) {
                        pairs.push(PairKind::Static { a, b, eta });
                    }
                    continue;
                }
                if ha.is_satellite() && hb.is_satellite() {
                    if enable_isl {
                        pairs.push(PairKind::Dynamic { a, b });
                    }
                    continue;
                }
                // Exactly one satellite. Window-prune only the ordinary
                // case where the other endpoint is a ground site and the
                // satellite is unambiguously the high endpoint; anything
                // exotic stays on the always-evaluate path.
                let (sat_idx, other) = if ha.is_satellite() { (a, b) } else { (b, a) };
                if hosts[other].is_ground() && hosts[sat_idx].altitude_at(0) >= 20_000.0 {
                    pairs.push(PairKind::GroundSat {
                        a,
                        b,
                        sat: sat_slot[sat_idx],
                        low: ground_slot[other],
                    });
                } else {
                    pairs.push(PairKind::Dynamic { a, b });
                }
            }
        }
        SweepEngine {
            sim,
            windows,
            pairs,
            parallel: true,
        }
    }

    /// Toggle step-level parallelism (the `--no-parallel` escape hatch).
    /// Results are bit-identical either way; the sequential path exists to
    /// demonstrate that, and for single-core or debugging runs.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// The simulator this engine evaluates.
    #[inline]
    pub fn sim(&self) -> &QuantumNetworkSim {
        self.sim
    }

    /// The contact windows in use.
    #[inline]
    pub fn windows(&self) -> &ContactWindows {
        &self.windows
    }

    /// Build the full (unthresholded) graph at `step` into `g`, replicating
    /// [`QuantumNetworkSim::graph_at`]'s insertion order exactly.
    pub fn graph_into(&self, step: usize, g: &mut Graph) {
        assert!(step < self.sim.steps(), "step out of range");
        let hosts = self.sim.hosts();
        let evaluator = self.sim.evaluator();
        g.reset(hosts.len());
        for &(a, b, eta) in self.sim.fiber_edges() {
            g.set_edge(a, b, eta);
        }
        for pair in &self.pairs {
            match *pair {
                PairKind::Static { a, b, eta } => g.set_edge(a, b, eta),
                PairKind::GroundSat { a, b, sat, low } => {
                    if self.windows.visible(sat, step, low) {
                        if let Some(eta) = evaluator.fso_eta(&hosts[a], &hosts[b], step) {
                            g.set_edge(a, b, eta);
                        }
                    }
                }
                PairKind::Dynamic { a, b } => {
                    if let Some(eta) = evaluator.fso_eta(&hosts[a], &hosts[b], step) {
                        g.set_edge(a, b, eta);
                    }
                }
            }
        }
    }

    /// The full graph at `step` (allocating convenience wrapper).
    pub fn graph_at(&self, step: usize) -> Graph {
        let mut g = Graph::default();
        self.graph_into(step, &mut g);
        g
    }

    /// Build the threshold-gated graph at `step` into `scratch.active`
    /// (using `scratch.full` as the intermediate), matching
    /// [`QuantumNetworkSim::active_graph_at`] bit-for-bit.
    pub fn active_graph_into(&self, step: usize, scratch: &mut SweepScratch) {
        self.graph_into(step, &mut scratch.full);
        scratch
            .full
            .thresholded_into(self.sim.evaluator().config().threshold, &mut scratch.active);
    }

    /// The threshold-gated graph at `step` (allocating convenience wrapper).
    pub fn active_graph_at(&self, step: usize) -> Graph {
        let mut scratch = SweepScratch::default();
        self.active_graph_into(step, &mut scratch);
        scratch.active
    }

    /// Run `f` over `steps` — in parallel with per-worker scratch by
    /// default, sequentially with one scratch under
    /// [`SweepEngine::with_parallel`]`(false)` — returning results in step
    /// order either way.
    pub fn map_steps<R, F>(&self, steps: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut SweepScratch, usize) -> R + Sync,
    {
        if self.parallel {
            steps
                .to_vec()
                .into_par_iter()
                .map_init(SweepScratch::default, |scratch, step| f(scratch, step))
                .collect()
        } else {
            let mut scratch = SweepScratch::default();
            steps.iter().map(|&step| f(&mut scratch, step)).collect()
        }
    }

    /// Per-step "all LANs interconnected" flags over the whole window.
    pub fn connectivity_flags(&self) -> Vec<bool> {
        let steps: Vec<usize> = (0..self.sim.steps()).collect();
        self.map_steps(&steps, |scratch, step| {
            self.active_graph_into(step, scratch);
            self.sim.lans_interconnected(&scratch.active)
        })
    }

    /// Full-window coverage report (paper Eq. 6–7).
    pub fn coverage(&self) -> CoverageReport {
        CoverageAnalyzer::from_flags(self.connectivity_flags(), self.sim.step_s())
    }

    /// The paper's request sweep: per step, a seeded workload of
    /// `requests_per_step` inter-LAN requests attempted on that step's
    /// thresholded graph. Identical statistics to the naive
    /// [`crate::requests`] path (which now delegates here).
    pub fn sweep(
        &self,
        steps: &[usize],
        requests_per_step: usize,
        seed: u64,
        metric: RouteMetric,
    ) -> SweepStats {
        let per_step: Vec<Vec<RequestOutcome>> = self.map_steps(steps, |scratch, step| {
            let workload = RequestWorkload::generate(
                self.sim,
                requests_per_step,
                seed ^ (step as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            self.active_graph_into(step, scratch);
            let SweepScratch { active, sssp, .. } = scratch;
            workload
                .requests
                .iter()
                .map(
                    |r| match distribute_with(active, r.src, r.dst, metric, sssp) {
                        Some(d) => RequestOutcome::Served(d),
                        None => RequestOutcome::Unserved,
                    },
                )
                .collect()
        });
        aggregate_outcomes(&per_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::linkeval::SimConfig;
    use qntn_geo::Epoch;
    use qntn_orbit::{paper_constellation, PerturbationModel, Propagator};

    fn sat_ephemerides(n_sats: usize, steps: usize) -> Vec<Ephemeris> {
        let props: Vec<Propagator> = paper_constellation(n_sats)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0)
    }

    fn grounds() -> Vec<Host> {
        vec![
            Host::ground(
                "TTU-0",
                0,
                Geodetic::from_deg(36.1757, -85.5066, 300.0),
                1.2,
            ),
            Host::ground(
                "TTU-1",
                0,
                Geodetic::from_deg(36.1751, -85.5067, 300.0),
                1.2,
            ),
            Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground(
                "EPB-0",
                2,
                Geodetic::from_deg(35.04159, -85.2799, 200.0),
                1.2,
            ),
        ]
    }

    fn sat_sim(n_sats: usize, steps: usize) -> QuantumNetworkSim {
        let mut hosts = grounds();
        for (i, eph) in sat_ephemerides(n_sats, steps).into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    }

    fn hybrid_sim(steps: usize) -> QuantumNetworkSim {
        let mut hosts = grounds();
        hosts.push(Host::hap(
            "HAP",
            Geodetic::from_deg(35.6692, -85.0662, 30_000.0),
            0.3,
        ));
        for (i, eph) in sat_ephemerides(4, steps).into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    }

    fn assert_graphs_identical(a: &Graph, b: &Graph, ctx: &str) {
        assert_eq!(a.node_count(), b.node_count(), "{ctx}: node count");
        assert_eq!(a.edge_count(), b.edge_count(), "{ctx}: edge count");
        for u in 0..a.node_count() {
            assert_eq!(
                a.neighbors(u),
                b.neighbors(u),
                "{ctx}: adjacency of node {u}"
            );
        }
    }

    #[test]
    fn windows_are_a_superset_of_qualifying_links() {
        // Wherever the naive evaluator finds a ground-satellite link, the
        // window must be open — otherwise pruning would drop real links.
        let sim = sat_sim(6, 240);
        let windows = ContactWindows::for_sim(&sim);
        let hosts = sim.hosts();
        for step in (0..240).step_by(7) {
            for (low, g) in hosts.iter().enumerate().filter(|(_, h)| h.is_ground()) {
                for (sat_slot, s) in hosts.iter().filter(|h| h.is_satellite()).enumerate() {
                    if sim.evaluator().fso_eta(g, s, step).is_some() {
                        assert!(
                            windows.visible(sat_slot, step, low),
                            "step {step}: window closed over a live link"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engine_graphs_match_naive_exactly() {
        for (name, sim) in [("sat", sat_sim(6, 120)), ("hybrid", hybrid_sim(120))] {
            let engine = SweepEngine::new(&sim);
            for step in (0..120).step_by(11) {
                assert_graphs_identical(
                    &engine.graph_at(step),
                    &sim.graph_at(step),
                    &format!("{name} full graph, step {step}"),
                );
                assert_graphs_identical(
                    &engine.active_graph_at(step),
                    &sim.active_graph_at(step),
                    &format!("{name} active graph, step {step}"),
                );
            }
        }
    }

    #[test]
    fn parallel_and_sequential_are_bit_identical() {
        let sim = sat_sim(6, 120);
        let par = SweepEngine::new(&sim);
        let seq = SweepEngine::new(&sim).with_parallel(false);
        assert_eq!(par.connectivity_flags(), seq.connectivity_flags());
        let steps: Vec<usize> = (0..120).step_by(13).collect();
        let metric = RouteMetric::PaperInverseEta;
        assert_eq!(
            par.sweep(&steps, 15, 2024, metric),
            seq.sweep(&steps, 15, 2024, metric)
        );
        let cov_par = par.coverage();
        let cov_seq = seq.coverage();
        assert_eq!(cov_par.connected, cov_seq.connected);
        assert_eq!(cov_par.intervals, cov_seq.intervals);
    }

    #[test]
    fn engine_sweep_matches_naive_request_loop() {
        let sim = sat_sim(6, 120);
        let engine = SweepEngine::new(&sim);
        let steps: Vec<usize> = (0..120).step_by(17).collect();
        let metric = RouteMetric::PaperInverseEta;
        let seed = 99;
        let naive: Vec<Vec<RequestOutcome>> = steps
            .iter()
            .map(|&step| {
                let w = RequestWorkload::generate(
                    &sim,
                    10,
                    seed ^ (step as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                w.evaluate_at(&sim, step, metric)
            })
            .collect();
        assert_eq!(
            engine.sweep(&steps, 10, seed, metric),
            aggregate_outcomes(&naive)
        );
    }

    #[test]
    fn prefix_windows_match_fresh_windows() {
        // One 12-satellite precompute, reused for the 5-satellite prefix.
        let steps = 120;
        let sim12 = sat_sim(12, steps);
        let sim5 = sat_sim(5, steps);
        let shared = ContactWindows::for_sim(&sim12);
        let engine_shared = SweepEngine::with_windows(&sim5, shared.prefix(5));
        let engine_fresh = SweepEngine::new(&sim5);
        for step in (0..steps).step_by(19) {
            assert_graphs_identical(
                &engine_shared.active_graph_at(step),
                &engine_fresh.active_graph_at(step),
                &format!("prefix step {step}"),
            );
        }
    }

    #[test]
    fn subset_windows_are_exact_at_their_steps() {
        let sim = sat_sim(6, 240);
        let steps: Vec<usize> = vec![3, 60, 121, 200];
        let engine = SweepEngine::for_steps(&sim, &steps);
        for &step in &steps {
            assert_graphs_identical(
                &engine.active_graph_at(step),
                &sim.active_graph_at(step),
                &format!("subset step {step}"),
            );
        }
        // Uncomputed steps stay correct (all-visible fallback, no pruning).
        assert_graphs_identical(
            &engine.active_graph_at(42),
            &sim.active_graph_at(42),
            "uncomputed step",
        );
    }

    #[test]
    fn coverage_matches_analyzer() {
        let sim = sat_sim(6, 240);
        let from_engine = SweepEngine::new(&sim).coverage();
        let naive: Vec<bool> = (0..sim.steps())
            .map(|t| sim.lans_interconnected(&sim.active_graph_at(t)))
            .collect();
        assert_eq!(from_engine.connected, naive);
    }

    #[test]
    #[should_panic(expected = "different constellation")]
    fn mismatched_windows_are_rejected() {
        let sim = sat_sim(6, 120);
        let other = sat_sim(5, 120);
        let windows = ContactWindows::for_sim(&other);
        let _ = SweepEngine::with_windows(&sim, windows);
    }
}
