//! The serving core: amortized routing over arrival groups.
//!
//! The naive reference path (`RequestWorkload::evaluate_with_retries` in
//! `qntn-net`) runs one full Bellman–Ford per request per attempt. This
//! module serves a whole arrival group per attempt round with one SSSP
//! table per *distinct source* — `bellman_ford_all_into` once, then
//! [`route_from_table`] per destination — which is bit-identical by
//! construction: `bellman_ford ≡ bellman_ford_all + extract_route`, and
//! realizing a route from the same graph yields the same `Distribution`
//! bits. The differential suite holds the whole stack to that claim,
//! clean and faulted, sequential and parallel.
//!
//! Retry semantics reuse [`RetryPolicy`] unchanged. A request's
//! per-request deadline caps the policy's: because backoff offsets are
//! monotone (`b, 3b, 7b, …`), every request's attempt schedule is a
//! *prefix* of its group's, so per-request deadlines cost one comparison
//! per round, not a schedule recomputation.
//!
//! Three entry points share one group-serving core:
//! - [`serve_full`] materializes every [`RetryOutcome`] (differential
//!   tests, small batches);
//! - [`serve_report`] folds each group straight into a compact
//!   [`GroupAgg`] so million-request runs never hold per-request state;
//! - [`serve_resilient`] runs the same fold under the PR 4 runtime
//!   contract (checkpoint/cancel/panic isolation) via
//!   [`qntn_net::run_steps`].

use crate::request::{RequestQueue, PRIORITY_CLASSES};
use qntn_common::codec::{ByteReader, DecodeError, FrameCodec};
use qntn_common::QntnError;
use qntn_net::entanglement::realize;
use qntn_net::requests::{RetryOutcome, RetryPolicy};
use qntn_net::runtime::{run_steps, RunPolicy, RunReport};
use qntn_net::{SweepEngine, SweepScratch};
use qntn_routing::{bellman_ford_all_into, route_from_table, RouteMetric};
use std::ops::Range;

/// Serve one arrival group, appending outcomes (queue order) to `out`.
///
/// Per attempt round: build the (possibly faulted) thresholded graph once,
/// stable-sort the still-pending eligible requests by source, run one SSSP
/// per distinct source, extract one route per destination. Offsets grow
/// monotonically, so when every pending request has fallen past its
/// deadline the remaining rounds are skipped wholesale.
#[allow(clippy::too_many_arguments)] // the serving core's full context: engine, queue, group, policy, metric, scratch, sink
fn serve_group_into(
    engine: &SweepEngine<'_>,
    queue: &RequestQueue,
    group: Range<usize>,
    arrival: usize,
    policy: RetryPolicy,
    metric: RouteMetric,
    scratch: &mut SweepScratch,
    out: &mut Vec<RetryOutcome>,
) {
    let n_steps = engine.sim().steps();
    let schedule = policy.attempt_steps(arrival, n_steps);
    let len = group.len();
    let mut outcome: Vec<Option<RetryOutcome>> = vec![None; len];
    let mut eligible_attempts = vec![0usize; len];
    let mut pending = len;
    let mut by_src: Vec<(usize, usize)> = Vec::with_capacity(len);

    for (k, &t) in schedule.iter().enumerate() {
        if pending == 0 {
            break;
        }
        let offset = t - arrival;
        by_src.clear();
        for li in 0..len {
            if outcome[li].is_some() {
                continue;
            }
            let qi = group.start + li;
            // The effective deadline is the tighter of the request's and
            // the policy's; the group schedule already enforced the
            // policy's, so only the per-request cap needs checking.
            if k > 0 && offset > queue.deadline(qi) {
                continue;
            }
            eligible_attempts[li] += 1;
            by_src.push((queue.src(qi), li));
        }
        if by_src.is_empty() {
            // Offsets only grow: nobody left will ever be eligible again.
            break;
        }
        engine.active_graph_into(t, scratch);
        // Stable by source: requests of one source stay in queue order.
        by_src.sort_by_key(|&(src, _)| src);
        let graph = &scratch.active;
        let mut i = 0;
        while i < by_src.len() {
            let src = by_src[i].0;
            bellman_ford_all_into(graph, src, metric, &mut scratch.sssp);
            while i < by_src.len() && by_src[i].0 == src {
                let li = by_src[i].1;
                let qi = group.start + li;
                i += 1;
                let Some(route) =
                    route_from_table(graph, &scratch.sssp, src, queue.dst(qi), metric)
                else {
                    continue;
                };
                // Same link-η collection as `distribute_with`: a lookup
                // miss means a corrupt table, treated as unroutable.
                let mut link_etas = Vec::with_capacity(route.nodes.len().saturating_sub(1));
                let mut intact = true;
                for w in route.nodes.windows(2) {
                    match graph.eta(w[0], w[1]) {
                        Some(eta) => link_etas.push(eta),
                        None => {
                            intact = false;
                            break;
                        }
                    }
                }
                if !intact {
                    continue;
                }
                let d = realize(&route, &link_etas);
                outcome[li] = Some(if k == 0 {
                    RetryOutcome::ServedFirstTry(d)
                } else {
                    RetryOutcome::ServedAfterRetry {
                        distribution: d,
                        attempts: k + 1,
                        waited_steps: offset,
                    }
                });
                pending -= 1;
            }
        }
    }
    for (li, slot) in outcome.into_iter().enumerate() {
        out.push(slot.unwrap_or(RetryOutcome::Expired {
            attempts: eligible_attempts[li],
        }));
    }
}

/// Serve the whole queue, materializing one [`RetryOutcome`] per accepted
/// request in queue order — the differential-comparable entry point.
/// Parallel over arrival groups (honoring the engine's parallelism
/// toggle); results are bit-identical either way.
pub fn serve_full(
    engine: &SweepEngine<'_>,
    queue: &RequestQueue,
    policy: RetryPolicy,
    metric: RouteMetric,
) -> Vec<RetryOutcome> {
    let arrivals = queue.arrival_steps();
    let per_group = engine.map_steps(&arrivals, |scratch, step| {
        let range = queue
            .group_range(step)
            .expect("arrival steps come from the queue's own groups");
        let mut out = Vec::with_capacity(range.len());
        serve_group_into(
            engine, queue, range, step, policy, metric, scratch, &mut out,
        );
        out
    });
    per_group.concat()
}

/// Per-arrival-group aggregate — the compact fold that lets a
/// million-request serve run in O(groups) memory, and the checkpoint
/// payload of [`serve_resilient`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAgg {
    pub attempted: u64,
    pub served_first_try: u64,
    pub served_after_retry: u64,
    pub expired: u64,
    pub fidelity_sum: f64,
    pub link_fidelity_sum: f64,
    pub eta_sum: f64,
    pub hops_sum: f64,
    pub attempts_sum: f64,
    /// Histogram of waited steps over served requests (first-try = 0).
    pub wait_hist: Vec<u64>,
    /// Per priority class: attempted / served / fidelity sum over served.
    pub class_attempted: Vec<u64>,
    pub class_served: Vec<u64>,
    pub class_fidelity_sum: Vec<f64>,
}

impl Default for GroupAgg {
    fn default() -> GroupAgg {
        GroupAgg {
            attempted: 0,
            served_first_try: 0,
            served_after_retry: 0,
            expired: 0,
            fidelity_sum: 0.0,
            link_fidelity_sum: 0.0,
            eta_sum: 0.0,
            hops_sum: 0.0,
            attempts_sum: 0.0,
            wait_hist: Vec::new(),
            class_attempted: vec![0; PRIORITY_CLASSES],
            class_served: vec![0; PRIORITY_CLASSES],
            class_fidelity_sum: vec![0.0; PRIORITY_CLASSES],
        }
    }
}

impl GroupAgg {
    /// Fold one request's outcome in; `class` is its reporting class.
    fn absorb(&mut self, outcome: &RetryOutcome, class: usize) {
        self.attempted += 1;
        self.class_attempted[class] += 1;
        let waited = match outcome {
            RetryOutcome::ServedFirstTry(_) => {
                self.served_first_try += 1;
                self.attempts_sum += 1.0;
                Some(0)
            }
            RetryOutcome::ServedAfterRetry {
                attempts,
                waited_steps,
                ..
            } => {
                self.served_after_retry += 1;
                self.attempts_sum += *attempts as f64;
                Some(*waited_steps)
            }
            RetryOutcome::Expired { attempts } => {
                self.expired += 1;
                self.attempts_sum += *attempts as f64;
                None
            }
        };
        if let Some(w) = waited {
            if self.wait_hist.len() <= w {
                self.wait_hist.resize(w + 1, 0);
            }
            self.wait_hist[w] += 1;
        }
        if let Some(d) = outcome.distribution() {
            self.fidelity_sum += d.fidelity;
            self.link_fidelity_sum += d.mean_link_fidelity;
            self.eta_sum += d.eta;
            self.hops_sum += (d.path.len() - 1) as f64;
            self.class_served[class] += 1;
            self.class_fidelity_sum[class] += d.fidelity;
        }
    }

    /// Fold `other` into `self` (order-independent for the count fields;
    /// float sums are folded in group order everywhere for determinism).
    pub fn merge(&mut self, other: &GroupAgg) {
        self.attempted += other.attempted;
        self.served_first_try += other.served_first_try;
        self.served_after_retry += other.served_after_retry;
        self.expired += other.expired;
        self.fidelity_sum += other.fidelity_sum;
        self.link_fidelity_sum += other.link_fidelity_sum;
        self.eta_sum += other.eta_sum;
        self.hops_sum += other.hops_sum;
        self.attempts_sum += other.attempts_sum;
        if self.wait_hist.len() < other.wait_hist.len() {
            self.wait_hist.resize(other.wait_hist.len(), 0);
        }
        for (slot, v) in self.wait_hist.iter_mut().zip(&other.wait_hist) {
            *slot += v;
        }
        for c in 0..PRIORITY_CLASSES {
            self.class_attempted[c] += other.class_attempted[c];
            self.class_served[c] += other.class_served[c];
            self.class_fidelity_sum[c] += other.class_fidelity_sum[c];
        }
    }

    /// Fold a slice of materialized outcomes (with their classes).
    pub fn from_outcomes(outcomes: &[RetryOutcome], classes: &[usize]) -> GroupAgg {
        let mut agg = GroupAgg::default();
        for (o, &c) in outcomes.iter().zip(classes) {
            agg.absorb(o, c);
        }
        agg
    }
}

impl FrameCodec for GroupAgg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.attempted.encode(out);
        self.served_first_try.encode(out);
        self.served_after_retry.encode(out);
        self.expired.encode(out);
        self.fidelity_sum.encode(out);
        self.link_fidelity_sum.encode(out);
        self.eta_sum.encode(out);
        self.hops_sum.encode(out);
        self.attempts_sum.encode(out);
        self.wait_hist.encode(out);
        self.class_attempted.encode(out);
        self.class_served.encode(out);
        self.class_fidelity_sum.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let agg = GroupAgg {
            attempted: u64::decode(r)?,
            served_first_try: u64::decode(r)?,
            served_after_retry: u64::decode(r)?,
            expired: u64::decode(r)?,
            fidelity_sum: f64::decode(r)?,
            link_fidelity_sum: f64::decode(r)?,
            eta_sum: f64::decode(r)?,
            hops_sum: f64::decode(r)?,
            attempts_sum: f64::decode(r)?,
            wait_hist: Vec::<u64>::decode(r)?,
            class_attempted: Vec::<u64>::decode(r)?,
            class_served: Vec::<u64>::decode(r)?,
            class_fidelity_sum: Vec::<f64>::decode(r)?,
        };
        if agg.class_attempted.len() != PRIORITY_CLASSES
            || agg.class_served.len() != PRIORITY_CLASSES
            || agg.class_fidelity_sum.len() != PRIORITY_CLASSES
        {
            return Err(DecodeError("group agg class arity".into()));
        }
        Ok(agg)
    }
}

/// Serve one arrival group straight into a [`GroupAgg`] — the per-step
/// evaluation shared by [`serve_report`] and [`serve_resilient`].
fn serve_group_agg(
    engine: &SweepEngine<'_>,
    queue: &RequestQueue,
    arrival: usize,
    policy: RetryPolicy,
    metric: RouteMetric,
    scratch: &mut SweepScratch,
) -> GroupAgg {
    let range = queue
        .group_range(arrival)
        .expect("arrival steps come from the queue's own groups");
    let mut outcomes = Vec::with_capacity(range.len());
    serve_group_into(
        engine,
        queue,
        range.clone(),
        arrival,
        policy,
        metric,
        scratch,
        &mut outcomes,
    );
    let classes: Vec<usize> = range.map(|qi| queue.class(qi)).collect();
    GroupAgg::from_outcomes(&outcomes, &classes)
}

/// Per-priority-class service-level numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSlo {
    pub attempted: u64,
    pub served: u64,
    pub served_percent: f64,
    pub mean_fidelity: f64,
}

/// The SLO report of one serve run — everything the artifact publishes.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Accepted requests attempted.
    pub attempted: u64,
    pub served_first_try: u64,
    pub served_after_retry: u64,
    pub expired: u64,
    /// Requests rejected at the ingest boundary (never attempted).
    pub rejected: u64,
    /// Median wait (steps from arrival to service) over served requests;
    /// `None` when nothing was served (a run with zero served requests
    /// has no waits to rank — it used to report a misleading `0`, which
    /// is indistinguishable from "everything served instantly").
    pub p50_wait_steps: Option<u64>,
    /// 95th-percentile wait over served requests (nearest-rank); `None`
    /// when nothing was served.
    pub p95_wait_steps: Option<u64>,
    pub mean_fidelity: f64,
    pub mean_link_fidelity: f64,
    pub mean_eta: f64,
    pub mean_hops: f64,
    pub mean_attempts: f64,
    /// Requests shed by the overload layer (a subset of `expired`; zero
    /// on the baseline serve paths). See [`crate::overload`].
    pub shed: u64,
    /// Retries deferred to a later backoff slot by the retry budget
    /// (zero on the baseline serve paths).
    pub deferred_by_budget: u64,
    /// Steps spent on each degradation rung over the whole timeline,
    /// indexed by [`crate::overload::DegradeMode`]; all-zero on the
    /// baseline serve paths (which never evaluate the ladder).
    pub degrade_mode_steps: [u64; crate::overload::DEGRADE_MODES],
    /// Per priority class, index = class.
    pub classes: Vec<ClassSlo>,
}

impl ServeReport {
    /// Requests served by any attempt.
    pub fn served(&self) -> u64 {
        self.served_first_try + self.served_after_retry
    }

    /// Served percentage over attempted.
    pub fn served_percent(&self) -> f64 {
        percent(self.served(), self.attempted)
    }

    /// Percentage served without a retry.
    pub fn first_try_percent(&self) -> f64 {
        percent(self.served_first_try, self.attempted)
    }

    /// Percentage rescued by the retry layer.
    pub fn rescued_percent(&self) -> f64 {
        percent(self.served_after_retry, self.attempted)
    }

    /// Percentage that expired unserved.
    pub fn expired_percent(&self) -> f64 {
        percent(self.expired, self.attempted)
    }

    /// Render as a JSON object (hand-rolled: the artifact writers in this
    /// workspace avoid a serializer dependency).
    pub fn to_json(&self) -> String {
        let classes: Vec<String> = self
            .classes
            .iter()
            .enumerate()
            .map(|(c, s)| {
                format!(
                    "{{\"class\":{c},\"attempted\":{},\"served\":{},\"served_percent\":{:.4},\"mean_fidelity\":{:.6}}}",
                    s.attempted, s.served, s.served_percent, s.mean_fidelity
                )
            })
            .collect();
        let modes: Vec<String> = self
            .degrade_mode_steps
            .iter()
            .map(|m| m.to_string())
            .collect();
        format!(
            "{{\n  \"attempted\": {},\n  \"rejected\": {},\n  \"served_percent\": {:.4},\n  \"first_try_percent\": {:.4},\n  \"rescued_percent\": {:.4},\n  \"expired_percent\": {:.4},\n  \"p50_wait_steps\": {},\n  \"p95_wait_steps\": {},\n  \"mean_fidelity\": {:.6},\n  \"mean_link_fidelity\": {:.6},\n  \"mean_eta\": {:.6},\n  \"mean_hops\": {:.4},\n  \"mean_attempts\": {:.4},\n  \"shed\": {},\n  \"deferred_by_budget\": {},\n  \"degrade_mode_steps\": [{}],\n  \"classes\": [{}]\n}}\n",
            self.attempted,
            self.rejected,
            self.served_percent(),
            self.first_try_percent(),
            self.rescued_percent(),
            self.expired_percent(),
            json_opt_u64(self.p50_wait_steps),
            json_opt_u64(self.p95_wait_steps),
            self.mean_fidelity,
            self.mean_link_fidelity,
            self.mean_eta,
            self.mean_hops,
            self.mean_attempts,
            self.shed,
            self.deferred_by_budget,
            modes.join(","),
            classes.join(",")
        )
    }
}

/// JSON rendering of an optional count: the number, or `null`.
fn json_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Nearest-rank percentile over a wait histogram; `None` on an empty
/// served set (there is no rank to take — reporting `0` would conflate
/// "nothing served" with "everything served with zero wait").
fn percentile(hist: &[u64], total: u64, q: f64) -> Option<u64> {
    if total == 0 {
        return None;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (w, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return Some(w as u64);
        }
    }
    Some(hist.len().saturating_sub(1) as u64)
}

/// Fold per-group aggregates (in group order) into the final report.
pub fn report_from_aggs(aggs: &[GroupAgg], rejected: u64) -> ServeReport {
    let mut total = GroupAgg::default();
    for agg in aggs {
        total.merge(agg);
    }
    let served = total.served_first_try + total.served_after_retry;
    let classes = (0..PRIORITY_CLASSES)
        .map(|c| ClassSlo {
            attempted: total.class_attempted[c],
            served: total.class_served[c],
            served_percent: percent(total.class_served[c], total.class_attempted[c]),
            mean_fidelity: if total.class_served[c] == 0 {
                0.0
            } else {
                total.class_fidelity_sum[c] / total.class_served[c] as f64
            },
        })
        .collect();
    ServeReport {
        attempted: total.attempted,
        served_first_try: total.served_first_try,
        served_after_retry: total.served_after_retry,
        expired: total.expired,
        rejected,
        p50_wait_steps: percentile(&total.wait_hist, served, 0.50),
        p95_wait_steps: percentile(&total.wait_hist, served, 0.95),
        mean_fidelity: mean(total.fidelity_sum, served),
        mean_link_fidelity: mean(total.link_fidelity_sum, served),
        mean_eta: mean(total.eta_sum, served),
        mean_hops: mean(total.hops_sum, served),
        mean_attempts: mean(total.attempts_sum, total.attempted),
        shed: 0,
        deferred_by_budget: 0,
        degrade_mode_steps: [0; crate::overload::DEGRADE_MODES],
        classes,
    }
}

fn mean(sum: f64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Serve the whole queue into an SLO report, holding only one
/// [`GroupAgg`] per arrival group. Parallel over groups (engine toggle);
/// bit-identical to folding [`serve_full`]'s outcomes.
pub fn serve_report(
    engine: &SweepEngine<'_>,
    queue: &RequestQueue,
    policy: RetryPolicy,
    metric: RouteMetric,
    rejected: u64,
) -> ServeReport {
    let arrivals = queue.arrival_steps();
    let aggs = engine.map_steps(&arrivals, |scratch, step| {
        serve_group_agg(engine, queue, step, policy, metric, scratch)
    });
    report_from_aggs(&aggs, rejected)
}

/// [`serve_report`] under the resilient runtime contract: checkpointed,
/// cancellable, panic-isolated per chunk of arrival groups. The
/// fingerprint must cover every parameter the outcomes depend on
/// (workload seed/kind/size, policy, metric, constellation) — see
/// [`qntn_common::frame::fingerprint`].
pub fn serve_resilient(
    engine: &SweepEngine<'_>,
    queue: &RequestQueue,
    policy: RetryPolicy,
    metric: RouteMetric,
    caller_fingerprint: u64,
    run_policy: &RunPolicy,
) -> Result<RunReport<GroupAgg>, QntnError> {
    let arrivals = queue.arrival_steps();
    run_steps(
        engine,
        &arrivals,
        caller_fingerprint,
        run_policy,
        |scratch, step| serve_group_agg(engine, queue, step, policy, metric, scratch),
    )
}

/// Fold a (possibly partial) resilient run into a report: completed
/// groups only. A clean complete run's report equals [`serve_report`]'s
/// bit for bit.
pub fn report_from_run(run: &RunReport<GroupAgg>, rejected: u64) -> ServeReport {
    let mut total = GroupAgg::default();
    for agg in run.outputs.iter().flatten() {
        total.merge(agg);
    }
    report_from_aggs(&[total], rejected)
}
