//! Seeded request-stream generators — the scenario axes of the serve layer.
//!
//! Every generator is a pure function of `(sim shape, n, seed)`: same
//! inputs, same stream, bit for bit. Endpoints are always inter-LAN ground
//! nodes (the paper's Fig. 7 convention); the kinds differ in *when*
//! requests arrive and *where* they concentrate:
//!
//! - [`WorkloadKind::Uniform`] — arrivals uniform over the day, endpoints
//!   uniform over LAN pairs.
//! - [`WorkloadKind::Poisson`] — a Poisson arrival process (exponential
//!   inter-arrival gaps at rate `n / steps`, wrapped around the day), the
//!   memoryless baseline of queueing models.
//! - [`WorkloadKind::Diurnal`] — arrival density follows a day cycle,
//!   `rate(t) ∝ 1 − cos(2πt/steps)`, peaking mid-day (thinning sampler).
//! - [`WorkloadKind::Hotspot`] — three quarters of the traffic pinned to
//!   one LAN pair, the skew that stresses capacity admission.
//! - [`WorkloadKind::FlashCrowd`] — a uniform baseline rate plus seeded
//!   burst windows where the arrival density jumps by a configurable
//!   amplitude ([`FlashCrowdConfig`]) — the overload layer's stress
//!   scenario.
//!
//! Deadlines and priorities are drawn per request (10–39 steps, classes
//! 0–3) so retry pruning and per-class reporting always have structure to
//! chew on.

use crate::request::RawRequest;
use qntn_net::QuantumNetworkSim;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The request-stream shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    Uniform,
    Poisson,
    Diurnal,
    Hotspot,
    /// Uniform baseline plus seeded burst windows
    /// ([`FlashCrowdConfig::default`]).
    FlashCrowd,
}

impl WorkloadKind {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<WorkloadKind> {
        match s {
            "uniform" => Some(WorkloadKind::Uniform),
            "poisson" => Some(WorkloadKind::Poisson),
            "diurnal" => Some(WorkloadKind::Diurnal),
            "hotspot" => Some(WorkloadKind::Hotspot),
            "flash_crowd" => Some(WorkloadKind::FlashCrowd),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Poisson => "poisson",
            WorkloadKind::Diurnal => "diurnal",
            WorkloadKind::Hotspot => "hotspot",
            WorkloadKind::FlashCrowd => "flash_crowd",
        }
    }

    /// Stable id for run fingerprints.
    pub fn id(self) -> u64 {
        match self {
            WorkloadKind::Uniform => 0,
            WorkloadKind::Poisson => 1,
            WorkloadKind::Diurnal => 2,
            WorkloadKind::Hotspot => 3,
            WorkloadKind::FlashCrowd => 4,
        }
    }
}

/// Shape of the flash-crowd bursts: `windows` intervals, each
/// `window_frac` of the day, with arrival density `amplitude ×` the
/// baseline inside them. Window starts are drawn from the stream seed,
/// so the whole scenario stays a pure function of `(sim, n, seed)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowdConfig {
    /// Number of burst windows over the day.
    pub windows: usize,
    /// Each window's length as a fraction of the day.
    pub window_frac: f64,
    /// Arrival-density multiplier inside a window.
    pub amplitude: f64,
}

impl Default for FlashCrowdConfig {
    /// Three windows of 3% of the day each at 32× the baseline density —
    /// roughly three quarters of all arrivals land inside the bursts.
    fn default() -> FlashCrowdConfig {
        FlashCrowdConfig {
            windows: 3,
            window_frac: 0.03,
            amplitude: 32.0,
        }
    }
}

/// Generate `n` requests of `kind` against `sim`, deterministically from
/// `seed`. Every generated request is valid for `sim` ([`crate::ingest`]
/// accepts the whole stream); the boundary still re-validates, because
/// real streams are not generated.
///
/// # Panics
/// Panics when the simulator has fewer than two populated LANs or zero
/// steps — a configuration error, not request input.
pub fn generate(
    sim: &QuantumNetworkSim,
    kind: WorkloadKind,
    n: usize,
    seed: u64,
) -> Vec<RawRequest> {
    generate_with(sim, kind, n, seed, FlashCrowdConfig::default())
}

/// [`WorkloadKind::FlashCrowd`] with an explicit burst shape —
/// [`generate`] uses [`FlashCrowdConfig::default`].
pub fn flash_crowd(
    sim: &QuantumNetworkSim,
    n: usize,
    seed: u64,
    crowd: FlashCrowdConfig,
) -> Vec<RawRequest> {
    generate_with(sim, WorkloadKind::FlashCrowd, n, seed, crowd)
}

fn generate_with(
    sim: &QuantumNetworkSim,
    kind: WorkloadKind,
    n: usize,
    seed: u64,
    crowd: FlashCrowdConfig,
) -> Vec<RawRequest> {
    let lans: Vec<&[usize]> = (0..sim.lan_count())
        .map(|l| sim.lan_members(l))
        .filter(|m| !m.is_empty())
        .collect();
    assert!(lans.len() >= 2, "need at least two populated LANs");
    let steps = sim.steps();
    assert!(steps > 0, "need at least one time step");

    let mut rng = StdRng::seed_from_u64(seed ^ kind.id().wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let rate = n as f64 / steps as f64;
    let mut poisson_t = 0.0_f64;

    // Flash-crowd burst windows, drawn up front from the stream RNG (the
    // other kinds draw nothing here, so their streams are unchanged).
    // Windows wrap around the day and may overlap; sampling is uniform
    // over the covered/uncovered step sets, weighted so the density
    // inside the bursts is `amplitude ×` the baseline.
    let mut burst_steps: Vec<usize> = Vec::new();
    let mut base_steps: Vec<usize> = Vec::new();
    let mut p_burst = 0.0_f64;
    if kind == WorkloadKind::FlashCrowd {
        let win_len = ((steps as f64 * crowd.window_frac).round() as usize).clamp(1, steps);
        let mut mask = vec![false; steps];
        for _ in 0..crowd.windows {
            let start = rng.random_range(0..steps);
            for k in 0..win_len {
                mask[(start + k) % steps] = true;
            }
        }
        for (t, &in_burst) in mask.iter().enumerate() {
            if in_burst {
                burst_steps.push(t);
            } else {
                base_steps.push(t);
            }
        }
        let covered = burst_steps.len() as f64;
        let uncovered = base_steps.len() as f64;
        let weighted = crowd.amplitude.max(0.0) * covered;
        p_burst = if weighted + uncovered > 0.0 {
            weighted / (weighted + uncovered)
        } else {
            0.0
        };
    }

    (0..n)
        .map(|_| {
            let arrival_step = match kind {
                WorkloadKind::Uniform | WorkloadKind::Hotspot => rng.random_range(0..steps),
                WorkloadKind::Poisson => {
                    // Exponential gap at the mean rate; wrap past the day
                    // end so the count stays exactly n.
                    let u: f64 = rng.random();
                    poisson_t += -(1.0 - u).ln() / rate.max(f64::MIN_POSITIVE);
                    (poisson_t as usize) % steps
                }
                WorkloadKind::Diurnal => loop {
                    // Thinning: accept t with probability ∝ 1 − cos(2πt/T).
                    let t = rng.random_range(0..steps);
                    let phase = 2.0 * std::f64::consts::PI * t as f64 / steps as f64;
                    let accept = 0.5 * (1.0 - phase.cos());
                    if rng.random::<f64>() < accept {
                        break t;
                    }
                },
                WorkloadKind::FlashCrowd => {
                    if !burst_steps.is_empty()
                        && (base_steps.is_empty() || rng.random::<f64>() < p_burst)
                    {
                        burst_steps[rng.random_range(0..burst_steps.len())]
                    } else {
                        base_steps[rng.random_range(0..base_steps.len())]
                    }
                }
            };
            let (a, b) = match kind {
                // Three quarters of hotspot traffic rides one LAN pair.
                WorkloadKind::Hotspot if rng.random_range(0..4u32) < 3 => (0, 1),
                _ => {
                    let a = rng.random_range(0..lans.len());
                    let b = loop {
                        let b = rng.random_range(0..lans.len());
                        if b != a {
                            break b;
                        }
                    };
                    (a, b)
                }
            };
            let src = lans[a][rng.random_range(0..lans[a].len())];
            let dst = lans[b][rng.random_range(0..lans[b].len())];
            RawRequest {
                src,
                dst,
                arrival_step,
                deadline_steps: 10 + rng.random_range(0..30usize),
                priority: rng.random_range(0..4u32) as u8,
            }
        })
        .collect()
}
