//! The request boundary: untrusted streams in, a validated SoA queue out.
//!
//! Everything downstream of [`ingest`] may assume host ids are in range,
//! `src != dst`, and arrivals lie inside the simulated day — the serving
//! hot path never re-checks and never panics on request data. Anything
//! violating those invariants is rejected here, per request, with a
//! [`ServeError`] carrying the offending values; one malformed request
//! out of a million costs exactly one rejection line, never the batch.

use std::fmt;
use std::ops::Range;

/// One unvalidated request as it arrives off the wire / generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRequest {
    /// Source host id (unvalidated).
    pub src: usize,
    /// Destination host id (unvalidated).
    pub dst: usize,
    /// Step at which the request arrives (unvalidated).
    pub arrival_step: usize,
    /// Per-request deadline: no re-attempt later than
    /// `arrival_step + deadline_steps`. The retry policy's own deadline
    /// still applies; the effective deadline is the minimum of the two.
    pub deadline_steps: usize,
    /// Priority class; classes at or above [`PRIORITY_CLASSES`] fold into
    /// the top class for reporting.
    pub priority: u8,
}

/// Number of priority classes tracked in reports.
pub const PRIORITY_CLASSES: usize = 4;

/// Why a request was rejected at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// `src` is not a host id of this simulator.
    SrcOutOfRange { src: usize, hosts: usize },
    /// `dst` is not a host id of this simulator.
    DstOutOfRange { dst: usize, hosts: usize },
    /// `src == dst` — a zero-hop request distributes nothing.
    Degenerate { node: usize },
    /// The arrival step lies outside the simulated day.
    ArrivalOutOfRange { arrival: usize, steps: usize },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::SrcOutOfRange { src, hosts } => {
                write!(f, "src {src} out of range (hosts: {hosts})")
            }
            ServeError::DstOutOfRange { dst, hosts } => {
                write!(f, "dst {dst} out of range (hosts: {hosts})")
            }
            ServeError::Degenerate { node } => {
                write!(f, "degenerate request: src == dst == {node}")
            }
            ServeError::ArrivalOutOfRange { arrival, steps } => {
                write!(f, "arrival step {arrival} out of range (steps: {steps})")
            }
        }
    }
}

/// A validated batch in structure-of-arrays form, stably sorted by arrival
/// step and pre-grouped into per-arrival ranges. Within a group, requests
/// keep their stream order (the sort is stable), so serving order — and
/// with it every artifact — is deterministic.
#[derive(Debug, Clone, Default)]
pub struct RequestQueue {
    src: Vec<usize>,
    dst: Vec<usize>,
    arrival: Vec<usize>,
    deadline: Vec<usize>,
    priority: Vec<u8>,
    /// Index of each accepted request in the original stream.
    original: Vec<usize>,
    /// `(arrival_step, queue index range)` per distinct arrival, ascending.
    groups: Vec<(usize, Range<usize>)>,
}

impl RequestQueue {
    /// Number of accepted requests.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// True when nothing was accepted.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// The distinct arrival steps, ascending.
    pub fn arrival_steps(&self) -> Vec<usize> {
        self.groups.iter().map(|(step, _)| *step).collect()
    }

    /// The `(arrival, queue range)` groups, ascending by arrival.
    pub fn groups(&self) -> &[(usize, Range<usize>)] {
        &self.groups
    }

    /// The queue index range of the group arriving at `step`, if any.
    pub fn group_range(&self, step: usize) -> Option<Range<usize>> {
        self.groups
            .binary_search_by_key(&step, |(s, _)| *s)
            .ok()
            .map(|i| self.groups[i].1.clone())
    }

    /// Source host of queue entry `i`.
    #[inline]
    pub fn src(&self, i: usize) -> usize {
        self.src[i]
    }

    /// Destination host of queue entry `i`.
    #[inline]
    pub fn dst(&self, i: usize) -> usize {
        self.dst[i]
    }

    /// Arrival step of queue entry `i`.
    #[inline]
    pub fn arrival(&self, i: usize) -> usize {
        self.arrival[i]
    }

    /// Per-request deadline (steps after arrival) of queue entry `i`.
    #[inline]
    pub fn deadline(&self, i: usize) -> usize {
        self.deadline[i]
    }

    /// Priority of queue entry `i`.
    #[inline]
    pub fn priority(&self, i: usize) -> u8 {
        self.priority[i]
    }

    /// Reporting class of queue entry `i` (priorities above the top class
    /// fold into it).
    #[inline]
    pub fn class(&self, i: usize) -> usize {
        (self.priority[i] as usize).min(PRIORITY_CLASSES - 1)
    }

    /// Original stream index of queue entry `i`.
    #[inline]
    pub fn original_index(&self, i: usize) -> usize {
        self.original[i]
    }
}

/// Validate `stream` against a simulator with `hosts` hosts and `steps`
/// time steps. Accepted requests land in the queue (stably sorted by
/// arrival); each rejected request is reported as its stream index plus
/// the reason. Never panics, for any input.
pub fn ingest(
    hosts: usize,
    steps: usize,
    stream: &[RawRequest],
) -> (RequestQueue, Vec<(usize, ServeError)>) {
    let mut rejected = Vec::new();
    let mut accepted: Vec<(usize, &RawRequest)> = Vec::with_capacity(stream.len());
    for (i, r) in stream.iter().enumerate() {
        let err = if r.src >= hosts {
            Some(ServeError::SrcOutOfRange { src: r.src, hosts })
        } else if r.dst >= hosts {
            Some(ServeError::DstOutOfRange { dst: r.dst, hosts })
        } else if r.src == r.dst {
            Some(ServeError::Degenerate { node: r.src })
        } else if r.arrival_step >= steps {
            Some(ServeError::ArrivalOutOfRange {
                arrival: r.arrival_step,
                steps,
            })
        } else {
            None
        };
        match err {
            Some(e) => rejected.push((i, e)),
            None => accepted.push((i, r)),
        }
    }
    // Stable sort keeps stream order within an arrival group.
    accepted.sort_by_key(|(_, r)| r.arrival_step);

    let mut queue = RequestQueue {
        src: Vec::with_capacity(accepted.len()),
        dst: Vec::with_capacity(accepted.len()),
        arrival: Vec::with_capacity(accepted.len()),
        deadline: Vec::with_capacity(accepted.len()),
        priority: Vec::with_capacity(accepted.len()),
        original: Vec::with_capacity(accepted.len()),
        groups: Vec::new(),
    };
    for (i, r) in accepted {
        queue.src.push(r.src);
        queue.dst.push(r.dst);
        queue.arrival.push(r.arrival_step);
        queue.deadline.push(r.deadline_steps);
        queue.priority.push(r.priority);
        queue.original.push(i);
    }
    let mut start = 0;
    while start < queue.arrival.len() {
        let step = queue.arrival[start];
        let mut end = start + 1;
        while end < queue.arrival.len() && queue.arrival[end] == step {
            end += 1;
        }
        queue.groups.push((step, start..end));
        start = end;
    }
    (queue, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(src: usize, dst: usize, arrival: usize) -> RawRequest {
        RawRequest {
            src,
            dst,
            arrival_step: arrival,
            deadline_steps: 20,
            priority: 0,
        }
    }

    #[test]
    fn valid_stream_is_fully_accepted_and_grouped() {
        let stream = vec![raw(0, 1, 5), raw(2, 3, 0), raw(1, 0, 5), raw(3, 2, 0)];
        let (q, rejected) = ingest(4, 10, &stream);
        assert!(rejected.is_empty());
        assert_eq!(q.len(), 4);
        assert_eq!(q.arrival_steps(), vec![0, 5]);
        // Stable within groups: stream order preserved.
        let g0 = q.group_range(0).unwrap();
        assert_eq!(
            (g0.clone().map(|i| q.original_index(i)).collect::<Vec<_>>()),
            vec![1, 3]
        );
        let g5 = q.group_range(5).unwrap();
        assert_eq!(
            (g5.clone().map(|i| q.original_index(i)).collect::<Vec<_>>()),
            vec![0, 2]
        );
        assert!(q.group_range(3).is_none());
    }

    #[test]
    fn each_invalid_request_is_rejected_with_its_reason() {
        let stream = vec![
            raw(9, 1, 0),          // src out of range
            raw(0, 9, 0),          // dst out of range
            raw(2, 2, 0),          // degenerate
            raw(0, 1, 10),         // arrival out of range
            raw(0, 1, 9),          // fine
            raw(usize::MAX, 0, 0), // extreme src
        ];
        let (q, rejected) = ingest(4, 10, &stream);
        assert_eq!(q.len(), 1);
        assert_eq!(q.original_index(0), 4);
        assert_eq!(rejected.len(), 5);
        assert_eq!(
            rejected[0],
            (0, ServeError::SrcOutOfRange { src: 9, hosts: 4 })
        );
        assert_eq!(
            rejected[1],
            (1, ServeError::DstOutOfRange { dst: 9, hosts: 4 })
        );
        assert_eq!(rejected[2], (2, ServeError::Degenerate { node: 2 }));
        assert_eq!(
            rejected[3],
            (
                3,
                ServeError::ArrivalOutOfRange {
                    arrival: 10,
                    steps: 10
                }
            )
        );
        assert_eq!(
            rejected[4],
            (
                5,
                ServeError::SrcOutOfRange {
                    src: usize::MAX,
                    hosts: 4
                }
            )
        );
    }

    #[test]
    fn empty_stream_yields_empty_queue() {
        let (q, rejected) = ingest(4, 10, &[]);
        assert!(q.is_empty());
        assert!(rejected.is_empty());
        assert!(q.arrival_steps().is_empty());
    }

    #[test]
    fn priority_classes_fold_at_the_top() {
        let stream = vec![
            RawRequest {
                priority: 0,
                ..raw(0, 1, 0)
            },
            RawRequest {
                priority: 3,
                ..raw(0, 1, 0)
            },
            RawRequest {
                priority: 200,
                ..raw(0, 1, 0)
            },
        ];
        let (q, _) = ingest(4, 10, &stream);
        assert_eq!(q.class(0), 0);
        assert_eq!(q.class(1), 3);
        assert_eq!(q.class(2), 3);
    }

    #[test]
    fn errors_render_their_values() {
        let e = ServeError::ArrivalOutOfRange {
            arrival: 99,
            steps: 10,
        };
        assert_eq!(e.to_string(), "arrival step 99 out of range (steps: 10)");
    }
}
