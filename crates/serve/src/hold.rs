//! Hold-aware serving: store-and-forward entanglement over the sweep
//! timeline.
//!
//! [`crate::serve::serve_full`] routes every attempt on its own step. This
//! module serves each attempt over a *time-expanded* graph instead
//! (`qntn_routing::timexp`, built by the pipeline's
//! `build_time_expanded_into`): within a bounded horizon of future steps,
//! an intermediate node may hold its half of a pair in a decohering
//! quantum memory and swap when a later pass brings the next link up. A
//! request then counts as served when the pair is *delivered* — possibly
//! some steps after the attempt started — with the memory decay folded
//! into the end-to-end η and a fidelity-floor cutoff rejecting
//! too-decohered deliveries.
//!
//! ## The zero-horizon differential contract
//!
//! With [`HoldPolicy::disabled`] (horizon 0, no memories, floor 0) this
//! module must reproduce the per-step serve **bit-identically**, clean
//! and faulted. That holds by construction, not by short-circuit: the
//! attempt loop below mirrors `serve_group_into` statement for statement;
//! a horizon-0 time-expanded graph carries exactly the per-step active
//! edge list (same floats, same order); `time_sssp_into` runs the same
//! relaxation loop as `bellman_ford_all_into`; and
//! `extract_time_route` + `realize_with_hold(·, ·, 1.0)` perform the same
//! float operations as `route_from_table` + `realize`. The differential
//! proptests in `tests/timexp.rs` and this crate's test suite pin it.
//!
//! ## Outcome semantics
//!
//! [`RetryOutcome`] is reused unchanged. A delivery that waited for a
//! later pass reports `waited_steps = attempt offset + delivery offset`;
//! a first-attempt request delivered via a hold is therefore a
//! `ServedAfterRetry { attempts: 1, .. }` — "rescued by memory" rather
//! than by the retry layer, which is exactly the quantity the
//! `reproduce timeexp` artifact compares. With holds disabled the
//! delivery offset is always 0 and the semantics collapse to the
//! per-step ones.

use crate::request::RequestQueue;
use crate::serve::{report_from_aggs, GroupAgg, ServeReport};
use qntn_net::entanglement::realize_with_hold;
use qntn_net::pipeline::host_hold_factors;
use qntn_net::requests::{RetryOutcome, RetryPolicy};
use qntn_net::{SweepEngine, SweepScratch};
use qntn_quantum::memory::ClassMemory;
use qntn_routing::{extract_time_route, time_sssp_into, RouteMetric};
use std::ops::Range;

/// How far ahead the server may look, and what it costs to wait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoldPolicy {
    /// Steps beyond the attempt step a delivery may land on (0 = route
    /// each attempt on its own step, today's behaviour).
    pub horizon_steps: usize,
    /// Per-node-class memory parameters.
    pub memory: ClassMemory,
    /// Minimum end-to-end square-root fidelity a delivery must retain,
    /// memory decay included; below it the route is rejected. `0.0`
    /// disables the cutoff (every fidelity is ≥ 0.5 ≥ 0).
    pub fidelity_floor: f64,
}

impl HoldPolicy {
    /// The configuration under which hold-aware serving must equal the
    /// per-step path bit for bit: zero horizon, zero memory, no floor.
    pub fn disabled() -> HoldPolicy {
        HoldPolicy {
            horizon_steps: 0,
            memory: ClassMemory::none(),
            fidelity_floor: 0.0,
        }
    }

    /// A horizon with the standard memory classes and no fidelity floor.
    pub fn with_horizon(horizon_steps: usize) -> HoldPolicy {
        HoldPolicy {
            horizon_steps,
            memory: ClassMemory::standard(),
            fidelity_floor: 0.0,
        }
    }

    /// The η-space floor equivalent to the fidelity floor under the
    /// workspace convention `F = (1 + √η)/2` (monotone, so cutting on η
    /// is cutting on fidelity): `η_floor = (2F − 1)²`, clamped at 0 for
    /// floors at or below the classical 1/2.
    pub fn eta_floor(&self) -> f64 {
        let s = (2.0 * self.fidelity_floor - 1.0).max(0.0);
        s * s
    }
}

/// Serve one arrival group hold-aware, appending outcomes (queue order)
/// to `out` — the mirror of the per-step `serve_group_into` with the
/// time-expanded graph swapped in. See the module docs for the
/// equivalence argument.
#[allow(clippy::too_many_arguments)] // the serving core's full context, plus the hold policy
fn serve_group_hold_into(
    engine: &SweepEngine<'_>,
    queue: &RequestQueue,
    group: Range<usize>,
    arrival: usize,
    policy: RetryPolicy,
    metric: RouteMetric,
    hold: &HoldPolicy,
    hold_factors: &[f64],
    scratch: &mut SweepScratch,
    out: &mut Vec<RetryOutcome>,
) {
    let n_steps = engine.sim().steps();
    let schedule = policy.attempt_steps(arrival, n_steps);
    let eta_floor = hold.eta_floor();
    let len = group.len();
    let mut outcome: Vec<Option<RetryOutcome>> = vec![None; len];
    let mut eligible_attempts = vec![0usize; len];
    let mut pending = len;
    let mut by_src: Vec<(usize, usize)> = Vec::with_capacity(len);

    for (k, &t) in schedule.iter().enumerate() {
        if pending == 0 {
            break;
        }
        let offset = t - arrival;
        by_src.clear();
        for li in 0..len {
            if outcome[li].is_some() {
                continue;
            }
            let qi = group.start + li;
            if k > 0 && offset > queue.deadline(qi) {
                continue;
            }
            eligible_attempts[li] += 1;
            by_src.push((queue.src(qi), li));
        }
        if by_src.is_empty() {
            break;
        }
        engine.time_expanded_into(t, hold.horizon_steps, hold_factors, scratch);
        by_src.sort_by_key(|&(src, _)| src);
        let mut i = 0;
        while i < by_src.len() {
            let src = by_src[i].0;
            time_sssp_into(&scratch.texp, src, metric, &mut scratch.ttable);
            while i < by_src.len() && by_src[i].0 == src {
                let li = by_src[i].1;
                let qi = group.start + li;
                i += 1;
                let Some(tr) = extract_time_route(
                    &scratch.texp,
                    &scratch.ttable,
                    src,
                    queue.dst(qi),
                    metric,
                    eta_floor,
                ) else {
                    continue;
                };
                let d = realize_with_hold(&tr.route, &tr.link_etas, tr.hold_eta);
                let waited = offset + tr.delivered_layer;
                outcome[li] = Some(if k == 0 && waited == 0 {
                    RetryOutcome::ServedFirstTry(d)
                } else {
                    RetryOutcome::ServedAfterRetry {
                        distribution: d,
                        attempts: k + 1,
                        waited_steps: waited,
                    }
                });
                pending -= 1;
            }
        }
    }
    for (li, slot) in outcome.into_iter().enumerate() {
        out.push(slot.unwrap_or(RetryOutcome::Expired {
            attempts: eligible_attempts[li],
        }));
    }
}

/// Serve the whole queue hold-aware, materializing one [`RetryOutcome`]
/// per accepted request in queue order — the differential-comparable
/// entry point. With [`HoldPolicy::disabled`] this equals
/// [`crate::serve::serve_full`] bit for bit.
pub fn serve_full_with_holds(
    engine: &SweepEngine<'_>,
    queue: &RequestQueue,
    policy: RetryPolicy,
    metric: RouteMetric,
    hold: &HoldPolicy,
) -> Vec<RetryOutcome> {
    let factors = host_hold_factors(engine.sim().hosts(), &hold.memory);
    let arrivals = queue.arrival_steps();
    let per_group = engine.map_steps(&arrivals, |scratch, step| {
        let range = queue
            .group_range(step)
            .expect("arrival steps come from the queue's own groups");
        let mut out = Vec::with_capacity(range.len());
        serve_group_hold_into(
            engine, queue, range, step, policy, metric, hold, &factors, scratch, &mut out,
        );
        out
    });
    per_group.concat()
}

/// Serve the whole queue hold-aware into an SLO report, one [`GroupAgg`]
/// per arrival group. With [`HoldPolicy::disabled`] this equals
/// [`crate::serve::serve_report`] bit for bit.
pub fn serve_report_with_holds(
    engine: &SweepEngine<'_>,
    queue: &RequestQueue,
    policy: RetryPolicy,
    metric: RouteMetric,
    hold: &HoldPolicy,
    rejected: u64,
) -> ServeReport {
    let factors = host_hold_factors(engine.sim().hosts(), &hold.memory);
    let arrivals = queue.arrival_steps();
    let aggs = engine.map_steps(&arrivals, |scratch, step| {
        let range = queue
            .group_range(step)
            .expect("arrival steps come from the queue's own groups");
        let mut outcomes = Vec::with_capacity(range.len());
        serve_group_hold_into(
            engine,
            queue,
            range.clone(),
            step,
            policy,
            metric,
            hold,
            &factors,
            scratch,
            &mut outcomes,
        );
        let classes: Vec<usize> = range.map(|qi| queue.class(qi)).collect();
        GroupAgg::from_outcomes(&outcomes, &classes)
    });
    report_from_aggs(&aggs, rejected)
}
