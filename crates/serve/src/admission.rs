//! Capacity admission: the serve timeline with finite link budgets.
//!
//! Without capacity, arrival groups are independent and serve in
//! parallel. With a [`CapacityModel`], requests attempting the same step
//! contend for the same per-link pair budgets, so the timeline runs
//! *sequentially* in step order — determinism over parallelism here, by
//! design. Within a step, admission order is (priority descending, queue
//! index ascending): strictly deterministic, never a hash-map iteration.
//!
//! Budgets are per step (the model's window is the step length) and keyed
//! by a sorted edge-endpoint table with binary-search lookups — the same
//! discipline the determinism lint enforces on the serve hot path.
//!
//! Routing stays congestion-blind (the paper's metric has no load term)
//! and amortized per distinct source, exactly as in the uncapacitated
//! path; admission only decides whether the routed path may *consume*
//! budget this step. A budget-blocked attempt re-enters the request's own
//! backoff schedule like any routing failure.

use crate::request::RequestQueue;
use qntn_net::capacity::CapacityModel;
use qntn_net::entanglement::realize;
use qntn_net::requests::{RetryOutcome, RetryPolicy};
use qntn_net::{SweepEngine, SweepScratch};
use qntn_routing::{bellman_ford_all_into, route_from_table, RouteMetric};

/// Outcome of a capacity-admitted serve run.
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// Per accepted request, in queue order.
    pub outcomes: Vec<RetryOutcome>,
    /// Number of attempts deferred because a link budget was exhausted
    /// (each deferral re-enters the backoff schedule).
    pub congestion_deferrals: u64,
    /// Served count, cached at construction (the outcomes are immutable
    /// once assembled, so one scan at build time replaces a scan per
    /// call).
    served: usize,
}

impl AdmissionOutcome {
    /// Assemble an outcome, caching the served count.
    pub fn new(outcomes: Vec<RetryOutcome>, congestion_deferrals: u64) -> AdmissionOutcome {
        let served = outcomes
            .iter()
            .filter(|o| o.distribution().is_some())
            .count();
        AdmissionOutcome {
            outcomes,
            congestion_deferrals,
            served,
        }
    }

    /// Requests served by any attempt (cached; equals the scan over
    /// `outcomes`, pinned by a regression test).
    pub fn served_count(&self) -> usize {
        self.served
    }
}

/// Serve `queue` against per-step link budgets. Sequential over steps;
/// deterministic for a given queue/policy/model.
pub fn serve_with_admission(
    engine: &SweepEngine<'_>,
    queue: &RequestQueue,
    policy: RetryPolicy,
    metric: RouteMetric,
    model: CapacityModel,
) -> AdmissionOutcome {
    let n_steps = engine.sim().steps();
    let n = queue.len();
    let mut outcomes: Vec<Option<RetryOutcome>> = vec![None; n];
    let mut attempts_made = vec![0usize; n];
    // Current backoff offset per request: 0 before the first attempt,
    // then b, 3b, 7b, … (next = 2·offset + b).
    let mut offsets = vec![0usize; n];
    let mut deferrals = 0u64;

    // Agenda: queue indices attempting at each step.
    let mut agenda: Vec<Vec<usize>> = vec![Vec::new(); n_steps];
    for (arrival, range) in queue.groups().iter().cloned() {
        agenda[arrival].extend(range);
    }

    let mut scratch = SweepScratch::default();
    let mut edge_keys: Vec<(usize, usize)> = Vec::new();
    let mut budgets: Vec<f64> = Vec::new();
    let mut bucket: Vec<usize> = Vec::new();
    let max_attempts = policy.max_attempts.max(1);

    for t in 0..n_steps {
        if agenda[t].is_empty() {
            continue;
        }
        bucket.clear();
        bucket.append(&mut agenda[t]);
        engine.active_graph_into(t, &mut scratch);
        let graph = &scratch.active;

        // Fresh per-step budgets over the live edges, binary-searchable.
        edge_keys.clear();
        budgets.clear();
        for (u, v, eta) in graph.edges() {
            edge_keys.push((u.min(v), u.max(v)));
            budgets.push(model.link_budget(eta));
        }
        // `Graph::edges()` yields ascending (u, v); keep the invariant
        // explicit for the binary searches below.
        debug_assert!(edge_keys.windows(2).all(|w| w[0] < w[1]));

        // Route everything first (admission cannot change routes), one
        // SSSP per distinct source.
        bucket.sort_unstable();
        let mut routed: Vec<Option<qntn_routing::Route>> = vec![None; bucket.len()];
        let mut order: Vec<usize> = (0..bucket.len()).collect();
        order.sort_by_key(|&bi| queue.src(bucket[bi]));
        let mut i = 0;
        while i < order.len() {
            let src = queue.src(bucket[order[i]]);
            bellman_ford_all_into(graph, src, metric, &mut scratch.sssp);
            while i < order.len() && queue.src(bucket[order[i]]) == src {
                let bi = order[i];
                routed[bi] =
                    route_from_table(graph, &scratch.sssp, src, queue.dst(bucket[bi]), metric);
                i += 1;
            }
        }

        // Admit in (priority desc, queue index asc) order.
        let mut admit: Vec<usize> = (0..bucket.len()).collect();
        admit.sort_by_key(|&bi| (u8::MAX - queue.priority(bucket[bi]), bucket[bi]));
        for bi in admit {
            let qi = bucket[bi];
            attempts_made[qi] += 1;
            let k = attempts_made[qi];
            let served = routed[bi].take().and_then(|route| {
                let keys: Vec<(usize, usize)> = route
                    .nodes
                    .windows(2)
                    .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
                    .collect();
                let slots: Vec<usize> = keys
                    .iter()
                    .filter_map(|k| edge_keys.binary_search(k).ok())
                    .collect();
                // Every routed hop is a live edge; a lookup miss would
                // mean a corrupt table — treat as unroutable.
                if slots.len() != keys.len() {
                    return None;
                }
                if slots.iter().any(|&s| budgets[s] < 1.0) {
                    deferrals += 1;
                    return None;
                }
                let mut link_etas = Vec::with_capacity(route.nodes.len().saturating_sub(1));
                for w in route.nodes.windows(2) {
                    link_etas.push(graph.eta(w[0], w[1])?);
                }
                for &s in &slots {
                    budgets[s] -= 1.0;
                }
                Some(realize(&route, &link_etas))
            });
            match served {
                Some(d) => {
                    outcomes[qi] = Some(if k == 1 {
                        RetryOutcome::ServedFirstTry(d)
                    } else {
                        RetryOutcome::ServedAfterRetry {
                            distribution: d,
                            attempts: k,
                            waited_steps: t - queue.arrival(qi),
                        }
                    });
                }
                None => {
                    // Reschedule under the backoff policy, or expire.
                    let next = offsets[qi]
                        .saturating_mul(2)
                        .saturating_add(policy.backoff_steps);
                    let deadline = queue.deadline(qi).min(policy.deadline_steps);
                    let next_t = queue.arrival(qi).saturating_add(next);
                    if policy.backoff_steps == 0
                        || k >= max_attempts
                        || next > deadline
                        || next_t >= n_steps
                    {
                        outcomes[qi] = Some(RetryOutcome::Expired { attempts: k });
                    } else {
                        offsets[qi] = next;
                        agenda[next_t].push(qi);
                    }
                }
            }
        }
    }

    AdmissionOutcome::new(
        outcomes
            .into_iter()
            .enumerate()
            .map(|(qi, o)| {
                o.unwrap_or(RetryOutcome::Expired {
                    attempts: attempts_made[qi],
                })
            })
            .collect(),
        deferrals,
    )
}
