//! Overload control: retry budgets, deterministic load shedding and
//! graceful degradation under fault storms.
//!
//! The serve layer below this module fails *open*: a flash crowd or a
//! fault storm just inflates retry rounds and deadline expiries. This
//! module bounds that behaviour with three deterministic mechanisms,
//! each independently configurable and each a provable no-op when
//! disabled:
//!
//! 1. **Retry budgets** ([`RetryBudget`]) — a global and a per-priority-
//!    class token bucket over *retry* attempts (first attempts ride
//!    free). A retry beyond the budget is deferred to its next backoff
//!    slot without consuming an attempt, or shed
//!    ([`ShedReason::RetryBudget`]) when no later slot exists — so a
//!    retry storm cannot amplify offered load.
//! 2. **Load shedding** ([`ShedPolicy`]) — when a step's offered
//!    attempts exceed a utilization threshold of the step's total live
//!    link budget, the excess is shed lowest-priority-first
//!    ([`ShedReason::Overload`]) with a seeded, bit-deterministic
//!    tie-break among equal priorities.
//! 3. **Graceful degradation** ([`DegradePolicy`]) — a ladder driven by
//!    the per-step health signal [`CompiledFaults::step_health`]
//!    (up-host fraction × weather η factor): as health drops, first
//!    memory holds are disabled, then backoff slots stretch, then whole
//!    priority classes are shed ([`ShedReason::Degraded`]) — progressive
//!    cheapening instead of cliff-edge collapse.
//!
//! ## The zero-config differential contract
//!
//! [`OverloadPolicy::disabled`] must reproduce the existing serve paths
//! **bit for bit**, clean and faulted. That holds by construction: the
//! timeline below mirrors [`crate::admission::serve_with_admission`]
//! statement for statement (same agenda, same per-step budget table,
//! same admit order, same reschedule/expiry arithmetic), with the
//! per-step router swapped for the time-expanded one — the seam PR 8
//! pinned bitwise at horizon 0. So:
//!
//! - with a [`CapacityModel`] and [`HoldPolicy::disabled`], the run
//!   equals [`crate::admission::serve_with_admission`];
//! - without a capacity model, the run equals
//!   [`crate::hold::serve_full_with_holds`] (requests no longer contend,
//!   so the sequential agenda visits exactly the per-group schedule).
//!
//! Both contracts are pinned at the unit, integration and root-proptest
//! layers (`crates/serve/tests/serve.rs`, `tests/overload.rs`).
//!
//! ## Monotonicity
//!
//! On the single-attempt path (`backoff_steps == 0`, where no retry
//! dynamics feed back into the agenda) shed counts are monotone
//! non-decreasing in offered load and in fault intensity *by
//! construction*: prefix workloads only grow each step's bucket, fault
//! schedules nest ([`qntn_net::faults::FaultModel`]), health is monotone
//! in intensity and live budgets only shrink — and
//! `shed(step) = degraded + max(0, offered − degraded − capacity)` is
//! monotone in each argument. Property-tested in `tests/overload.rs`.

use crate::hold::HoldPolicy;
use crate::request::{RequestQueue, PRIORITY_CLASSES};
use crate::serve::{report_from_aggs, GroupAgg, ServeReport};
use qntn_net::capacity::CapacityModel;
use qntn_net::entanglement::realize_with_hold;
use qntn_net::faults::CompiledFaults;
use qntn_net::pipeline::host_hold_factors;
use qntn_net::requests::{RetryOutcome, RetryPolicy};
use qntn_net::{SweepEngine, SweepScratch};
use qntn_routing::{extract_time_route, time_sssp_into, RouteMetric};

/// Token buckets over retry attempts. First attempts are never charged;
/// every retry consumes one token from the global bucket *and* one from
/// its priority class's bucket. Buckets start full and refill once per
/// step, capped at their burst size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    /// Tokens added to the global bucket each step.
    pub global_per_step: f64,
    /// Global bucket capacity (burst).
    pub global_burst: f64,
    /// Per-class per-step refill.
    pub class_per_step: [f64; PRIORITY_CLASSES],
    /// Per-class bucket capacity.
    pub class_burst: [f64; PRIORITY_CLASSES],
}

impl RetryBudget {
    /// The budget under which no retry is ever deferred — the
    /// differential-contract configuration.
    pub fn unlimited() -> RetryBudget {
        RetryBudget {
            global_per_step: f64::INFINITY,
            global_burst: f64::INFINITY,
            class_per_step: [f64::INFINITY; PRIORITY_CLASSES],
            class_burst: [f64::INFINITY; PRIORITY_CLASSES],
        }
    }

    /// A finite budget sized for the standard workloads: 64 retries per
    /// step globally (burst 256), 24 per class (burst 96).
    pub fn standard() -> RetryBudget {
        RetryBudget {
            global_per_step: 64.0,
            global_burst: 256.0,
            class_per_step: [24.0; PRIORITY_CLASSES],
            class_burst: [96.0; PRIORITY_CLASSES],
        }
    }

    /// Is every bucket infinite (the gate provably never fires)?
    pub fn is_unlimited(&self) -> bool {
        self.global_per_step.is_infinite()
            && self.global_burst.is_infinite()
            && self.class_per_step.iter().all(|r| r.is_infinite())
            && self.class_burst.iter().all(|r| r.is_infinite())
    }
}

/// Utilization-threshold load shedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// Shed when a step's offered attempts exceed `utilization ×` the
    /// step's total live link budget (the sum of
    /// [`CapacityModel::link_budget`] over live edges; one unit per live
    /// edge when serving uncapacitated). `f64::INFINITY` disables.
    pub utilization: f64,
    /// Seed for the bit-deterministic tie-break among equal-priority
    /// victims (same role as [`qntn_net::faults::FaultModel`]'s seed).
    pub seed: u64,
}

impl ShedPolicy {
    /// Never shed — the differential-contract configuration.
    pub fn disabled() -> ShedPolicy {
        ShedPolicy {
            utilization: f64::INFINITY,
            seed: 0,
        }
    }

    /// Shed offered attempts beyond the step's full live budget.
    pub fn standard(seed: u64) -> ShedPolicy {
        ShedPolicy {
            utilization: 1.0,
            seed,
        }
    }
}

/// Why a request was shed, reported positionally per request
/// (mirroring [`qntn_net::capacity::BlockReason`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The step's offered attempts exceeded the utilization threshold of
    /// its live link budgets and this request lost the priority order.
    Overload,
    /// The retry budget was exhausted and the backoff schedule had no
    /// later slot to defer into.
    RetryBudget,
    /// The degradation ladder dropped this request's priority class at
    /// its attempt step.
    Degraded,
}

/// The degradation ladder's rungs, shallow to deep. Deeper rungs imply
/// the shallower behaviours (a [`DegradeMode::ShedClasses`] step also
/// serves without holds and with stretched backoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeMode {
    /// Full service.
    Normal,
    /// Memory holds disabled (attempts route on their own step only).
    NoHolds,
    /// Holds disabled and backoff slots doubled — retries spread out.
    StretchedBackoff,
    /// All of the above, plus whole priority classes shed.
    ShedClasses,
}

/// Number of [`DegradeMode`] rungs (the length of the per-mode step
/// counters in [`OverloadOutcome`] and [`ServeReport`]).
pub const DEGRADE_MODES: usize = 4;

/// Health thresholds driving the [`DegradeMode`] ladder. A rung engages
/// when the step's health falls strictly below its threshold; health is
/// in `[0, 1]`, so a threshold of `0.0` can never engage (the disabled
/// configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradePolicy {
    /// Below this health, memory holds are disabled.
    pub no_holds_below: f64,
    /// Below this health, backoff slots double as well.
    pub stretch_backoff_below: f64,
    /// Below `shed_class_below[c]`, priority class `c` is shed at that
    /// step. Class 0 is the lowest priority, so sensible ladders are
    /// non-increasing in `c` — lower classes go first.
    pub shed_class_below: [f64; PRIORITY_CLASSES],
}

impl DegradePolicy {
    /// Never degrade — the differential-contract configuration.
    pub fn disabled() -> DegradePolicy {
        DegradePolicy {
            no_holds_below: 0.0,
            stretch_backoff_below: 0.0,
            shed_class_below: [0.0; PRIORITY_CLASSES],
        }
    }

    /// A ladder tuned to the standard fault model: holds off below 0.9,
    /// backoff stretched below 0.75, classes shed at 0.6/0.45/0.3/0.15.
    pub fn standard() -> DegradePolicy {
        DegradePolicy {
            no_holds_below: 0.9,
            stretch_backoff_below: 0.75,
            shed_class_below: [0.6, 0.45, 0.3, 0.15],
        }
    }

    /// Which classes the ladder sheds at `health`.
    pub fn shed_classes(&self, health: f64) -> [bool; PRIORITY_CLASSES] {
        std::array::from_fn(|c| health < self.shed_class_below[c])
    }

    /// The deepest rung engaged at `health`.
    pub fn mode(&self, health: f64) -> DegradeMode {
        if self.shed_classes(health).iter().any(|&s| s) {
            DegradeMode::ShedClasses
        } else if health < self.stretch_backoff_below {
            DegradeMode::StretchedBackoff
        } else if health < self.no_holds_below {
            DegradeMode::NoHolds
        } else {
            DegradeMode::Normal
        }
    }
}

/// The full overload-control configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    pub budget: RetryBudget,
    pub shed: ShedPolicy,
    pub degrade: DegradePolicy,
}

impl OverloadPolicy {
    /// Unlimited budget, no shedding, no degradation — under this
    /// configuration [`serve_overload`] reproduces the baseline serve
    /// paths bit for bit (see the module docs).
    pub fn disabled() -> OverloadPolicy {
        OverloadPolicy {
            budget: RetryBudget::unlimited(),
            shed: ShedPolicy::disabled(),
            degrade: DegradePolicy::disabled(),
        }
    }

    /// Every mechanism on at its standard setting.
    pub fn standard(seed: u64) -> OverloadPolicy {
        OverloadPolicy {
            budget: RetryBudget::standard(),
            shed: ShedPolicy::standard(seed),
            degrade: DegradePolicy::standard(),
        }
    }
}

/// Outcome of an overload-controlled serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadOutcome {
    /// Per accepted request, in queue order. Shed requests report
    /// [`RetryOutcome::Expired`] with the attempts made before the shed;
    /// `shed` distinguishes them.
    pub outcomes: Vec<RetryOutcome>,
    /// Positional shed reasons, queue order; `None` = not shed.
    pub shed: Vec<Option<ShedReason>>,
    /// Attempts deferred because a link budget was exhausted (the
    /// admission layer's counter, unchanged).
    pub congestion_deferrals: u64,
    /// Retries deferred to a later slot by the retry budget.
    pub budget_deferrals: u64,
    /// Steps spent on each [`DegradeMode`] rung over the whole timeline.
    pub degrade_mode_steps: [u64; DEGRADE_MODES],
    /// Requests served by any attempt, cached at construction.
    served: usize,
}

impl OverloadOutcome {
    /// Requests served by any attempt.
    pub fn served_count(&self) -> usize {
        self.served
    }

    /// Requests shed for any reason.
    pub fn shed_count(&self) -> usize {
        self.shed.iter().filter(|s| s.is_some()).count()
    }

    /// Requests shed for `reason`.
    pub fn shed_count_for(&self, reason: ShedReason) -> usize {
        self.shed.iter().filter(|s| **s == Some(reason)).count()
    }
}

/// The seeded, bit-deterministic tie-break among equal-priority shed
/// victims (splitmix-style finalizer over the queue index).
fn tie_hash(seed: u64, qi: usize) -> u64 {
    let mut x = seed ^ (qi as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// The per-step health signal: [`CompiledFaults::step_health`] when a
/// mask is attached, `1.0` (fully healthy) otherwise.
fn step_health(faults: Option<&CompiledFaults>, step: usize) -> f64 {
    faults.map_or(1.0, |f| f.step_health(step))
}

/// Serve `queue` under overload control. Sequential over steps (the
/// budgets and buckets couple them); deterministic for a given
/// queue/policy/model/mask. With `Some(model)` the run is
/// capacity-admitted exactly as [`crate::admission::serve_with_admission`];
/// with `None` it is uncapacitated. See the module docs for the
/// zero-config differential contracts.
#[allow(clippy::too_many_arguments)] // the serving core's full context, plus the overload policy
pub fn serve_overload(
    engine: &SweepEngine<'_>,
    queue: &RequestQueue,
    policy: RetryPolicy,
    metric: RouteMetric,
    admission: Option<CapacityModel>,
    hold: &HoldPolicy,
    overload: &OverloadPolicy,
) -> OverloadOutcome {
    let n_steps = engine.sim().steps();
    let n = queue.len();
    let mut outcomes: Vec<Option<RetryOutcome>> = vec![None; n];
    let mut shed: Vec<Option<ShedReason>> = vec![None; n];
    let mut attempts_made = vec![0usize; n];
    // Current backoff offset per request: 0 before the first attempt,
    // then b, 3b, 7b, … (next = 2·offset + b), with b doubled on
    // stretched steps.
    let mut offsets = vec![0usize; n];
    let mut congestion_deferrals = 0u64;
    let mut budget_deferrals = 0u64;
    let mut degrade_mode_steps = [0u64; DEGRADE_MODES];

    let hold_factors = host_hold_factors(engine.sim().hosts(), &hold.memory);
    let eta_floor = hold.eta_floor();
    let faults = engine.faults();

    // Agenda: queue indices attempting at each step.
    let mut agenda: Vec<Vec<usize>> = vec![Vec::new(); n_steps];
    for (arrival, range) in queue.groups().iter().cloned() {
        agenda[arrival].extend(range);
    }

    let mut scratch = SweepScratch::default();
    let mut edge_keys: Vec<(usize, usize)> = Vec::new();
    let mut budgets: Vec<f64> = Vec::new();
    let mut bucket: Vec<usize> = Vec::new();
    let max_attempts = policy.max_attempts.max(1);

    // Token buckets start full.
    let mut global_tokens = overload.budget.global_burst;
    let mut class_tokens = overload.budget.class_burst;

    for t in 0..n_steps {
        // The degrade rung and the bucket refills advance every step —
        // they model time, not work.
        let health = step_health(faults, t);
        let mode = overload.degrade.mode(health);
        degrade_mode_steps[mode as usize] += 1;
        global_tokens =
            (global_tokens + overload.budget.global_per_step).min(overload.budget.global_burst);
        for (c, tokens) in class_tokens.iter_mut().enumerate() {
            *tokens =
                (*tokens + overload.budget.class_per_step[c]).min(overload.budget.class_burst[c]);
        }

        if agenda[t].is_empty() {
            continue;
        }
        bucket.clear();
        bucket.append(&mut agenda[t]);
        bucket.sort_unstable();

        let horizon = if mode >= DegradeMode::NoHolds {
            0
        } else {
            hold.horizon_steps
        };
        let backoff_mult: usize = if mode >= DegradeMode::StretchedBackoff {
            2
        } else {
            1
        };

        // Rung 3: shed whole classes before any routing work.
        if mode == DegradeMode::ShedClasses {
            let class_shed = overload.degrade.shed_classes(health);
            bucket.retain(|&qi| {
                if class_shed[queue.class(qi)] {
                    shed[qi] = Some(ShedReason::Degraded);
                    outcomes[qi] = Some(RetryOutcome::Expired {
                        attempts: attempts_made[qi],
                    });
                    false
                } else {
                    true
                }
            });
        }

        // Retry budget: retries (never first attempts) each consume one
        // global and one class token, granted in admission order
        // (priority descending, queue index ascending). A denied retry
        // defers to its next backoff slot without consuming an attempt,
        // or is shed when no later slot exists.
        if !overload.budget.is_unlimited() {
            let mut grant: Vec<usize> = (0..bucket.len()).collect();
            grant.sort_by_key(|&bi| (u8::MAX - queue.priority(bucket[bi]), bucket[bi]));
            let mut denied = vec![false; bucket.len()];
            for bi in grant {
                let qi = bucket[bi];
                if attempts_made[qi] == 0 {
                    continue;
                }
                let c = queue.class(qi);
                if global_tokens >= 1.0 && class_tokens[c] >= 1.0 {
                    global_tokens -= 1.0;
                    class_tokens[c] -= 1.0;
                } else {
                    denied[bi] = true;
                }
            }
            let mut keep = 0;
            for bi in 0..bucket.len() {
                let qi = bucket[bi];
                if !denied[bi] {
                    bucket[keep] = qi;
                    keep += 1;
                    continue;
                }
                let next = offsets[qi]
                    .saturating_mul(2)
                    .saturating_add(policy.backoff_steps.saturating_mul(backoff_mult));
                let deadline = queue.deadline(qi).min(policy.deadline_steps);
                let next_t = queue.arrival(qi).saturating_add(next);
                if policy.backoff_steps == 0 || next > deadline || next_t >= n_steps {
                    shed[qi] = Some(ShedReason::RetryBudget);
                    outcomes[qi] = Some(RetryOutcome::Expired {
                        attempts: attempts_made[qi],
                    });
                } else {
                    offsets[qi] = next;
                    agenda[next_t].push(qi);
                    budget_deferrals += 1;
                }
            }
            bucket.truncate(keep);
        }

        // Fresh per-step budgets over the live edges, binary-searchable —
        // the admission table, also the shed layer's capacity measure.
        edge_keys.clear();
        budgets.clear();
        if admission.is_some() || overload.shed.utilization.is_finite() {
            engine.active_graph_into(t, &mut scratch);
            for (u, v, eta) in scratch.active.edges() {
                edge_keys.push((u.min(v), u.max(v)));
                budgets.push(match admission {
                    Some(model) => model.link_budget(eta),
                    None => 1.0,
                });
            }
            debug_assert!(edge_keys.windows(2).all(|w| w[0] < w[1]));
        }

        // Utilization shed: offered attempts beyond the threshold share
        // of the step's total live budget go, lowest priority first,
        // seeded tie-break among equals.
        if overload.shed.utilization.is_finite() {
            let total: f64 = budgets.iter().sum();
            let cap = overload.shed.utilization * total;
            let allowed = if cap >= bucket.len() as f64 {
                bucket.len()
            } else {
                cap.max(0.0).floor() as usize
            };
            if bucket.len() > allowed {
                let mut victims: Vec<usize> = (0..bucket.len()).collect();
                victims.sort_by_key(|&bi| {
                    let qi = bucket[bi];
                    (queue.priority(qi), tie_hash(overload.shed.seed, qi), qi)
                });
                let mut dead = vec![false; bucket.len()];
                for &bi in victims.iter().take(bucket.len() - allowed) {
                    let qi = bucket[bi];
                    shed[qi] = Some(ShedReason::Overload);
                    outcomes[qi] = Some(RetryOutcome::Expired {
                        attempts: attempts_made[qi],
                    });
                    dead[bi] = true;
                }
                let mut keep = 0;
                for bi in 0..bucket.len() {
                    if !dead[bi] {
                        bucket[keep] = bucket[bi];
                        keep += 1;
                    }
                }
                bucket.truncate(keep);
            }
        }

        if bucket.is_empty() {
            continue;
        }

        // Route everything first (admission cannot change routes), one
        // time-expanded SSSP per distinct source. At horizon 0 this is
        // bitwise the per-step router (the PR 8 seam).
        engine.time_expanded_into(t, horizon, &hold_factors, &mut scratch);
        let mut routed: Vec<Option<qntn_routing::TimeRoute>> = vec![None; bucket.len()];
        let mut order: Vec<usize> = (0..bucket.len()).collect();
        order.sort_by_key(|&bi| queue.src(bucket[bi]));
        let mut i = 0;
        while i < order.len() {
            let src = queue.src(bucket[order[i]]);
            time_sssp_into(&scratch.texp, src, metric, &mut scratch.ttable);
            while i < order.len() && queue.src(bucket[order[i]]) == src {
                let bi = order[i];
                routed[bi] = extract_time_route(
                    &scratch.texp,
                    &scratch.ttable,
                    src,
                    queue.dst(bucket[bi]),
                    metric,
                    eta_floor,
                );
                i += 1;
            }
        }

        // Admit in (priority desc, queue index asc) order.
        let mut admit: Vec<usize> = (0..bucket.len()).collect();
        admit.sort_by_key(|&bi| (u8::MAX - queue.priority(bucket[bi]), bucket[bi]));
        for bi in admit {
            let qi = bucket[bi];
            attempts_made[qi] += 1;
            let k = attempts_made[qi];
            let served = routed[bi].take().and_then(|tr| {
                if admission.is_some() {
                    let keys: Vec<(usize, usize)> = tr
                        .route
                        .nodes
                        .windows(2)
                        .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
                        .collect();
                    let slots: Vec<usize> = keys
                        .iter()
                        .filter_map(|k| edge_keys.binary_search(k).ok())
                        .collect();
                    // At horizon 0 every routed hop is a live edge of this
                    // step's graph; a miss would mean a corrupt table —
                    // treat as unroutable. With a horizon, hops on later
                    // layers legitimately miss the attempt step's table
                    // and ride uncharged (the budget window *is* the
                    // attempt step).
                    if horizon == 0 && slots.len() != keys.len() {
                        return None;
                    }
                    if slots.iter().any(|&s| budgets[s] < 1.0) {
                        congestion_deferrals += 1;
                        return None;
                    }
                    for &s in &slots {
                        budgets[s] -= 1.0;
                    }
                }
                Some((
                    realize_with_hold(&tr.route, &tr.link_etas, tr.hold_eta),
                    tr.delivered_layer,
                ))
            });
            match served {
                Some((d, layer)) => {
                    let waited = (t - queue.arrival(qi)) + layer;
                    outcomes[qi] = Some(if k == 1 && waited == 0 {
                        RetryOutcome::ServedFirstTry(d)
                    } else {
                        RetryOutcome::ServedAfterRetry {
                            distribution: d,
                            attempts: k,
                            waited_steps: waited,
                        }
                    });
                }
                None => {
                    // Reschedule under the backoff policy, or expire.
                    let next = offsets[qi]
                        .saturating_mul(2)
                        .saturating_add(policy.backoff_steps.saturating_mul(backoff_mult));
                    let deadline = queue.deadline(qi).min(policy.deadline_steps);
                    let next_t = queue.arrival(qi).saturating_add(next);
                    if policy.backoff_steps == 0
                        || k >= max_attempts
                        || next > deadline
                        || next_t >= n_steps
                    {
                        outcomes[qi] = Some(RetryOutcome::Expired { attempts: k });
                    } else {
                        offsets[qi] = next;
                        agenda[next_t].push(qi);
                    }
                }
            }
        }
    }

    let outcomes: Vec<RetryOutcome> = outcomes
        .into_iter()
        .enumerate()
        .map(|(qi, o)| {
            o.unwrap_or(RetryOutcome::Expired {
                attempts: attempts_made[qi],
            })
        })
        .collect();
    let served = outcomes
        .iter()
        .filter(|o| o.distribution().is_some())
        .count();
    OverloadOutcome {
        outcomes,
        shed,
        congestion_deferrals,
        budget_deferrals,
        degrade_mode_steps,
        served,
    }
}

/// Fold an overload run into an SLO report. Shed requests count inside
/// `expired` (they made no delivery) with the `shed` counter recording
/// the subset; the budget-deferral and degrade-mode counters carry over
/// verbatim.
pub fn overload_report(
    outcome: &OverloadOutcome,
    queue: &RequestQueue,
    rejected: u64,
) -> ServeReport {
    let classes: Vec<usize> = (0..queue.len()).map(|qi| queue.class(qi)).collect();
    let agg = GroupAgg::from_outcomes(&outcome.outcomes, &classes);
    let mut report = report_from_aggs(&[agg], rejected);
    report.shed = outcome.shed_count() as u64;
    report.deferred_by_budget = outcome.budget_deferrals;
    report.degrade_mode_steps = outcome.degrade_mode_steps;
    report
}
