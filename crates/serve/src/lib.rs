//! # qntn-serve — batch entanglement-request service
//!
//! Everything below this crate computes topology; this crate serves
//! traffic against it. The shape of the problem (after *Dynamic Routing
//! in Space-Ground Integrated Quantum Networks* and *QuESat*): a stream
//! of hundreds of thousands to millions of entanglement requests
//! `(src, dst, arrival_step, deadline_steps, priority)` arriving over a
//! simulated day, served against the time-varying Scene → LinkMap →
//! Topology pipeline with retry/deadline semantics.
//!
//! The layers:
//!
//! - [`request`] — the validation boundary. Raw streams are untrusted;
//!   [`ingest`] rejects each malformed request with a [`ServeError`]
//!   (never a panic) and compacts the rest into a SoA [`RequestQueue`]
//!   grouped by arrival step.
//! - [`workload`] — seeded stream generators (uniform, Poisson, diurnal,
//!   hotspot) as scenario axes.
//! - [`serve`] — the amortized serving core: per attempt round, one SSSP
//!   table per *distinct source* instead of one Bellman–Ford per request,
//!   rayon-parallel over arrival groups, bit-identical to the naive
//!   per-request [`qntn_net::requests::RequestWorkload::evaluate_with_retries`]
//!   path (the differential contract, enforced by tests). Entry points
//!   for materialized outcomes ([`serve_full`]), streaming SLO aggregation
//!   ([`serve_report`]) and checkpointed/cancellable resilient runs
//!   ([`serve_resilient`]).
//! - [`hold`] — the store-and-forward serving mode: attempts route over a
//!   *time-expanded* graph within a bounded horizon, so nodes with
//!   decohering quantum memories ([`qntn_quantum::memory`]) can hold a
//!   Bell half for a better pass and swap across non-simultaneous links.
//!   A [`HoldPolicy::disabled`] run reproduces [`serve`] bit-identically
//!   (the zero-horizon differential contract).
//! - [`admission`] — optional finite-capacity admission
//!   ([`qntn_net::capacity::CapacityModel`]): a sequential, deterministic
//!   timeline where same-step requests contend for per-link pair budgets
//!   in (priority, queue order).
//! - [`overload`] — overload control on top of the admission timeline:
//!   retry budgets (token buckets over retry attempts), deterministic
//!   utilization-threshold load shedding with per-request
//!   [`ShedReason`]s, and a health-driven degradation ladder
//!   ([`DegradePolicy`]). An [`OverloadPolicy::disabled`] run reproduces
//!   the admission and hold paths bit-identically (the zero-config
//!   differential contract).

pub mod admission;
pub mod hold;
pub mod overload;
pub mod request;
pub mod serve;
pub mod workload;

pub use admission::{serve_with_admission, AdmissionOutcome};
pub use hold::{serve_full_with_holds, serve_report_with_holds, HoldPolicy};
pub use overload::{
    overload_report, serve_overload, DegradeMode, DegradePolicy, OverloadOutcome, OverloadPolicy,
    RetryBudget, ShedPolicy, ShedReason, DEGRADE_MODES,
};
pub use request::{ingest, RawRequest, RequestQueue, ServeError, PRIORITY_CLASSES};
pub use serve::{
    report_from_aggs, report_from_run, serve_full, serve_report, serve_resilient, ClassSlo,
    GroupAgg, ServeReport,
};
pub use workload::{flash_crowd, generate, FlashCrowdConfig, WorkloadKind};
