//! The serve boundary's headline property: **no panic path is reachable
//! from request input**. Arbitrary `(src, dst, arrival, deadline,
//! priority)` tuples — including out-of-range host ids, arrivals past the
//! day end, zero deadlines and degenerate pairs — flow through ingest →
//! serve (full, report, admission) without ever panicking, and the
//! accounting always balances.
//!
//! Case counts are small by default; the nightly CI job sets
//! `PROPTEST_CASES=2048` to deepen the sweep.

use proptest::collection::vec;
use proptest::prelude::*;
use qntn_geo::{Epoch, Geodetic};
use qntn_net::capacity::CapacityModel;
use qntn_net::faults::FaultModel;
use qntn_net::requests::{RetryOutcome, RetryPolicy};
use qntn_net::{Host, QuantumNetworkSim, SimConfig, SweepEngine};
use qntn_orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};
use qntn_routing::RouteMetric;
use qntn_serve::{
    ingest, serve_full, serve_full_with_holds, serve_overload, serve_report, serve_with_admission,
    HoldPolicy, OverloadPolicy, RawRequest,
};
use std::sync::{Arc, OnceLock};

/// Shared small fixture (see `tests/serve.rs`); 40 steps keeps the retry
/// schedules short without losing the satellite links.
fn sim() -> &'static QuantumNetworkSim {
    static SIM: OnceLock<QuantumNetworkSim> = OnceLock::new();
    SIM.get_or_init(|| {
        let steps = 40;
        let props: Vec<Propagator> = paper_constellation(2)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        let ephs = Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0);
        let mut hosts = vec![
            Host::ground(
                "TTU-0",
                0,
                Geodetic::from_deg(36.1757, -85.5066, 300.0),
                1.2,
            ),
            Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground(
                "EPB-0",
                2,
                Geodetic::from_deg(35.04159, -85.2799, 200.0),
                1.2,
            ),
            Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3),
        ];
        for (i, eph) in ephs.into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    })
}

fn cases_or(n: u32) -> ProptestConfig {
    ProptestConfig::with_cases(proptest::test_runner::env_case_count().unwrap_or(n))
}

/// Raw request tuples biased toward the interesting boundaries: ids that
/// straddle the host count (the fixture has 6 hosts), arrivals that
/// straddle the 40-step day, tiny and huge deadlines. (The vendored
/// proptest has no `prop_oneof`, so the skew is a mapped range.)
fn raw_request() -> impl Strategy<Value = RawRequest> {
    fn skew(v: u64, common: usize) -> usize {
        match v % 10 {
            // Mostly in or just past the common range...
            0..=7 => (v / 10) as usize % (common + 2),
            // ...with extreme values mixed in.
            8 => usize::MAX,
            _ => usize::MAX - (v as usize % 3),
        }
    }
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(a, b, c, d, e)| RawRequest {
            src: skew(a, 6),
            dst: skew(b, 6),
            arrival_step: skew(c, 40),
            deadline_steps: skew(d, 45),
            priority: (e % 256) as u8,
        })
}

proptest! {
    #![proptest_config(cases_or(24))]

    #[test]
    fn ingest_then_serve_never_panics(
        stream in vec(raw_request(), 0..40),
        backoff in 0usize..4,
        deadline in 0usize..30,
        max_attempts in 1usize..5,
    ) {
        let hosts = sim().hosts().len();
        let steps = sim().steps();
        let (queue, rejected) = ingest(hosts, steps, &stream);
        prop_assert_eq!(queue.len() + rejected.len(), stream.len());

        // Every accepted request satisfies the boundary invariants.
        for i in 0..queue.len() {
            prop_assert!(queue.src(i) < hosts);
            prop_assert!(queue.dst(i) < hosts);
            prop_assert!(queue.src(i) != queue.dst(i));
            prop_assert!(queue.arrival(i) < steps);
        }

        let policy = RetryPolicy { max_attempts, backoff_steps: backoff, deadline_steps: deadline };
        let metric = RouteMetric::PaperInverseEta;
        let engine = SweepEngine::new(sim());

        let outcomes = serve_full(&engine, &queue, policy, metric);
        prop_assert_eq!(outcomes.len(), queue.len());

        let report = serve_report(&engine, &queue, policy, metric, rejected.len() as u64);
        prop_assert_eq!(report.attempted as usize, queue.len());
        prop_assert_eq!(report.attempted, report.served() + report.expired);
        let served = outcomes.iter().filter(|o| o.distribution().is_some()).count();
        prop_assert_eq!(served as u64, report.served());

        // The capacity-admitted path holds the same never-panics bar.
        let model = CapacityModel { attempt_rate_hz: 2.0, window_s: 30.0 };
        let admitted = serve_with_admission(&engine, &queue, policy, metric, model);
        prop_assert_eq!(admitted.outcomes.len(), queue.len());
        for o in &admitted.outcomes {
            if let RetryOutcome::Expired { attempts } = o {
                prop_assert!(*attempts <= policy.max_attempts.max(1));
            }
        }
    }

    /// The combined path — capacity admission, memory holds and a fault
    /// mask at once — never panics on arbitrary request input, and serves
    /// a per-request subset of the uncapacitated hold path: admission can
    /// only deny attempts, never rescue one, and both runs walk the same
    /// attempt schedule with identical routing.
    #[test]
    fn combined_admission_holds_faults_serve_a_subset_without_panicking(
        stream in vec(raw_request(), 0..40),
        horizon in 0usize..4,
        intensity in 0.0..3.0f64,
        fault_seed in any::<u64>(),
        rate_ix in 0usize..3,
    ) {
        let (queue, _rejected) = ingest(sim().hosts().len(), sim().steps(), &stream);
        let faults = Arc::new(
            FaultModel::standard(fault_seed)
                .with_intensity(intensity)
                .compile(sim()),
        );
        let engine = SweepEngine::new(sim()).with_faults(faults);
        let policy = RetryPolicy::standard();
        let metric = RouteMetric::PaperInverseEta;
        let hold = if horizon == 0 {
            HoldPolicy::disabled()
        } else {
            HoldPolicy::with_horizon(horizon)
        };
        let model = CapacityModel {
            attempt_rate_hz: [0.05, 0.5, 5.0][rate_ix],
            window_s: 30.0,
        };
        let admitted = serve_overload(
            &engine,
            &queue,
            policy,
            metric,
            Some(model),
            &hold,
            &OverloadPolicy::disabled(),
        );
        prop_assert_eq!(admitted.outcomes.len(), queue.len());
        prop_assert_eq!(admitted.shed_count(), 0);
        prop_assert_eq!(admitted.budget_deferrals, 0);
        let unconstrained = serve_full_with_holds(&engine, &queue, policy, metric, &hold);
        for (qi, free) in unconstrained.iter().enumerate() {
            if admitted.outcomes[qi].distribution().is_some() {
                prop_assert!(
                    free.distribution().is_some(),
                    "request {} served under admission but not uncapacitated",
                    qi
                );
            }
        }
    }
}
