//! The serve-layer contracts, end to end:
//!
//! - **Differential**: [`serve_full`] is bit-identical to the naive
//!   per-request `evaluate_with_retries` reference, clean and faulted —
//!   the amortized routing (one SSSP per distinct source per round) must
//!   be invisible in the output.
//! - **Parallel ≡ sequential**, **report ≡ folded outcomes**,
//!   **resilient ≡ in-memory**: every execution mode lands on the same
//!   bits.
//! - **Admission**: with ample budgets the capacity path reproduces the
//!   uncapacitated outcomes; with zero budget everything expires, with
//!   deferrals counted; always deterministic.
//! - **Workloads**: every generator emits streams the boundary fully
//!   accepts, deterministically per seed.

use qntn_geo::{Epoch, Geodetic};
use qntn_net::capacity::CapacityModel;
use qntn_net::faults::{CompiledFaults, FaultModel};
use qntn_net::requests::{Request, RequestWorkload, RetryOutcome, RetryPolicy};
use qntn_net::runtime::RunPolicy;
use qntn_net::{Host, QuantumNetworkSim, SimConfig, SweepEngine};
use qntn_orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};
use qntn_routing::RouteMetric;
use qntn_serve::serve::GroupAgg;
use qntn_serve::{
    generate, ingest, report_from_aggs, report_from_run, serve_full, serve_full_with_holds,
    serve_report, serve_report_with_holds, serve_resilient, serve_with_admission, HoldPolicy,
    RawRequest, RequestQueue, WorkloadKind,
};
use std::sync::{Arc, OnceLock};

/// Three ground LANs, one HAP, two paper-constellation satellites over
/// 60 thirty-second steps — the shared fixture (sim construction is the
/// expensive part, so it is built once).
fn sim() -> &'static QuantumNetworkSim {
    static SIM: OnceLock<QuantumNetworkSim> = OnceLock::new();
    SIM.get_or_init(|| {
        let steps = 60;
        let props: Vec<Propagator> = paper_constellation(2)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        let ephs = Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0);
        let mut hosts = vec![
            Host::ground(
                "TTU-0",
                0,
                Geodetic::from_deg(36.1757, -85.5066, 300.0),
                1.2,
            ),
            Host::ground(
                "TTU-1",
                0,
                Geodetic::from_deg(36.1751, -85.5067, 300.0),
                1.2,
            ),
            Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground(
                "EPB-0",
                2,
                Geodetic::from_deg(35.04159, -85.2799, 200.0),
                1.2,
            ),
            Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3),
        ];
        for (i, eph) in ephs.into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    })
}

fn queue_from(kind: WorkloadKind, n: usize, seed: u64) -> RequestQueue {
    let stream = generate(sim(), kind, n, seed);
    let (queue, rejected) = ingest(sim().hosts().len(), sim().steps(), &stream);
    assert!(rejected.is_empty(), "generators emit only valid requests");
    queue
}

/// The naive reference: group queue entries by (arrival, effective
/// deadline) and run each subgroup through
/// `RequestWorkload::evaluate_with_retries` with the deadline folded into
/// the policy. Returns outcomes in queue order.
fn naive_reference(
    queue: &RequestQueue,
    policy: RetryPolicy,
    metric: RouteMetric,
    faults: &CompiledFaults,
) -> Vec<RetryOutcome> {
    let mut out: Vec<Option<RetryOutcome>> = vec![None; queue.len()];
    for (arrival, range) in queue.groups().iter().cloned() {
        // Partition the group by effective deadline, preserving order.
        let mut deadlines: Vec<usize> = range
            .clone()
            .map(|qi| queue.deadline(qi).min(policy.deadline_steps))
            .collect();
        deadlines.sort_unstable();
        deadlines.dedup();
        for dl in deadlines {
            let members: Vec<usize> = range
                .clone()
                .filter(|&qi| queue.deadline(qi).min(policy.deadline_steps) == dl)
                .collect();
            let workload = RequestWorkload {
                requests: members
                    .iter()
                    .map(|&qi| Request {
                        src: queue.src(qi),
                        dst: queue.dst(qi),
                    })
                    .collect(),
            };
            let sub_policy = RetryPolicy {
                deadline_steps: dl,
                ..policy
            };
            let outcomes =
                workload.evaluate_with_retries(sim(), arrival, metric, sub_policy, faults);
            for (qi, o) in members.into_iter().zip(outcomes) {
                out[qi] = Some(o);
            }
        }
    }
    out.into_iter().map(Option::unwrap).collect()
}

#[test]
fn serve_full_is_bit_identical_to_the_naive_reference() {
    let queue = queue_from(WorkloadKind::Uniform, 150, 11);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let clean = CompiledFaults::identity(sim().hosts().len(), sim().steps());
    let engine = SweepEngine::new(sim());
    assert_eq!(
        serve_full(&engine, &queue, policy, metric),
        naive_reference(&queue, policy, metric, &clean)
    );
}

#[test]
fn serve_full_matches_naive_under_faults() {
    let queue = queue_from(WorkloadKind::Poisson, 120, 23);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let faults = Arc::new(FaultModel::standard(7).with_intensity(2.5).compile(sim()));
    let engine = SweepEngine::new(sim()).with_faults(faults.clone());
    assert_eq!(
        serve_full(&engine, &queue, policy, metric),
        naive_reference(&queue, policy, metric, &faults)
    );
}

#[test]
fn parallel_and_sequential_serves_are_bit_identical() {
    let queue = queue_from(WorkloadKind::Diurnal, 140, 31);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let par = SweepEngine::new(sim());
    let seq = SweepEngine::new(sim()).with_parallel(false);
    assert_eq!(
        serve_full(&par, &queue, policy, metric),
        serve_full(&seq, &queue, policy, metric)
    );
    assert_eq!(
        serve_report(&par, &queue, policy, metric, 0),
        serve_report(&seq, &queue, policy, metric, 0)
    );
}

#[test]
fn report_equals_the_fold_of_materialized_outcomes() {
    let queue = queue_from(WorkloadKind::Hotspot, 130, 5);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let outcomes = serve_full(&engine, &queue, policy, metric);
    let aggs: Vec<GroupAgg> = queue
        .groups()
        .iter()
        .map(|(_, range)| {
            let classes: Vec<usize> = range.clone().map(|qi| queue.class(qi)).collect();
            GroupAgg::from_outcomes(&outcomes[range.clone()], &classes)
        })
        .collect();
    let report = serve_report(&engine, &queue, policy, metric, 3);
    assert_eq!(report, report_from_aggs(&aggs, 3));
    assert_eq!(report.rejected, 3);
    assert_eq!(report.attempted as usize, queue.len());
    assert_eq!(
        report.attempted,
        report.served() + report.expired,
        "every request is served or expired"
    );
    let class_total: u64 = report.classes.iter().map(|c| c.attempted).sum();
    assert_eq!(class_total, report.attempted);
    // The JSON artifact carries the headline numbers.
    let json = report.to_json();
    assert!(json.contains("\"served_percent\""));
    assert!(json.contains("\"p95_wait_steps\""));
    assert!(json.contains(&format!("\"attempted\": {}", report.attempted)));
}

#[test]
fn resilient_run_reproduces_the_in_memory_report_and_resumes_from_checkpoint() {
    let queue = queue_from(WorkloadKind::Uniform, 90, 17);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let reference = serve_report(&engine, &queue, policy, metric, 0);

    let ckpt = std::env::temp_dir().join(format!(
        "qntn_serve_test_{}_resume.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&ckpt);
    let run_policy = RunPolicy::default()
        .with_checkpoint(&ckpt)
        .with_chunk_steps(4);
    let run = serve_resilient(&engine, &queue, policy, metric, 0xD15C0, &run_policy).unwrap();
    assert!(run.is_clean() && run.is_complete());
    assert_eq!(run.resumed_from, 0);
    assert_eq!(report_from_run(&run, 0), reference);

    // Re-running against the completed checkpoint replays every group
    // from the frame file — a full codec round-trip of GroupAgg.
    let resumed = serve_resilient(&engine, &queue, policy, metric, 0xD15C0, &run_policy).unwrap();
    assert_eq!(resumed.resumed_from, queue.arrival_steps().len());
    assert_eq!(report_from_run(&resumed, 0), reference);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn ample_capacity_admission_reproduces_the_uncapacitated_outcomes() {
    let queue = queue_from(WorkloadKind::Uniform, 80, 41);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let model = CapacityModel {
        attempt_rate_hz: 1e9,
        window_s: 30.0,
    };
    let admitted = serve_with_admission(&engine, &queue, policy, metric, model);
    assert_eq!(admitted.congestion_deferrals, 0);
    assert_eq!(
        admitted.outcomes,
        serve_full(&engine, &queue, policy, metric)
    );
}

#[test]
fn zero_capacity_expires_everything_and_counts_deferrals() {
    let queue = queue_from(WorkloadKind::Uniform, 40, 43);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let model = CapacityModel {
        attempt_rate_hz: 0.0,
        window_s: 30.0,
    };
    let admitted = serve_with_admission(&engine, &queue, policy, metric, model);
    assert!(admitted
        .outcomes
        .iter()
        .all(|o| matches!(o, RetryOutcome::Expired { .. })));
    assert_eq!(admitted.served_count(), 0);
    // Every routable attempt was a budget deferral.
    assert!(admitted.congestion_deferrals > 0);
    // Deterministic across runs.
    let again = serve_with_admission(&engine, &queue, policy, metric, model);
    assert_eq!(admitted.outcomes, again.outcomes);
    assert_eq!(admitted.congestion_deferrals, again.congestion_deferrals);
}

#[test]
fn workload_generators_emit_valid_deterministic_streams() {
    for kind in [
        WorkloadKind::Uniform,
        WorkloadKind::Poisson,
        WorkloadKind::Diurnal,
        WorkloadKind::Hotspot,
    ] {
        let a = generate(sim(), kind, 200, 9);
        let b = generate(sim(), kind, 200, 9);
        assert_eq!(a, b, "{kind:?} not deterministic");
        let c = generate(sim(), kind, 200, 10);
        assert_ne!(a, c, "{kind:?} ignores the seed");
        assert_eq!(a.len(), 200);
        let (queue, rejected) = ingest(sim().hosts().len(), sim().steps(), &a);
        assert!(rejected.is_empty(), "{kind:?} emitted invalid requests");
        assert_eq!(queue.len(), 200);
        for r in &a {
            assert!(r.arrival_step < sim().steps());
            let src_lan = sim().hosts()[r.src].lan().unwrap();
            let dst_lan = sim().hosts()[r.dst].lan().unwrap();
            assert_ne!(src_lan, dst_lan, "{kind:?} emitted an intra-LAN pair");
        }
    }
    // Hotspot skews: well over half the traffic rides the hot LAN pair.
    let hot = generate(sim(), WorkloadKind::Hotspot, 400, 3);
    let on_pair = hot
        .iter()
        .filter(|r| {
            let a = sim().hosts()[r.src].lan().unwrap();
            let b = sim().hosts()[r.dst].lan().unwrap();
            (a, b) == (0, 1)
        })
        .count();
    assert!(on_pair > 200, "hotspot skew too weak: {on_pair}/400");
}

#[test]
fn malformed_stream_is_rejected_per_request_and_the_rest_is_served() {
    let hosts = sim().hosts().len();
    let steps = sim().steps();
    let mut stream = generate(sim(), WorkloadKind::Uniform, 30, 55);
    stream.push(RawRequest {
        src: usize::MAX,
        dst: 0,
        arrival_step: 0,
        deadline_steps: 5,
        priority: 0,
    });
    stream.push(RawRequest {
        src: 0,
        dst: 0,
        arrival_step: 0,
        deadline_steps: 5,
        priority: 0,
    });
    stream.push(RawRequest {
        src: 0,
        dst: 1,
        arrival_step: usize::MAX,
        deadline_steps: 5,
        priority: 0,
    });
    let (queue, rejected) = ingest(hosts, steps, &stream);
    assert_eq!(queue.len(), 30);
    assert_eq!(rejected.len(), 3);
    let engine = SweepEngine::new(sim());
    let report = serve_report(
        &engine,
        &queue,
        RetryPolicy::standard(),
        RouteMetric::PaperInverseEta,
        rejected.len() as u64,
    );
    assert_eq!(report.attempted, 30);
    assert_eq!(report.rejected, 3);
}

#[test]
fn empty_served_set_reports_explicit_null_percentiles() {
    // Regression: nearest-rank p50/p95 on a run that served nothing used
    // to report 0 — indistinguishable from "everything served with zero
    // wait". The empty case is now explicit (`None` / JSON `null`).
    let all_expired: Vec<RetryOutcome> = (0..4)
        .map(|_| RetryOutcome::Expired { attempts: 2 })
        .collect();
    let classes = vec![0usize; 4];
    let agg = GroupAgg::from_outcomes(&all_expired, &classes);
    let report = report_from_aggs(&[agg], 1);
    assert_eq!(report.served(), 0);
    assert_eq!(report.p50_wait_steps, None);
    assert_eq!(report.p95_wait_steps, None);
    let json = report.to_json();
    assert!(json.contains("\"p50_wait_steps\": null"), "{json}");
    assert!(json.contains("\"p95_wait_steps\": null"), "{json}");

    // No aggregates at all (a run with zero accepted requests) likewise.
    let empty = report_from_aggs(&[], 0);
    assert_eq!(empty.p50_wait_steps, None);
    assert_eq!(empty.p95_wait_steps, None);

    // And a run that did serve keeps reporting concrete numbers.
    let queue = queue_from(WorkloadKind::Uniform, 80, 3);
    let engine = SweepEngine::new(sim());
    let served = serve_report(
        &engine,
        &queue,
        RetryPolicy::standard(),
        RouteMetric::PaperInverseEta,
        0,
    );
    if served.served() > 0 {
        let p50 = served.p50_wait_steps.expect("served set is non-empty");
        let p95 = served.p95_wait_steps.expect("served set is non-empty");
        assert!(p50 <= p95);
        assert!(served
            .to_json()
            .contains(&format!("\"p95_wait_steps\": {p95}")));
    }
}

#[test]
fn disabled_hold_policy_is_bit_identical_to_per_step_serve() {
    // The zero-horizon / zero-memory differential contract, clean and
    // faulted: hold-aware serving with `HoldPolicy::disabled()` must run
    // the per-step path's exact bits through its time-expanded machinery.
    let queue = queue_from(WorkloadKind::Diurnal, 140, 41);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let disabled = HoldPolicy::disabled();

    let clean = SweepEngine::new(sim());
    assert_eq!(
        serve_full(&clean, &queue, policy, metric),
        serve_full_with_holds(&clean, &queue, policy, metric, &disabled)
    );
    assert_eq!(
        serve_report(&clean, &queue, policy, metric, 2),
        serve_report_with_holds(&clean, &queue, policy, metric, &disabled, 2)
    );

    let faults = Arc::new(FaultModel::standard(11).with_intensity(2.0).compile(sim()));
    let faulted = SweepEngine::new(sim()).with_faults(faults);
    assert_eq!(
        serve_full(&faulted, &queue, policy, metric),
        serve_full_with_holds(&faulted, &queue, policy, metric, &disabled)
    );
}

#[test]
fn hold_serving_with_zero_floor_never_serves_fewer() {
    // A horizon-H graph contains every layer-0 edge, so any request the
    // per-step path serves stays reachable: with no fidelity floor the
    // served set can only grow.
    let queue = queue_from(WorkloadKind::Hotspot, 120, 9);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let base = serve_report(&engine, &queue, policy, metric, 0);
    for horizon in [1usize, 4, 10] {
        let hold = HoldPolicy::with_horizon(horizon);
        let held = serve_report_with_holds(&engine, &queue, policy, metric, &hold, 0);
        assert!(
            held.served() >= base.served(),
            "horizon {horizon}: {} < {}",
            held.served(),
            base.served()
        );
    }
}

#[test]
fn hold_serving_parallel_equals_sequential() {
    let queue = queue_from(WorkloadKind::Poisson, 100, 13);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let hold = HoldPolicy::with_horizon(6);
    let par = SweepEngine::new(sim());
    let seq = SweepEngine::new(sim()).with_parallel(false);
    assert_eq!(
        serve_full_with_holds(&par, &queue, policy, metric, &hold),
        serve_full_with_holds(&seq, &queue, policy, metric, &hold)
    );
    assert_eq!(
        serve_report_with_holds(&par, &queue, policy, metric, &hold, 0),
        serve_report_with_holds(&seq, &queue, policy, metric, &hold, 0)
    );
}

#[test]
fn fidelity_floor_cuts_deliveries_monotonically() {
    let queue = queue_from(WorkloadKind::Uniform, 100, 27);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let mut prev_served = u64::MAX;
    for floor in [0.0, 0.8, 0.9, 0.97, 1.1] {
        let hold = HoldPolicy {
            fidelity_floor: floor,
            ..HoldPolicy::with_horizon(4)
        };
        let report = serve_report_with_holds(&engine, &queue, policy, metric, &hold, 0);
        assert!(report.served() <= prev_served, "floor {floor}: served grew");
        prev_served = report.served();
    }
    // A floor above 1.0 is unsatisfiable: nothing can be served.
    assert_eq!(prev_served, 0);
}
