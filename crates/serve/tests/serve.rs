//! The serve-layer contracts, end to end:
//!
//! - **Differential**: [`serve_full`] is bit-identical to the naive
//!   per-request `evaluate_with_retries` reference, clean and faulted —
//!   the amortized routing (one SSSP per distinct source per round) must
//!   be invisible in the output.
//! - **Parallel ≡ sequential**, **report ≡ folded outcomes**,
//!   **resilient ≡ in-memory**: every execution mode lands on the same
//!   bits.
//! - **Admission**: with ample budgets the capacity path reproduces the
//!   uncapacitated outcomes; with zero budget everything expires, with
//!   deferrals counted; always deterministic.
//! - **Workloads**: every generator emits streams the boundary fully
//!   accepts, deterministically per seed.

use qntn_geo::{Epoch, Geodetic};
use qntn_net::capacity::CapacityModel;
use qntn_net::faults::{CompiledFaults, FaultModel};
use qntn_net::requests::{Request, RequestWorkload, RetryOutcome, RetryPolicy};
use qntn_net::runtime::RunPolicy;
use qntn_net::{Host, QuantumNetworkSim, SimConfig, SweepEngine};
use qntn_orbit::{paper_constellation, Ephemeris, PerturbationModel, Propagator};
use qntn_routing::RouteMetric;
use qntn_serve::serve::GroupAgg;
use qntn_serve::{
    generate, ingest, overload_report, report_from_aggs, report_from_run, serve_full,
    serve_full_with_holds, serve_overload, serve_report, serve_report_with_holds, serve_resilient,
    serve_with_admission, DegradePolicy, FlashCrowdConfig, HoldPolicy, OverloadPolicy, RawRequest,
    RequestQueue, RetryBudget, ShedPolicy, ShedReason, WorkloadKind,
};
use std::sync::{Arc, OnceLock};

/// Three ground LANs, one HAP, two paper-constellation satellites over
/// 60 thirty-second steps — the shared fixture (sim construction is the
/// expensive part, so it is built once).
fn sim() -> &'static QuantumNetworkSim {
    static SIM: OnceLock<QuantumNetworkSim> = OnceLock::new();
    SIM.get_or_init(|| {
        let steps = 60;
        let props: Vec<Propagator> = paper_constellation(2)
            .into_iter()
            .map(|k| Propagator::new(k, Epoch::J2000, PerturbationModel::TwoBody))
            .collect();
        let ephs = Ephemeris::generate_many(&props, Epoch::J2000, 30.0, steps as f64 * 30.0);
        let mut hosts = vec![
            Host::ground(
                "TTU-0",
                0,
                Geodetic::from_deg(36.1757, -85.5066, 300.0),
                1.2,
            ),
            Host::ground(
                "TTU-1",
                0,
                Geodetic::from_deg(36.1751, -85.5067, 300.0),
                1.2,
            ),
            Host::ground("ORNL-0", 1, Geodetic::from_deg(35.91, -84.3, 250.0), 1.2),
            Host::ground(
                "EPB-0",
                2,
                Geodetic::from_deg(35.04159, -85.2799, 200.0),
                1.2,
            ),
            Host::hap("HAP", Geodetic::from_deg(35.6692, -85.0662, 30_000.0), 0.3),
        ];
        for (i, eph) in ephs.into_iter().enumerate() {
            hosts.push(Host::satellite(format!("SAT-{i:03}"), eph, 1.2));
        }
        QuantumNetworkSim::new(hosts, SimConfig::default(), steps, 30.0)
    })
}

fn queue_from(kind: WorkloadKind, n: usize, seed: u64) -> RequestQueue {
    let stream = generate(sim(), kind, n, seed);
    let (queue, rejected) = ingest(sim().hosts().len(), sim().steps(), &stream);
    assert!(rejected.is_empty(), "generators emit only valid requests");
    queue
}

/// The naive reference: group queue entries by (arrival, effective
/// deadline) and run each subgroup through
/// `RequestWorkload::evaluate_with_retries` with the deadline folded into
/// the policy. Returns outcomes in queue order.
fn naive_reference(
    queue: &RequestQueue,
    policy: RetryPolicy,
    metric: RouteMetric,
    faults: &CompiledFaults,
) -> Vec<RetryOutcome> {
    let mut out: Vec<Option<RetryOutcome>> = vec![None; queue.len()];
    for (arrival, range) in queue.groups().iter().cloned() {
        // Partition the group by effective deadline, preserving order.
        let mut deadlines: Vec<usize> = range
            .clone()
            .map(|qi| queue.deadline(qi).min(policy.deadline_steps))
            .collect();
        deadlines.sort_unstable();
        deadlines.dedup();
        for dl in deadlines {
            let members: Vec<usize> = range
                .clone()
                .filter(|&qi| queue.deadline(qi).min(policy.deadline_steps) == dl)
                .collect();
            let workload = RequestWorkload {
                requests: members
                    .iter()
                    .map(|&qi| Request {
                        src: queue.src(qi),
                        dst: queue.dst(qi),
                    })
                    .collect(),
            };
            let sub_policy = RetryPolicy {
                deadline_steps: dl,
                ..policy
            };
            let outcomes =
                workload.evaluate_with_retries(sim(), arrival, metric, sub_policy, faults);
            for (qi, o) in members.into_iter().zip(outcomes) {
                out[qi] = Some(o);
            }
        }
    }
    out.into_iter().map(Option::unwrap).collect()
}

#[test]
fn serve_full_is_bit_identical_to_the_naive_reference() {
    let queue = queue_from(WorkloadKind::Uniform, 150, 11);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let clean = CompiledFaults::identity(sim().hosts().len(), sim().steps());
    let engine = SweepEngine::new(sim());
    assert_eq!(
        serve_full(&engine, &queue, policy, metric),
        naive_reference(&queue, policy, metric, &clean)
    );
}

#[test]
fn serve_full_matches_naive_under_faults() {
    let queue = queue_from(WorkloadKind::Poisson, 120, 23);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let faults = Arc::new(FaultModel::standard(7).with_intensity(2.5).compile(sim()));
    let engine = SweepEngine::new(sim()).with_faults(faults.clone());
    assert_eq!(
        serve_full(&engine, &queue, policy, metric),
        naive_reference(&queue, policy, metric, &faults)
    );
}

#[test]
fn parallel_and_sequential_serves_are_bit_identical() {
    let queue = queue_from(WorkloadKind::Diurnal, 140, 31);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let par = SweepEngine::new(sim());
    let seq = SweepEngine::new(sim()).with_parallel(false);
    assert_eq!(
        serve_full(&par, &queue, policy, metric),
        serve_full(&seq, &queue, policy, metric)
    );
    assert_eq!(
        serve_report(&par, &queue, policy, metric, 0),
        serve_report(&seq, &queue, policy, metric, 0)
    );
}

#[test]
fn report_equals_the_fold_of_materialized_outcomes() {
    let queue = queue_from(WorkloadKind::Hotspot, 130, 5);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let outcomes = serve_full(&engine, &queue, policy, metric);
    let aggs: Vec<GroupAgg> = queue
        .groups()
        .iter()
        .map(|(_, range)| {
            let classes: Vec<usize> = range.clone().map(|qi| queue.class(qi)).collect();
            GroupAgg::from_outcomes(&outcomes[range.clone()], &classes)
        })
        .collect();
    let report = serve_report(&engine, &queue, policy, metric, 3);
    assert_eq!(report, report_from_aggs(&aggs, 3));
    assert_eq!(report.rejected, 3);
    assert_eq!(report.attempted as usize, queue.len());
    assert_eq!(
        report.attempted,
        report.served() + report.expired,
        "every request is served or expired"
    );
    let class_total: u64 = report.classes.iter().map(|c| c.attempted).sum();
    assert_eq!(class_total, report.attempted);
    // The JSON artifact carries the headline numbers.
    let json = report.to_json();
    assert!(json.contains("\"served_percent\""));
    assert!(json.contains("\"p95_wait_steps\""));
    assert!(json.contains(&format!("\"attempted\": {}", report.attempted)));
}

#[test]
fn resilient_run_reproduces_the_in_memory_report_and_resumes_from_checkpoint() {
    let queue = queue_from(WorkloadKind::Uniform, 90, 17);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let reference = serve_report(&engine, &queue, policy, metric, 0);

    let ckpt = std::env::temp_dir().join(format!(
        "qntn_serve_test_{}_resume.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&ckpt);
    let run_policy = RunPolicy::default()
        .with_checkpoint(&ckpt)
        .with_chunk_steps(4);
    let run = serve_resilient(&engine, &queue, policy, metric, 0xD15C0, &run_policy).unwrap();
    assert!(run.is_clean() && run.is_complete());
    assert_eq!(run.resumed_from, 0);
    assert_eq!(report_from_run(&run, 0), reference);

    // Re-running against the completed checkpoint replays every group
    // from the frame file — a full codec round-trip of GroupAgg.
    let resumed = serve_resilient(&engine, &queue, policy, metric, 0xD15C0, &run_policy).unwrap();
    assert_eq!(resumed.resumed_from, queue.arrival_steps().len());
    assert_eq!(report_from_run(&resumed, 0), reference);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn ample_capacity_admission_reproduces_the_uncapacitated_outcomes() {
    let queue = queue_from(WorkloadKind::Uniform, 80, 41);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let model = CapacityModel {
        attempt_rate_hz: 1e9,
        window_s: 30.0,
    };
    let admitted = serve_with_admission(&engine, &queue, policy, metric, model);
    assert_eq!(admitted.congestion_deferrals, 0);
    assert_eq!(
        admitted.outcomes,
        serve_full(&engine, &queue, policy, metric)
    );
}

#[test]
fn zero_capacity_expires_everything_and_counts_deferrals() {
    let queue = queue_from(WorkloadKind::Uniform, 40, 43);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let model = CapacityModel {
        attempt_rate_hz: 0.0,
        window_s: 30.0,
    };
    let admitted = serve_with_admission(&engine, &queue, policy, metric, model);
    assert!(admitted
        .outcomes
        .iter()
        .all(|o| matches!(o, RetryOutcome::Expired { .. })));
    assert_eq!(admitted.served_count(), 0);
    // Every routable attempt was a budget deferral.
    assert!(admitted.congestion_deferrals > 0);
    // Deterministic across runs.
    let again = serve_with_admission(&engine, &queue, policy, metric, model);
    assert_eq!(admitted.outcomes, again.outcomes);
    assert_eq!(admitted.congestion_deferrals, again.congestion_deferrals);
}

#[test]
fn workload_generators_emit_valid_deterministic_streams() {
    for kind in [
        WorkloadKind::Uniform,
        WorkloadKind::Poisson,
        WorkloadKind::Diurnal,
        WorkloadKind::Hotspot,
        WorkloadKind::FlashCrowd,
    ] {
        let a = generate(sim(), kind, 200, 9);
        let b = generate(sim(), kind, 200, 9);
        assert_eq!(a, b, "{kind:?} not deterministic");
        let c = generate(sim(), kind, 200, 10);
        assert_ne!(a, c, "{kind:?} ignores the seed");
        assert_eq!(a.len(), 200);
        let (queue, rejected) = ingest(sim().hosts().len(), sim().steps(), &a);
        assert!(rejected.is_empty(), "{kind:?} emitted invalid requests");
        assert_eq!(queue.len(), 200);
        for r in &a {
            assert!(r.arrival_step < sim().steps());
            let src_lan = sim().hosts()[r.src].lan().unwrap();
            let dst_lan = sim().hosts()[r.dst].lan().unwrap();
            assert_ne!(src_lan, dst_lan, "{kind:?} emitted an intra-LAN pair");
        }
    }
    // Hotspot skews: well over half the traffic rides the hot LAN pair.
    let hot = generate(sim(), WorkloadKind::Hotspot, 400, 3);
    let on_pair = hot
        .iter()
        .filter(|r| {
            let a = sim().hosts()[r.src].lan().unwrap();
            let b = sim().hosts()[r.dst].lan().unwrap();
            (a, b) == (0, 1)
        })
        .count();
    assert!(on_pair > 200, "hotspot skew too weak: {on_pair}/400");
}

#[test]
fn malformed_stream_is_rejected_per_request_and_the_rest_is_served() {
    let hosts = sim().hosts().len();
    let steps = sim().steps();
    let mut stream = generate(sim(), WorkloadKind::Uniform, 30, 55);
    stream.push(RawRequest {
        src: usize::MAX,
        dst: 0,
        arrival_step: 0,
        deadline_steps: 5,
        priority: 0,
    });
    stream.push(RawRequest {
        src: 0,
        dst: 0,
        arrival_step: 0,
        deadline_steps: 5,
        priority: 0,
    });
    stream.push(RawRequest {
        src: 0,
        dst: 1,
        arrival_step: usize::MAX,
        deadline_steps: 5,
        priority: 0,
    });
    let (queue, rejected) = ingest(hosts, steps, &stream);
    assert_eq!(queue.len(), 30);
    assert_eq!(rejected.len(), 3);
    let engine = SweepEngine::new(sim());
    let report = serve_report(
        &engine,
        &queue,
        RetryPolicy::standard(),
        RouteMetric::PaperInverseEta,
        rejected.len() as u64,
    );
    assert_eq!(report.attempted, 30);
    assert_eq!(report.rejected, 3);
}

#[test]
fn empty_served_set_reports_explicit_null_percentiles() {
    // Regression: nearest-rank p50/p95 on a run that served nothing used
    // to report 0 — indistinguishable from "everything served with zero
    // wait". The empty case is now explicit (`None` / JSON `null`).
    let all_expired: Vec<RetryOutcome> = (0..4)
        .map(|_| RetryOutcome::Expired { attempts: 2 })
        .collect();
    let classes = vec![0usize; 4];
    let agg = GroupAgg::from_outcomes(&all_expired, &classes);
    let report = report_from_aggs(&[agg], 1);
    assert_eq!(report.served(), 0);
    assert_eq!(report.p50_wait_steps, None);
    assert_eq!(report.p95_wait_steps, None);
    let json = report.to_json();
    assert!(json.contains("\"p50_wait_steps\": null"), "{json}");
    assert!(json.contains("\"p95_wait_steps\": null"), "{json}");

    // No aggregates at all (a run with zero accepted requests) likewise.
    let empty = report_from_aggs(&[], 0);
    assert_eq!(empty.p50_wait_steps, None);
    assert_eq!(empty.p95_wait_steps, None);

    // And a run that did serve keeps reporting concrete numbers.
    let queue = queue_from(WorkloadKind::Uniform, 80, 3);
    let engine = SweepEngine::new(sim());
    let served = serve_report(
        &engine,
        &queue,
        RetryPolicy::standard(),
        RouteMetric::PaperInverseEta,
        0,
    );
    if served.served() > 0 {
        let p50 = served.p50_wait_steps.expect("served set is non-empty");
        let p95 = served.p95_wait_steps.expect("served set is non-empty");
        assert!(p50 <= p95);
        assert!(served
            .to_json()
            .contains(&format!("\"p95_wait_steps\": {p95}")));
    }
}

#[test]
fn disabled_hold_policy_is_bit_identical_to_per_step_serve() {
    // The zero-horizon / zero-memory differential contract, clean and
    // faulted: hold-aware serving with `HoldPolicy::disabled()` must run
    // the per-step path's exact bits through its time-expanded machinery.
    let queue = queue_from(WorkloadKind::Diurnal, 140, 41);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let disabled = HoldPolicy::disabled();

    let clean = SweepEngine::new(sim());
    assert_eq!(
        serve_full(&clean, &queue, policy, metric),
        serve_full_with_holds(&clean, &queue, policy, metric, &disabled)
    );
    assert_eq!(
        serve_report(&clean, &queue, policy, metric, 2),
        serve_report_with_holds(&clean, &queue, policy, metric, &disabled, 2)
    );

    let faults = Arc::new(FaultModel::standard(11).with_intensity(2.0).compile(sim()));
    let faulted = SweepEngine::new(sim()).with_faults(faults);
    assert_eq!(
        serve_full(&faulted, &queue, policy, metric),
        serve_full_with_holds(&faulted, &queue, policy, metric, &disabled)
    );
}

#[test]
fn hold_serving_with_zero_floor_never_serves_fewer() {
    // A horizon-H graph contains every layer-0 edge, so any request the
    // per-step path serves stays reachable: with no fidelity floor the
    // served set can only grow.
    let queue = queue_from(WorkloadKind::Hotspot, 120, 9);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let base = serve_report(&engine, &queue, policy, metric, 0);
    for horizon in [1usize, 4, 10] {
        let hold = HoldPolicy::with_horizon(horizon);
        let held = serve_report_with_holds(&engine, &queue, policy, metric, &hold, 0);
        assert!(
            held.served() >= base.served(),
            "horizon {horizon}: {} < {}",
            held.served(),
            base.served()
        );
    }
}

#[test]
fn hold_serving_parallel_equals_sequential() {
    let queue = queue_from(WorkloadKind::Poisson, 100, 13);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let hold = HoldPolicy::with_horizon(6);
    let par = SweepEngine::new(sim());
    let seq = SweepEngine::new(sim()).with_parallel(false);
    assert_eq!(
        serve_full_with_holds(&par, &queue, policy, metric, &hold),
        serve_full_with_holds(&seq, &queue, policy, metric, &hold)
    );
    assert_eq!(
        serve_report_with_holds(&par, &queue, policy, metric, &hold, 0),
        serve_report_with_holds(&seq, &queue, policy, metric, &hold, 0)
    );
}

#[test]
fn fidelity_floor_cuts_deliveries_monotonically() {
    let queue = queue_from(WorkloadKind::Uniform, 100, 27);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let mut prev_served = u64::MAX;
    for floor in [0.0, 0.8, 0.9, 0.97, 1.1] {
        let hold = HoldPolicy {
            fidelity_floor: floor,
            ..HoldPolicy::with_horizon(4)
        };
        let report = serve_report_with_holds(&engine, &queue, policy, metric, &hold, 0);
        assert!(report.served() <= prev_served, "floor {floor}: served grew");
        prev_served = report.served();
    }
    // A floor above 1.0 is unsatisfiable: nothing can be served.
    assert_eq!(prev_served, 0);
}

// ---------------------------------------------------------------------------
// Overload control (crate::overload)
// ---------------------------------------------------------------------------

#[test]
fn disabled_overload_reproduces_admission_bitwise() {
    // The zero-config differential contract, admission side: a disabled
    // OverloadPolicy over a capacitated run must land on the admission
    // path's exact bits — clean, faulted, ample and congested.
    let queue = queue_from(WorkloadKind::Hotspot, 120, 77);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let disabled = OverloadPolicy::disabled();
    let hold_off = HoldPolicy::disabled();
    let faults = Arc::new(FaultModel::standard(5).with_intensity(2.0).compile(sim()));
    for engine in [
        SweepEngine::new(sim()),
        SweepEngine::new(sim()).with_faults(faults),
    ] {
        for rate in [1e9, 0.5] {
            let model = CapacityModel {
                attempt_rate_hz: rate,
                window_s: 30.0,
            };
            let base = serve_with_admission(&engine, &queue, policy, metric, model);
            let over = serve_overload(
                &engine,
                &queue,
                policy,
                metric,
                Some(model),
                &hold_off,
                &disabled,
            );
            assert_eq!(over.outcomes, base.outcomes, "rate {rate}");
            assert_eq!(over.congestion_deferrals, base.congestion_deferrals);
            assert_eq!(over.served_count(), base.served_count());
            assert_eq!(over.shed_count(), 0);
            assert_eq!(over.budget_deferrals, 0);
            // Every step sits on the Normal rung when the ladder is off.
            assert_eq!(over.degrade_mode_steps, [sim().steps() as u64, 0, 0, 0]);
        }
    }
}

#[test]
fn disabled_overload_reproduces_the_hold_path_bitwise() {
    // The zero-config differential contract, hold side: without a
    // capacity model and with the overload layer off, the sequential
    // agenda must visit exactly the per-group hold schedule — clean and
    // faulted, with and without a horizon.
    let queue = queue_from(WorkloadKind::Diurnal, 130, 19);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let disabled = OverloadPolicy::disabled();
    let faults = Arc::new(FaultModel::standard(9).with_intensity(1.5).compile(sim()));
    for engine in [
        SweepEngine::new(sim()),
        SweepEngine::new(sim()).with_faults(faults),
    ] {
        for hold in [HoldPolicy::disabled(), HoldPolicy::with_horizon(4)] {
            let base = serve_full_with_holds(&engine, &queue, policy, metric, &hold);
            let over = serve_overload(&engine, &queue, policy, metric, None, &hold, &disabled);
            assert_eq!(over.outcomes, base, "horizon {}", hold.horizon_steps);
            assert_eq!(over.shed_count(), 0);
            assert_eq!(over.congestion_deferrals, 0);
            assert_eq!(over.budget_deferrals, 0);
        }
    }
}

#[test]
fn admission_served_count_cache_matches_the_scan() {
    // Regression for the cached count: it must equal a fresh scan over
    // the outcomes, served-something and served-nothing alike.
    let queue = queue_from(WorkloadKind::Uniform, 90, 61);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    for rate in [1e9, 0.0] {
        let model = CapacityModel {
            attempt_rate_hz: rate,
            window_s: 30.0,
        };
        let admitted = serve_with_admission(&engine, &queue, policy, metric, model);
        let scan = admitted
            .outcomes
            .iter()
            .filter(|o| o.distribution().is_some())
            .count();
        assert_eq!(admitted.served_count(), scan, "rate {rate}");
    }
}

#[test]
fn zero_utilization_sheds_every_attempt_deterministically() {
    let queue = queue_from(WorkloadKind::Uniform, 60, 83);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let overload = OverloadPolicy {
        shed: ShedPolicy {
            utilization: 0.0,
            seed: 7,
        },
        ..OverloadPolicy::disabled()
    };
    let out = serve_overload(
        &engine,
        &queue,
        policy,
        metric,
        None,
        &HoldPolicy::disabled(),
        &overload,
    );
    assert_eq!(out.served_count(), 0);
    assert_eq!(out.shed_count(), queue.len());
    assert!(out.shed.iter().all(|s| *s == Some(ShedReason::Overload)));
    // Shed before any attempt: zero attempts in every outcome.
    assert!(out
        .outcomes
        .iter()
        .all(|o| matches!(o, RetryOutcome::Expired { attempts: 0 })));
    let again = serve_overload(
        &engine,
        &queue,
        policy,
        metric,
        None,
        &HoldPolicy::disabled(),
        &overload,
    );
    assert_eq!(out, again);
}

#[test]
fn utilization_shedding_takes_lowest_priority_first() {
    // Under a tight utilization threshold the shed set must concentrate
    // on the lower classes: no shed request may outrank a surviving
    // same-step competitor.
    let queue = queue_from(WorkloadKind::Hotspot, 200, 29);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    // Sweep thresholds until one sheds part of the load (which exists by
    // the monotone staircase between shed-nothing at ∞ and shed-all at 0).
    let mut checked = false;
    for utilization in [0.05, 0.1, 0.2, 0.3, 0.5, 0.8] {
        let overload = OverloadPolicy {
            shed: ShedPolicy {
                utilization,
                seed: 11,
            },
            ..OverloadPolicy::disabled()
        };
        let out = serve_overload(
            &engine,
            &queue,
            policy,
            metric,
            None,
            &HoldPolicy::disabled(),
            &overload,
        );
        // Aggregate fairness check at a partial shed: the mean priority
        // of shed requests never exceeds the mean priority of survivors.
        let (mut shed_sum, mut shed_n, mut kept_sum, mut kept_n) = (0u64, 0u64, 0u64, 0u64);
        for qi in 0..queue.len() {
            if out.shed[qi].is_some() {
                shed_sum += queue.priority(qi) as u64;
                shed_n += 1;
            } else {
                kept_sum += queue.priority(qi) as u64;
                kept_n += 1;
            }
        }
        if shed_n == 0 || kept_n == 0 {
            continue;
        }
        checked = true;
        assert!(
            shed_sum * kept_n <= kept_sum * shed_n,
            "at utilization {utilization} shed requests outrank survivors: \
             shed mean {} vs kept mean {}",
            shed_sum as f64 / shed_n as f64,
            kept_sum as f64 / kept_n as f64
        );
    }
    assert!(checked, "no utilization produced a partial shed");
}

#[test]
fn exhausted_retry_budget_defers_then_sheds_retries() {
    // A zero-refill budget denies every retry: the run still serves
    // first attempts, but anything that needed a retry is deferred while
    // slots remain and shed (RetryBudget) when they run out — so the
    // served set can only shrink against the unbudgeted run. A congested
    // admission model forces first attempts to fail, so retries exist.
    let queue = queue_from(WorkloadKind::Hotspot, 300, 37);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let hold_off = HoldPolicy::disabled();
    // ~1 pair per link per step: the hotspot pair contends every step.
    let model = CapacityModel {
        attempt_rate_hz: 0.05,
        window_s: 30.0,
    };
    let unbudgeted = serve_overload(
        &engine,
        &queue,
        policy,
        metric,
        Some(model),
        &hold_off,
        &OverloadPolicy::disabled(),
    );
    // The fixture must generate retries at all, or the budget is idle.
    assert!(
        unbudgeted.outcomes.iter().any(|o| matches!(
            o,
            RetryOutcome::ServedAfterRetry { .. } | RetryOutcome::Expired { attempts: 2.. }
        )),
        "fixture produced no retries"
    );
    let overload = OverloadPolicy {
        budget: RetryBudget {
            global_per_step: 0.0,
            global_burst: 0.0,
            class_per_step: [0.0; qntn_serve::PRIORITY_CLASSES],
            class_burst: [0.0; qntn_serve::PRIORITY_CLASSES],
        },
        ..OverloadPolicy::disabled()
    };
    let budgeted = serve_overload(
        &engine,
        &queue,
        policy,
        metric,
        Some(model),
        &hold_off,
        &overload,
    );
    // Denying retries never costs a first attempt: retries only consume
    // link budget, so removing them from a step's admit set can only free
    // budget for first attempts.
    let first_tries = |o: &[RetryOutcome]| {
        o.iter()
            .filter(|r| matches!(r, RetryOutcome::ServedFirstTry(_)))
            .count()
    };
    assert!(first_tries(&budgeted.outcomes) >= first_tries(&unbudgeted.outcomes));
    // No retry ever ran: every served outcome is a first try, and every
    // denied retry was deferred or shed.
    assert!(budgeted
        .outcomes
        .iter()
        .all(|o| !matches!(o, RetryOutcome::ServedAfterRetry { .. })));
    assert!(
        budgeted.budget_deferrals > 0 || budgeted.shed_count_for(ShedReason::RetryBudget) > 0,
        "fixture produced no retries to deny"
    );
}

#[test]
fn degrade_ladder_sheds_classes_under_a_fault_storm() {
    // Thresholds above 1.0 engage the deepest rung on every step: the
    // whole timeline runs degraded and every request is shed before its
    // first attempt.
    let queue = queue_from(WorkloadKind::Uniform, 70, 53);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let overload = OverloadPolicy {
        degrade: DegradePolicy {
            no_holds_below: 1.1,
            stretch_backoff_below: 1.1,
            shed_class_below: [1.1; qntn_serve::PRIORITY_CLASSES],
        },
        ..OverloadPolicy::disabled()
    };
    let out = serve_overload(
        &engine,
        &queue,
        policy,
        metric,
        None,
        &HoldPolicy::disabled(),
        &overload,
    );
    assert_eq!(out.shed_count(), queue.len());
    assert!(out.shed.iter().all(|s| *s == Some(ShedReason::Degraded)));
    assert_eq!(out.degrade_mode_steps, [0, 0, 0, sim().steps() as u64]);
}

#[test]
fn overload_report_carries_the_new_counters() {
    let queue = queue_from(WorkloadKind::Hotspot, 160, 71);
    let policy = RetryPolicy::standard();
    let metric = RouteMetric::PaperInverseEta;
    let engine = SweepEngine::new(sim());
    let overload = OverloadPolicy {
        shed: ShedPolicy {
            utilization: 0.05,
            seed: 3,
        },
        ..OverloadPolicy::disabled()
    };
    let out = serve_overload(
        &engine,
        &queue,
        policy,
        metric,
        None,
        &HoldPolicy::disabled(),
        &overload,
    );
    let report = overload_report(&out, &queue, 2);
    assert_eq!(report.rejected, 2);
    assert_eq!(report.shed, out.shed_count() as u64);
    assert_eq!(report.deferred_by_budget, out.budget_deferrals);
    assert_eq!(report.degrade_mode_steps, out.degrade_mode_steps);
    // Shed requests are a subset of expired: the report still accounts
    // for every request.
    assert_eq!(report.attempted, report.served() + report.expired);
    assert!(report.shed <= report.expired);
    let json = report.to_json();
    assert!(json.contains("\"shed\""), "{json}");
    assert!(json.contains("\"deferred_by_budget\""), "{json}");
    assert!(json.contains("\"degrade_mode_steps\""), "{json}");
    // The baseline report carries the counters at zero.
    let base = serve_report(&engine, &queue, policy, metric, 0);
    assert_eq!(base.shed, 0);
    assert_eq!(base.deferred_by_budget, 0);
    assert_eq!(base.degrade_mode_steps, [0; qntn_serve::DEGRADE_MODES]);
}

#[test]
fn shed_counts_are_monotone_in_offered_load_and_fault_intensity() {
    // The by-construction monotonicity contract on the single-attempt
    // path (no retry dynamics): prefix workloads only grow each step's
    // bucket, fault schedules nest, so sheds only grow. The root
    // proptests in tests/overload.rs randomize this; here we pin one
    // deterministic staircase.
    let single = RetryPolicy {
        max_attempts: 1,
        backoff_steps: 0,
        deadline_steps: 20,
    };
    let metric = RouteMetric::PaperInverseEta;
    let overload = OverloadPolicy {
        shed: ShedPolicy {
            utilization: 0.1,
            seed: 13,
        },
        degrade: DegradePolicy::standard(),
        ..OverloadPolicy::disabled()
    };
    let hold_off = HoldPolicy::disabled();
    // Offered load: streams of one seed are prefixes of one another.
    let mut prev = 0usize;
    for n in [50usize, 150, 300] {
        let queue = queue_from(WorkloadKind::Uniform, n, 101);
        let engine = SweepEngine::new(sim());
        let out = serve_overload(&engine, &queue, single, metric, None, &hold_off, &overload);
        assert!(
            out.shed_count() >= prev,
            "shed fell from {prev} to {} at n={n}",
            out.shed_count()
        );
        prev = out.shed_count();
    }
    // Fault intensity: masks nest, health only drops, budgets only shrink.
    let queue = queue_from(WorkloadKind::Uniform, 200, 101);
    let mut prev = 0usize;
    for intensity in [0.0, 1.0, 2.5, 5.0] {
        let faults = Arc::new(
            FaultModel::standard(21)
                .with_intensity(intensity)
                .compile(sim()),
        );
        let engine = SweepEngine::new(sim()).with_faults(faults);
        let out = serve_overload(&engine, &queue, single, metric, None, &hold_off, &overload);
        assert!(
            out.shed_count() >= prev,
            "shed fell from {prev} to {} at intensity {intensity}",
            out.shed_count()
        );
        prev = out.shed_count();
    }
}

#[test]
fn flash_crowd_bursts_dominate_and_are_seed_deterministic() {
    let a = generate(sim(), WorkloadKind::FlashCrowd, 400, 19);
    let b = generate(sim(), WorkloadKind::FlashCrowd, 400, 19);
    assert_eq!(a, b, "flash crowd not deterministic");
    let c = generate(sim(), WorkloadKind::FlashCrowd, 400, 20);
    assert_ne!(a, c, "flash crowd ignores the seed");
    let (_, rejected) = ingest(sim().hosts().len(), sim().steps(), &a);
    assert!(rejected.is_empty());

    // The default shape covers at most windows × window_frac of the day;
    // the arrivals inside that sliver must still be the majority.
    let crowd = FlashCrowdConfig::default();
    let cover = ((sim().steps() as f64 * crowd.window_frac).round() as usize).max(1);
    let mut per_step = vec![0usize; sim().steps()];
    for r in &a {
        per_step[r.arrival_step] += 1;
    }
    let mut counts: Vec<usize> = per_step.clone();
    counts.sort_unstable_by(|x, y| y.cmp(x));
    let burst_like: usize = counts.iter().take(crowd.windows * cover).sum();
    assert!(
        burst_like * 2 > a.len(),
        "burst steps hold {burst_like}/{} arrivals — bursts do not dominate",
        a.len()
    );

    // The explicit-config entry point honours the amplitude axis: a flat
    // amplitude of 1 is statistically uniform (no dominating sliver).
    let flat = qntn_serve::flash_crowd(
        sim(),
        400,
        19,
        FlashCrowdConfig {
            amplitude: 1.0,
            ..FlashCrowdConfig::default()
        },
    );
    let mut flat_per_step = vec![0usize; sim().steps()];
    for r in &flat {
        flat_per_step[r.arrival_step] += 1;
    }
    let mut flat_counts: Vec<usize> = flat_per_step;
    flat_counts.sort_unstable_by(|x, y| y.cmp(x));
    let flat_top: usize = flat_counts.iter().take(crowd.windows * cover).sum();
    assert!(
        flat_top * 2 < flat.len(),
        "amplitude 1 still bursts: {flat_top}/{}",
        flat.len()
    );
}
