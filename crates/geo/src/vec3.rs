//! Minimal 3-component vector used throughout the workspace.
//!
//! We deliberately implement this from scratch instead of pulling a linear
//! algebra crate: the workspace only needs a handful of operations
//! (dot/cross/norm/rotations) on `f64` triples, and keeping the type local
//! lets every crate share it without version coupling.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-vector of `f64` components. Units are context-dependent (metres for
/// positions, metres/second for velocities).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product `self × other` (right-handed).
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Squared Euclidean norm. Prefer this over `norm()*norm()` in hot loops.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the direction of `self`.
    ///
    /// Returns `None` for (near-)zero vectors rather than producing NaNs.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Distance between two points.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Angle between two vectors in `[0, π]`, robust near 0 and π.
    ///
    /// Uses the `atan2(|a×b|, a·b)` form, which is numerically better than
    /// `acos` of a clamped cosine for nearly (anti-)parallel vectors.
    #[inline]
    pub fn angle_to(self, other: Vec3) -> f64 {
        let cross = self.cross(other).norm();
        let dot = self.dot(other);
        cross.atan2(dot)
    }

    /// Rotate `self` by `angle` radians about the +Z axis (right-handed).
    #[inline]
    pub fn rotate_z(self, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        Vec3 {
            x: c * self.x - s * self.y,
            y: s * self.x + c * self.y,
            z: self.z,
        }
    }

    /// Rotate `self` by `angle` radians about the +X axis (right-handed).
    #[inline]
    pub fn rotate_x(self, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        Vec3 {
            x: self.x,
            y: c * self.y - s * self.z,
            z: s * self.y + c * self.z,
        }
    }

    /// Rotate `self` by `angle` radians about the +Y axis (right-handed).
    #[inline]
    pub fn rotate_y(self, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        Vec3 {
            x: c * self.x + s * self.z,
            y: self.y,
            z: -s * self.x + c * self.z,
        }
    }

    /// Rodrigues rotation of `self` about an arbitrary unit `axis`.
    pub fn rotate_about(self, axis: Vec3, angle: f64) -> Vec3 {
        let k = axis.normalized().unwrap_or(Vec3::Z);
        let (s, c) = angle.sin_cos();
        self * c + k.cross(self) * s + k * (k.dot(self) * (1.0 - c))
    }

    /// Component-wise linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// True when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn approx(a: Vec3, b: Vec3, tol: f64) -> bool {
        (a - b).norm() < tol
    }

    #[test]
    fn dot_and_cross_orthogonality() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn cross_handedness() {
        assert!(approx(Vec3::X.cross(Vec3::Y), Vec3::Z, 1e-15));
        assert!(approx(Vec3::Y.cross(Vec3::Z), Vec3::X, 1e-15));
        assert!(approx(Vec3::Z.cross(Vec3::X), Vec3::Y, 1e-15));
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < 1e-15);
        assert!((Vec3::new(2.0, 3.0, 6.0).norm() - 7.0).abs() < 1e-15);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert!(approx(n, Vec3::Z, 1e-15));
    }

    #[test]
    fn angle_to_cases() {
        assert!((Vec3::X.angle_to(Vec3::Y) - FRAC_PI_2).abs() < 1e-12);
        assert!((Vec3::X.angle_to(Vec3::X)).abs() < 1e-12);
        assert!((Vec3::X.angle_to(-Vec3::X) - PI).abs() < 1e-12);
        // Nearly parallel vectors should not blow up.
        let a = Vec3::new(1.0, 1e-9, 0.0);
        let angle = Vec3::X.angle_to(a);
        assert!(angle > 0.0 && angle < 1e-8);
    }

    #[test]
    fn rotate_z_quarter_turn() {
        let r = Vec3::X.rotate_z(FRAC_PI_2);
        assert!(approx(r, Vec3::Y, 1e-12));
    }

    #[test]
    fn rotate_x_quarter_turn() {
        let r = Vec3::Y.rotate_x(FRAC_PI_2);
        assert!(approx(r, Vec3::Z, 1e-12));
    }

    #[test]
    fn rotate_y_quarter_turn() {
        let r = Vec3::Z.rotate_y(FRAC_PI_2);
        assert!(approx(r, Vec3::X, 1e-12));
    }

    #[test]
    fn rodrigues_matches_axis_rotations() {
        let v = Vec3::new(0.3, -1.2, 2.5);
        for angle in [0.1, 1.0, -2.3] {
            assert!(approx(
                v.rotate_about(Vec3::Z, angle),
                v.rotate_z(angle),
                1e-12
            ));
            assert!(approx(
                v.rotate_about(Vec3::X, angle),
                v.rotate_x(angle),
                1e-12
            ));
            assert!(approx(
                v.rotate_about(Vec3::Y, angle),
                v.rotate_y(angle),
                1e-12
            ));
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let r = v.rotate_about(Vec3::new(1.0, 1.0, 1.0), 0.7);
        assert!((r.norm() - v.norm()).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert!(approx(a.lerp(b, 0.0), a, 1e-15));
        assert!(approx(a.lerp(b, 1.0), b, 1e-15));
        assert!(approx(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0), 1e-15));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert!(approx(a + b, Vec3::new(5.0, 7.0, 9.0), 1e-15));
        assert!(approx(b - a, Vec3::new(3.0, 3.0, 3.0), 1e-15));
        assert!(approx(a * 2.0, Vec3::new(2.0, 4.0, 6.0), 1e-15));
        assert!(approx(2.0 * a, Vec3::new(2.0, 4.0, 6.0), 1e-15));
        assert!(approx(a / 2.0, Vec3::new(0.5, 1.0, 1.5), 1e-15));
        assert!(approx(-a, Vec3::new(-1.0, -2.0, -3.0), 1e-15));
        let mut c = a;
        c += b;
        c -= a;
        assert!(approx(c, b, 1e-15));
    }
}
