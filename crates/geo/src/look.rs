//! Look angles and slant range between an observer and a target.
//!
//! These drive the FSO link budget: the slant range sets diffraction and
//! turbulence losses, and the elevation angle sets the atmospheric path
//! length (and the paper's π/9 elevation mask).

use crate::ellipsoid::Ellipsoid;
use crate::frames::Enu;
use crate::geodetic::Geodetic;
use crate::vec3::Vec3;

/// Elevation/azimuth/range of a target as seen by an observer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookAngles {
    /// Elevation above the local horizon, radians in `[-π/2, π/2]`.
    pub elevation: f64,
    /// Azimuth clockwise from north, radians in `[0, 2π)`.
    pub azimuth: f64,
    /// Straight-line (slant) range, metres.
    pub range_m: f64,
}

impl LookAngles {
    /// Zenith angle (complement of elevation).
    #[inline]
    pub fn zenith(&self) -> f64 {
        std::f64::consts::FRAC_PI_2 - self.elevation
    }

    /// True when the target is above `mask` radians of elevation.
    #[inline]
    pub fn visible_above(&self, mask: f64) -> bool {
        self.elevation >= mask
    }
}

/// Compute look angles from `observer` to a target given in ECEF.
pub fn look_angles_ecef(observer: Geodetic, target_ecef: Vec3, ell: &Ellipsoid) -> LookAngles {
    let enu = Enu::at(observer, ell);
    let local = enu.from_ecef(target_ecef);
    let horiz = (local.x * local.x + local.y * local.y).sqrt();
    let elevation = local.z.atan2(horiz);
    let azimuth = crate::wrap_two_pi(local.x.atan2(local.y));
    LookAngles {
        elevation,
        azimuth,
        range_m: local.norm(),
    }
}

/// Compute look angles between two geodetic positions.
pub fn look_angles(observer: Geodetic, target: Geodetic, ell: &Ellipsoid) -> LookAngles {
    look_angles_ecef(observer, target.to_ecef(ell), ell)
}

/// Slant range from a ground observer to a target at altitude `h` seen at
/// elevation `elev`, on a spherical Earth of radius `r` (closed form).
///
/// `L = sqrt(r² sin²ε + 2 r h + h²) − r sinε`. Used as an analytic
/// cross-check for the full geometry and by the channel-model sweeps.
pub fn slant_range_spherical(r: f64, h: f64, elev: f64) -> f64 {
    let rs = r * elev.sin();
    (rs * rs + 2.0 * r * h + h * h).sqrt() - rs
}

/// Maximum Earth-central angle at which a satellite at altitude `h` is seen
/// above elevation `elev` from the ground (spherical Earth of radius `r`).
///
/// `ψ = acos( r cosε / (r+h) ) − ε`. The instantaneous coverage cap of one
/// satellite subtends this half-angle.
pub fn coverage_half_angle(r: f64, h: f64, elev: f64) -> f64 {
    ((r * elev.cos()) / (r + h)).acos() - elev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ellipsoid::{SPHERICAL_EARTH, WGS84};

    #[test]
    fn target_at_zenith() {
        let obs = Geodetic::from_deg(36.0, -85.0, 0.0);
        let tgt = obs.with_alt(500_000.0);
        let la = look_angles(obs, tgt, &WGS84);
        assert!((la.elevation.to_degrees() - 90.0).abs() < 1e-6);
        assert!((la.range_m - 500_000.0).abs() < 1e-3);
        assert!((la.zenith()).abs() < 1e-6);
    }

    #[test]
    fn target_due_north_on_horizon_plane() {
        let obs = Geodetic::from_deg(36.0, -85.0, 0.0);
        let tgt = Geodetic::from_deg(36.5, -85.0, 0.0);
        let la = look_angles(obs, tgt, &WGS84);
        // Azimuth ~0 (north); elevation slightly negative (Earth curvature).
        assert!(la.azimuth.to_degrees() < 1.0 || la.azimuth.to_degrees() > 359.0);
        assert!(la.elevation < 0.0);
    }

    #[test]
    fn azimuth_quadrants() {
        let obs = Geodetic::from_deg(36.0, -85.0, 0.0);
        let east = look_angles(obs, Geodetic::from_deg(36.0, -84.5, 0.0), &WGS84);
        assert!(
            (east.azimuth.to_degrees() - 90.0).abs() < 1.0,
            "{}",
            east.azimuth.to_degrees()
        );
        let south = look_angles(obs, Geodetic::from_deg(35.5, -85.0, 0.0), &WGS84);
        assert!((south.azimuth.to_degrees() - 180.0).abs() < 1.0);
        let west = look_angles(obs, Geodetic::from_deg(36.0, -85.5, 0.0), &WGS84);
        assert!((west.azimuth.to_degrees() - 270.0).abs() < 1.0);
    }

    #[test]
    fn slant_range_closed_form_limits() {
        let r = 6_371_000.0;
        let h = 500_000.0;
        // At zenith the slant range is the altitude.
        assert!((slant_range_spherical(r, h, std::f64::consts::FRAC_PI_2) - h).abs() < 1e-6);
        // At zero elevation it's sqrt(2rh + h²).
        let expect = (2.0 * r * h + h * h).sqrt();
        assert!((slant_range_spherical(r, h, 0.0) - expect).abs() < 1e-6);
        // Monotone decreasing in elevation.
        let mut prev = f64::INFINITY;
        for k in 0..=18 {
            let e = f64::from(k) * 5.0_f64.to_radians();
            let l = slant_range_spherical(r, h, e);
            assert!(l <= prev + 1e-9);
            prev = l;
        }
    }

    #[test]
    fn geometry_matches_closed_form_on_sphere() {
        // Place a satellite at a known central angle and compare the look
        // geometry with the closed-form slant range.
        let r = SPHERICAL_EARTH.semi_major_m;
        let h = 500_000.0;
        let obs = Geodetic::from_deg(0.0, 0.0, 0.0);
        for psi_deg in [1.0, 3.0, 5.0, 8.0] {
            let tgt = Geodetic::from_deg(0.0, psi_deg, h);
            let la = look_angles(obs, tgt, &SPHERICAL_EARTH);
            let closed = slant_range_spherical(r, h, la.elevation);
            assert!(
                (la.range_m - closed).abs() < 1.0,
                "psi={psi_deg}: {} vs {}",
                la.range_m,
                closed
            );
        }
    }

    #[test]
    fn coverage_half_angle_limits() {
        let r = 6_371_000.0;
        let h = 500_000.0;
        // At 90° elevation coverage shrinks to zero.
        assert!(coverage_half_angle(r, h, std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        // At 0° elevation: acos(r/(r+h)).
        let expect = (r / (r + h)).acos();
        assert!((coverage_half_angle(r, h, 0.0) - expect).abs() < 1e-12);
        // Paper's π/9 mask at 500 km is about 9.4 degrees of central angle.
        let psi = coverage_half_angle(r, h, std::f64::consts::PI / 9.0);
        assert!(
            (psi.to_degrees() - 9.43).abs() < 0.1,
            "{}",
            psi.to_degrees()
        );
    }

    #[test]
    fn visible_above_mask() {
        let la = LookAngles {
            elevation: 0.4,
            azimuth: 0.0,
            range_m: 1.0,
        };
        assert!(la.visible_above(0.35));
        assert!(!la.visible_above(0.45));
    }
}
