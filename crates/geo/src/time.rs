//! Simulation epochs and Greenwich Mean Sidereal Time.
//!
//! The orbit propagator works in an inertial frame (ECI); ground stations
//! live in the rotating Earth-fixed frame (ECEF). The rotation between the
//! two at any instant is the Greenwich Mean Sidereal Time angle. We use the
//! IAU 1982 GMST polynomial, which is what STK's "J2 analytic" propagator
//! setup effectively uses and is far more precise than anything the link
//! budget can resolve.

use serde::{Deserialize, Serialize};

/// Seconds in a Julian day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// Earth's rotation rate, rad/s (IAU: 7.2921150e-5).
pub const EARTH_ROTATION_RATE: f64 = 7.292_115_0e-5;

/// Julian date of the J2000.0 epoch (2000-01-01 12:00 TT).
pub const JD_J2000: f64 = 2_451_545.0;

/// A simulation epoch expressed as a Julian date plus an offset in seconds.
///
/// Keeping the offset separate from the (large) Julian date preserves
/// sub-microsecond resolution over a day of 30-second steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Epoch {
    /// Julian date of the reference instant (UT1 ≈ UTC for our purposes).
    pub jd: f64,
    /// Seconds elapsed since `jd`.
    pub offset_s: f64,
}

impl Epoch {
    /// The J2000.0 epoch.
    pub const J2000: Epoch = Epoch {
        jd: JD_J2000,
        offset_s: 0.0,
    };

    /// An epoch at Julian date `jd`.
    #[inline]
    pub const fn from_jd(jd: f64) -> Epoch {
        Epoch { jd, offset_s: 0.0 }
    }

    /// Construct from a calendar date (proleptic Gregorian, UT).
    ///
    /// Uses the Fliegel–Van Flandern day-number algorithm. Valid for all
    /// dates of interest (year > 1582).
    pub fn from_calendar(year: i32, month: u32, day: u32, hour: u32, min: u32, sec: f64) -> Epoch {
        let y = year as i64;
        let m = month as i64;
        let d = day as i64;
        let jdn = (1461 * (y + 4800 + (m - 14) / 12)) / 4
            + (367 * (m - 2 - 12 * ((m - 14) / 12))) / 12
            - (3 * ((y + 4900 + (m - 14) / 12) / 100)) / 4
            + d
            - 32075;
        // JDN is the Julian day number at *noon*; midnight is JDN - 0.5.
        let jd = jdn as f64 - 0.5;
        let frac = f64::from(hour) * 3600.0 + f64::from(min) * 60.0 + sec;
        Epoch { jd, offset_s: frac }
    }

    /// This epoch advanced by `seconds`.
    #[inline]
    pub fn plus_seconds(&self, seconds: f64) -> Epoch {
        Epoch {
            jd: self.jd,
            offset_s: self.offset_s + seconds,
        }
    }

    /// Julian date including the offset.
    #[inline]
    pub fn as_jd(&self) -> f64 {
        self.jd + self.offset_s / SECONDS_PER_DAY
    }

    /// Julian centuries since J2000.0.
    #[inline]
    pub fn centuries_since_j2000(&self) -> f64 {
        (self.as_jd() - JD_J2000) / 36_525.0
    }

    /// Seconds elapsed between two epochs (`self - other`).
    #[inline]
    pub fn seconds_since(&self, other: &Epoch) -> f64 {
        (self.jd - other.jd) * SECONDS_PER_DAY + (self.offset_s - other.offset_s)
    }

    /// Greenwich Mean Sidereal Time at this epoch, radians in `[0, 2π)`.
    #[inline]
    pub fn gmst(&self) -> f64 {
        gmst_rad(*self)
    }
}

/// IAU 1982 GMST model. Returns the sidereal angle in radians `[0, 2π)`.
pub fn gmst_rad(epoch: Epoch) -> f64 {
    // Split the Julian date into the 0h part and the UT seconds-of-day part
    // to keep precision (the classic Meeus formulation).
    let jd = epoch.as_jd();
    let jd0 = (jd - 0.5).floor() + 0.5; // previous midnight
    let h = (jd - jd0) * 24.0; // UT hours since midnight
    let t = (jd0 - JD_J2000) / 36_525.0;
    // GMST at 0h UT, seconds of sidereal time.
    let gmst0 = 24_110.548_41 + 8_640_184.812_866 * t + 0.093_104 * t * t - 6.2e-6 * t * t * t;
    // Advance by the UT elapsed since midnight at the sidereal rate.
    let gmst_sec = gmst0 + 3_600.0 * h * 1.002_737_909_350_795;
    let frac = gmst_sec.rem_euclid(SECONDS_PER_DAY);
    frac / SECONDS_PER_DAY * std::f64::consts::TAU
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn j2000_julian_date() {
        let e = Epoch::from_calendar(2000, 1, 1, 12, 0, 0.0);
        assert!((e.as_jd() - JD_J2000).abs() < 1e-9);
    }

    #[test]
    fn known_julian_dates() {
        // 1987-04-10 00:00 UT -> JD 2446895.5 (Meeus, "Astronomical Algorithms").
        let e = Epoch::from_calendar(1987, 4, 10, 0, 0, 0.0);
        assert!((e.as_jd() - 2_446_895.5).abs() < 1e-9);
        // 2024-11-17 12:00 UT -> JD 2460632.0.
        let e = Epoch::from_calendar(2024, 11, 17, 12, 0, 0.0);
        assert!((e.as_jd() - 2_460_632.0).abs() < 1e-9);
    }

    #[test]
    fn gmst_meeus_example() {
        // Meeus example 12.b: 1987-04-10 19:21:00 UT -> GMST = 8h 34m 57.0896s.
        let e = Epoch::from_calendar(1987, 4, 10, 19, 21, 0.0);
        let gmst = gmst_rad(e);
        let expect_hours = 8.0 + 34.0 / 60.0 + 57.0896 / 3600.0;
        let got_hours = gmst / std::f64::consts::TAU * 24.0;
        assert!(
            (got_hours - expect_hours).abs() < 1e-4,
            "got {got_hours} expected {expect_hours}"
        );
    }

    #[test]
    fn gmst_advances_at_sidereal_rate() {
        let e0 = Epoch::from_calendar(2024, 6, 1, 0, 0, 0.0);
        let e1 = e0.plus_seconds(3600.0);
        let d = (gmst_rad(e1) - gmst_rad(e0)).rem_euclid(std::f64::consts::TAU);
        // One sidereal hour ≈ 15.041 degrees.
        assert!((d.to_degrees() - 15.041).abs() < 1e-3, "{}", d.to_degrees());
    }

    #[test]
    fn plus_seconds_and_difference() {
        let e0 = Epoch::J2000;
        let e1 = e0.plus_seconds(86_400.0 + 30.0);
        assert!((e1.seconds_since(&e0) - 86_430.0).abs() < 1e-9);
        assert!((e1.as_jd() - (JD_J2000 + 1.000_347_222)).abs() < 1e-6);
    }

    #[test]
    fn gmst_is_in_range() {
        for k in 0..100 {
            let e = Epoch::J2000.plus_seconds(k as f64 * 12_345.678);
            let g = gmst_rad(e);
            assert!((0.0..std::f64::consts::TAU).contains(&g));
        }
    }

    #[test]
    fn earth_rotation_rate_consistency() {
        // GMST rate should match EARTH_ROTATION_RATE to ~1e-9 rad/s.
        let e0 = Epoch::from_calendar(2024, 3, 20, 6, 0, 0.0);
        let dt = 100.0;
        let rate =
            (gmst_rad(e0.plus_seconds(dt)) - gmst_rad(e0)).rem_euclid(std::f64::consts::TAU) / dt;
        assert!((rate - EARTH_ROTATION_RATE).abs() < 1e-9, "{rate}");
    }
}
