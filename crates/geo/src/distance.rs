//! Surface distances between geodetic points.
//!
//! Fiber runs between ground nodes follow (approximately) the geodesic, so
//! fiber channel lengths use these rather than the 3-D chord. Haversine is
//! the workhorse; Vincenty's inverse formula is provided for ellipsoidal
//! accuracy and as a cross-check.

use crate::ellipsoid::Ellipsoid;
use crate::geodetic::Geodetic;

/// Great-circle distance in metres on a sphere with the ellipsoid's mean
/// radius (haversine formula; ~0.3% worst-case error vs the true geodesic).
pub fn haversine_m(a: Geodetic, b: Geodetic, ell: &Ellipsoid) -> f64 {
    let r = ell.mean_radius_m();
    let dlat = b.lat - a.lat;
    let dlon = b.lon - a.lon;
    let h = (dlat / 2.0).sin().powi(2) + a.lat.cos() * b.lat.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * r * h.sqrt().min(1.0).asin()
}

/// Vincenty's inverse formula: geodesic distance in metres on the ellipsoid.
///
/// Returns `None` if the iteration fails to converge (nearly antipodal
/// points); callers should fall back to [`haversine_m`] in that case.
pub fn vincenty_m(a: Geodetic, b: Geodetic, ell: &Ellipsoid) -> Option<f64> {
    let f = ell.flattening;
    let aa = ell.semi_major_m;
    let bb = ell.semi_minor_m();

    if (a.lat - b.lat).abs() < 1e-15 && (a.lon - b.lon).abs() < 1e-15 {
        return Some(0.0);
    }

    let u1 = ((1.0 - f) * a.lat.tan()).atan();
    let u2 = ((1.0 - f) * b.lat.tan()).atan();
    let l = b.lon - a.lon;
    let (su1, cu1) = u1.sin_cos();
    let (su2, cu2) = u2.sin_cos();

    let mut lambda = l;
    let mut iterations = 0;
    let (mut cos2_alpha, mut sin_sigma, mut cos_sigma, mut sigma, mut cos_2sigma_m);
    loop {
        let (sl, cl) = lambda.sin_cos();
        sin_sigma = ((cu2 * sl).powi(2) + (cu1 * su2 - su1 * cu2 * cl).powi(2)).sqrt();
        if sin_sigma == 0.0 {
            return Some(0.0); // coincident
        }
        cos_sigma = su1 * su2 + cu1 * cu2 * cl;
        sigma = sin_sigma.atan2(cos_sigma);
        let sin_alpha = cu1 * cu2 * sl / sin_sigma;
        cos2_alpha = 1.0 - sin_alpha * sin_alpha;
        cos_2sigma_m = if cos2_alpha.abs() < 1e-15 {
            0.0 // equatorial line
        } else {
            cos_sigma - 2.0 * su1 * su2 / cos2_alpha
        };
        let c = f / 16.0 * cos2_alpha * (4.0 + f * (4.0 - 3.0 * cos2_alpha));
        let lambda_new = l
            + (1.0 - c)
                * f
                * sin_alpha
                * (sigma
                    + c * sin_sigma
                        * (cos_2sigma_m + c * cos_sigma * (-1.0 + 2.0 * cos_2sigma_m.powi(2))));
        let delta = (lambda_new - lambda).abs();
        lambda = lambda_new;
        iterations += 1;
        if delta < 1e-12 {
            break;
        }
        if iterations > 200 {
            return None;
        }
    }

    let u_sq = cos2_alpha * ell.ep2();
    let big_a = 1.0 + u_sq / 16_384.0 * (4_096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq)));
    let big_b = u_sq / 1_024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)));
    let delta_sigma = big_b
        * sin_sigma
        * (cos_2sigma_m
            + big_b / 4.0
                * (cos_sigma * (-1.0 + 2.0 * cos_2sigma_m.powi(2))
                    - big_b / 6.0
                        * cos_2sigma_m
                        * (-3.0 + 4.0 * sin_sigma.powi(2))
                        * (-3.0 + 4.0 * cos_2sigma_m.powi(2))));
    let _ = aa;
    Some(bb * big_a * (sigma - delta_sigma))
}

/// The direct geodesic problem on the mean sphere: the point reached by
/// travelling `distance_m` from `start` along initial bearing `azimuth`
/// (radians clockwise from north). Good to the haversine model's accuracy;
/// used by the synthetic-scenario generator.
pub fn destination(start: Geodetic, azimuth: f64, distance_m: f64, ell: &Ellipsoid) -> Geodetic {
    let r = ell.mean_radius_m();
    let delta = distance_m / r;
    let (sin_d, cos_d) = delta.sin_cos();
    let (sin_lat, cos_lat) = start.lat.sin_cos();
    let lat2 = (sin_lat * cos_d + cos_lat * sin_d * azimuth.cos()).asin();
    let lon2 = start.lon + (azimuth.sin() * sin_d * cos_lat).atan2(cos_d - sin_lat * lat2.sin());
    Geodetic::new(lat2, crate::wrap_pi(lon2), start.alt_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ellipsoid::{SPHERICAL_EARTH, WGS84};

    #[test]
    fn zero_distance() {
        let g = Geodetic::from_deg(36.0, -85.0, 0.0);
        assert_eq!(haversine_m(g, g, &WGS84), 0.0);
        assert_eq!(vincenty_m(g, g, &WGS84), Some(0.0));
    }

    #[test]
    fn one_degree_of_meridian() {
        // One degree of latitude ~ 111.2 km (haversine on the mean sphere).
        let a = Geodetic::from_deg(35.0, -85.0, 0.0);
        let b = Geodetic::from_deg(36.0, -85.0, 0.0);
        let d = haversine_m(a, b, &SPHERICAL_EARTH);
        assert!((d - 111_194.9).abs() < 10.0, "{d}");
    }

    #[test]
    fn vincenty_known_baseline() {
        // Flinders Peak -> Buninyong, the canonical Vincenty test case:
        // 54972.271 m on WGS-84 (coordinates from Geoscience Australia).
        let a = Geodetic::from_deg(-37.951_033_416_66, 144.424_867_888_88, 0.0);
        let b = Geodetic::from_deg(-37.652_821_138_88, 143.926_495_527_77, 0.0);
        let d = vincenty_m(a, b, &WGS84).unwrap();
        assert!((d - 54_972.271).abs() < 0.01, "{d}");
    }

    #[test]
    fn haversine_vincenty_agree_regionally() {
        // Over Tennessee-scale baselines they agree to ~0.5%.
        let ttu = Geodetic::from_deg(36.1757, -85.5066, 0.0);
        let ornl = Geodetic::from_deg(35.91, -84.3, 0.0);
        let epb = Geodetic::from_deg(35.04159, -85.2799, 0.0);
        for (a, b) in [(ttu, ornl), (ttu, epb), (ornl, epb)] {
            let h = haversine_m(a, b, &WGS84);
            let v = vincenty_m(a, b, &WGS84).unwrap();
            assert!((h - v).abs() / v < 5e-3, "h={h} v={v}");
        }
    }

    #[test]
    fn qntn_city_separations() {
        // The three QNTN cities are separated by roughly 110-135 km, which is
        // what makes direct fiber interconnection infeasible (the paper's
        // motivating observation).
        let ttu = Geodetic::from_deg(36.1757, -85.5066, 0.0);
        let ornl = Geodetic::from_deg(35.91, -84.3, 0.0);
        let epb = Geodetic::from_deg(35.04159, -85.2799, 0.0);
        let d1 = vincenty_m(ttu, ornl, &WGS84).unwrap() / 1000.0;
        let d2 = vincenty_m(ttu, epb, &WGS84).unwrap() / 1000.0;
        let d3 = vincenty_m(ornl, epb, &WGS84).unwrap() / 1000.0;
        assert!((100.0..130.0).contains(&d1), "TTU-ORNL {d1} km");
        assert!((115.0..140.0).contains(&d2), "TTU-EPB {d2} km");
        assert!((120.0..145.0).contains(&d3), "ORNL-EPB {d3} km");
    }

    #[test]
    fn equatorial_segment() {
        // Along the equator Vincenty must handle cos²α = 0 gracefully.
        let a = Geodetic::from_deg(0.0, 0.0, 0.0);
        let b = Geodetic::from_deg(0.0, 1.0, 0.0);
        let d = vincenty_m(a, b, &WGS84).unwrap();
        // One degree of equatorial arc ~ 111.32 km.
        assert!((d - 111_319.5).abs() < 5.0, "{d}");
    }

    #[test]
    fn destination_inverts_distance() {
        let start = Geodetic::from_deg(36.0, -85.0, 300.0);
        for az_deg in [0.0, 45.0, 90.0, 180.0, 270.0] {
            for km in [1.0, 50.0, 120.0, 500.0] {
                let end = destination(start, f64::to_radians(az_deg), km * 1000.0, &WGS84);
                let back = haversine_m(start, end, &WGS84);
                assert!(
                    (back - km * 1000.0).abs() < 1.0,
                    "az {az_deg} km {km}: got {back}"
                );
            }
        }
    }

    #[test]
    fn destination_cardinal_directions() {
        let start = Geodetic::from_deg(36.0, -85.0, 0.0);
        // Due north increases latitude, keeps longitude.
        let north = destination(start, 0.0, 100_000.0, &WGS84);
        assert!(north.lat_deg() > 36.5);
        assert!((north.lon_deg() + 85.0).abs() < 1e-6);
        // Due east keeps latitude (to first order), increases longitude.
        let east = destination(start, std::f64::consts::FRAC_PI_2, 100_000.0, &WGS84);
        assert!(east.lon_deg() > -85.0 + 0.5);
        assert!((east.lat_deg() - 36.0).abs() < 0.05);
        // Altitude carried through.
        assert_eq!(north.alt_m, 0.0);
    }

    #[test]
    fn symmetric() {
        let a = Geodetic::from_deg(36.2, -85.5, 0.0);
        let b = Geodetic::from_deg(35.0, -85.3, 0.0);
        assert!((haversine_m(a, b, &WGS84) - haversine_m(b, a, &WGS84)).abs() < 1e-9);
        let v1 = vincenty_m(a, b, &WGS84).unwrap();
        let v2 = vincenty_m(b, a, &WGS84).unwrap();
        assert!((v1 - v2).abs() < 1e-6);
    }
}
