//! Geodetic positions and geodetic ⇄ ECEF conversions.
//!
//! Ground nodes in the QNTN scenario are specified as (latitude, longitude)
//! pairs (Table I of the paper) plus an altitude; satellites and the HAP
//! carry altitudes of 500 km and 30 km respectively. The forward conversion
//! is the standard closed form; the inverse uses Bowring's method, which is
//! accurate to sub-millimetre for altitudes within ±10,000 km.

use crate::ellipsoid::{Ellipsoid, WGS84};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A geodetic position: latitude/longitude in **radians**, altitude in
/// metres above the ellipsoid.
///
/// ```
/// use qntn_geo::{Geodetic, vincenty_m, WGS84};
///
/// // Tennessee Tech to Oak Ridge: roughly 110 km.
/// let ttu = Geodetic::from_deg(36.1757, -85.5066, 300.0);
/// let ornl = Geodetic::from_deg(35.91, -84.3, 250.0);
/// let km = vincenty_m(ttu, ornl, &WGS84).unwrap() / 1000.0;
/// assert!((100.0..120.0).contains(&km));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Geodetic {
    pub lat: f64,
    pub lon: f64,
    pub alt_m: f64,
}

impl Geodetic {
    /// Construct from radians.
    #[inline]
    pub const fn new(lat: f64, lon: f64, alt_m: f64) -> Self {
        Geodetic { lat, lon, alt_m }
    }

    /// Construct from degrees (how the paper's Table I lists coordinates).
    #[inline]
    pub fn from_deg(lat_deg: f64, lon_deg: f64, alt_m: f64) -> Self {
        Geodetic {
            lat: lat_deg.to_radians(),
            lon: lon_deg.to_radians(),
            alt_m,
        }
    }

    /// Latitude in degrees.
    #[inline]
    pub fn lat_deg(&self) -> f64 {
        self.lat.to_degrees()
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lon_deg(&self) -> f64 {
        self.lon.to_degrees()
    }

    /// Geodetic → ECEF (Earth-centred, Earth-fixed) Cartesian coordinates.
    pub fn to_ecef(&self, ell: &Ellipsoid) -> Vec3 {
        let (slat, clat) = self.lat.sin_cos();
        let (slon, clon) = self.lon.sin_cos();
        let n = ell.prime_vertical_radius(self.lat);
        Vec3 {
            x: (n + self.alt_m) * clat * clon,
            y: (n + self.alt_m) * clat * slon,
            z: (n * (1.0 - ell.e2()) + self.alt_m) * slat,
        }
    }

    /// Geodetic → ECEF on WGS-84.
    #[inline]
    pub fn to_ecef_wgs84(&self) -> Vec3 {
        self.to_ecef(&WGS84)
    }

    /// ECEF → geodetic using Bowring's method (one Newton-like refinement of
    /// the parametric latitude, then the closed-form geodetic latitude).
    pub fn from_ecef(ecef: Vec3, ell: &Ellipsoid) -> Geodetic {
        let a = ell.semi_major_m;
        let b = ell.semi_minor_m();
        let e2 = ell.e2();
        let ep2 = ell.ep2();

        let p = (ecef.x * ecef.x + ecef.y * ecef.y).sqrt();
        let lon = ecef.y.atan2(ecef.x);

        if p < 1e-9 {
            // On the polar axis: latitude is ±90°, altitude measured from pole.
            let lat = if ecef.z >= 0.0 {
                std::f64::consts::FRAC_PI_2
            } else {
                -std::f64::consts::FRAC_PI_2
            };
            return Geodetic::new(lat, lon, ecef.z.abs() - b);
        }

        // Bowring's initial parametric latitude, then fixed-point refinement
        // (needed for sub-nanoradian accuracy at satellite altitudes).
        let theta = (ecef.z * a).atan2(p * b);
        let (st, ct) = theta.sin_cos();
        let mut lat = (ecef.z + ep2 * b * st * st * st).atan2(p - e2 * a * ct * ct * ct);
        for _ in 0..5 {
            let n = ell.prime_vertical_radius(lat);
            let alt = p / lat.cos() - n;
            let new_lat = (ecef.z / (p * (1.0 - e2 * n / (n + alt)))).atan();
            if (new_lat - lat).abs() < 1e-14 {
                lat = new_lat;
                break;
            }
            lat = new_lat;
        }
        let n = ell.prime_vertical_radius(lat);
        // Altitude: use the more stable of the two expressions depending on
        // how close we are to the poles.
        let alt = if lat.abs() < 1.3 {
            p / lat.cos() - n
        } else {
            ecef.z / lat.sin() - n * (1.0 - e2)
        };
        Geodetic::new(lat, lon, alt)
    }

    /// ECEF → geodetic on WGS-84.
    #[inline]
    pub fn from_ecef_wgs84(ecef: Vec3) -> Geodetic {
        Self::from_ecef(ecef, &WGS84)
    }

    /// A copy of this position with a different altitude.
    #[inline]
    pub fn with_alt(&self, alt_m: f64) -> Geodetic {
        Geodetic { alt_m, ..*self }
    }
}

impl std::fmt::Display for Geodetic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({:.5}°, {:.5}°, {:.1} m)",
            self.lat_deg(),
            self.lon_deg(),
            self.alt_m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ellipsoid::SPHERICAL_EARTH;

    #[test]
    fn equator_prime_meridian() {
        let g = Geodetic::from_deg(0.0, 0.0, 0.0);
        let e = g.to_ecef_wgs84();
        assert!((e.x - WGS84.semi_major_m).abs() < 1e-6);
        assert!(e.y.abs() < 1e-6 && e.z.abs() < 1e-6);
    }

    #[test]
    fn north_pole() {
        let g = Geodetic::from_deg(90.0, 0.0, 0.0);
        let e = g.to_ecef_wgs84();
        assert!(e.x.abs() < 1e-6 && e.y.abs() < 1e-6);
        assert!((e.z - WGS84.semi_minor_m()).abs() < 1e-6);
        // Round-trip through the polar-axis special case.
        let back = Geodetic::from_ecef_wgs84(e);
        assert!((back.lat_deg() - 90.0).abs() < 1e-9);
        assert!(back.alt_m.abs() < 1e-6);
    }

    #[test]
    fn roundtrip_tennessee_nodes() {
        // Representative nodes from Table I plus the HAP and a satellite.
        let cases = [
            (36.1757, -85.5066, 300.0),
            (35.04159, -85.2799, 200.0),
            (35.91, -84.3, 250.0),
            (35.6692, -85.0662, 30_000.0),
            (36.0, -85.0, 500_000.0),
        ];
        for (lat, lon, alt) in cases {
            let g = Geodetic::from_deg(lat, lon, alt);
            let back = Geodetic::from_ecef_wgs84(g.to_ecef_wgs84());
            assert!((back.lat_deg() - lat).abs() < 1e-9, "lat {lat}");
            assert!((back.lon_deg() - lon).abs() < 1e-9, "lon {lon}");
            assert!((back.alt_m - alt).abs() < 1e-4, "alt {alt}: {}", back.alt_m);
        }
    }

    #[test]
    fn sphere_roundtrip() {
        let g = Geodetic::from_deg(-33.5, 151.2, 12_345.0);
        let e = g.to_ecef(&SPHERICAL_EARTH);
        assert!((e.norm() - (6_371_000.0 + 12_345.0)).abs() < 1e-6);
        let back = Geodetic::from_ecef(e, &SPHERICAL_EARTH);
        assert!((back.lat_deg() - g.lat_deg()).abs() < 1e-9);
        assert!((back.lon_deg() - g.lon_deg()).abs() < 1e-9);
        assert!((back.alt_m - g.alt_m).abs() < 1e-5);
    }

    #[test]
    fn southern_western_hemispheres() {
        let g = Geodetic::from_deg(-45.0, -120.0, 1000.0);
        let e = g.to_ecef_wgs84();
        assert!(e.z < 0.0);
        assert!(e.x < 0.0 && e.y < 0.0);
        let back = Geodetic::from_ecef_wgs84(e);
        assert!((back.lat_deg() + 45.0).abs() < 1e-9);
        assert!((back.lon_deg() + 120.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats_degrees() {
        let g = Geodetic::from_deg(36.1757, -85.5066, 0.0);
        let s = format!("{g}");
        assert!(s.contains("36.17570"), "{s}");
        assert!(s.contains("-85.50660"), "{s}");
    }
}
