//! Reference ellipsoids.
//!
//! The QNTN experiments run on WGS-84 by default. A spherical-Earth model is
//! provided for cross-checks (the paper's coverage math is insensitive to
//! flattening at the ~100 km scales involved, and the sphere makes several
//! closed-form sanity tests exact).

use serde::{Deserialize, Serialize};

/// A biaxial reference ellipsoid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ellipsoid {
    /// Semi-major (equatorial) axis in metres.
    pub semi_major_m: f64,
    /// Flattening `f = (a - b) / a`. Zero for a sphere.
    pub flattening: f64,
}

/// The WGS-84 ellipsoid (the one GPS and STK use).
pub const WGS84: Ellipsoid = Ellipsoid {
    semi_major_m: 6_378_137.0,
    flattening: 1.0 / 298.257_223_563,
};

/// A spherical Earth with the IUGG mean radius.
pub const SPHERICAL_EARTH: Ellipsoid = Ellipsoid {
    semi_major_m: 6_371_000.0,
    flattening: 0.0,
};

impl Ellipsoid {
    /// Semi-minor (polar) axis in metres.
    #[inline]
    pub fn semi_minor_m(&self) -> f64 {
        self.semi_major_m * (1.0 - self.flattening)
    }

    /// First eccentricity squared, `e² = f(2 - f)`.
    #[inline]
    pub fn e2(&self) -> f64 {
        self.flattening * (2.0 - self.flattening)
    }

    /// Second eccentricity squared, `e'² = e²/(1-e²)`.
    #[inline]
    pub fn ep2(&self) -> f64 {
        let e2 = self.e2();
        e2 / (1.0 - e2)
    }

    /// Prime-vertical radius of curvature `N(φ)` at geodetic latitude `lat`.
    #[inline]
    pub fn prime_vertical_radius(&self, lat: f64) -> f64 {
        let s = lat.sin();
        self.semi_major_m / (1.0 - self.e2() * s * s).sqrt()
    }

    /// Meridional radius of curvature `M(φ)` at geodetic latitude `lat`.
    #[inline]
    pub fn meridional_radius(&self, lat: f64) -> f64 {
        let s = lat.sin();
        let w2 = 1.0 - self.e2() * s * s;
        self.semi_major_m * (1.0 - self.e2()) / (w2 * w2.sqrt())
    }

    /// Mean radius `(2a + b)/3`.
    #[inline]
    pub fn mean_radius_m(&self) -> f64 {
        (2.0 * self.semi_major_m + self.semi_minor_m()) / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wgs84_constants() {
        assert!((WGS84.semi_minor_m() - 6_356_752.314_245).abs() < 1e-3);
        assert!((WGS84.e2() - 0.006_694_379_990_14).abs() < 1e-12);
        assert!((WGS84.mean_radius_m() - 6_371_008.771).abs() < 1.0);
    }

    #[test]
    fn sphere_has_constant_curvature() {
        for lat in [-1.2, 0.0, 0.7, 1.5] {
            assert!((SPHERICAL_EARTH.prime_vertical_radius(lat) - 6_371_000.0).abs() < 1e-6);
            assert!((SPHERICAL_EARTH.meridional_radius(lat) - 6_371_000.0).abs() < 1e-6);
        }
        assert_eq!(SPHERICAL_EARTH.e2(), 0.0);
    }

    #[test]
    fn curvature_radii_ordering() {
        // On an oblate ellipsoid N(φ) ≥ M(φ) everywhere, equality only at poles.
        for lat in [0.0, 0.3, 0.63, 1.0, 1.4] {
            let n = WGS84.prime_vertical_radius(lat);
            let m = WGS84.meridional_radius(lat);
            assert!(n >= m, "N={n} should be >= M={m} at lat={lat}");
        }
        // At the equator: N = a, M = a(1-e²).
        assert!((WGS84.prime_vertical_radius(0.0) - WGS84.semi_major_m).abs() < 1e-6);
        assert!(
            (WGS84.meridional_radius(0.0) - WGS84.semi_major_m * (1.0 - WGS84.e2())).abs() < 1e-6
        );
    }

    #[test]
    fn polar_radii() {
        // At the poles: N = M = a/sqrt(1-e²).
        let lat = std::f64::consts::FRAC_PI_2;
        let expect = WGS84.semi_major_m / (1.0 - WGS84.e2()).sqrt();
        assert!((WGS84.prime_vertical_radius(lat) - expect).abs() < 1e-6);
        assert!((WGS84.meridional_radius(lat) - expect).abs() < 1e-5);
    }
}
