//! Coordinate frame transforms: ECI ⇄ ECEF and the local ENU frame.
//!
//! - **ECI** (Earth-centred inertial, true-equator mean-equinox of date in
//!   our simplified model): the frame the Keplerian propagator outputs.
//! - **ECEF** (Earth-centred Earth-fixed): rotates with the planet; ground
//!   stations are fixed here.
//! - **ENU** (East-North-Up): the local topocentric frame of an observer,
//!   used for elevation/azimuth.
//!
//! The ECI→ECEF transform is a single rotation about +Z by GMST. Polar
//! motion and nutation are microradian-level effects that are irrelevant to
//! an optical link budget and are deliberately omitted (documented
//! substitution for STK's higher-fidelity frames).

use crate::ellipsoid::Ellipsoid;
use crate::geodetic::Geodetic;
use crate::time::Epoch;
use crate::vec3::Vec3;

/// Rotate an ECI position into ECEF at `epoch`.
#[inline]
pub fn eci_to_ecef(eci: Vec3, epoch: Epoch) -> Vec3 {
    eci.rotate_z(-epoch.gmst())
}

/// Rotate an ECEF position into ECI at `epoch`.
#[inline]
pub fn ecef_to_eci(ecef: Vec3, epoch: Epoch) -> Vec3 {
    ecef.rotate_z(epoch.gmst())
}

/// Velocity transform ECI → ECEF, accounting for frame rotation:
/// `v_ecef = R(v_eci) - ω × r_ecef`.
pub fn eci_to_ecef_velocity(r_eci: Vec3, v_eci: Vec3, epoch: Epoch) -> Vec3 {
    let omega = Vec3::new(0.0, 0.0, crate::time::EARTH_ROTATION_RATE);
    let r_ecef = eci_to_ecef(r_eci, epoch);
    let v_rot = eci_to_ecef(v_eci, epoch);
    v_rot - omega.cross(r_ecef)
}

/// The local East-North-Up topocentric frame anchored at an observer.
#[derive(Debug, Clone, Copy)]
pub struct Enu {
    /// Observer position in ECEF, metres.
    pub origin_ecef: Vec3,
    east: Vec3,
    north: Vec3,
    up: Vec3,
}

impl Enu {
    /// Build the ENU frame at a geodetic observer position.
    pub fn at(observer: Geodetic, ell: &Ellipsoid) -> Enu {
        let (slat, clat) = observer.lat.sin_cos();
        let (slon, clon) = observer.lon.sin_cos();
        Enu {
            origin_ecef: observer.to_ecef(ell),
            east: Vec3::new(-slon, clon, 0.0),
            north: Vec3::new(-slat * clon, -slat * slon, clat),
            up: Vec3::new(clat * clon, clat * slon, slat),
        }
    }

    /// Express an ECEF point in this ENU frame (east, north, up) metres.
    pub fn from_ecef(&self, point_ecef: Vec3) -> Vec3 {
        let d = point_ecef - self.origin_ecef;
        Vec3::new(d.dot(self.east), d.dot(self.north), d.dot(self.up))
    }

    /// Convert local ENU coordinates back to ECEF.
    pub fn to_ecef(&self, enu: Vec3) -> Vec3 {
        self.origin_ecef + self.east * enu.x + self.north * enu.y + self.up * enu.z
    }

    /// The local "up" direction in ECEF (unit vector).
    #[inline]
    pub fn up(&self) -> Vec3 {
        self.up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ellipsoid::WGS84;

    #[test]
    fn eci_ecef_roundtrip() {
        let epoch = Epoch::from_calendar(2024, 7, 1, 3, 30, 0.0);
        let r = Vec3::new(6_871_000.0, 123_456.0, -2_000_000.0);
        let back = ecef_to_eci(eci_to_ecef(r, epoch), epoch);
        assert!((back - r).norm() < 1e-6);
    }

    #[test]
    fn eci_ecef_preserves_norm_and_z() {
        let epoch = Epoch::J2000.plus_seconds(12_345.0);
        let r = Vec3::new(1.0e6, 2.0e6, 3.0e6);
        let e = eci_to_ecef(r, epoch);
        assert!((e.norm() - r.norm()).abs() < 1e-6);
        assert!((e.z - r.z).abs() < 1e-9);
    }

    #[test]
    fn enu_basis_is_orthonormal() {
        let enu = Enu::at(Geodetic::from_deg(36.0, -85.0, 300.0), &WGS84);
        assert!((enu.east.norm() - 1.0).abs() < 1e-12);
        assert!((enu.north.norm() - 1.0).abs() < 1e-12);
        assert!((enu.up.norm() - 1.0).abs() < 1e-12);
        assert!(enu.east.dot(enu.north).abs() < 1e-12);
        assert!(enu.east.dot(enu.up).abs() < 1e-12);
        assert!(enu.north.dot(enu.up).abs() < 1e-12);
        // Right-handed: east × north = up.
        assert!((enu.east.cross(enu.north) - enu.up).norm() < 1e-12);
    }

    #[test]
    fn point_straight_up_has_only_up_component() {
        let obs = Geodetic::from_deg(36.0, -85.0, 0.0);
        let enu = Enu::at(obs, &WGS84);
        let above = obs.with_alt(10_000.0).to_ecef(&WGS84);
        let local = enu.from_ecef(above);
        assert!(local.x.abs() < 1e-6, "east {}", local.x);
        assert!(local.y.abs() < 1e-6, "north {}", local.y);
        assert!((local.z - 10_000.0).abs() < 1e-6, "up {}", local.z);
    }

    #[test]
    fn enu_roundtrip() {
        let enu = Enu::at(Geodetic::from_deg(35.0, -84.0, 100.0), &WGS84);
        let p = Vec3::new(1_000.0, -2_500.0, 4_200.0);
        let back = enu.from_ecef(enu.to_ecef(p));
        assert!((back - p).norm() < 1e-6);
    }

    #[test]
    fn north_points_toward_higher_latitude() {
        let obs = Geodetic::from_deg(36.0, -85.0, 0.0);
        let enu = Enu::at(obs, &WGS84);
        let northward = Geodetic::from_deg(36.1, -85.0, 0.0).to_ecef(&WGS84);
        let local = enu.from_ecef(northward);
        assert!(local.y > 0.0);
        assert!(local.x.abs() < local.y * 0.01);
    }

    #[test]
    fn velocity_transform_cancels_rotation_for_geostationary_point() {
        // A point fixed in ECEF moves in ECI with v = ω × r; transforming
        // that velocity back to ECEF must give ~0.
        let epoch = Epoch::J2000;
        let r_ecef = Geodetic::from_deg(0.0, 10.0, 35_786_000.0).to_ecef(&WGS84);
        let r_eci = ecef_to_eci(r_ecef, epoch);
        let omega = Vec3::new(0.0, 0.0, crate::time::EARTH_ROTATION_RATE);
        let v_eci = omega.cross(r_eci);
        let v_ecef = eci_to_ecef_velocity(r_eci, v_eci, epoch);
        assert!(v_ecef.norm() < 1e-6, "{}", v_ecef.norm());
    }
}
