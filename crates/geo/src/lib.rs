//! # qntn-geo — geodesy and coordinate frames
//!
//! Foundation crate for the QNTN reproduction. Everything that turns
//! "a satellite at Keplerian elements X at time t" or "a ground node at
//! latitude/longitude Y" into distances, elevations and slant ranges lives
//! here:
//!
//! - [`vec3::Vec3`] — minimal 3-vector used throughout the workspace.
//! - [`ellipsoid`] — WGS-84 constants and a spherical-Earth fallback.
//! - [`geodetic::Geodetic`] — latitude/longitude/altitude positions and the
//!   geodetic ⇄ ECEF conversions (Bowring's method for the inverse).
//! - [`time`] — epoch handling and Greenwich Mean Sidereal Time (GMST),
//!   which defines the ECI ⇄ ECEF rotation.
//! - [`frames`] — ECI ⇄ ECEF rotation and the local East-North-Up (ENU)
//!   topocentric frame.
//! - [`look`] — look angles (elevation, azimuth) and slant range between an
//!   observer and a target; the FSO link budget is driven by these.
//! - [`distance`] — great-circle (haversine) and Vincenty geodesic
//!   distances used for fiber runs between ground nodes.
//!
//! All angles are radians and all lengths are metres unless a name says
//! otherwise (`_deg`, `_km`).

pub mod distance;
pub mod ellipsoid;
pub mod frames;
pub mod geodetic;
pub mod look;
pub mod time;
pub mod vec3;

pub use distance::{destination, haversine_m, vincenty_m};
pub use ellipsoid::{Ellipsoid, SPHERICAL_EARTH, WGS84};
pub use frames::{ecef_to_eci, eci_to_ecef, Enu};
pub use geodetic::Geodetic;
pub use look::{look_angles, LookAngles};
pub use time::{gmst_rad, Epoch};
pub use vec3::Vec3;

/// Convenience: degrees → radians.
#[inline]
pub fn deg2rad(deg: f64) -> f64 {
    deg.to_radians()
}

/// Convenience: radians → degrees.
#[inline]
pub fn rad2deg(rad: f64) -> f64 {
    rad.to_degrees()
}

/// Wrap an angle into `[0, 2π)`.
#[inline]
pub fn wrap_two_pi(angle: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut a = angle % two_pi;
    if a < 0.0 {
        a += two_pi;
    }
    a
}

/// Wrap an angle into `(-π, π]`.
#[inline]
pub fn wrap_pi(angle: f64) -> f64 {
    let mut a = wrap_two_pi(angle);
    if a > std::f64::consts::PI {
        a -= std::f64::consts::TAU;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_two_pi_basics() {
        assert!((wrap_two_pi(0.0) - 0.0).abs() < 1e-15);
        assert!((wrap_two_pi(std::f64::consts::TAU) - 0.0).abs() < 1e-12);
        assert!((wrap_two_pi(-0.1) - (std::f64::consts::TAU - 0.1)).abs() < 1e-12);
        assert!((wrap_two_pi(7.0) - (7.0 - std::f64::consts::TAU)).abs() < 1e-12);
    }

    #[test]
    fn wrap_pi_basics() {
        assert!((wrap_pi(std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-12);
        assert!((wrap_pi(-std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-12);
        assert!((wrap_pi(0.5) - 0.5).abs() < 1e-15);
        assert!((wrap_pi(-0.5) + 0.5).abs() < 1e-15);
    }

    #[test]
    fn deg_rad_roundtrip() {
        for d in [-180.0, -90.0, 0.0, 36.17, 90.0, 180.0, 360.0] {
            assert!((rad2deg(deg2rad(d)) - d).abs() < 1e-12);
        }
    }
}
