//! Property-based tests for the geodesy substrate.

use proptest::prelude::*;
use qntn_geo::{
    haversine_m, look_angles, vincenty_m, wrap_pi, wrap_two_pi, Enu, Geodetic, Vec3, WGS84,
};

fn lat_strategy() -> impl Strategy<Value = f64> {
    -89.0..89.0f64
}

fn lon_strategy() -> impl Strategy<Value = f64> {
    -180.0..180.0f64
}

proptest! {
    #[test]
    fn geodetic_ecef_roundtrip(lat in lat_strategy(), lon in lon_strategy(), alt in -5_000.0..1_000_000.0f64) {
        let g = Geodetic::from_deg(lat, lon, alt);
        let back = Geodetic::from_ecef_wgs84(g.to_ecef_wgs84());
        prop_assert!((back.lat_deg() - lat).abs() < 1e-8, "lat {} vs {}", back.lat_deg(), lat);
        prop_assert!((back.lon_deg() - lon).abs() < 1e-8);
        prop_assert!((back.alt_m - alt).abs() < 1e-3, "alt {} vs {}", back.alt_m, alt);
    }

    #[test]
    fn ecef_radius_bounds(lat in lat_strategy(), lon in lon_strategy()) {
        // Surface points lie between the polar and equatorial radii.
        let r = Geodetic::from_deg(lat, lon, 0.0).to_ecef_wgs84().norm();
        prop_assert!(r >= WGS84.semi_minor_m() - 1.0);
        prop_assert!(r <= WGS84.semi_major_m + 1.0);
    }

    #[test]
    fn haversine_is_symmetric_and_bounded(
        lat1 in lat_strategy(), lon1 in lon_strategy(),
        lat2 in lat_strategy(), lon2 in lon_strategy(),
    ) {
        let a = Geodetic::from_deg(lat1, lon1, 0.0);
        let b = Geodetic::from_deg(lat2, lon2, 0.0);
        let d_ab = haversine_m(a, b, &WGS84);
        let d_ba = haversine_m(b, a, &WGS84);
        prop_assert!((d_ab - d_ba).abs() < 1e-6);
        // No two surface points are farther than half the circumference.
        prop_assert!(d_ab <= std::f64::consts::PI * WGS84.mean_radius_m() + 1.0);
        prop_assert!(d_ab >= 0.0);
    }

    #[test]
    fn haversine_triangle_inequality(
        lat1 in lat_strategy(), lon1 in lon_strategy(),
        lat2 in lat_strategy(), lon2 in lon_strategy(),
        lat3 in lat_strategy(), lon3 in lon_strategy(),
    ) {
        let a = Geodetic::from_deg(lat1, lon1, 0.0);
        let b = Geodetic::from_deg(lat2, lon2, 0.0);
        let c = Geodetic::from_deg(lat3, lon3, 0.0);
        let ab = haversine_m(a, b, &WGS84);
        let bc = haversine_m(b, c, &WGS84);
        let ac = haversine_m(a, c, &WGS84);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn vincenty_close_to_haversine_regionally(
        lat1 in 34.0..37.0f64, lon1 in -86.0..-84.0f64,
        lat2 in 34.0..37.0f64, lon2 in -86.0..-84.0f64,
    ) {
        // Over Tennessee-scale baselines, the two distance models agree to
        // 0.5% (the fiber budget cannot resolve less).
        let a = Geodetic::from_deg(lat1, lon1, 0.0);
        let b = Geodetic::from_deg(lat2, lon2, 0.0);
        if let Some(v) = vincenty_m(a, b, &WGS84) {
            let h = haversine_m(a, b, &WGS84);
            if v > 1.0 {
                prop_assert!((h - v).abs() / v < 5e-3, "h {h} v {v}");
            }
        }
    }

    #[test]
    fn wrap_functions_land_in_range(x in -100.0..100.0f64) {
        let w2 = wrap_two_pi(x);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&w2));
        let wp = wrap_pi(x);
        prop_assert!(wp > -std::f64::consts::PI - 1e-12 && wp <= std::f64::consts::PI + 1e-12);
        // Both preserve the angle modulo 2π.
        prop_assert!(((x - w2) / std::f64::consts::TAU).rem_euclid(1.0) < 1e-9
            || ((x - w2) / std::f64::consts::TAU).rem_euclid(1.0) > 1.0 - 1e-9);
    }

    #[test]
    fn enu_roundtrip(
        lat in lat_strategy(), lon in lon_strategy(),
        e in -50_000.0..50_000.0f64, n in -50_000.0..50_000.0f64, u in -1_000.0..500_000.0f64,
    ) {
        let frame = Enu::at(Geodetic::from_deg(lat, lon, 100.0), &WGS84);
        let p = Vec3::new(e, n, u);
        let back = frame.from_ecef(frame.to_ecef(p));
        prop_assert!((back - p).norm() < 1e-6);
    }

    #[test]
    fn look_angles_ranges(
        lat in lat_strategy(), lon in lon_strategy(),
        dlat in -5.0..5.0f64, dlon in -5.0..5.0f64, alt in 1_000.0..2_000_000.0f64,
    ) {
        let obs = Geodetic::from_deg(lat, lon, 0.0);
        let tgt = Geodetic::from_deg(
            (lat + dlat).clamp(-89.0, 89.0),
            lon + dlon,
            alt,
        );
        let la = look_angles(obs, tgt, &WGS84);
        prop_assert!(la.elevation.abs() <= std::f64::consts::FRAC_PI_2 + 1e-9);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&la.azimuth));
        prop_assert!(la.range_m > 0.0);
        // Slant range at least the altitude difference.
        prop_assert!(la.range_m >= (alt - 0.0) - 1.0 || la.range_m >= 0.0);
        // Zenith is the complement of elevation.
        prop_assert!((la.zenith() + la.elevation - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn vec3_rotation_preserves_norm(
        x in -1e6..1e6f64, y in -1e6..1e6f64, z in -1e6..1e6f64, angle in -10.0..10.0f64,
    ) {
        let v = Vec3::new(x, y, z);
        for r in [v.rotate_x(angle), v.rotate_y(angle), v.rotate_z(angle)] {
            prop_assert!((r.norm() - v.norm()).abs() < 1e-6 * v.norm().max(1.0));
        }
    }

    #[test]
    fn vec3_cross_is_orthogonal(
        ax in -10.0..10.0f64, ay in -10.0..10.0f64, az in -10.0..10.0f64,
        bx in -10.0..10.0f64, by in -10.0..10.0f64, bz in -10.0..10.0f64,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-9 * (a.norm() * b.norm()).max(1.0));
        prop_assert!(c.dot(b).abs() < 1e-9 * (a.norm() * b.norm()).max(1.0));
        // Lagrange identity: |a×b|² + (a·b)² = |a|²|b|².
        let lhs = c.norm_sq() + a.dot(b).powi(2);
        let rhs = a.norm_sq() * b.norm_sq();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.max(1.0));
    }
}
