//! Diagnostics: what a rule reports and how it renders.

use std::fmt;

/// One rule violation, pointing at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Stable rule identifier (e.g. `atomic-writes-only`).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    /// The machine-readable format CI greps:
    /// `file:line:col: [rule-id] message` followed by an indented snippet.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )?;
        write!(f, "    | {}", self.snippet)
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as the stable machine-readable JSON document the
/// `--format json` flag emits. Key order, separators and the trailing
/// newline are all fixed, so two runs over the same tree produce
/// byte-identical output (pinned by `tests/cli.rs`).
pub fn render_json(diags: &[Diagnostic], suppressed: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"qntn-lint\",\n");
    out.push_str(&format!(
        "  \"rule_count\": {},\n",
        crate::rules::RULES.len()
    ));
    out.push_str(&format!("  \"violation_count\": {},\n", diags.len()));
    out.push_str(&format!("  \"suppressed\": {suppressed},\n"));
    out.push_str("  \"violations\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.col,
            d.rule,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_grep_format() {
        let d = Diagnostic {
            file: "crates/net/src/x.rs".into(),
            line: 12,
            col: 5,
            rule: "atomic-writes-only",
            message: "artifact writes must go through qntn_common::atomic_write".into(),
            snippet: "fs::write(path, bytes)?;".into(),
        };
        let text = d.to_string();
        assert!(text.starts_with("crates/net/src/x.rs:12:5: [atomic-writes-only] "));
        assert!(text.ends_with("    | fs::write(path, bytes)?;"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let d = Diagnostic {
            file: "crates/net/src/x.rs".into(),
            line: 3,
            col: 7,
            rule: "unit-safety",
            message: "a \"quoted\" message".into(),
            snippet: String::new(),
        };
        let one = render_json(std::slice::from_ref(&d), 2);
        let two = render_json(&[d], 2);
        assert_eq!(one, two, "same input renders byte-identically");
        assert!(one.contains("\"violation_count\": 1"));
        assert!(one.contains("\"suppressed\": 2"));
        assert!(one.contains("a \\\"quoted\\\" message"));
        assert!(one.ends_with("}\n"));
    }

    #[test]
    fn json_empty_violations_render_as_empty_array() {
        let text = render_json(&[], 0);
        assert!(text.contains("\"violations\": []"));
    }
}
