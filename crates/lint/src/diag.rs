//! Diagnostics: what a rule reports and how it renders.

use std::fmt;

/// One rule violation, pointing at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Stable rule identifier (e.g. `atomic-writes-only`).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    /// The machine-readable format CI greps:
    /// `file:line:col: [rule-id] message` followed by an indented snippet.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )?;
        write!(f, "    | {}", self.snippet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_grep_format() {
        let d = Diagnostic {
            file: "crates/net/src/x.rs".into(),
            line: 12,
            col: 5,
            rule: "atomic-writes-only",
            message: "artifact writes must go through qntn_common::atomic_write".into(),
            snippet: "fs::write(path, bytes)?;".into(),
        };
        let text = d.to_string();
        assert!(text.starts_with("crates/net/src/x.rs:12:5: [atomic-writes-only] "));
        assert!(text.ends_with("    | fs::write(path, bytes)?;"));
    }
}
