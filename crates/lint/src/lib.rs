//! `qntn-lint` — the in-workspace architectural linter.
//!
//! PRs 3 and 4 established invariants this reproduction's correctness
//! rests on; this crate makes them *mechanical* instead of conventional.
//! `cargo lint` (alias for `cargo run -p qntn-lint`) scans the workspace
//! and fails the build when any of the enforced invariants regresses:
//!
//! - [`rules::single_materializer`] — only
//!   `qntn_net::pipeline::build_topology_into` materializes per-step
//!   topology;
//! - [`rules::atomic_writes`] — every artifact write goes through
//!   `qntn_common::atomic_write`;
//! - [`rules::no_panic_bins`] — workspace binaries are panic-free;
//! - [`rules::determinism`] — sweep/pipeline hot paths read no wall clock
//!   and iterate no unordered maps;
//! - [`rules::layering`] — crate dependency edges point strictly down the
//!   common → geo/quantum → orbit → channel/routing → net → core → bench
//!   stack.
//!
//! On top of the pattern rules sits a lightweight *semantic* layer: a
//! brace-tree parser ([`parse`]) recovering delimiter nesting, `fn`
//! signatures, `use` imports and closures from the masked token stream,
//! and a scoped symbol table ([`symbols`]) resolving identifier uses to
//! binding sites. Five semantic rules walk that structure:
//!
//! - [`rules::unit_safety`] — dB values never mix with linear η;
//! - [`rules::typed_index`] — `HostId`/`SatId`/`StepId` never cross-index;
//! - [`rules::float_reduction`] — no order-sensitive f64 reductions on
//!   parallel chains in the hot paths;
//! - [`rules::rayon_capture`] — `par_*` closures own their mutable state;
//! - [`rules::result_swallow`] — library code never drops a `Result`.
//!
//! Pattern rules never fire inside comments or string/char/raw-string
//! literals: [`lexer`] masks those before any matching happens, and the
//! property suite in `tests/` hammers exactly that boundary. Intentional
//! exceptions are annotated in-source with
//! `// qntn-lint: allow(<rule>) -- <reason>` ([`pragma`]); an unexplained
//! or misspelled pragma is itself a diagnostic.
//!
//! The crate has zero runtime dependencies on purpose: it must build in
//! the offline vendored workspace, and a CI gate should be trivially
//! auditable. See DESIGN.md §11 and §16 for the full rule contract and
//! how to add a rule.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod parse;
pub mod pragma;
pub mod rules;
pub mod symbols;

pub use diag::Diagnostic;
pub use engine::{lint_source, lint_workspace, lint_workspace_outcome, LintOutcome};
