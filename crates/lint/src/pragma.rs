//! The allowlist pragma: `// qntn-lint: allow(<rule>) -- <reason>`.
//!
//! A pragma suppresses one rule at a narrow scope, and **must** carry a
//! reason after ` -- ` — an allowlist entry nobody can explain is itself a
//! defect. Two scopes exist:
//!
//! - `allow(<rule>)` — suppresses the rule on the pragma's own line and on
//!   the line immediately following it (so it works both as a trailing
//!   annotation and as a standalone line above the offending statement);
//! - `allow-file(<rule>)` — suppresses the rule for the whole file. Meant
//!   for the rare file that *implements* an invariant (e.g. the one
//!   `File::create` inside `qntn_common::atomic_write` itself).
//!
//! Malformed pragmas (unknown rule id, missing reason) are reported as
//! `bad-pragma` diagnostics rather than silently ignored: a typo must not
//! quietly re-arm or disarm a rule.

use crate::diag::Diagnostic;
use crate::lexer::Comment;

const PREFIX: &str = "qntn-lint:";

/// Parsed suppression table for one file.
#[derive(Debug, Default)]
pub struct Pragmas {
    /// (rule, line) pairs: rule suppressed on `line` and `line + 1`.
    line_allows: Vec<(String, usize)>,
    /// Rules suppressed for the whole file.
    file_allows: Vec<String>,
    /// Malformed pragmas found while parsing.
    pub errors: Vec<(usize, String)>,
}

impl Pragmas {
    /// Parse every `qntn-lint:` pragma out of a file's comments.
    /// `known_rules` validates the rule ids.
    pub fn parse(comments: &[Comment], known_rules: &[&str]) -> Pragmas {
        let mut p = Pragmas::default();
        for c in comments {
            let body = c
                .text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_start();
            let Some(rest) = body.strip_prefix(PREFIX) else {
                continue;
            };
            let rest = rest.trim();
            let (directive, reason) = match rest.split_once("--") {
                Some((d, r)) => (d.trim(), r.trim()),
                None => {
                    p.errors.push((
                        c.line,
                        "pragma needs a reason: `qntn-lint: allow(<rule>) -- <reason>`".into(),
                    ));
                    continue;
                }
            };
            if reason.is_empty() {
                p.errors
                    .push((c.line, "pragma reason after `--` is empty".into()));
                continue;
            }
            let (scope, rule) = match parse_directive(directive) {
                Some(pair) => pair,
                None => {
                    p.errors.push((
                        c.line,
                        format!("unrecognized pragma directive `{directive}`"),
                    ));
                    continue;
                }
            };
            if !known_rules.contains(&rule) {
                p.errors
                    .push((c.line, format!("unknown rule `{rule}` in pragma")));
                continue;
            }
            match scope {
                Scope::Line => p.line_allows.push((rule.to_string(), c.line)),
                Scope::File => p.file_allows.push(rule.to_string()),
            }
        }
        p
    }

    /// Is `rule` suppressed at `line`?
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.file_allows.iter().any(|r| r == rule)
            || self
                .line_allows
                .iter()
                .any(|(r, l)| r == rule && (line == *l || line == *l + 1))
    }

    /// Render parse errors as diagnostics for `file`.
    pub fn error_diagnostics(&self, file: &str, src: &str) -> Vec<Diagnostic> {
        self.errors
            .iter()
            .map(|(line, message)| Diagnostic {
                file: file.to_string(),
                line: *line,
                col: 1,
                rule: "bad-pragma",
                message: message.clone(),
                snippet: src
                    .lines()
                    .nth(line - 1)
                    .unwrap_or_default()
                    .trim()
                    .to_string(),
            })
            .collect()
    }
}

enum Scope {
    Line,
    File,
}

fn parse_directive(directive: &str) -> Option<(Scope, &str)> {
    let inner = |prefix: &str| -> Option<&str> {
        directive
            .strip_prefix(prefix)?
            .trim()
            .strip_prefix('(')?
            .strip_suffix(')')
            .map(str::trim)
    };
    if directive.starts_with("allow-file") {
        inner("allow-file").map(|r| (Scope::File, r))
    } else if directive.starts_with("allow") {
        inner("allow").map(|r| (Scope::Line, r))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    const RULES: &[&str] = &["atomic-writes-only", "no-panic-bins"];

    fn parse(src: &str) -> Pragmas {
        Pragmas::parse(&scan(src).comments, RULES)
    }

    #[test]
    fn trailing_pragma_covers_its_line_and_the_next() {
        let p = parse("x(); // qntn-lint: allow(no-panic-bins) -- test knob\ny();\nz();\n");
        assert!(p.allows("no-panic-bins", 1));
        assert!(p.allows("no-panic-bins", 2));
        assert!(!p.allows("no-panic-bins", 3));
        assert!(!p.allows("atomic-writes-only", 1));
        assert!(p.errors.is_empty());
    }

    #[test]
    fn standalone_pragma_covers_the_following_line() {
        let p = parse(
            "// qntn-lint: allow(atomic-writes-only) -- corrupt-frame fixture\nfs::write(a, b);\n",
        );
        assert!(p.allows("atomic-writes-only", 2));
        assert!(!p.allows("atomic-writes-only", 3));
    }

    #[test]
    fn file_pragma_covers_everything() {
        let p = parse("//! docs\n// qntn-lint: allow-file(atomic-writes-only) -- implements atomic_write\nfn f() {}\n");
        assert!(p.allows("atomic-writes-only", 1));
        assert!(p.allows("atomic-writes-only", 999));
        assert!(!p.allows("no-panic-bins", 1));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let p = parse("// qntn-lint: allow(no-panic-bins)\nx();\n");
        assert_eq!(p.errors.len(), 1);
        assert!(
            !p.allows("no-panic-bins", 2),
            "malformed pragma must not disarm the rule"
        );
    }

    #[test]
    fn empty_reason_is_an_error() {
        let p = parse("// qntn-lint: allow(no-panic-bins) --   \nx();\n");
        assert_eq!(p.errors.len(), 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let p = parse("// qntn-lint: allow(no-such-rule) -- why\n");
        assert_eq!(p.errors.len(), 1);
        assert!(p.errors[0].1.contains("no-such-rule"));
    }

    #[test]
    fn unrecognized_directive_is_an_error() {
        let p = parse("// qntn-lint: deny(no-panic-bins) -- nope\n");
        assert_eq!(p.errors.len(), 1);
    }

    #[test]
    fn pragma_inside_string_literal_is_inert() {
        let p = parse("let s = \"// qntn-lint: allow(no-panic-bins) -- fake\";\nx.unwrap();\n");
        assert!(!p.allows("no-panic-bins", 2));
        assert!(p.errors.is_empty());
    }

    #[test]
    fn error_diagnostics_render() {
        let src = "// qntn-lint: allow(no-panic-bins)\n";
        let p = parse(src);
        let d = p.error_diagnostics("crates/x/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad-pragma");
        assert_eq!(d[0].line, 1);
    }
}
