//! `determinism` — sweep/pipeline hot paths are bit-deterministic.
//!
//! The workspace's headline contract is that sweep results are
//! bit-identical across naive/engine, clean/identity-faulted,
//! sequential/parallel and interrupted/resumed executions
//! (`tests/pipeline_goldens.rs`, `tests/resilience.rs`). That only holds
//! while the hot paths stay free of three classic nondeterminism sources:
//!
//! - wall-clock reads (`Instant::now`, `SystemTime::now`) feeding results;
//! - `HashMap`/`HashSet`, whose iteration order is unspecified — folding
//!   one into a float accumulation reorders additions and changes bits;
//! - entropy-seeded RNGs (`thread_rng`, `from_entropy`) instead of the
//!   workspace's explicit-seed models.
//!
//! The rule scans the per-step pipeline, the sweep engine, the resilient
//! runtime, the fault compiler, the link evaluator and the experiment
//! drivers. Analysis-side modules (event censuses, snapshots) may keep
//! hash maps; wall-clock use stays legal in `qntn_common::control`
//! (deadlines are *about* wall time) and in the bench harness (measuring
//! wall time is its job) — none of which are in scope.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub const ID: &str = "determinism";

const MESSAGE: &str = "sweep/pipeline hot paths must be bit-deterministic: \
     no wall-clock reads, no HashMap/HashSet (unspecified iteration order), \
     no entropy-seeded RNGs; use explicit seeds and ordered/indexed storage";

/// The files whose outputs the bit-identity contracts cover.
const HOT_PATHS: &[&str] = &[
    "crates/net/src/pipeline.rs",
    "crates/net/src/sweep_engine.rs",
    "crates/net/src/runtime.rs",
    "crates/net/src/faults.rs",
    "crates/net/src/linkeval.rs",
    "crates/orbit/src/spatial.rs",
    "crates/channel/src/fso.rs",
    "crates/serve/src/serve.rs",
    "crates/serve/src/admission.rs",
    "crates/serve/src/request.rs",
    "crates/serve/src/hold.rs",
    "crates/serve/src/overload.rs",
    "crates/serve/src/workload.rs",
    "crates/routing/src/timexp.rs",
    "crates/quantum/src/memory.rs",
];

/// Hot-path scope shared with the `float-reduction` rule.
pub(crate) fn in_scope(rel: &str) -> bool {
    HOT_PATHS.contains(&rel) || rel.starts_with("crates/core/src/experiments/")
}

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !in_scope(ctx.rel) || ctx.is_test_file() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pattern in [
        &["Instant", ":", ":", "now"][..],
        &["SystemTime", ":", ":", "now"],
        &["HashMap"],
        &["HashSet"],
        &["thread_rng"],
        &["from_entropy"],
    ] {
        out.extend(ctx.hits(pattern, ID, MESSAGE));
    }
    out.retain(|d| !ctx.is_test_line(d.line));
    out
}
