//! `unit-safety` — dB values and linear η never mix silently.
//!
//! The link budget lives in two representations: logarithmic dB (losses,
//! `qntn_channel::units::linear_to_db`, `*_db` accessors) and linear
//! transmittance η ∈ [0, 1] (everything the routing metric multiplies).
//! Multiplying a dB figure into an η product, or handing a dB value to an
//! η-named parameter, is the classic silent unit bug: the code compiles,
//! the sweep runs, and every SLO report is wrong by orders of magnitude.
//!
//! The rule tracks, per function, which locals are **dB-tainted** (bound
//! from a `*_db` call, or themselves `*_db`-named) and flags three flows:
//!
//! - a dB value multiplied with an η-named identifier (either side);
//! - a dB value passed bare as an argument whose same-file parameter is
//!   η-named (and the reverse: an η identifier into a `*_db`/`db` param);
//! - an η-named binding initialized from a dB call or dB-tainted local.
//!
//! The conversion functions are the escape hatch: anything inside a
//! `db_to_linear(…)` argument list is a legitimate crossing and is never
//! flagged. η-naming means a whole `eta` word segment (`eta`, `eta_up`,
//! `mean_eta` — not `beta` or `meta`), so the rule cannot fire on
//! unrelated Greek.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::parse::DelimKind;

pub const ID: &str = "unit-safety";

const MESSAGE: &str = "dB and linear-eta values must not mix: convert with \
     qntn_channel::units::db_to_linear / linear_to_db at the boundary \
     instead of letting a dB figure flow into an eta expression";

/// Does the name carry a whole `eta` segment?
pub(crate) fn is_eta_name(name: &str) -> bool {
    name.split('_').any(|seg| seg == "eta")
}

/// Is the name dB-flavored (`loss_db`, `linear_to_db`, bare `db`)?
pub(crate) fn is_db_name(name: &str) -> bool {
    name == "db" || name.ends_with("_db")
}

/// Is `tok` inside the argument list of a `db_to_linear(...)` call (the
/// blessed dB → η conversion point)?
fn in_conversion(ctx: &FileCtx<'_>, tok: usize) -> bool {
    let mut node = ctx.tree.enclosing(tok);
    loop {
        let n = ctx.tree.node(node);
        if n.kind == DelimKind::Paren && n.open > 0 && ctx.tokens.text(n.open - 1) == "db_to_linear"
        {
            return true;
        }
        if n.parent == node {
            return false;
        }
        node = n.parent;
    }
}

/// Is the identifier at `tok` dB-valued — by name, or by resolving to a
/// binding whose initializer contains a `*_db` call outside a conversion?
fn is_db_value(ctx: &FileCtx<'_>, tok: usize) -> bool {
    let name = ctx.tokens.text(tok);
    if is_db_name(name) {
        return true;
    }
    let Some(b) = ctx
        .symbols
        .resolve(ctx.tree, name, tok, ctx.tree.enclosing(tok))
    else {
        return false;
    };
    init_has_db_source(ctx, b.init)
}

/// Does the token range contain a `*_db` call (or a dB-named identifier)
/// outside a `db_to_linear` conversion?
fn init_has_db_source(ctx: &FileCtx<'_>, range: (usize, usize)) -> bool {
    (range.0..range.1).any(|m| {
        ctx.tokens.toks().get(m).is_some_and(|t| t.is_ident)
            && is_db_name(ctx.tokens.text(m))
            && !in_conversion(ctx, m)
    })
}

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if ctx.is_test_file() {
        return Vec::new();
    }
    let tv = ctx.tokens;
    let n = tv.toks().len();
    let mut out = Vec::new();
    let mut flag = |tok: usize, detail: String| {
        let (line, col) = ctx.scan.position(tv.toks()[tok].start);
        out.push(Diagnostic {
            file: ctx.rel.to_string(),
            line,
            col,
            rule: ID,
            message: format!("{MESSAGE} ({detail})"),
            snippet: ctx.scan.line_text(ctx.src, line).trim().to_string(),
        });
    };

    // Multiplication mixing: `a * b` with one dB side and one η side.
    for m in 1..n.saturating_sub(1) {
        if tv.text(m) != "*" || tv.text(m + 1) == "=" {
            continue;
        }
        let (l, r) = (m - 1, m + 1);
        if !tv.toks()[l].is_ident || !tv.toks()[r].is_ident {
            continue;
        }
        let (lt, rt) = (tv.text(l), tv.text(r));
        let db_side = if is_db_value(ctx, l) && is_eta_name(rt) {
            Some((l, lt, rt))
        } else if is_db_value(ctx, r) && is_eta_name(lt) {
            Some((r, rt, lt))
        } else {
            None
        };
        if let Some((tok, db, eta)) = db_side {
            if !in_conversion(ctx, tok) {
                flag(tok, format!("dB value `{db}` multiplied with eta `{eta}`"));
            }
        }
    }

    // Argument mixing against same-file signatures: a dB identifier into
    // an η-named parameter, or an η identifier into a dB-named parameter.
    for f in ctx.fns {
        for call_tok in find_calls(ctx, &f.name) {
            let pnode = ctx.tree.enclosing(call_tok + 1);
            for (k, arg_tok) in bare_ident_args(ctx, pnode) {
                let Some(param) = f.params.get(k) else {
                    continue;
                };
                let arg = tv.text(arg_tok);
                if is_eta_name(&param.name) && is_db_value(ctx, arg_tok) && !is_eta_name(arg) {
                    flag(
                        arg_tok,
                        format!("dB value `{arg}` passed to eta parameter `{}`", param.name),
                    );
                } else if is_db_name(&param.name) && is_eta_name(arg) {
                    flag(
                        arg_tok,
                        format!("eta value `{arg}` passed to dB parameter `{}`", param.name),
                    );
                }
            }
        }
    }

    // Binding mixing: an η-named binding fed from a dB source, or a
    // dB-named binding aliasing an η identifier.
    for b in ctx.symbols.bindings() {
        if b.init.1 <= b.init.0 {
            continue;
        }
        if is_eta_name(&b.name) && init_has_db_source(ctx, b.init) {
            flag(
                b.tok,
                format!("eta binding `{}` initialized from a dB source", b.name),
            );
        } else if is_db_name(&b.name)
            && b.init.1 - b.init.0 == 1
            && tv.toks()[b.init.0].is_ident
            && is_eta_name(tv.text(b.init.0))
        {
            flag(
                b.tok,
                format!("dB binding `{}` aliases an eta value", b.name),
            );
        }
    }

    out.sort_by_key(|d| (d.line, d.col));
    out.dedup();
    out.retain(|d| !ctx.is_test_line(d.line));
    out
}

/// Token indices of every call site `name(` in the file.
fn find_calls(ctx: &FileCtx<'_>, name: &str) -> Vec<usize> {
    let tv = ctx.tokens;
    (0..tv.toks().len().saturating_sub(1))
        .filter(|&m| tv.toks()[m].is_ident && tv.text(m) == name && tv.text(m + 1) == "(")
        .collect()
}

/// `(position, token)` of every top-level argument that is a single bare
/// identifier (multi-token arguments are skipped — only a direct flow is
/// judged).
fn bare_ident_args(ctx: &FileCtx<'_>, pnode: usize) -> Vec<(usize, usize)> {
    let tv = ctx.tokens;
    let node = ctx.tree.node(pnode);
    if node.kind != DelimKind::Paren {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut seg: Vec<usize> = Vec::new();
    for m in node.open + 1..node.close.min(tv.toks().len()) {
        if ctx.tree.enclosing(m) == pnode && tv.text(m) == "," {
            if let [only] = seg[..] {
                if tv.toks()[only].is_ident {
                    out.push((pos, only));
                }
            }
            pos += 1;
            seg.clear();
        } else {
            seg.push(m);
        }
    }
    if let [only] = seg[..] {
        if tv.toks()[only].is_ident {
            out.push((pos, only));
        }
    }
    out
}
