//! `single-materializer` — one function materializes per-step topology.
//!
//! PR 3 collapsed four per-step graph builders into the Scene → LinkMap →
//! Topology pipeline so the engine ≡ naive determinism contract holds *by
//! construction*: there is exactly one code path that turns positions and
//! η into a `Graph`, `qntn_net::pipeline::build_topology_into`. A second
//! edge-insertion site in the per-step layer would silently fork that
//! contract (insertion order decides routing tie-breaks), so this rule
//! flags any `set_edge` / `remove_edge` call in non-test `qntn-net` /
//! `qntn-core` code outside the pipeline module itself. The time-expanded
//! layer (PR 8) has the same invariant one level up: `begin_layer` /
//! `push_link` / `push_hold` construct time-expanded graphs, and only the
//! pipeline's `build_time_expanded_into` may call them — a second builder
//! would fork the canonical layer/edge emission order the zero-horizon
//! differential contract depends on.
//!
//! Test code is exempt (tests build ad-hoc graphs on purpose), as is
//! `qntn-routing`, which owns the `Graph` type and mutates it freely —
//! the invariant governs the *per-step simulation* layers that consume it.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub const ID: &str = "single-materializer";

const MESSAGE: &str = "per-step topology edges are inserted only by \
     qntn_net::pipeline::build_topology_into; route new graph construction \
     through the Scene -> LinkMap -> Topology pipeline";

fn in_scope(rel: &str) -> bool {
    (rel.starts_with("crates/net/src/") || rel.starts_with("crates/core/src/"))
        && rel != "crates/net/src/pipeline.rs"
}

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !in_scope(ctx.rel) || ctx.is_test_file() {
        return Vec::new();
    }
    let mut out = ctx.hits(&[".", "set_edge", "("], ID, MESSAGE);
    out.extend(ctx.hits(&[".", "remove_edge", "("], ID, MESSAGE));
    out.extend(ctx.hits(&[".", "begin_layer", "("], ID, MESSAGE));
    out.extend(ctx.hits(&[".", "push_link", "("], ID, MESSAGE));
    out.extend(ctx.hits(&[".", "push_hold", "("], ID, MESSAGE));
    out.retain(|d| !ctx.is_test_line(d.line));
    out
}
