//! `no-panic-bins` — workspace binaries never panic.
//!
//! The `reproduce` binary promises a structured exit-code contract
//! (0/2/3/4/5/6, DESIGN.md §10): every failure path returns a `QntnError`
//! and maps to a code, so scripts and the nightly crash-resume smoke can
//! rely on what a nonzero status *means*. A stray `unwrap()` breaks that
//! promise with an uninformative abort. This rule holds every file under
//! a `src/bin/` directory — current and future binaries alike — to the
//! bar the in-source `clippy::unwrap_used` attributes used to set for
//! `reproduce` alone.
//!
//! Deliberate panics (the crash-injection test knob) carry an allow
//! pragma naming their reason.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub const ID: &str = "no-panic-bins";

const MESSAGE: &str = "binaries are panic-free: return QntnError and let \
     main() map it onto the exit-code contract instead of panicking";

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !ctx.rel.contains("/src/bin/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pattern in [
        &[".", "unwrap", "(", ")"][..],
        &[".", "expect", "("],
        &["panic", "!"],
        &["todo", "!"],
        &["unimplemented", "!"],
    ] {
        out.extend(ctx.hits(pattern, ID, MESSAGE));
    }
    out.retain(|d| !ctx.is_test_line(d.line));
    out
}
