//! `atomic-writes-only` — artifacts reach disk through `atomic_write`.
//!
//! PR 4 made every artifact write in the workspace go through the one
//! write-temp → fsync → rename helper, `qntn_common::atomic_write`, so a
//! crash mid-run can never leave a torn CSV/JSON/checkpoint behind. This
//! rule keeps it that way: any direct `fs::write`, `File::create`,
//! `File::options` or `OpenOptions` in the workspace is flagged —
//! including in tests, because a test helper that writes a fixture
//! non-atomically is *usually* fine but must say so with an allow pragma
//! and a reason (e.g. "deliberately corrupt frame for a rejection test").
//!
//! `atomic_write` itself carries the one legitimate `File::create` in the
//! tree, annotated with `allow-file` where it is implemented.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub const ID: &str = "atomic-writes-only";

const MESSAGE: &str = "artifact bytes must reach disk through \
     qntn_common::atomic_write (write-temp -> fsync -> rename); direct \
     file creation risks torn artifacts on crash";

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for pattern in [
        &["fs", ":", ":", "write"][..],
        &["File", ":", ":", "create"],
        &["File", ":", ":", "options"],
        &["OpenOptions", ":", ":", "new"],
    ] {
        out.extend(ctx.hits(pattern, ID, MESSAGE));
    }
    out
}
