//! `rayon-capture` — worker closures own their mutable state.
//!
//! A closure handed to a `par_*` adapter runs concurrently. Capturing a
//! `&mut` to an outer binding in one either fails to compile (rayon wants
//! `Fn`/`Sync`) or — with interior mutability via `RefCell`/`Cell` —
//! compiles and then panics or races at runtime, nondeterministically.
//! Both patterns have shown up in review on the serve/overload hot paths;
//! this rule rejects them before a human has to.
//!
//! Candidates are exactly the closures passed *directly* in the parallel
//! call's argument list: the closure's enclosing paren must hang off the
//! same node as the `par_*` token itself. That structural restriction is
//! what exempts the blessed `map_steps` shape — its inner per-chunk
//! closure takes `&mut scratch` of a binding created *inside* the outer
//! worker closure, which is per-worker state and perfectly safe. Two
//! checks fire on a candidate body:
//!
//! - `&mut name` where `name` resolves to a binding declared outside the
//!   closure (and is not a closure parameter);
//! - a use of an outer binding whose type or constructor ends in `Cell`
//!   (`RefCell`, `Cell`, `OnceCell`, `UnsafeCell`).
//!
//! Unresolvable names never fire, and per-(closure, name) deduplication
//! keeps one diagnostic per offending capture.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::parse::{Closure, DelimKind};

pub const ID: &str = "rayon-capture";

const MESSAGE: &str = "closures passed to par_* must not capture &mut of an outer \
     binding or a RefCell/Cell: give each worker its own state (bind the \
     scratch inside the worker closure) or reduce with map/collect";

/// The rayon adapters whose closure arguments run concurrently.
const PAR_ADAPTERS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
];

/// Does the binding's type annotation or initializer name an interior-
/// mutability cell (`RefCell`, `Cell`, `OnceCell`, `UnsafeCell`)?
fn is_cell_binding(b: &crate::symbols::Binding, tv: &crate::lexer::TokenView<'_>) -> bool {
    b.mentions(tv, |t| t.ends_with("Cell"))
}

/// Names bound *inside* the closure: its parameters, bindings whose site
/// is in the body range, and any nested closure's parameters.
fn inner_names(ctx: &FileCtx<'_>, c: &Closure) -> Vec<String> {
    let mut names: Vec<String> = c.params.clone();
    for b in ctx.symbols.bindings() {
        if c.contains(b.tok) {
            names.push(b.name.clone());
        }
    }
    for other in ctx.closures {
        if other.start != c.start && c.contains(other.start) {
            names.extend(other.params.iter().cloned());
        }
    }
    names
}

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if ctx.is_test_file() {
        return Vec::new();
    }
    let tv = ctx.tokens;
    let n = tv.toks().len();
    let mut out = Vec::new();
    for p in 0..n {
        if !tv.toks()[p].is_ident || !PAR_ADAPTERS.contains(&tv.text(p)) {
            continue;
        }
        let chain_node = ctx.tree.enclosing(p);
        let (_, stmt_end) = ctx.tree.stmt_range(tv, p);
        for c in ctx.closures {
            if c.start <= p || c.start >= stmt_end {
                continue;
            }
            // Passed directly in the parallel chain: the closure's paren
            // hangs off the chain's own node. Nested worker-internal
            // closures hang deeper and are exempt.
            let paren = ctx.tree.node(c.node);
            if paren.kind != DelimKind::Paren || paren.parent != chain_node {
                continue;
            }
            check_closure(ctx, c, &mut out);
        }
    }
    out.sort_by_key(|d| (d.line, d.col));
    out.dedup();
    out
}

fn check_closure(ctx: &FileCtx<'_>, c: &Closure, out: &mut Vec<Diagnostic>) {
    let tv = ctx.tokens;
    let inner = inner_names(ctx, c);
    let mut seen: Vec<&str> = Vec::new();
    let flag = |tok: usize, detail: String, out: &mut Vec<Diagnostic>| {
        let (line, col) = ctx.scan.position(tv.toks()[tok].start);
        if ctx.is_test_line(line) {
            return;
        }
        out.push(Diagnostic {
            file: ctx.rel.to_string(),
            line,
            col,
            rule: ID,
            message: format!("{MESSAGE} ({detail})"),
            snippet: ctx.scan.line_text(ctx.src, line).trim().to_string(),
        });
    };
    for m in c.body.0..c.body.1.min(tv.toks().len()) {
        if !tv.toks()[m].is_ident {
            continue;
        }
        let name = tv.text(m);
        if inner.iter().any(|i| i == name) || seen.contains(&name) {
            continue;
        }
        // A field access or path segment is not a capture of `name`.
        if m > 0 && matches!(tv.text(m - 1), "." | ":") {
            continue;
        }
        let Some(b) = ctx
            .symbols
            .resolve(ctx.tree, name, m, ctx.tree.enclosing(m))
        else {
            continue;
        };
        // Outer = bound before the closure starts, outside its body.
        if c.contains(b.tok) {
            continue;
        }
        let is_mut_ref = m >= 2 && tv.text(m - 1) == "mut" && tv.text(m - 2) == "&";
        if is_mut_ref {
            seen.push(name);
            flag(m, format!("`&mut {name}` captures an outer binding"), out);
        } else if is_cell_binding(b, tv) {
            seen.push(name);
            flag(
                m,
                format!("`{name}` is a RefCell/Cell captured from outside"),
                out,
            );
        }
    }
}
