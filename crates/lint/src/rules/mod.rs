//! The enforced invariants, one module per rule.
//!
//! | rule id | invariant |
//! |---|---|
//! | `single-materializer` | per-step topology graphs are built only by `qntn_net::pipeline::build_topology_into` |
//! | `atomic-writes-only` | artifact bytes reach disk only through `qntn_common::atomic_write` |
//! | `no-panic-bins` | workspace binaries are panic-free (`QntnError` + exit-code contract) |
//! | `determinism` | sweep/pipeline hot paths read no wall clock and iterate no unordered maps |
//! | `layering` | crate dependency edges respect common → geo/quantum → orbit → channel/routing → net → core → bench |
//! | `bad-pragma` | (meta) every `qntn-lint:` pragma parses, names a real rule, and carries a reason |
//!
//! Adding a rule: create a module with an `ID` and a `check(&FileCtx)`
//! (or a manifest pass), register the id in [`RULE_IDS`] and the call in
//! [`check_source`], and add positive/negative fixtures under
//! `crates/lint/fixtures/` (see `tests/fixtures.rs`). DESIGN.md §11
//! documents the contract.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub mod atomic_writes;
pub mod determinism;
pub mod layering;
pub mod no_panic_bins;
pub mod single_materializer;

/// Every rule id a pragma may name.
pub const RULE_IDS: &[&str] = &[
    single_materializer::ID,
    atomic_writes::ID,
    no_panic_bins::ID,
    determinism::ID,
    layering::ID,
];

/// Run every source-level rule on one file.
pub fn check_source(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(single_materializer::check(ctx));
    out.extend(atomic_writes::check(ctx));
    out.extend(no_panic_bins::check(ctx));
    out.extend(determinism::check(ctx));
    out
}
