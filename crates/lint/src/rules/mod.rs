//! The enforced invariants, one module per rule.
//!
//! Pattern rules (masked-token matching, PR 5):
//!
//! | rule id | invariant |
//! |---|---|
//! | `single-materializer` | per-step topology graphs are built only by `qntn_net::pipeline::build_topology_into` |
//! | `atomic-writes-only` | artifact bytes reach disk only through `qntn_common::atomic_write` |
//! | `no-panic-bins` | workspace binaries are panic-free (`QntnError` + exit-code contract) |
//! | `determinism` | sweep/pipeline hot paths read no wall clock and iterate no unordered maps |
//! | `layering` | crate dependency edges respect common → geo/quantum → orbit → channel/routing → net → core → bench |
//! | `bad-pragma` | (meta) every `qntn-lint:` pragma parses, names a real rule, and carries a reason |
//!
//! Semantic rules (brace tree + symbol table, this PR):
//!
//! | rule id | invariant |
//! |---|---|
//! | `unit-safety` | dB values never flow into η-named locals/params without an explicit conversion |
//! | `typed-index` | `HostId`/`SatId`/`StepId` values only index their own family's containers |
//! | `float-reduction` | hot paths never run order-sensitive f64 reductions on a parallel chain |
//! | `rayon-capture` | `par_*` closures capture no `&mut` outer binding and no `RefCell`/`Cell` |
//! | `result-swallow` | library code never silently discards a `Result`-returning call |
//!
//! Adding a rule: create a module with an `ID` and a `check(&FileCtx)`
//! (or a manifest pass), register it in [`RULES`] and the call in
//! [`check_source`], and add positive/negative fixtures under
//! `crates/lint/fixtures/` (see `tests/fixtures.rs`). DESIGN.md §11 and
//! §16 document the contract.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub mod atomic_writes;
pub mod determinism;
pub mod float_reduction;
pub mod layering;
pub mod no_panic_bins;
pub mod rayon_capture;
pub mod result_swallow;
pub mod single_materializer;
pub mod typed_index;
pub mod unit_safety;

/// Every rule with its one-line description, in display order
/// (pattern rules first, then the semantic rules).
pub const RULES: &[(&str, &str)] = &[
    (
        single_materializer::ID,
        "per-step topology graphs are built only by qntn_net::pipeline::build_topology_into",
    ),
    (
        atomic_writes::ID,
        "artifact bytes reach disk only through qntn_common::atomic_write",
    ),
    (
        no_panic_bins::ID,
        "workspace binaries are panic-free (QntnError + exit-code contract)",
    ),
    (
        determinism::ID,
        "sweep/pipeline hot paths read no wall clock and iterate no unordered maps",
    ),
    (
        layering::ID,
        "crate dependency edges respect the common -> ... -> bench layering",
    ),
    (
        unit_safety::ID,
        "dB values never flow into eta-named locals/params without explicit conversion",
    ),
    (
        typed_index::ID,
        "HostId/SatId/StepId values only index their own family's containers",
    ),
    (
        float_reduction::ID,
        "hot paths never run order-sensitive f64 reductions on a parallel chain",
    ),
    (
        rayon_capture::ID,
        "par_* closures capture no &mut outer binding and no RefCell/Cell",
    ),
    (
        result_swallow::ID,
        "library code never silently discards a Result-returning call",
    ),
];

/// Every rule id a pragma may name.
pub const RULE_IDS: &[&str] = &[
    single_materializer::ID,
    atomic_writes::ID,
    no_panic_bins::ID,
    determinism::ID,
    layering::ID,
    unit_safety::ID,
    typed_index::ID,
    float_reduction::ID,
    rayon_capture::ID,
    result_swallow::ID,
];

/// Run every source-level rule on one file.
pub fn check_source(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(single_materializer::check(ctx));
    out.extend(atomic_writes::check(ctx));
    out.extend(no_panic_bins::check(ctx));
    out.extend(determinism::check(ctx));
    out.extend(unit_safety::check(ctx));
    out.extend(typed_index::check(ctx));
    out.extend(float_reduction::check(ctx));
    out.extend(rayon_capture::check(ctx));
    out.extend(result_swallow::check(ctx));
    out
}
