//! `float-reduction` — no order-sensitive f64 reductions on parallel chains.
//!
//! Float addition does not associate, so `par_iter().map(…).sum::<f64>()`
//! produces different bits depending on how rayon splits the work — which
//! breaks the workspace's sequential/parallel bit-identity contract
//! (`tests/pipeline_goldens.rs`). The blessed shape is the one
//! `SweepEngine::map_steps` uses: parallelism over *chunks*, with a
//! strictly sequential reduction inside each chunk closure, merged in
//! deterministic chunk order.
//!
//! The rule scans the determinism hot-path list for a `par_*` adapter and
//! flags any `.sum()` / `.fold()` / `.reduce()` **on the same chain level**
//! when `f64` evidence appears in the statement. A reduction *inside* a
//! worker closure sits in a deeper brace/paren node than the parallel
//! chain itself, so the blessed per-chunk shape is structurally exempt —
//! that nesting distinction is exactly what the brace tree buys over the
//! old pattern engine.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub const ID: &str = "float-reduction";

const MESSAGE: &str = "f64 reductions on a parallel chain are order-sensitive and \
     break sweep bit-identity: reduce sequentially per chunk (the \
     SweepEngine::map_steps shape) and merge in chunk order";

/// The rayon adapters that make a chain parallel.
const PAR_ADAPTERS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
];

/// The order-sensitive terminal reductions.
const REDUCTIONS: &[&str] = &["sum", "fold", "reduce"];

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !super::determinism::in_scope(ctx.rel) || ctx.is_test_file() {
        return Vec::new();
    }
    let tv = ctx.tokens;
    let n = tv.toks().len();
    let mut flagged: Vec<usize> = Vec::new();
    let mut out = Vec::new();
    for p in 0..n {
        if !tv.toks()[p].is_ident || !PAR_ADAPTERS.contains(&tv.text(p)) {
            continue;
        }
        let node = ctx.tree.enclosing(p);
        let (_, stmt_end) = ctx.tree.stmt_range(tv, p);
        for m in p + 1..stmt_end {
            if !tv.toks()[m].is_ident
                || !REDUCTIONS.contains(&tv.text(m))
                || m == 0
                || tv.text(m - 1) != "."
            {
                continue;
            }
            // Same chain level as the par adapter: a reduction nested in a
            // worker closure lives in a deeper node and is the blessed
            // sequential-per-chunk shape.
            if ctx.tree.enclosing(m) != node {
                continue;
            }
            // f64 evidence anywhere in the statement (`::<f64>`, a
            // `Vec<f64>` annotation, an `f64::` accumulator, …).
            let (stmt_start, _) = ctx.tree.stmt_range(tv, m);
            let has_f64 = (stmt_start..stmt_end).any(|k| tv.text(k) == "f64");
            if !has_f64 || flagged.contains(&m) {
                continue;
            }
            flagged.push(m);
            let (line, col) = ctx.scan.position(tv.toks()[m].start);
            if ctx.is_test_line(line) {
                continue;
            }
            out.push(Diagnostic {
                file: ctx.rel.to_string(),
                line,
                col,
                rule: ID,
                message: format!("{MESSAGE} (`.{}()` after `{}`)", tv.text(m), tv.text(p)),
                snippet: ctx.scan.line_text(ctx.src, line).trim().to_string(),
            });
        }
    }
    out
}
