//! `layering` — crate dependency edges point strictly down the stack.
//!
//! The workspace is layered so the physics stays ignorant of the network
//! and the network stays ignorant of the experiments:
//!
//! ```text
//! qntn-common                                   (0)
//! qntn-geo   qntn-quantum                      (10)
//! qntn-orbit                                   (20)  (orbit reads geo)
//! qntn-channel   qntn-routing                  (30)
//! qntn-net                                     (40)
//! qntn-serve                                   (45)
//! qntn-core                                    (50)
//! qntn-bench                                   (60)
//! qntn (the facade package)                    (70)
//! ```
//!
//! A `[dependencies]` edge from a crate to another `qntn-*` crate is legal
//! only when the dependency's layer is strictly lower. Same-layer edges
//! are rejected too (siblings like channel/routing must stay mutually
//! ignorant), as is any `qntn-*` crate missing from the map — adding a
//! crate forces a conscious layering decision here. `qntn-lint` itself
//! sits at layer 0: it may depend on no workspace crate at all.
//!
//! `[dev-dependencies]` are exempt: test scaffolding may reach across
//! (e.g. a lower crate exercising itself through upper-layer fixtures),
//! and dev edges never ship.
//!
//! Manifests use the TOML comment form of the pragma, on the dependency's
//! own line or the line above:
//! `# qntn-lint: allow(layering) -- <reason>`.

use crate::diag::Diagnostic;
use std::fs;
use std::io;
use std::path::Path;

pub const ID: &str = "layering";

/// Crate name → layer. Strictly-lower edges only.
const LAYERS: &[(&str, u32)] = &[
    ("qntn-common", 0),
    ("qntn-lint", 0),
    ("qntn-geo", 10),
    ("qntn-quantum", 10),
    ("qntn-orbit", 20),
    ("qntn-channel", 30),
    ("qntn-routing", 30),
    ("qntn-net", 40),
    ("qntn-serve", 45),
    ("qntn-core", 50),
    ("qntn-bench", 60),
    ("qntn", 70),
];

fn layer_of(name: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, l)| l)
}

/// One `qntn-*` dependency edge found in a manifest.
struct DepEdge {
    dep: String,
    line: usize,
    snippet: String,
    allowed: bool,
}

/// Parse a manifest: the `[package] name` and every `[dependencies]`
/// edge onto a `qntn-*` crate. Line-based on purpose — manifests in this
/// workspace are plain `key = value` TOML, and a zero-dependency linter
/// does not want a TOML parser for that.
fn parse_manifest(src: &str) -> (Option<String>, Vec<DepEdge>) {
    let mut package = None;
    let mut edges = Vec::new();
    let mut section = String::new();
    let mut prev_line_pragma = false;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let this_line_pragma = has_allow_pragma(line);
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
        } else if section == "package" && package.is_none() {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    package = Some(value.trim().trim_matches('"').to_string());
                }
            }
        } else if section == "dependencies" {
            let key: String = line
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if key.starts_with("qntn") {
                edges.push(DepEdge {
                    dep: key,
                    line: idx + 1,
                    snippet: line.to_string(),
                    allowed: this_line_pragma || prev_line_pragma,
                });
            }
        }
        prev_line_pragma = this_line_pragma;
    }
    (package, edges)
}

/// Does the line carry `# qntn-lint: allow(layering) -- <reason>`?
fn has_allow_pragma(line: &str) -> bool {
    let Some(pos) = line.find('#') else {
        return false;
    };
    let comment = line[pos + 1..].trim();
    let Some(rest) = comment.strip_prefix("qntn-lint:") else {
        return false;
    };
    let rest = rest.trim();
    let Some(rest) = rest.strip_prefix("allow(layering)") else {
        return false;
    };
    match rest.trim().strip_prefix("--") {
        Some(reason) => !reason.trim().is_empty(),
        None => false,
    }
}

/// Check every discovered manifest against the layer map.
pub fn check_manifests(
    root: &Path,
    manifests: &[std::path::PathBuf],
) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for path in manifests {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(path)?;
        out.extend(check_manifest_source(&rel, &src));
    }
    Ok(out)
}

/// Check one manifest's text (separated out for fixture tests).
pub fn check_manifest_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let (package, edges) = parse_manifest(src);
    let Some(package) = package else {
        return Vec::new(); // virtual manifest: no package, no edges to judge
    };
    if !package.starts_with("qntn") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut diag = |edge: &DepEdge, message: String| {
        out.push(Diagnostic {
            file: rel.to_string(),
            line: edge.line,
            col: 1,
            rule: ID,
            message,
            snippet: edge.snippet.clone(),
        });
    };
    let Some(own_layer) = layer_of(&package) else {
        // The package itself is unmapped: report once, on the first edge
        // (a crate with no qntn deps constrains nothing yet).
        if let Some(edge) = edges.first() {
            if !edge.allowed {
                diag(
                    edge,
                    format!(
                        "crate `{package}` is not in the layering map; add it to \
                         qntn-lint's rules::layering::LAYERS to declare its layer"
                    ),
                );
            }
        }
        return out;
    };
    for edge in &edges {
        if edge.allowed {
            continue;
        }
        match layer_of(&edge.dep) {
            None => diag(
                edge,
                format!(
                    "dependency `{}` is not in the layering map; add it to \
                     qntn-lint's rules::layering::LAYERS",
                    edge.dep
                ),
            ),
            Some(dep_layer) if dep_layer >= own_layer => diag(
                edge,
                format!(
                    "layering violation: `{package}` (layer {own_layer}) may not \
                     depend on `{}` (layer {dep_layer}); edges must point \
                     strictly down common -> geo/quantum -> orbit -> \
                     channel/routing -> net -> core -> bench",
                    edge.dep
                ),
            ),
            Some(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downward_edges_are_legal() {
        let src = "[package]\nname = \"qntn-net\"\n\n[dependencies]\nqntn-common.workspace = true\nqntn-geo.workspace = true\nserde.workspace = true\n";
        assert!(check_manifest_source("crates/net/Cargo.toml", src).is_empty());
    }

    #[test]
    fn upward_edge_is_flagged_with_line() {
        let src = "[package]\nname = \"qntn-geo\"\n\n[dependencies]\nqntn-net.workspace = true\n";
        let d = check_manifest_source("crates/geo/Cargo.toml", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 5);
        assert!(d[0].message.contains("layering violation"));
    }

    #[test]
    fn same_layer_siblings_are_flagged() {
        let src = "[package]\nname = \"qntn-channel\"\n\n[dependencies]\nqntn-routing = { path = \"../routing\" }\n";
        let d = check_manifest_source("crates/channel/Cargo.toml", src);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let src =
            "[package]\nname = \"qntn-geo\"\n\n[dev-dependencies]\nqntn-net.workspace = true\n";
        assert!(check_manifest_source("crates/geo/Cargo.toml", src).is_empty());
    }

    #[test]
    fn unknown_dep_is_flagged() {
        let src =
            "[package]\nname = \"qntn-net\"\n\n[dependencies]\nqntn-newthing.workspace = true\n";
        let d = check_manifest_source("crates/net/Cargo.toml", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not in the layering map"));
    }

    #[test]
    fn workspace_dependencies_section_is_not_an_edge() {
        let src = "[workspace]\nmembers = [\"crates/*\"]\n\n[workspace.dependencies]\nqntn-net = { path = \"crates/net\" }\n";
        assert!(check_manifest_source("Cargo.toml", src).is_empty());
    }

    #[test]
    fn toml_pragma_allows_an_edge() {
        let src = "[package]\nname = \"qntn-geo\"\n\n[dependencies]\n# qntn-lint: allow(layering) -- migration shim, tracked in ISSUE 9\nqntn-net.workspace = true\n";
        assert!(check_manifest_source("crates/geo/Cargo.toml", src).is_empty());
    }

    #[test]
    fn toml_pragma_without_reason_does_not_allow() {
        let src = "[package]\nname = \"qntn-geo\"\n\n[dependencies]\nqntn-net.workspace = true # qntn-lint: allow(layering)\n";
        assert_eq!(check_manifest_source("crates/geo/Cargo.toml", src).len(), 1);
    }

    #[test]
    fn lint_crate_may_depend_on_nothing() {
        let src =
            "[package]\nname = \"qntn-lint\"\n\n[dependencies]\nqntn-common.workspace = true\n";
        let d = check_manifest_source("crates/lint/Cargo.toml", src);
        assert_eq!(d.len(), 1, "layer-0 lint must not gain workspace deps");
    }
}
