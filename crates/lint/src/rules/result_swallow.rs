//! `result-swallow` — library code never silently discards a `Result`.
//!
//! `let _ = file.sync_all();` compiles without a warning and turns a
//! durability failure into silence — the exact failure mode the
//! atomic-write contract exists to prevent. This rule flags two discard
//! shapes in non-test *library* code (binaries own the exit-code contract
//! and are covered by `no-panic-bins`):
//!
//! - `let _ = call(…);` where the trailing call is known to return
//!   `Result`;
//! - a bare `call(…);` statement for a same-file `fn` that declares a
//!   `Result` return.
//!
//! "Known to return `Result`" is deliberately under-approximate, so a
//! false positive is structurally impossible: a same-file `fn` whose
//! parsed signature mentions `Result`, an allowlisted std method
//! (`sync_all`, `write_all`, `flush`, …), or an allowlisted `std::fs`
//! path function (directly or through a parsed `use` import). Anything
//! else — unknown methods, cross-crate calls — is presumed innocent.
//!
//! The escape hatch is to *handle* the value, even minimally: `?`,
//! `.ok()`, a match, or logging all change the trailing token shape and
//! are not discards. A truly best-effort call keeps the reasoned pragma.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::parse::DelimKind;

pub const ID: &str = "result-swallow";

const MESSAGE: &str = "a Result-returning call must not be silently discarded: \
     propagate with `?`, handle the error, or make the intent explicit \
     with `.ok()` / a reasoned pragma";

/// Std methods that return `Result` and are worth never dropping.
const KNOWN_METHODS: &[&str] = &["sync_all", "sync_data", "write_all", "flush", "set_len"];

/// Std path functions that return `Result` (matched by `::`-path suffix).
const KNOWN_FNS: &[&str] = &[
    "fs::remove_file",
    "fs::rename",
    "fs::create_dir_all",
    "fs::hard_link",
    "fs::copy",
    "fs::set_permissions",
];

fn path_is_known(path: &str) -> bool {
    KNOWN_FNS.iter().any(|k| {
        path == *k || path.ends_with(&format!("::{k}")) || k.ends_with(&format!("::{path}"))
    })
}

/// Is the file in scope — non-test library code (binaries are excluded)?
fn in_scope(rel: &str) -> bool {
    !rel.contains("/src/bin/") && !rel.ends_with("src/main.rs")
}

/// Classify the call whose closing paren is at `close_tok`: does it return
/// `Result` by one of the under-approximate evidence sources?
fn call_returns_result(ctx: &FileCtx<'_>, close_tok: usize) -> Option<String> {
    let tv = ctx.tokens;
    let pnode = ctx.tree.enclosing(close_tok);
    let node = ctx.tree.node(pnode);
    if node.kind != DelimKind::Paren || node.close != close_tok || node.open == 0 {
        return None;
    }
    let callee = node.open - 1;
    if !tv.toks()[callee].is_ident {
        return None;
    }
    let name = tv.text(callee);
    let is_method = callee >= 1 && tv.text(callee - 1) == ".";
    if is_method {
        return KNOWN_METHODS.contains(&name).then(|| format!(".{name}()"));
    }
    // Path call: walk `seg :: seg :: name` backwards.
    let mut segs = vec![name.to_string()];
    let mut k = callee;
    while k >= 3 && tv.text(k - 1) == ":" && tv.text(k - 2) == ":" && tv.toks()[k - 3].is_ident {
        segs.push(tv.text(k - 3).to_string());
        k -= 3;
    }
    if segs.len() > 1 {
        segs.reverse();
        let joined = segs.join("::");
        return path_is_known(&joined).then_some(joined);
    }
    // Bare call: a same-file fn declaring Result, or a `use`-imported
    // known std fn.
    if ctx
        .fns
        .iter()
        .any(|f| f.name == name && f.returns("Result"))
    {
        return Some(format!("{name}() [same-file fn returning Result]"));
    }
    if ctx
        .uses
        .iter()
        .any(|u| u.leaf == name && path_is_known(&u.joined()))
    {
        return Some(format!("{name}() [imported std fs call]"));
    }
    None
}

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !in_scope(ctx.rel) || ctx.is_test_file() {
        return Vec::new();
    }
    let tv = ctx.tokens;
    let n = tv.toks().len();
    let mut out = Vec::new();
    let mut flag = |tok: usize, detail: String| {
        let (line, col) = ctx.scan.position(tv.toks()[tok].start);
        if ctx.is_test_line(line) {
            return;
        }
        out.push(Diagnostic {
            file: ctx.rel.to_string(),
            line,
            col,
            rule: ID,
            message: format!("{MESSAGE} ({detail})"),
            snippet: ctx.scan.line_text(ctx.src, line).trim().to_string(),
        });
    };

    // Form A: `let _ = <expr ending in a known call>;`
    for i in 0..n {
        if !tv.matches_at(i, &["let", "_", "="]) {
            continue;
        }
        let node = ctx.tree.enclosing(i);
        let Some(semi) = (i + 3..ctx.tree.node(node).close.min(n))
            .find(|&m| ctx.tree.enclosing(m) == node && tv.text(m) == ";")
        else {
            continue;
        };
        // The discard is only a discard when the *last* thing before `;`
        // is a call — `.ok()`, `?` and plain moves change this shape.
        if semi == 0 || tv.text(semi - 1) != ")" {
            continue;
        }
        if let Some(what) = call_returns_result(ctx, semi - 1) {
            flag(i, format!("`let _ =` discards `{what}`"));
        }
    }

    // Form B: a bare `call(…);` statement for a same-file Result fn.
    for f in ctx.fns {
        if !f.returns("Result") {
            continue;
        }
        for m in 1..n.saturating_sub(1) {
            if !tv.toks()[m].is_ident || tv.text(m) != f.name || tv.text(m + 1) != "(" {
                continue;
            }
            // Statement-leading position: the previous token closes a
            // statement or opens a block (so `return f();`, `let x = f();`
            // and `f()?;` are all out).
            if !matches!(tv.text(m - 1), ";" | "{" | "}") {
                continue;
            }
            let pnode = ctx.tree.enclosing(m + 1);
            let close = ctx.tree.node(pnode).close;
            if close + 1 < n && tv.text(close + 1) == ";" {
                flag(m, format!("bare `{}();` drops a same-file Result", f.name));
            }
        }
    }
    out
}
