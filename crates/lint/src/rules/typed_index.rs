//! `typed-index` — `HostId`/`SatId`/`StepId` families never cross-index.
//!
//! `qntn_common` wraps raw indices in transparent newtypes precisely so a
//! satellite index cannot land in a host-keyed slice. The type system
//! enforces that for typed containers — but the hot paths store flat
//! `Vec`s and index them with `h.index()`, at which point everything is
//! `usize` again and the compiler is out of the loop.
//!
//! This rule puts the families back: a binding is assigned a family from
//! its type annotation or constructor (`HostId`, `SatId`, `StepId`, or a
//! `Family::from(...)` / `Family(...)` initializer), a container is
//! assigned a family from its name (`host*`/`sat*`/`step*` segments), and
//! an indexing expression `container[ident]` where the two families
//! disagree is a violation.
//!
//! The escape hatch is the one the issue names: an explicit `.index()`
//! call in the bracket (`hosts[sat.index()]`) is a visible, reviewable
//! cast and is never flagged. Unknown names and unannotated bindings have
//! no family, and no-family never fires.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;

pub const ID: &str = "typed-index";

const MESSAGE: &str = "typed index families must not cross: a HostId/SatId/StepId \
     value may only index its own family's container (write an explicit \
     `.index()` at the use site to cast on purpose)";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Host,
    Sat,
    Step,
}

impl Family {
    fn of_type(name: &str) -> Option<Family> {
        match name {
            "HostId" => Some(Family::Host),
            "SatId" => Some(Family::Sat),
            "StepId" => Some(Family::Step),
            _ => None,
        }
    }

    fn of_container(name: &str) -> Option<Family> {
        // A container is keyed by the family its name leads with:
        // `host_windows`, `sat_states`, `steps`, …
        let first = name.split('_').next().unwrap_or(name);
        match first {
            "host" | "hosts" => Some(Family::Host),
            "sat" | "sats" => Some(Family::Sat),
            "step" | "steps" => Some(Family::Step),
            _ => None,
        }
    }
}

/// The family of the identifier at `tok`, from the binding it resolves to
/// (type annotation or `Family::from(...)` / `Family(...)` initializer).
fn ident_family(ctx: &FileCtx<'_>, tok: usize) -> Option<Family> {
    let tv = ctx.tokens;
    let b = ctx
        .symbols
        .resolve(ctx.tree, tv.text(tok), tok, ctx.tree.enclosing(tok))?;
    if let Some(fam) = b.ty.iter().find_map(|t| Family::of_type(t)) {
        return Some(fam);
    }
    // Initializer starting `Family (` or `Family :: from` etc.
    if b.init.1 > b.init.0 {
        if let Some(fam) = Family::of_type(tv.text(b.init.0)) {
            return Some(fam);
        }
    }
    None
}

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if ctx.is_test_file() {
        return Vec::new();
    }
    let tv = ctx.tokens;
    let n = tv.toks().len();
    let mut out = Vec::new();
    for m in 1..n {
        if tv.text(m) != "[" {
            continue;
        }
        // `container [` — the token before the bracket names the container.
        let cont = m - 1;
        if !tv.toks()[cont].is_ident {
            continue;
        }
        let Some(cont_fam) = Family::of_container(tv.text(cont)) else {
            continue;
        };
        let bnode = ctx.tree.enclosing(m);
        if ctx.tree.node(bnode).open != m {
            continue;
        }
        let close = ctx.tree.node(bnode).close.min(n);
        // The escape hatch: any `.index()` inside the bracket is an
        // explicit cast, never flagged.
        let has_cast =
            (m + 1..close).any(|k| tv.text(k) == "." && k + 1 < close && tv.text(k + 1) == "index");
        if has_cast {
            continue;
        }
        // The index expression must lead with a bare identifier whose
        // binding carries a family.
        let first = m + 1;
        if first >= close || !tv.toks()[first].is_ident {
            continue;
        }
        let Some(idx_fam) = ident_family(ctx, first) else {
            continue;
        };
        if idx_fam != cont_fam {
            let (line, col) = ctx.scan.position(tv.toks()[first].start);
            if ctx.is_test_line(line) {
                continue;
            }
            out.push(Diagnostic {
                file: ctx.rel.to_string(),
                line,
                col,
                rule: ID,
                message: format!(
                    "{MESSAGE} (`{}` is {:?}-keyed but `{}` is a {:?} index)",
                    tv.text(cont),
                    cont_fam,
                    tv.text(first),
                    idx_fam
                ),
                snippet: ctx.scan.line_text(ctx.src, line).trim().to_string(),
            });
        }
    }
    out
}
