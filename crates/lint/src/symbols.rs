//! The per-file symbol table: scoped bindings over the brace tree.
//!
//! Semantic rules reason about *where a value came from*, which means
//! resolving an identifier use to the binding that introduced it. This
//! module collects every binding site the rules care about —
//!
//! - `let` statements (including `if let` / `while let` patterns),
//! - `for` loop patterns,
//! - `fn` parameters (scoped to the function body),
//!
//! — each with its scope node, mutability, type-annotation tokens and
//! initializer token range. Resolution is lexical: the nearest earlier
//! binding whose scope node encloses the use site wins. A name that does
//! not resolve stays unknown, and every rule treats unknown as innocent —
//! the analysis is deliberately under-approximate, never guessing.
//!
//! No cross-file resolution exists on purpose: the rules that need
//! signatures (unit-safety's parameter check, result-swallow's return
//! types) only trust same-file `fn` items plus an explicit allowlist of
//! well-known std APIs, which keeps false positives structurally
//! impossible rather than merely unlikely.

use crate::lexer::TokenView;
use crate::parse::{parse_closures, FnSig, Tree};

/// One binding site.
#[derive(Debug, Clone)]
pub struct Binding {
    /// The bound name.
    pub name: String,
    /// Token index of the name at the binding site.
    pub tok: usize,
    /// Scope: the node the binding is visible in (and below).
    pub node: usize,
    /// Was the binding declared `mut`?
    pub is_mut: bool,
    /// Type-annotation token texts (empty when unannotated).
    pub ty: Vec<String>,
    /// Initializer token range `[from, to)` (empty when there is none).
    pub init: (usize, usize),
}

impl Binding {
    /// Does the annotation or initializer mention `pred`-matching tokens?
    pub fn mentions(&self, tv: &TokenView<'_>, pred: impl Fn(&str) -> bool) -> bool {
        self.ty.iter().any(|t| pred(t)) || (self.init.0..self.init.1).any(|m| pred(tv.text(m)))
    }
}

/// All bindings of one file, in source order.
#[derive(Debug, Default)]
pub struct SymbolTable {
    bindings: Vec<Binding>,
}

impl SymbolTable {
    /// Collect bindings from `let`/`for` statements, function parameters
    /// and closure parameters.
    pub fn collect(tv: &TokenView<'_>, tree: &Tree, fns: &[FnSig]) -> SymbolTable {
        let mut bindings = Vec::new();
        collect_lets(tv, tree, &mut bindings);
        collect_fors(tv, tree, &mut bindings);
        for f in fns {
            if let Some(body) = f.body {
                for p in &f.params {
                    bindings.push(Binding {
                        name: p.name.clone(),
                        tok: p.tok,
                        node: body,
                        is_mut: p.ty.first().is_some_and(|t| t == "mut"),
                        ty: p.ty.clone(),
                        init: (0, 0),
                    });
                }
            }
        }
        // Closure parameters bind inside the closure body; recording them
        // with the body's start as scope start keeps resolution lexical.
        for c in parse_closures(tv, tree) {
            let node = tree.enclosing(c.body.0);
            for name in &c.params {
                bindings.push(Binding {
                    name: name.clone(),
                    tok: c.start,
                    node,
                    is_mut: false,
                    ty: Vec::new(),
                    init: (0, 0),
                });
            }
        }
        bindings.sort_by_key(|b| b.tok);
        SymbolTable { bindings }
    }

    /// Every binding, in source order.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Resolve a use of `name` at token `at` (inside node `at_node`) to
    /// the nearest earlier binding whose scope encloses the use site.
    pub fn resolve(&self, tree: &Tree, name: &str, at: usize, at_node: usize) -> Option<&Binding> {
        self.bindings
            .iter()
            .filter(|b| b.name == name && b.tok < at && tree.is_within(at_node, b.node))
            .max_by_key(|b| b.tok)
    }
}

/// Scan for `let` bindings (plain, `if let`, `while let`, `let … else`).
fn collect_lets(tv: &TokenView<'_>, tree: &Tree, out: &mut Vec<Binding>) {
    let n = tv.toks().len();
    for i in 0..n {
        if tv.text(i) != "let" || !tv.toks()[i].is_ident {
            continue;
        }
        let node = tree.enclosing(i);
        let mut j = i + 1;
        let is_mut = j < n && tv.text(j) == "mut";
        if is_mut {
            j += 1;
        }
        // Pattern: identifiers until a top-level `:`, `=` or `;`.
        // (Destructuring groups open child nodes, so their internal
        // punctuation never terminates the scan.)
        let mut names: Vec<usize> = Vec::new();
        let mut ty_start = None;
        let mut eq = None;
        while j < n {
            let e = tree.enclosing(j);
            let t = tv.text(j);
            if e == node && (t == ";" || t == "=") {
                if t == "=" && tv.text((j + 1).min(n - 1)) != "=" {
                    eq = Some(j);
                }
                break;
            }
            if e == node && t == ":" && tv.text((j + 1).min(n - 1)) != ":" {
                ty_start = Some(j + 1);
                break;
            }
            if tv.toks()[j].is_ident && !matches!(t, "mut" | "ref") {
                names.push(j);
            }
            j += 1;
        }
        // Type annotation: up to the `=` / `;`.
        let mut ty = Vec::new();
        if let Some(ts) = ty_start {
            j = ts;
            while j < n {
                let e = tree.enclosing(j);
                let t = tv.text(j);
                if e == node && (t == ";" || (t == "=" && tv.text((j + 1).min(n - 1)) != "=")) {
                    if t == "=" {
                        eq = Some(j);
                    }
                    break;
                }
                ty.push(t.to_string());
                j += 1;
            }
        }
        // Initializer: from `=` to the statement's `;` (or, for
        // `if let` / `while let`, to the block the condition opens).
        let init = match eq {
            Some(eq) => {
                let from = eq + 1;
                let close = tree.node(node).close.min(n);
                let mut to = close;
                for m in from..close {
                    let e = tree.enclosing(m);
                    if e == node && tv.text(m) == ";" {
                        to = m;
                        break;
                    }
                    // A block brace directly at this level ends an
                    // `if let` / `while let` condition.
                    if tv.text(m) == "{"
                        && tree.node(e).open == m
                        && tree.node(e).parent == node
                        && i > 0
                        && matches!(tv.text(i - 1), "if" | "while")
                    {
                        to = m;
                        break;
                    }
                }
                (from, to)
            }
            None => (0, 0),
        };
        for &name_tok in &names {
            out.push(Binding {
                name: tv.text(name_tok).to_string(),
                tok: name_tok,
                node,
                is_mut,
                ty: ty.clone(),
                init,
            });
        }
    }
}

/// Scan for `for <pattern> in …` loop bindings.
fn collect_fors(tv: &TokenView<'_>, tree: &Tree, out: &mut Vec<Binding>) {
    let n = tv.toks().len();
    for i in 0..n {
        if tv.text(i) != "for" || !tv.toks()[i].is_ident {
            continue;
        }
        let node = tree.enclosing(i);
        let mut j = i + 1;
        while j < n {
            let t = tv.text(j);
            if tree.enclosing(j) == node && (t == "in" || t == "{" || t == ";") {
                break;
            }
            if tv.toks()[j].is_ident && !matches!(t, "mut" | "ref") {
                out.push(Binding {
                    name: t.to_string(),
                    tok: j,
                    node,
                    is_mut: false,
                    ty: Vec::new(),
                    init: (0, 0),
                });
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::parse::parse_fns;

    fn table(src: &str) -> (crate::lexer::Scan, SymbolTable) {
        let s = scan(src);
        let tv = TokenView::new(&s);
        let tree = Tree::build(&tv);
        let fns = parse_fns(&tv, &tree);
        let t = SymbolTable::collect(&tv, &tree, &fns);
        (s, t)
    }

    fn names(t: &SymbolTable) -> Vec<&str> {
        t.bindings().iter().map(|b| b.name.as_str()).collect()
    }

    #[test]
    fn let_bindings_with_annotation_and_init() {
        let (_, t) = table("fn f() { let mut x: f64 = a(); let y = x; }");
        let b = &t.bindings()[1]; // params sort first? none here: x then y
        let x = t.bindings().iter().find(|b| b.name == "x").unwrap();
        assert!(x.is_mut);
        assert_eq!(x.ty, ["f64"]);
        assert!(x.init.1 > x.init.0);
        assert_eq!(b.name, "y");
    }

    #[test]
    fn destructuring_binds_every_identifier() {
        let (_, t) = table("fn f() { let (a, b) = pair(); }");
        assert!(names(&t).contains(&"a"));
        assert!(names(&t).contains(&"b"));
    }

    #[test]
    fn fn_params_bind_into_the_body() {
        let src = "fn f(eta: f64) -> f64 { eta * 2.0 }";
        let s = scan(src);
        let tv = TokenView::new(&s);
        let tree = Tree::build(&tv);
        let fns = parse_fns(&tv, &tree);
        let t = SymbolTable::collect(&tv, &tree, &fns);
        let use_site = (0..tv.toks().len())
            .rfind(|&m| tv.text(m) == "eta")
            .unwrap();
        let b = t
            .resolve(&tree, "eta", use_site, tree.enclosing(use_site))
            .unwrap();
        assert_eq!(b.ty, ["f64"]);
    }

    #[test]
    fn resolution_is_lexical_nearest_wins() {
        let src = "fn f() { let x = 1; { let x = 2; use_it(x); } }";
        let s = scan(src);
        let tv = TokenView::new(&s);
        let tree = Tree::build(&tv);
        let t = SymbolTable::collect(&tv, &tree, &parse_fns(&tv, &tree));
        let use_site = (0..tv.toks().len()).rfind(|&m| tv.text(m) == "x").unwrap();
        let b = t
            .resolve(&tree, "x", use_site, tree.enclosing(use_site))
            .unwrap();
        // The inner binding (init `2`) is the one that resolves.
        assert_eq!(tv.text(b.init.0), "2");
    }

    #[test]
    fn inner_binding_does_not_leak_out() {
        let src = "fn f() { { let z = 1; } use_it(z); }";
        let s = scan(src);
        let tv = TokenView::new(&s);
        let tree = Tree::build(&tv);
        let t = SymbolTable::collect(&tv, &tree, &parse_fns(&tv, &tree));
        let use_site = (0..tv.toks().len()).rfind(|&m| tv.text(m) == "z").unwrap();
        assert!(t
            .resolve(&tree, "z", use_site, tree.enclosing(use_site))
            .is_none());
    }

    #[test]
    fn if_let_init_stops_at_the_block() {
        let (_, t) = table("fn f() { if let Some(v) = find() { v.go(); } }");
        let v = t.bindings().iter().find(|b| b.name == "v").unwrap();
        // The initializer is `find ( )` — not the block that follows.
        assert!(v.init.1 - v.init.0 <= 4, "{:?}", v.init);
    }

    #[test]
    fn for_pattern_binds() {
        let (_, t) = table("fn f(xs: &[u32]) { for (k, v) in xs.iter().enumerate() { } }");
        assert!(names(&t).contains(&"k"));
        assert!(names(&t).contains(&"v"));
    }

    #[test]
    fn closure_params_bind() {
        let (_, t) = table("fn f(xs: &[u32]) { xs.iter().map(|q| q + 1).count(); }");
        assert!(names(&t).contains(&"q"));
    }
}
